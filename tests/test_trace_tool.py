"""Tests for the structured run tracer."""

import pytest

from repro.core import ParulelEngine
from repro.lang.parser import parse_program
from repro.tools import RunTracer

SRC = """
(literalize req name)
(literalize grant name)
(p grant (req ^name <n>) --> (make grant ^name <n>) (write granted <n>) (remove 1))
(mp keep-first
    (instantiation ^rule grant ^id <i> ^n <a>)
    (instantiation ^rule grant ^id {<j> <> <i>} ^n > <a>)
    -->
    (redact <j>))
"""


@pytest.fixture
def traced_run():
    tracer = RunTracer()
    engine = ParulelEngine(parse_program(SRC), trace=tracer)
    for i in range(3):
        engine.make("req", name=f"r{i}")
    result = engine.run()
    return tracer, result


class TestRunTracer:
    def test_captures_every_cycle(self, traced_run):
        tracer, result = traced_run
        assert len(tracer) == result.cycles == 3

    def test_totals(self, traced_run):
        tracer, result = traced_run
        assert tracer.total_fired == result.firings == 3
        assert tracer.total_redacted == 3  # 2 + 1 + 0

    def test_busiest_cycle(self, traced_run):
        tracer, _ = traced_run
        assert tracer.busiest_cycle().fired == 1

    def test_timeline_rendering(self, traced_run):
        tracer, _ = traced_run
        text = tracer.timeline()
        assert "cycle" in text and "redact" in text
        assert "writes:1" in text
        lines = [l for l in text.splitlines() if l.strip() and l.strip()[0].isdigit()]
        assert len(lines) == 3

    def test_to_table_csv(self, traced_run):
        tracer, _ = traced_run
        csv = tracer.to_table().to_csv()
        rows = csv.strip().splitlines()
        assert rows[0].startswith("cycle,")
        assert len(rows) == 4  # header + 3 cycles

    def test_empty_tracer(self):
        tracer = RunTracer()
        assert len(tracer) == 0
        assert tracer.busiest_cycle() is None
        assert tracer.total_fired == 0
        assert "cycle" in tracer.timeline()
