"""CheckpointStore: rotation, delta chains, last-good fallback.

The acceptance property lives in :class:`TestKillDuringWrite`: truncating
the *newest* store file at every possible byte offset (what a ``kill -9``
mid-write leaves behind, modulo the atomic rename that normally prevents
even that) never loses the store — ``load()`` always returns a state the
engine actually checkpointed, falling back past the torn file.
"""

import os

import pytest

from repro.core import EngineConfig, ParulelEngine
from repro.errors import CheckpointCorruptError, ExecutionError
from repro.lang.parser import parse_program
from repro.resilience.checkpoint import (
    CheckpointStore,
    EngineCheckpointer,
    apply_delta_state,
    write_envelope,
)

COUNTER = """
(literalize count value)
(literalize audit value)
(p bump
    (count ^value {<v> < 10})
    -->
    (modify 1 ^value (compute <v> + 1))
    (make audit ^value <v>))
"""


def wm_bytes(engine):
    return [repr(w) for w in engine.wm.snapshot()]


def fresh():
    engine = ParulelEngine(parse_program(COUNTER))
    engine.make("count", value=0)
    return engine


def checkpointed_run(root, cycles, full_every=3, keep=3):
    """Step an engine ``cycles`` times, saving after every step."""
    engine = fresh()
    store = CheckpointStore(root, keep=keep)
    ck = EngineCheckpointer(engine, store, full_every=full_every)
    paths = [ck.save()]  # cycle-0 baseline, like the CLI
    for _ in range(cycles):
        engine.step()
        paths.append(ck.save())
    return engine, store, paths


def kinds(paths):
    return [os.path.splitext(p)[1].lstrip(".") for p in paths]


class TestCadenceAndRotation:
    def test_full_every_alternates_kinds(self, tmp_path):
        _e, _s, paths = checkpointed_run(str(tmp_path), 6, full_every=3)
        assert kinds(paths) == [
            "full", "delta", "delta", "full", "delta", "delta", "full",
        ]

    def test_full_every_one_means_all_fulls(self, tmp_path):
        _e, _s, paths = checkpointed_run(str(tmp_path), 3, full_every=1)
        assert kinds(paths) == ["full"] * 4

    def test_keep_bounds_full_snapshots(self, tmp_path):
        _e, store, _paths = checkpointed_run(
            str(tmp_path), 9, full_every=2, keep=2
        )
        entries = store._entries()
        fulls = [p for _s, k, p in entries if k == "full"]
        assert len(fulls) == 2
        # Nothing older than the oldest kept full survives.
        oldest_kept = min(s for s, k, _p in entries if k == "full")
        assert all(s >= oldest_kept for s, _k, _p in entries)

    def test_prune_sweeps_stale_tmp_files(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        stale = tmp_path / "ckpt-00000001.full.tmp-12345"
        stale.write_bytes(b"torn")
        removed = store.prune()
        assert str(stale) in removed
        assert not stale.exists()

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(str(tmp_path), keep=0)

    def test_full_every_must_be_positive(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with pytest.raises(ValueError):
            EngineCheckpointer(fresh(), store, full_every=0)

    def test_delta_before_any_full_rejected(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with pytest.raises(ExecutionError):
            store.save_delta({"base_cycle": 0})


class TestDeltaChain:
    def test_store_restore_equals_direct_full(self, tmp_path):
        """full + deltas reconstructs exactly what a full snapshot at the
        same cycle would hold."""
        engine, store, _paths = checkpointed_run(str(tmp_path), 5, full_every=3)
        direct = engine.checkpoint()
        load = store.load()
        assert not load.fell_back
        assert load.delta_paths  # the chain was actually exercised
        got = dict(load.state)
        # fired ordering differs (direct sorts, delta appends in firing
        # order) but the *set* must match; everything else is exact.
        assert sorted(map(tuple, got.pop("fired"))) == sorted(
            map(tuple, direct.pop("fired"))
        )
        assert got == direct

    def test_resumed_run_matches_clean_run(self, tmp_path):
        ref = fresh()
        ref.run()
        _engine, store, _paths = checkpointed_run(str(tmp_path), 4)
        load = store.load()
        resumed = ParulelEngine.restore(parse_program(COUNTER), load.state)
        resumed.run()
        assert wm_bytes(resumed) == wm_bytes(ref)
        assert resumed.output == ref.output
        assert resumed.fired == ref.fired

    def test_apply_delta_rejects_base_cycle_gap(self, tmp_path):
        engine, store, _paths = checkpointed_run(str(tmp_path), 3, full_every=2)
        state = engine.checkpoint()
        delta, _cursor = engine.checkpoint_delta(engine.checkpoint_cursor())
        delta["base_cycle"] = state["cycle"] + 1
        with pytest.raises(ExecutionError, match="base cycle"):
            apply_delta_state(state, delta)


class TestFallback:
    def corrupt(self, path):
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) // 2)

    def test_corrupt_newest_full_falls_back(self, tmp_path):
        _e, store, paths = checkpointed_run(str(tmp_path), 6, full_every=3)
        assert paths[-1].endswith(".full")
        self.corrupt(paths[-1])
        load = store.load()
        assert load.fell_back
        assert load.base_path == paths[3]  # previous full
        assert load.delta_paths == [paths[4], paths[5]]
        assert load.state["cycle"] == 5
        assert paths[-1] in [p for p, _r in load.skipped]

    def test_corrupt_delta_stops_chain_keeps_full(self, tmp_path):
        _e, store, paths = checkpointed_run(str(tmp_path), 2, full_every=3)
        assert kinds(paths) == ["full", "delta", "delta"]
        self.corrupt(paths[1])
        load = store.load()
        # The full still loads; the chain ends at the torn delta — the
        # later delta chains off it and must not be applied.
        assert load.base_path == paths[0]
        assert load.delta_paths == []
        assert load.state["cycle"] == 0
        assert [p for p, _r in load.skipped] == [paths[1]]

    def test_all_fulls_corrupt_raises_typed(self, tmp_path):
        _e, store, _paths = checkpointed_run(str(tmp_path), 3, full_every=1)
        for _seq, _kind, path in store._entries():
            self.corrupt(path)
        with pytest.raises(CheckpointCorruptError) as exc:
            store.load()
        assert exc.value.path == str(tmp_path)

    def test_empty_store_raises_typed(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with pytest.raises(CheckpointCorruptError):
            store.load()

    def test_mislabelled_snapshot_is_skipped(self, tmp_path):
        engine, store, _paths = checkpointed_run(str(tmp_path), 1, full_every=1)
        # A delta payload wearing a .full name must not be trusted.
        bogus = os.path.join(str(tmp_path), "ckpt-00000099.full")
        write_envelope(bogus, {"base_cycle": 1}, kind="delta")
        load = store.load()
        assert load.state["cycle"] == 1
        assert bogus in [p for p, _r in load.skipped]


class TestKillDuringWrite:
    """Acceptance criterion: kill -9 during a checkpoint write never
    corrupts the latest *restorable* checkpoint."""

    def sweep(self, store, victim, acceptable_cycles):
        blob = open(victim, "rb").read()
        for cut in range(len(blob)):
            with open(victim, "wb") as fh:
                fh.write(blob[:cut])
            load = store.load()
            assert load.state["cycle"] in acceptable_cycles, (
                f"truncation at byte {cut} produced cycle "
                f"{load.state['cycle']}"
            )
            assert load.fell_back  # the torn file was noticed, not trusted
        with open(victim, "wb") as fh:
            fh.write(blob)

    def test_torn_newest_full_every_offset(self, tmp_path):
        _e, store, paths = checkpointed_run(str(tmp_path), 3, full_every=3)
        assert paths[-1].endswith(".full")
        # Fallback target: previous full (cycle 0) + its two deltas = cycle 2.
        self.sweep(store, paths[-1], acceptable_cycles={2})
        assert store.load().state["cycle"] == 3  # intact file still wins

    def test_torn_newest_delta_every_offset(self, tmp_path):
        _e, store, paths = checkpointed_run(str(tmp_path), 4, full_every=3)
        assert paths[-1].endswith(".delta")
        # Chain ends before the torn delta: full at cycle 3 stands alone.
        self.sweep(store, paths[-1], acceptable_cycles={3})
        assert store.load().state["cycle"] == 4

    def test_torn_file_resumes_to_same_final_state(self, tmp_path):
        """End to end: truncate, load, restore, run — the run converges to
        the clean final state regardless of which checkpoint survived."""
        ref = fresh()
        ref.run()
        _e, store, paths = checkpointed_run(str(tmp_path), 5, full_every=2)
        size = os.path.getsize(paths[-1])
        with open(paths[-1], "r+b") as fh:
            fh.truncate(size // 3)
        load = store.load()
        resumed = ParulelEngine.restore(
            parse_program(COUNTER), load.state, EngineConfig()
        )
        resumed.run()
        assert wm_bytes(resumed) == wm_bytes(ref)
        assert resumed.output == ref.output
