"""Chaos differential: crash + corruption + recovery == clean run.

These run the full :mod:`repro.resilience.chaos` scenario — real worker
processes, real SIGKILLs, a truncated checkpoint, and (columnar) a live
segment unlinked out from under the pool — so they carry ``slow`` and
explicit timeouts. ``scripts/check.sh --resilience`` runs the same
scenarios across more seeds from the command line.
"""

import pytest

from repro.resilience.chaos import kill_columnar_child, run_chaos

pytestmark = pytest.mark.faults


class TestChaosDifferential:
    @pytest.mark.slow
    @pytest.mark.timeout(180)
    def test_dict_backend_recovers_byte_identically(self):
        result = run_chaos(workload="tc", backend="dict", seed=0)
        assert result.ok, result.summary()
        # The scenario actually exercised recovery machinery.
        assert result.fault_kinds.get("kill", 0) >= 1
        assert result.skipped, "truncated checkpoint should have been skipped"
        assert result.restored_cycle < result.clean_cycles

    @pytest.mark.slow
    @pytest.mark.timeout(180)
    def test_columnar_backend_recovers_byte_identically(self):
        result = run_chaos(workload="tc", backend="columnar", seed=0)
        assert result.ok, result.summary()
        assert result.fault_kinds.get("kill", 0) >= 1
        # Seed 0's unlinked segment drives the full degradation ladder.
        assert result.fault_kinds.get("degrade", 0) >= 1

    @pytest.mark.slow
    @pytest.mark.timeout(120)
    def test_different_seed_still_recovers(self):
        result = run_chaos(workload="tc", backend="dict", seed=2)
        assert result.ok, result.summary()


class TestJanitorAfterKill:
    @pytest.mark.slow
    @pytest.mark.timeout(120)
    def test_sigkilled_owner_segments_are_reclaimed(self):
        names, removed = kill_columnar_child()
        assert names, "child should have reported its segments"
        assert set(names) <= set(removed)
