"""Shared-memory janitor: reclaim orphans, never touch live segments.

The sweep runs against a temporary directory standing in for /dev/shm,
with fabricated segment names — no real shared memory involved, so these
tests are fast and hermetic. The one live-process fact used is our own
pid (alive) versus a freshly reaped child pid (dead).
"""

import os
import subprocess
import time

import pytest

from repro.obs.flightrec import FLIGHT_PREFIX
from repro.resilience.janitor import DEFAULT_PREFIXES, JanitorReport, sweep_orphans
from repro.wm.columnar import SEGMENT_PREFIX, parse_owner_pid


def dead_pid():
    """A pid that existed a moment ago and is certainly gone now."""
    proc = subprocess.Popen(["true"])
    proc.wait()
    return proc.pid


def seg_name(pid):
    return f"{SEGMENT_PREFIX}{pid:08x}p0011aabbj0000"


def touch(shm_dir, name, age=0.0):
    path = os.path.join(str(shm_dir), name)
    with open(path, "w") as fh:
        fh.write("x")
    if age:
        past = time.time() - age
        os.utime(path, (past, past))
    return path


class TestParseOwnerPid:
    def test_new_format_roundtrips(self):
        assert parse_owner_pid(seg_name(0x1234)) == 0x1234

    @pytest.mark.parametrize(
        "name",
        [
            "pwm0011aabbj0000",  # legacy: kind letter where 'p' would be
            "pwm0011aabbh0000",
            "pwm0011aabbc0000",
            "pwmshort",
            "pwmzzzzzzzzp0000",  # not hex
            "other00000001p00",  # wrong prefix
        ],
    )
    def test_legacy_and_foreign_names_return_none(self, name):
        assert parse_owner_pid(name) is None


class TestSweep:
    def test_dead_owner_removed_live_owner_kept(self, tmp_path):
        dead = seg_name(dead_pid())
        live = seg_name(os.getpid())
        touch(tmp_path, dead)
        touch(tmp_path, live)
        report = sweep_orphans(shm_dir=str(tmp_path))
        assert report.removed == [dead]
        assert not os.path.exists(tmp_path / dead)
        assert os.path.exists(tmp_path / live)
        assert (live, f"owner pid {os.getpid()} is alive") in report.kept

    def test_legacy_young_segment_kept(self, tmp_path):
        name = "pwm0011aabbj0000"
        touch(tmp_path, name)  # just created
        report = sweep_orphans(shm_dir=str(tmp_path), min_age=60.0)
        assert report.removed == []
        assert os.path.exists(tmp_path / name)
        assert any(n == name and "old" in r for n, r in report.kept)

    def test_legacy_old_unmapped_segment_removed(self, tmp_path):
        name = "pwm0011aabbj0000"
        touch(tmp_path, name, age=120.0)
        report = sweep_orphans(shm_dir=str(tmp_path), min_age=1.0)
        assert report.removed == [name]
        assert not os.path.exists(tmp_path / name)

    def test_foreign_names_untouched(self, tmp_path):
        touch(tmp_path, "psm_someone_elses")
        touch(tmp_path, "unrelated", age=120.0)
        report = sweep_orphans(shm_dir=str(tmp_path))
        assert report.removed == []
        assert report.kept == []
        assert sorted(os.listdir(tmp_path)) == ["psm_someone_elses", "unrelated"]

    def test_dry_run_reports_without_unlinking(self, tmp_path):
        dead = seg_name(dead_pid())
        touch(tmp_path, dead)
        report = sweep_orphans(shm_dir=str(tmp_path), dry_run=True)
        assert report.removed == [dead]
        assert report.dry_run
        assert os.path.exists(tmp_path / dead)
        assert "would remove 1" in str(report)

    def test_missing_shm_dir_is_a_noop(self, tmp_path):
        report = sweep_orphans(shm_dir=str(tmp_path / "nope"))
        assert report.removed == []
        assert report.kept == []

    def test_report_str_counts(self):
        report = JanitorReport(removed=["a", "b"], kept=[("c", "why")])
        assert "removed 2" in str(report)
        assert "kept 1" in str(report)


def flight_name(pid):
    return f"{FLIGHT_PREFIX}{pid:08x}p0011aabb"


class TestFlightRecorderSegments:
    """Orphaned ``pfr*`` flight-recorder rings are reclaimed by the same
    sweep that handles columnar WM segments (DEFAULT_PREFIXES covers both
    families)."""

    def test_default_prefixes_cover_both_families(self):
        assert SEGMENT_PREFIX in DEFAULT_PREFIXES
        assert FLIGHT_PREFIX in DEFAULT_PREFIXES

    def test_orphaned_flight_ring_removed(self, tmp_path):
        dead = flight_name(dead_pid())
        touch(tmp_path, dead)
        report = sweep_orphans(shm_dir=str(tmp_path))
        assert report.removed == [dead]
        assert not os.path.exists(tmp_path / dead)

    def test_live_owner_flight_ring_kept(self, tmp_path):
        live = flight_name(os.getpid())
        touch(tmp_path, live)
        report = sweep_orphans(shm_dir=str(tmp_path))
        assert report.removed == []
        assert os.path.exists(tmp_path / live)
        assert (live, f"owner pid {os.getpid()} is alive") in report.kept

    def test_mixed_families_one_sweep(self, tmp_path):
        gone = dead_pid()
        dead_wm = seg_name(gone)
        dead_fr = flight_name(gone)
        live_fr = flight_name(os.getpid())
        for name in (dead_wm, dead_fr, live_fr):
            touch(tmp_path, name)
        report = sweep_orphans(shm_dir=str(tmp_path))
        assert sorted(report.removed) == sorted([dead_wm, dead_fr])
        assert os.path.exists(tmp_path / live_fr)

    def test_single_prefix_opt_out_skips_flight_rings(self, tmp_path):
        dead_fr = flight_name(dead_pid())
        touch(tmp_path, dead_fr)
        report = sweep_orphans(shm_dir=str(tmp_path), prefix=SEGMENT_PREFIX)
        assert report.removed == []
        assert os.path.exists(tmp_path / dead_fr)

    def test_real_orphan_from_sigkilled_recorder(self):
        """End to end against real /dev/shm: a child process creates a
        recorder ring and is SIGKILLed (no cleanup); the sweep reclaims
        the segment because its embedded owner pid is dead."""
        import sys

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        code = (
            "import os, signal\n"
            "from repro.obs.flightrec import FlightRing\n"
            "ring = FlightRing(capacity=16, shared=True)\n"
            "if ring.name is None:\n"
            "    raise SystemExit(3)\n"
            "print(ring.name, flush=True)\n"
            "os.kill(os.getpid(), signal.SIGKILL)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", code],
            stdout=subprocess.PIPE,
            env={**os.environ, "PYTHONPATH": "src"},
            text=True,
        )
        name = proc.stdout.readline().strip()
        proc.wait()
        if proc.returncode == 3:
            pytest.skip("child could not create a shared ring")
        assert name.startswith(FLIGHT_PREFIX)
        assert os.path.exists(f"/dev/shm/{name}")
        report = sweep_orphans()
        assert name in report.removed
        assert not os.path.exists(f"/dev/shm/{name}")
