"""SiteSupervisor policy unit tests (pure state machine, no processes)."""

import pytest

from repro.resilience.supervisor import (
    FULL_LADDER,
    SiteSupervisor,
    SupervisorPolicy,
)


def sup(**kw):
    policy = SupervisorPolicy(**kw)
    return SiteSupervisor(policy, sites=[0, 1])


class TestPolicyValidation:
    def test_default_is_legacy(self):
        p = SupervisorPolicy()
        assert p.ladder == ("process", "serial")
        assert p.backoff_base == 0.0
        assert p.heartbeat_every == 0
        assert p.breaker_failures is None
        assert p.cooldown_cycles == 0

    @pytest.mark.parametrize(
        "ladder",
        [
            (),
            ("process",),
            ("serial", "process"),
            ("threaded", "serial"),
            ("process", "serial", "threaded"),  # wrong order
            ("process", "serial", "serial"),  # repeat
            ("process", "warp"),  # unknown rung
        ],
    )
    def test_bad_ladders_rejected(self, ladder):
        with pytest.raises(ValueError):
            SupervisorPolicy(ladder=ladder)

    def test_full_ladder_accepted(self):
        assert SupervisorPolicy(ladder=FULL_LADDER).ladder == FULL_LADDER

    @pytest.mark.parametrize(
        "kw",
        [
            {"backoff_base": -1},
            {"backoff_cap": 0},
            {"backoff_jitter": -0.1},
            {"heartbeat_every": -1},
            {"heartbeat_timeout": 0},
            {"breaker_failures": 0},
            {"breaker_window": 0},
            {"cooldown_cycles": -1},
            {"cooldown_cap": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kw):
        with pytest.raises(ValueError):
            SupervisorPolicy(**kw)


class TestLegacyDecisions:
    """The default policy must reproduce the pool's historical behaviour."""

    def test_respawn_immediately_with_budget(self):
        s = sup()
        d = s.on_failure(0, attempts=0, budget_left=True, budget_limit=8)
        assert d.action == "respawn"
        assert d.backoff == 0.0

    def test_budget_exhausted_reason_string(self):
        s = sup()
        d = s.on_failure(0, attempts=0, budget_left=False, budget_limit=8)
        assert d.action == "demote"
        assert d.reason == "respawn budget (8) exhausted"
        assert not d.breaker_tripped

    def test_three_attempts_reason_string(self):
        s = sup()
        d = s.on_failure(0, attempts=3, budget_left=True, budget_limit=None)
        assert d.action == "demote"
        assert d.reason == "3 consecutive respawns failed in one cycle"

    def test_budget_outranks_attempts(self):
        s = sup()
        d = s.on_failure(0, attempts=3, budget_left=False, budget_limit=2)
        assert "budget" in d.reason

    def test_no_promotions_ever(self):
        s = sup()
        s.begin_cycle(1)
        s.on_failure(0, attempts=0, budget_left=False, budget_limit=0)
        assert s.note_demotion(0) == "serial"
        for cycle in range(2, 100):
            assert s.begin_cycle(cycle) == []


class TestBackoff:
    def test_doubles_and_caps(self):
        s = sup(backoff_base=0.1, backoff_cap=0.5, backoff_jitter=0.0)
        delays = [
            s.on_failure(0, 0, True, None).backoff for _ in range(5)
        ]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_success_resets_the_doubling(self):
        s = sup(backoff_base=0.1, backoff_jitter=0.0)
        s.on_failure(0, 0, True, None)
        s.on_failure(0, 0, True, None)
        s.on_success(0)
        assert s.on_failure(0, 0, True, None).backoff == pytest.approx(0.1)

    def test_jitter_is_seed_deterministic(self):
        a = sup(backoff_base=0.1, backoff_jitter=0.5, seed=7)
        b = sup(backoff_base=0.1, backoff_jitter=0.5, seed=7)
        c = sup(backoff_base=0.1, backoff_jitter=0.5, seed=8)
        da = [a.on_failure(0, 0, True, None).backoff for _ in range(4)]
        db = [b.on_failure(0, 0, True, None).backoff for _ in range(4)]
        dc = [c.on_failure(0, 0, True, None).backoff for _ in range(4)]
        assert da == db
        assert da != dc
        # jitter only inflates: 1 <= factor <= 1.5
        assert all(0.1 * 2 ** i <= d <= 0.15 * 2 ** i for i, d in enumerate(da))


class TestBreaker:
    def test_trips_after_n_failures_in_window(self):
        s = sup(breaker_failures=3, breaker_window=8)
        s.begin_cycle(1)
        assert s.on_failure(0, 0, True, None).action == "respawn"
        s.begin_cycle(2)
        assert s.on_failure(0, 0, True, None).action == "respawn"
        s.begin_cycle(3)
        d = s.on_failure(0, 0, True, None)
        assert d.action == "demote"
        assert d.breaker_tripped
        assert "circuit breaker" in d.reason

    def test_old_failures_age_out_of_window(self):
        s = sup(breaker_failures=2, breaker_window=4)
        s.begin_cycle(1)
        s.on_failure(0, 0, True, None)
        s.begin_cycle(10)  # cycle 1 is far outside the window now
        assert s.on_failure(0, 0, True, None).action == "respawn"

    def test_sites_are_independent(self):
        s = sup(breaker_failures=2, breaker_window=8)
        s.begin_cycle(1)
        s.on_failure(0, 0, True, None)
        s.begin_cycle(2)
        assert s.on_failure(1, 0, True, None).action == "respawn"

    def test_success_closes_breaker_only_at_process_rung(self):
        s = sup(ladder=FULL_LADDER, cooldown_cycles=1)
        s.begin_cycle(1)
        s.note_demotion(0)
        s.note_demotion(0)  # down to serial
        assert s.breaker_open(0)
        assert s.on_success(0) is False  # still demoted: stays open
        assert s.breaker_open(0)
        s.note_promotion(0)  # serial -> threaded, still below process
        assert s.on_success(0) is False
        s.note_promotion(0)  # back at process
        assert s.on_success(0) is True  # closes exactly once
        assert not s.breaker_open(0)
        assert s.on_success(0) is False


class TestLadderAndCooldown:
    def test_demotion_walks_the_ladder_and_clamps(self):
        s = sup(ladder=FULL_LADDER)
        assert s.mode(0) == "process"
        assert s.note_demotion(0) == "threaded"
        assert s.note_demotion(0) == "serial"
        assert s.note_demotion(0) == "serial"  # clamped at the bottom
        assert s.rung(0) == 2

    def test_promotion_due_after_cooldown(self):
        s = sup(ladder=FULL_LADDER, cooldown_cycles=3)
        s.begin_cycle(5)
        s.note_demotion(0)
        assert s.begin_cycle(7) == []
        assert s.begin_cycle(8) == [0]  # 5 + 3
        s.note_promotion(0)
        assert s.mode(0) == "process"
        assert s.begin_cycle(20) == []  # nothing left to promote

    def test_cooldown_doubles_per_trip(self):
        s = sup(ladder=FULL_LADDER, cooldown_cycles=2, cooldown_cap=16)
        s.begin_cycle(10)
        s.note_demotion(0)  # trip 1: cool-down 2 -> due at 12
        assert s.begin_cycle(12) == [0]
        s.note_promotion(0)
        s.begin_cycle(13)
        s.note_demotion(0)  # trip 2: cool-down 4 -> due at 17
        assert s.begin_cycle(16) == []
        assert s.begin_cycle(17) == [0]

    def test_cooldown_capped(self):
        s = sup(ladder=FULL_LADDER, cooldown_cycles=4, cooldown_cap=8)
        s.begin_cycle(0)
        for _ in range(6):  # many trips: 4, 8, 8, 8...
            s.note_demotion(0)
        assert s.begin_cycle(7) == []
        assert s.begin_cycle(8) == [0]

    def test_cancel_promotion(self):
        s = sup(ladder=FULL_LADDER, cooldown_cycles=1)
        s.begin_cycle(1)
        s.note_demotion(0)
        s.cancel_promotion(0)
        assert s.begin_cycle(50) == []

    def test_multi_rung_climb_reschedules(self):
        s = sup(ladder=FULL_LADDER, cooldown_cycles=2)
        s.begin_cycle(0)
        s.note_demotion(0)
        s.note_demotion(0)  # down to serial, 2 trips
        assert s.mode(0) == "serial"
        due_at = next(c for c in range(1, 50) if s.begin_cycle(c) == [0])
        s.note_promotion(0)
        assert s.mode(0) == "threaded"
        # Still below process: another promotion must be scheduled.
        assert any(s.begin_cycle(c) == [0] for c in range(due_at + 1, due_at + 40))
