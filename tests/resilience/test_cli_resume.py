"""CLI resume robustness: corrupt checkpoints fail typed, stores fall back.

Satellite coverage for the ``--resume`` path: a missing, truncated, or
digest-flipped checkpoint must exit 1 with an error naming the file —
never a raw traceback — and a rotating store directory must resume from
the newest checkpoint that verifies, warning about what it skipped.
"""

import os
import subprocess

import pytest

from repro.cli import main
from repro.resilience.checkpoint import write_envelope
from repro.wm.columnar import SEGMENT_PREFIX

COUNTER = """
(literalize count value)
(literalize audit value)
(p bump
    (count ^value {<v> < 10})
    -->
    (modify 1 ^value (compute <v> + 1))
    (make audit ^value <v>))
"""


@pytest.fixture
def counter_file(tmp_path):
    path = tmp_path / "counter.pl"
    path.write_text(COUNTER)
    return str(path)


@pytest.fixture
def counter_facts(tmp_path):
    path = tmp_path / "counter-facts.pl"
    path.write_text("(count ^value 0)\n")
    return str(path)


def write_checkpoint(counter_file, counter_facts, ckpt, capsys):
    rc = main(["run", counter_file, "--facts", counter_facts,
               "--checkpoint-every", "2", "--checkpoint", ckpt,
               "--max-cycles", "4"])
    assert rc == 1  # cycle limit: the salvage checkpoint is written
    capsys.readouterr()


class TestResumeFailures:
    def test_missing_checkpoint_exits_1_naming_path(self, counter_file, capsys):
        missing = counter_file + ".nope"
        rc = main(["run", counter_file, "--resume", missing])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert missing in err

    def test_truncated_checkpoint_exits_1(
        self, counter_file, counter_facts, tmp_path, capsys
    ):
        ckpt = str(tmp_path / "torn.ckpt")
        write_checkpoint(counter_file, counter_facts, ckpt, capsys)
        size = os.path.getsize(ckpt)
        with open(ckpt, "r+b") as fh:
            fh.truncate(size // 2)
        rc = main(["run", counter_file, "--resume", ckpt])
        assert rc == 1
        err = capsys.readouterr().err
        assert "corrupt checkpoint" in err
        assert ckpt in err

    def test_digest_mismatch_exits_1(
        self, counter_file, counter_facts, tmp_path, capsys
    ):
        ckpt = str(tmp_path / "flip.ckpt")
        write_checkpoint(counter_file, counter_facts, ckpt, capsys)
        blob = bytearray(open(ckpt, "rb").read())
        blob[-2] ^= 0xFF
        with open(ckpt, "wb") as fh:
            fh.write(blob)
        rc = main(["run", counter_file, "--resume", ckpt])
        assert rc == 1
        err = capsys.readouterr().err
        assert "corrupt checkpoint" in err
        assert "digest" in err

    def test_empty_store_dir_exits_1(self, counter_file, tmp_path, capsys):
        store = tmp_path / "store"
        store.mkdir()
        rc = main(["run", counter_file, "--resume", str(store)])
        assert rc == 1
        assert "no full checkpoint" in capsys.readouterr().err

    def test_delta_file_alone_exits_1(self, counter_file, tmp_path, capsys):
        bare = str(tmp_path / "bare.delta")
        write_envelope(bare, {"base_cycle": 1}, kind="delta")
        rc = main(["run", counter_file, "--resume", bare])
        assert rc == 1
        assert "base snapshot" in capsys.readouterr().err


class TestStoreResume:
    def run_store(self, counter_file, counter_facts, store, capsys):
        rc = main(["run", counter_file, "--facts", counter_facts,
                   "--checkpoint-every", "1", "--checkpoint", store,
                   "--checkpoint-keep", "3", "--checkpoint-full-every", "2",
                   "--max-cycles", "6"])
        assert rc == 1
        capsys.readouterr()

    def test_store_resume_matches_straight_run(
        self, counter_file, counter_facts, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        self.run_store(counter_file, counter_facts, store, capsys)
        names = sorted(os.listdir(store))
        assert any(n.endswith(".full") for n in names)
        assert any(n.endswith(".delta") for n in names)
        rc = main(["run", counter_file, "--resume", store,
                   "--dump-wm", str(tmp_path / "resumed.wm")])
        assert rc == 0
        assert "skipped" not in capsys.readouterr().err
        rc = main(["run", counter_file, "--facts", counter_facts,
                   "--dump-wm", str(tmp_path / "straight.wm")])
        assert rc == 0
        resumed = (tmp_path / "resumed.wm").read_text()
        straight = (tmp_path / "straight.wm").read_text()
        assert resumed == straight

    def test_corrupt_newest_warns_and_falls_back(
        self, counter_file, counter_facts, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        self.run_store(counter_file, counter_facts, store, capsys)
        newest = sorted(os.listdir(store))[-1]
        victim = os.path.join(store, newest)
        with open(victim, "r+b") as fh:
            fh.truncate(os.path.getsize(victim) // 2)
        rc = main(["run", counter_file, "--resume", store,
                   "--dump-wm", str(tmp_path / "resumed.wm")])
        assert rc == 0
        err = capsys.readouterr().err
        assert f"warning: skipped corrupt checkpoint {victim}" in err
        rc = main(["run", counter_file, "--facts", counter_facts,
                   "--dump-wm", str(tmp_path / "straight.wm")])
        assert rc == 0
        assert (tmp_path / "resumed.wm").read_text() == (
            tmp_path / "straight.wm"
        ).read_text()


class TestStoreFlagValidation:
    def test_keep_requires_checkpoint_every(self, counter_file, capsys):
        rc = main(["run", counter_file, "--checkpoint-keep", "2"])
        assert rc == 2
        assert "requires --checkpoint-every" in capsys.readouterr().err

    def test_keep_rejects_nonpositive(self, counter_file, capsys):
        rc = main(["run", counter_file, "--checkpoint-every", "1",
                   "--checkpoint-keep", "0"])
        assert rc == 2
        assert "--checkpoint-keep must be >= 1" in capsys.readouterr().err

    def test_full_every_rejects_nonpositive(self, counter_file, capsys):
        rc = main(["run", counter_file, "--checkpoint-every", "1",
                   "--checkpoint-keep", "2", "--checkpoint-full-every", "0"])
        assert rc == 2
        assert "--checkpoint-full-every must be >= 1" in capsys.readouterr().err


class TestJanitorCommand:
    def seg_for_dead_pid(self, tmp_path):
        proc = subprocess.Popen(["true"])
        proc.wait()
        name = f"{SEGMENT_PREFIX}{proc.pid:08x}p0011aabbj0000"
        (tmp_path / name).write_text("x")
        return name

    def test_dry_run_reports_to_stdout(self, tmp_path, capsys):
        name = self.seg_for_dead_pid(tmp_path)
        rc = main(["janitor", "--shm-dir", str(tmp_path), "--dry-run"])
        assert rc == 0
        out, err = capsys.readouterr()
        assert f"would remove {name}" in out
        assert "would remove 1 orphaned segment(s)" in err
        assert (tmp_path / name).exists()

    def test_sweep_removes_and_verbose_explains_kept(self, tmp_path, capsys):
        dead = self.seg_for_dead_pid(tmp_path)
        live = f"{SEGMENT_PREFIX}{os.getpid():08x}p0011aabbj0000"
        (tmp_path / live).write_text("x")
        rc = main(["janitor", "--shm-dir", str(tmp_path), "--verbose"])
        assert rc == 0
        out, err = capsys.readouterr()
        assert f"removed {dead}" in out
        assert not (tmp_path / dead).exists()
        assert (tmp_path / live).exists()
        assert f"owner pid {os.getpid()} is alive" in err
