"""Checkpoint envelope: atomicity, framing, digest verification.

The property that matters: a ``kill -9`` at ANY byte of a checkpoint write
never leaves a file that loads as wrong state — it either loads exactly, or
raises the typed :class:`CheckpointCorruptError` (so a store can fall back
to the previous checkpoint). The truncation test sweeps every prefix length
of a real envelope to prove it.
"""

import json
import os

import pytest

from repro.errors import CheckpointCorruptError, ExecutionError, ReproError
from repro.resilience.checkpoint import (
    MAGIC,
    is_envelope,
    load_checkpoint_file,
    read_envelope,
    write_envelope,
)


STATE = {
    "version": 1,
    "cycle": 7,
    "halted": False,
    "redaction_quiescent": False,
    "wm": {"records": [["edge", {"src": "a", "dst": "b"}, 1]], "next_timestamp": 2},
    "fired": [["r1", [1]]],
    "output": ["hello"],
    "delta_log": [[[1], [["edge", {"src": "a", "dst": "b"}, 1]]]],
}


class TestRoundtrip:
    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "ck.full")
        write_envelope(path, STATE, kind="full")
        kind, payload = read_envelope(path)
        assert kind == "full"
        assert payload == STATE

    def test_delta_kind_roundtrips(self, tmp_path):
        path = str(tmp_path / "ck.delta")
        write_envelope(path, {"base_cycle": 3}, kind="delta")
        kind, payload = read_envelope(path)
        assert kind == "delta"
        assert payload == {"base_cycle": 3}

    def test_is_envelope(self, tmp_path):
        env = str(tmp_path / "env")
        raw = str(tmp_path / "raw.json")
        write_envelope(env, STATE, kind="full")
        with open(raw, "w") as fh:
            json.dump(STATE, fh)
        assert is_envelope(env)
        assert not is_envelope(raw)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "ck.full")
        write_envelope(path, STATE, kind="full")
        assert os.listdir(tmp_path) == ["ck.full"]


class TestCorruptionDetection:
    def test_every_truncation_point_is_detected(self, tmp_path):
        """The kill -9 property: any prefix of a checkpoint write either
        fails typed or (full length) loads exactly — never wrong state,
        never a raw json/KeyError leak."""
        path = str(tmp_path / "ck.full")
        write_envelope(path, STATE, kind="full")
        blob = open(path, "rb").read()
        torn = str(tmp_path / "torn")
        for cut in range(len(blob)):
            with open(torn, "wb") as fh:
                fh.write(blob[:cut])
            with pytest.raises(CheckpointCorruptError):
                read_envelope(torn)
        # the full write still reads back exactly
        assert read_envelope(path)[1] == STATE

    def test_flipped_payload_byte_fails_digest(self, tmp_path):
        path = str(tmp_path / "ck.full")
        write_envelope(path, STATE, kind="full")
        blob = bytearray(open(path, "rb").read())
        blob[-2] ^= 0xFF  # inside the JSON payload
        with open(path, "wb") as fh:
            fh.write(blob)
        with pytest.raises(CheckpointCorruptError) as exc:
            read_envelope(path)
        assert "digest" in str(exc.value)

    def test_trailing_garbage_is_detected(self, tmp_path):
        path = str(tmp_path / "ck.full")
        write_envelope(path, STATE, kind="full")
        with open(path, "ab") as fh:
            fh.write(b"junk")
        with pytest.raises(CheckpointCorruptError):
            read_envelope(path)

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "notckpt")
        with open(path, "wb") as fh:
            fh.write(b"X" * len(MAGIC) + b"rest")
        with pytest.raises(CheckpointCorruptError):
            read_envelope(path)

    def test_error_is_typed_and_names_path(self, tmp_path):
        path = str(tmp_path / "ck.full")
        with open(path, "wb") as fh:
            fh.write(MAGIC + b"{not json\n")
        with pytest.raises(CheckpointCorruptError) as exc:
            read_envelope(path)
        err = exc.value
        assert isinstance(err, ExecutionError)
        assert isinstance(err, ReproError)
        assert err.path == path
        assert path in str(err)


class TestLoadCheckpointFile:
    def test_legacy_raw_json_still_loads(self, tmp_path):
        path = str(tmp_path / "legacy.ckpt")
        with open(path, "w") as fh:
            json.dump(STATE, fh)
        assert load_checkpoint_file(path) == STATE

    def test_legacy_truncated_json_raises_typed(self, tmp_path):
        path = str(tmp_path / "legacy.ckpt")
        with open(path, "w") as fh:
            fh.write(json.dumps(STATE)[:25])
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint_file(path)

    def test_envelope_loads(self, tmp_path):
        path = str(tmp_path / "ck.full")
        write_envelope(path, STATE, kind="full")
        assert load_checkpoint_file(path) == STATE

    def test_bare_delta_file_is_rejected(self, tmp_path):
        path = str(tmp_path / "ck.delta")
        write_envelope(path, {"base_cycle": 1}, kind="delta")
        with pytest.raises(ExecutionError):
            load_checkpoint_file(path)
