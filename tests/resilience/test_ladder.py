"""Supervised degradation ladder on a real ProcessMatchPool.

Acceptance criterion: under a *scripted* fault plan and a fixed policy,
the ladder's behaviour is observable as an exact fault-event sequence —
not just "some recovery happened". Every cycle's conflict set is also
checked byte-identical against the serial rete matcher: the ladder trades
isolation for survival, never correctness.
"""

import os
import signal

import pytest

from repro.faults import FaultPlan, WorkerKill
from repro.lang.parser import parse_program
from repro.match.interface import create_matcher
from repro.parallel.process import ProcessMatchPool
from repro.resilience.supervisor import FULL_LADDER, SupervisorPolicy
from repro.wm.memory import WorkingMemory

pytestmark = pytest.mark.faults

SRC = """
(p j0 (a0 ^k <k>) (b0 ^k <k>) --> (halt))
(p j1 (a1 ^k <k>) (b1 ^k <k>) --> (halt))
(p j2 (a2 ^k <k>) (b2 ^k <k>) --> (halt))
(p neg (a0 ^k <k>) -(b1 ^k <k>) --> (halt))
"""


def load(wm, n=6):
    for r in range(3):
        for i in range(n):
            wm.make(f"a{r}", k=i % 3)
            wm.make(f"b{r}", k=i % 3)


def keys(insts):
    return sorted(i.key for i in insts)


def rete_keys(prog, wm):
    return keys(create_matcher("rete", prog.rules, wm).instantiations())


class TestScriptedLadder:
    @pytest.mark.slow
    @pytest.mark.timeout(60)
    def test_exact_event_sequence_under_scripted_faults(self):
        """Two kills on site 1: the first respawns (after a recorded
        backoff), the second trips the breaker and demotes to the
        ``threaded`` rung; two quiet cycles later the cool-down elapses
        and the site is promoted back, closing the breaker on its first
        healthy reply."""
        prog = parse_program(SRC)
        wm = WorkingMemory()
        load(wm)
        plan = FaultPlan(
            kills=(WorkerKill(cycle=1, site=1), WorkerKill(cycle=2, site=1))
        )
        policy = SupervisorPolicy(
            ladder=FULL_LADDER,
            backoff_base=0.01,
            backoff_jitter=0.0,
            breaker_failures=2,
            breaker_window=8,
            cooldown_cycles=2,
            seed=0,
        )
        with ProcessMatchPool(
            prog.rules, wm, 2, fault_plan=plan, supervisor=policy
        ) as pool:
            expected = rete_keys(prog, wm)
            for _cycle in range(1, 6):
                assert keys(pool.conflict_set()) == expected
            events = pool.drain_fault_events()
            assert [e.kind for e in events] == [
                "kill",           # cycle 1: injected SIGKILL
                "backoff",        # 0.01 s seeded delay before the respawn
                "respawn",
                "kill",           # cycle 2: second failure in the window
                "breaker-open",
                "degrade",        # -> threaded rung
                "promote",        # cycle 4: cool-down (2 cycles) elapsed
                "breaker-close",  # first healthy reply at full isolation
            ]
            assert all(e.site == 1 for e in events)
            by_kind = {e.kind: e for e in events}
            assert "threaded" not in by_kind["promote"].detail
            assert "parent thread" in by_kind["degrade"].detail
            assert "circuit breaker" in by_kind["breaker-open"].detail
            # Two worker spawns were charged to the site: the cycle-1
            # respawn and the re-promotion.
            assert pool.site_respawns == {1: 2}
            assert pool.degraded_sites == set()

    @pytest.mark.slow
    @pytest.mark.timeout(60)
    def test_wm_changes_during_degradation_stay_correct(self):
        """The demoted rungs must track live WM changes (the in-parent
        matcher reads the parent store directly)."""
        prog = parse_program(SRC)
        wm = WorkingMemory()
        load(wm)
        plan = FaultPlan(kills=(WorkerKill(cycle=1, site=0),))
        policy = SupervisorPolicy(
            ladder=FULL_LADDER, breaker_failures=1, cooldown_cycles=3
        )
        with ProcessMatchPool(
            prog.rules, wm, 2, fault_plan=plan, supervisor=policy
        ) as pool:
            assert keys(pool.conflict_set()) == rete_keys(prog, wm)
            assert pool.degraded_sites == {0}
            wm.make("a0", k=0)  # new matches while threaded
            assert keys(pool.conflict_set()) == rete_keys(prog, wm)
            wm.make("b1", k=2)  # negative-condition churn
            assert keys(pool.conflict_set()) == rete_keys(prog, wm)
            assert keys(pool.conflict_set()) == rete_keys(prog, wm)  # promoted
            assert pool.degraded_sites == set()
            kinds = [e.kind for e in pool.drain_fault_events()]
            assert kinds == [
                "kill", "breaker-open", "degrade", "promote", "breaker-close",
            ]


class TestHeartbeat:
    @pytest.mark.slow
    @pytest.mark.timeout(90)
    @pytest.mark.skipif(not hasattr(signal, "SIGSTOP"), reason="needs SIGSTOP")
    def test_heartbeat_miss_precedes_recovery(self):
        """A SIGSTOP'd worker misses its pre-dispatch heartbeat and is
        failed over in heartbeat_timeout — the pool never posts the match
        request to it, so the (long) reply deadline is never burned."""
        prog = parse_program(SRC)
        wm = WorkingMemory()
        load(wm)
        policy = SupervisorPolicy(heartbeat_every=1, heartbeat_timeout=0.5)
        with ProcessMatchPool(
            prog.rules, wm, 2, supervisor=policy
        ) as pool:
            expected = rete_keys(prog, wm)
            assert keys(pool.conflict_set()) == expected  # heartbeats pass
            victim = pool._procs[1]
            os.kill(victim.pid, signal.SIGSTOP)
            assert keys(pool.conflict_set()) == expected
            kinds = [e.kind for e in pool.drain_fault_events()]
            assert kinds == ["heartbeat-miss", "respawn"]
            assert pool.site_respawns == {1: 1}
            assert keys(pool.conflict_set()) == expected  # healthy again


class TestCloseRobustness:
    @pytest.mark.slow
    @pytest.mark.timeout(60)
    def test_close_after_sigkilled_workers_closes_every_conn(self):
        """Satellite: close() must close per-site connections even when
        the stop-send and join go wrong (workers already dead)."""
        prog = parse_program(SRC)
        wm = WorkingMemory()
        load(wm)
        pool = ProcessMatchPool(prog.rules, wm, 2)
        assert pool.conflict_set()
        conns = dict(pool._conns)
        for proc in pool._procs.values():
            proc.kill()
            proc.join()
        pool.close()
        for conn in conns.values():
            assert conn.closed
        pool.close()  # idempotent
