"""Per-rule profiler: folding registry series into the hot-rule table."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    RULE_CANDIDATES,
    RULE_EVAL_SECONDS,
    RULE_FIRINGS,
    RULE_MATCH_SECONDS,
    RULE_REDACTIONS,
    hot_rule_table,
    rule_profiles,
)


def _registry() -> MetricsRegistry:
    m = MetricsRegistry()
    # "hot" carries real match time split over two sites.
    m.inc(RULE_CANDIDATES, 40, rule="hot")
    m.inc(RULE_FIRINGS, 30, rule="hot")
    m.inc(RULE_REDACTIONS, 10, rule="hot")
    m.observe(RULE_MATCH_SECONDS, 0.5, rule="hot", site=0)
    m.observe(RULE_MATCH_SECONDS, 0.25, rule="hot", site=1)
    m.observe(RULE_EVAL_SECONDS, 0.1, rule="hot")
    # "cold" was matched by an incremental backend: no match attribution.
    m.inc(RULE_CANDIDATES, 5, rule="cold")
    m.inc(RULE_FIRINGS, 5, rule="cold")
    m.observe(RULE_EVAL_SECONDS, 0.01, rule="cold")
    return m


class TestRuleProfiles:
    def test_folding_and_ordering(self):
        profiles = rule_profiles(_registry())
        assert [p.rule for p in profiles] == ["hot", "cold"]
        hot, cold = profiles
        assert hot.candidates == 40
        assert hot.fired == 30
        assert hot.redacted == 10
        assert abs(hot.match_seconds - 0.75) < 1e-9
        assert sorted(hot.sites) == ["0", "1"]
        assert abs(hot.total_seconds - 0.85) < 1e-9
        assert cold.match_seconds is None
        assert cold.total_seconds == cold.eval_seconds

    def test_candidates_break_time_ties(self):
        m = MetricsRegistry()
        m.inc(RULE_CANDIDATES, 1, rule="b")
        m.inc(RULE_CANDIDATES, 9, rule="a")
        assert [p.rule for p in rule_profiles(m)] == ["a", "b"]

    def test_empty_registry(self):
        assert rule_profiles(MetricsRegistry()) == []


class TestHotRuleTable:
    def test_render_includes_dash_for_unattributed_match(self):
        text = str(hot_rule_table(_registry()))
        lines = text.splitlines()
        assert any(l.lstrip().startswith("hot") for l in lines)
        cold_line = next(l for l in lines if "cold" in l)
        assert " - " in f" {cold_line} "  # match_ms column renders "-"

    def test_top_limits_rows(self):
        text = str(hot_rule_table(_registry(), top=1))
        assert "hot" in text
        assert "cold" not in text
