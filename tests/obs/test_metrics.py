"""Metrics registry: exact counts (threaded), merge, expositions."""

import json
import pickle
import threading

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MAX_OBSERVATIONS,
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
)


class TestBasics:
    def test_counter_gauge_histogram(self):
        m = MetricsRegistry()
        m.inc("requests_total")
        m.inc("requests_total", 2)
        m.set_gauge("wm_size", 10)
        m.set_gauge("wm_size", 7)
        for v in (0.1, 0.2, 0.3):
            m.observe("latency_seconds", v)

        assert m.counter_value("requests_total") == 3
        assert m.gauge_value("wm_size") == 7.0
        summary = m.histogram_summary("latency_seconds")
        assert summary["count"] == 3
        assert abs(summary["sum"] - 0.6) < 1e-9
        assert summary["min"] == 0.1 and summary["max"] == 0.3
        assert summary["p50"] == 0.2

    def test_labels_make_distinct_series(self):
        m = MetricsRegistry()
        m.inc("fired_total", rule="a")
        m.inc("fired_total", 5, rule="b")
        assert m.counter_value("fired_total", rule="a") == 1
        assert m.counter_value("fired_total", rule="b") == 5
        assert m.counter_value("fired_total") == 0
        series = m.series("fired_total")
        assert series[(("rule", "a"),)] == 1
        assert series[(("rule", "b"),)] == 5

    def test_label_order_is_canonical(self):
        m = MetricsRegistry()
        m.inc("x_total", rule="r", site=1)
        assert m.counter_value("x_total", site=1, rule="r") == 1

    def test_histogram_observation_cap_keeps_exact_count(self):
        m = MetricsRegistry()
        for i in range(MAX_OBSERVATIONS + 10):
            m.observe("big", float(i % 7))
        summary = m.histogram_summary("big")
        assert summary["count"] == MAX_OBSERVATIONS + 10


class TestMergeAcrossProcesses:
    def test_merge_is_exact_and_pickle_safe(self):
        parent = MetricsRegistry()
        parent.inc("fired_total", 3, rule="a")
        worker = MetricsRegistry()
        worker.inc("fired_total", 4, rule="a")
        worker.inc("fired_total", 1, rule="b")
        worker.set_gauge("wm_size", 42)
        worker.observe("match_seconds", 0.5, site=1)

        # The dump crosses a process boundary in real use.
        dumped = pickle.loads(pickle.dumps(worker.dump()))
        parent.merge(dumped)

        assert parent.counter_value("fired_total", rule="a") == 7
        assert parent.counter_value("fired_total", rule="b") == 1
        assert parent.gauge_value("wm_size") == 42
        assert parent.histogram_summary("match_seconds", site=1)["count"] == 1


class TestExposition:
    def test_snapshot_and_json_roundtrip(self, tmp_path):
        m = MetricsRegistry()
        m.inc("fired_total", 2, rule="a")
        m.set_gauge("wm_size", 5)
        m.observe("lat", 0.25)
        path = tmp_path / "metrics.json"
        m.write_json(str(path))
        doc = json.loads(path.read_text())
        assert doc["counters"]['fired_total{rule="a"}'] == 2
        assert doc["gauges"]["wm_size"] == 5
        assert doc["histograms"]["lat"]["count"] == 1

    def test_prometheus_exposition_shape(self):
        m = MetricsRegistry()
        m.inc("fired_total", 2, rule="a")
        m.set_gauge("wm_size", 5)
        m.observe("lat_seconds", 0.003)
        m.observe("lat_seconds", 2.0)
        text = m.to_prometheus()
        lines = text.splitlines()
        assert "# TYPE fired_total counter" in lines
        assert 'fired_total{rule="a"} 2' in lines
        assert "# TYPE wm_size gauge" in lines
        assert "# TYPE lat_seconds histogram" in lines
        assert 'lat_seconds_bucket{le="+Inf"} 2' in lines
        assert "lat_seconds_sum 2.003" in lines
        assert "lat_seconds_count 2" in lines
        # Buckets are cumulative and non-decreasing over the bounds.
        counts = [
            int(l.rsplit(" ", 1)[1])
            for l in lines
            if l.startswith('lat_seconds_bucket{le="')
        ]
        assert counts == sorted(counts)
        assert len(counts) == len(DEFAULT_BUCKETS) + 1
        # 0.003 <= 0.005 bound; 2.0 only lands in 5.0/10.0/+Inf.
        assert 'lat_seconds_bucket{le="0.005"} 1' in lines
        assert 'lat_seconds_bucket{le="5"} 2' in lines


class TestNullMetrics:
    def test_inert(self):
        null = NullMetrics()
        null.inc("x")
        null.set_gauge("y", 1)
        null.observe("z", 0.5)
        assert null.counter_value("x") == 0.0
        assert null.gauge_value("y") is None
        assert null.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert not NULL_METRICS.enabled


class TestThreadSafety:
    def test_eight_threads_hammering_counts_exactly(self):
        m = MetricsRegistry()
        n_threads, per_thread = 8, 5_000

        def work(tid: int) -> None:
            for i in range(per_thread):
                m.inc("hits_total")
                m.inc("hits_total", 1, thread=tid)
                m.observe("work_seconds", 0.001, thread=tid)
                m.set_gauge("last_i", i, thread=tid)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert m.counter_value("hits_total") == n_threads * per_thread
        for t in range(n_threads):
            assert m.counter_value("hits_total", thread=t) == per_thread
            assert m.histogram_summary("work_seconds", thread=t)["count"] == per_thread
            assert m.gauge_value("last_i", thread=t) == per_thread - 1
