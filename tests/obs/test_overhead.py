"""The observability overhead budget, measured.

Two claims, per workload (``tc`` and ``manners``):

- **disabled** observability (the NullTracer/NullMetrics defaults) costs
  nothing measurable — the no-op singletons are attribute loads and
  branch tests on the hot path;
- **enabled** full tracing + metrics stays within the 5% budget the
  tentpole promises (plus a small absolute floor so micro-runs with
  sub-millisecond cycle times don't fail on scheduler noise).

Timing comparisons are min-of-N on a shared-CI box, so the assertions
use the *minimum* over repetitions — the standard way to strip scheduler
interference from a lower-bounded measurement.
"""

import time

import pytest

from repro.core import ParulelEngine
from repro.obs import MetricsRegistry, Tracer
from repro.programs import REGISTRY

#: Relative budget (the acceptance criterion) plus an absolute slack
#: floor: on sub-100ms runs a single page fault outweighs 5%.
RELATIVE_BUDGET = 0.05
ABSOLUTE_SLACK = 0.050  # seconds

REPS = 3


def _run_once(workload_name: str, tracer=None, metrics=None) -> float:
    workload = REGISTRY[workload_name]()
    engine = ParulelEngine(workload.program, tracer=tracer, metrics=metrics)
    workload.setup(engine)
    t0 = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - t0
    assert workload.verify_ok(engine.wm)
    return elapsed


def _best(workload_name: str, enabled: bool) -> float:
    times = []
    for _ in range(REPS):
        tracer = Tracer() if enabled else None
        metrics = MetricsRegistry() if enabled else None
        times.append(_run_once(workload_name, tracer=tracer, metrics=metrics))
    return min(times)


@pytest.mark.slow
@pytest.mark.timeout(300)
@pytest.mark.parametrize("workload_name", ["tc", "manners"])
def test_enabled_overhead_within_budget(workload_name):
    baseline = _best(workload_name, enabled=False)
    enabled = _best(workload_name, enabled=True)
    budget = baseline * (1 + RELATIVE_BUDGET) + ABSOLUTE_SLACK
    assert enabled <= budget, (
        f"{workload_name}: observability-enabled best run {enabled:.4f}s "
        f"exceeds budget {budget:.4f}s (baseline {baseline:.4f}s)"
    )


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_disabled_defaults_add_no_measurable_work():
    """The null-object path does no observability work at all: a run with
    explicit None observability equals the default-constructed engine
    (same objects, so identical code paths — checked structurally, not
    by timing, which would be flaky)."""
    workload = REGISTRY["tc"]()
    engine = ParulelEngine(workload.program)
    from repro.obs.metrics import NULL_METRICS
    from repro.obs.trace import NULL_TRACER

    assert engine.tracer is NULL_TRACER
    assert engine.metrics is NULL_METRICS
    # Null span handles are shared singletons: the per-cycle disabled
    # cost is bounded by attribute loads, never allocation.
    assert engine.tracer.span("x") is engine.tracer.span("y")
