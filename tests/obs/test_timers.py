"""PhaseTimer thread-safety, nearest-rank percentiles, cycle summaries."""

import threading

import pytest

from repro.core import EngineConfig, ParulelEngine
from repro.lang.parser import parse_program
from repro.metrics.timers import PhaseTimer, percentile, summarize_cycles


class TestPhaseTimerThreadSafety:
    def test_concurrent_adds_lose_nothing(self):
        timer = PhaseTimer()
        n_threads, per_thread = 8, 10_000

        def work() -> None:
            for _ in range(per_thread):
                timer.add("phase", 0.001)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert timer.entries["phase"] == n_threads * per_thread
        expected = n_threads * per_thread * 0.001
        assert abs(timer.seconds["phase"] - expected) < expected * 1e-6

    def test_phase_context_manager_still_works(self):
        timer = PhaseTimer()
        with timer.phase("match"):
            pass
        assert timer.entries["match"] == 1
        assert timer.fraction("match") == 1.0
        timer.reset()
        assert not timer.seconds and not timer.entries


class TestPercentile:
    def test_nearest_rank(self):
        values = [10, 20, 30, 40, 50]
        assert percentile(values, 50) == 30
        assert percentile(values, 95) == 50
        assert percentile(values, 100) == 50
        assert percentile(values, 0) == 10
        assert percentile([7], 50) == 7.0

    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestSummarizeCycles:
    SRC = """
    (literalize seed n)
    (literalize out n)
    (p expand (seed ^n <n>) -(out ^n <n>) --> (make out ^n <n>) (write done <n>))
    """

    def test_summary_fields_and_types(self):
        engine = ParulelEngine(parse_program(self.SRC), EngineConfig())
        for i in range(5):
            engine.make("seed", {"n": i})
        result = engine.run(max_cycles=10)
        summary = summarize_cycles(engine.reports)
        assert summary["cycles"] == result.cycles
        assert summary["firings"] == result.firings
        assert isinstance(summary["firings"], int)
        assert isinstance(summary["mean_firing_set"], float)
        assert summary["p50_firing_set"] == 5.0
        assert summary["p95_firing_set"] == 5.0
        assert summary["writes"] == 5
        assert summary["fault_events"] == 0

    def test_empty_reports(self):
        summary = summarize_cycles([])
        assert summary["cycles"] == 0
        assert summary["p50_firing_set"] == 0.0
        assert summary["p95_firing_set"] == 0.0

    def test_percentiles_ignore_zero_firing_cycles(self):
        class R:  # minimal CycleReport stand-in
            def __init__(self, fired):
                self.fired = fired
                self.delta_removes = 0
                self.delta_makes = 0
                self.writes = []
                self.fault_events = []

                class Red:
                    redacted = 0
                    meta_cycles = 0

                self.redaction = Red()

        summary = summarize_cycles([R(4), R(0), R(8)])
        assert summary["p50_firing_set"] == 4.0
        assert summary["p95_firing_set"] == 8.0
        assert summary["max_firing_set"] == 8
        assert summary["mean_firing_set"] == 6.0
