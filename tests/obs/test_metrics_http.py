"""One-shot ``/metrics`` HTTP exposition (``parulel run --metrics-port``)."""

import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics_http import MetricsHTTPServer


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.inc("parulel_cycles_total")
    reg.set_gauge("parulel_site_skew_ratio", 1.25, site="0")
    return reg


@pytest.fixture
def server(registry):
    srv = MetricsHTTPServer(registry, port=0)
    yield srv
    srv.shutdown()


def scrape(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode()


class TestMetricsHTTP:
    def test_scrape_serves_prometheus_text(self, server):
        status, ctype, body = scrape(server.url)
        assert status == 200
        assert ctype.startswith("text/plain")
        assert "parulel_cycles_total 1" in body
        assert 'parulel_site_skew_ratio{site="0"} 1.25' in body

    def test_scrape_sees_live_registry(self, server, registry):
        registry.inc("parulel_cycles_total")
        _, _, body = scrape(server.url)
        assert "parulel_cycles_total 2" in body

    def test_non_metrics_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            scrape(f"http://{server.host}:{server.port}/other")
        assert excinfo.value.code == 404

    def test_root_path_aliases_metrics(self, server):
        status, _, body = scrape(f"http://{server.host}:{server.port}/")
        assert status == 200
        assert "parulel_cycles_total" in body

    def test_wait_for_scrape(self, server):
        assert not server.wait_for_scrape(timeout=0.01)
        scrape(server.url)
        assert server.wait_for_scrape(timeout=10)
        assert server.scrapes == 1

    def test_ephemeral_port_bound(self, server):
        assert server.port > 0
        assert str(server.port) in server.url
