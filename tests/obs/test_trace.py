"""Tracer unit tests: spans, lanes, ingestion, Chrome export validity."""

import json
import threading

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    validate_chrome_trace,
)


class TestRecording:
    def test_span_records_b_e_pair(self):
        tracer = Tracer()
        with tracer.span("match", lane="engine", cycle=1):
            pass
        events = tracer.events()
        assert [(ph, name, lane) for ph, name, lane, _ts, _a in events] == [
            ("B", "match", "engine"),
            ("E", "match", "engine"),
        ]
        assert events[0][4] == {"cycle": 1}
        assert events[1][3] >= events[0][3]

    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        phases = [e[0] for e in tracer.events()]
        names = [e[1] for e in tracer.events()]
        assert phases == ["B", "B", "E", "E"]
        assert names == ["outer", "inner", "inner", "outer"]

    def test_instant(self):
        tracer = Tracer()
        tracer.instant("kill", lane="worker-1", detail="injected")
        (event,) = tracer.events()
        assert event[0] == "i"
        assert event[2] == "worker-1"
        assert event[4] == {"detail": "injected"}

    def test_closed_spans_feed_the_phase_timer(self):
        tracer = Tracer()
        with tracer.span("match"):
            pass
        with tracer.span("match"):
            pass
        assert tracer.timer.entries["match"] == 2
        assert tracer.timer.seconds["match"] >= 0.0

    def test_lanes_in_first_seen_order_and_declare_lane(self):
        tracer = Tracer()
        tracer.declare_lane("site-0")
        tracer.declare_lane("site-1")
        tracer.instant("x", lane="network")
        tracer.instant("y", lane="site-0")
        assert tracer.lanes() == ["site-0", "site-1", "network"]


class TestIngestion:
    def test_ingest_rewrites_lane_and_preserves_args(self):
        worker = Tracer()
        with worker.span("match", lane="worker", rules=3):
            pass
        shipped = worker.drain_events()
        assert worker.events() == []

        parent = Tracer()
        parent.ingest(shipped, lane="worker-2")
        events = parent.events()
        assert {e[2] for e in events} == {"worker-2"}
        assert events[0][4] == {"rules": 3}
        # The ingested pair lands in the parent's aggregate timer too.
        assert parent.timer.entries["match"] == 1

    def test_ingest_keeps_original_lane_when_not_rewritten(self):
        worker = Tracer()
        worker.instant("kill", lane="site-3")
        parent = Tracer()
        parent.ingest(worker.drain_events())
        assert parent.lanes() == ["site-3"]


class TestChromeExport:
    def test_export_validates_and_names_lanes(self):
        tracer = Tracer()
        with tracer.span("run", lane="engine"):
            with tracer.span("match", lane="engine"):
                pass
        tracer.instant("kill", lane="worker-0")
        doc = tracer.to_chrome()
        validate_chrome_trace(doc)
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert set(thread_names.values()) == {"engine", "worker-0"}

    def test_tied_timestamps_become_strictly_increasing(self):
        # A frozen clock produces all-equal stamps; export must still
        # satisfy the strict per-lane ordering Perfetto expects.
        tracer = Tracer(clock=lambda: 1_000_000)
        for _ in range(5):
            with tracer.span("zero", lane="engine"):
                pass
        doc = tracer.to_chrome()
        validate_chrome_trace(doc)
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert all(b > a for a, b in zip(ts, ts[1:]))

    def test_write_chrome_and_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("match", lane="engine", cycle=1):
            pass
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        tracer.write_chrome(str(chrome))
        tracer.write_jsonl(str(jsonl))

        validate_chrome_trace(json.loads(chrome.read_text()))
        lines = [json.loads(l) for l in jsonl.read_text().splitlines()]
        assert [l["ph"] for l in lines] == ["B", "E"]
        assert lines[0]["lane"] == "engine"
        assert lines[0]["args"] == {"cycle": 1}


class TestValidation:
    def test_rejects_non_document(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})

    def test_rejects_unmatched_end(self):
        doc = {
            "traceEvents": [
                {"name": "x", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1}
            ]
        }
        with pytest.raises(ValueError, match="no open span"):
            validate_chrome_trace(doc)

    def test_rejects_mismatched_names(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
                {"name": "b", "ph": "E", "ts": 2.0, "pid": 1, "tid": 1},
            ]
        }
        with pytest.raises(ValueError, match="does not match"):
            validate_chrome_trace(doc)

    def test_rejects_unclosed_span(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1}
            ]
        }
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace(doc)

    def test_rejects_non_increasing_timestamps(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "i", "ts": 2.0, "pid": 1, "tid": 1},
                {"name": "b", "ph": "i", "ts": 2.0, "pid": 1, "tid": 1},
            ]
        }
        with pytest.raises(ValueError, match="strictly greater"):
            validate_chrome_trace(doc)


class TestNullTracer:
    def test_null_is_free_and_inert(self):
        null = NullTracer()
        with null.span("anything", lane="x", arg=1):
            null.instant("nothing")
        assert null.events() == []
        assert null.lanes() == []
        assert null.drain_events() == []
        assert not null.enabled
        # The span handle is one shared instance — no per-call allocation.
        assert null.span("a") is null.span("b") is NULL_TRACER.span("c")


class TestThreadSafety:
    def test_concurrent_spans_from_eight_threads(self):
        tracer = Tracer()
        n_threads, spans_each = 8, 200

        def work(lane_idx: int) -> None:
            lane = f"thread-{lane_idx}"
            for i in range(spans_each):
                with tracer.span("work", lane=lane, i=i):
                    pass

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        events = tracer.events()
        assert len(events) == n_threads * spans_each * 2
        assert tracer.timer.entries["work"] == n_threads * spans_each
        # Per-lane streams stay well-formed B/E sequences and the export
        # contract (strictly increasing ts, matched pairs) holds.
        validate_chrome_trace(tracer.to_chrome())
