"""CLI observability: --trace-out/--metrics-out and `parulel profile`."""

import json

import pytest

from repro.cli import main
from repro.obs import validate_chrome_trace

TC_SRC = """\
(literalize edge src dst)
(literalize path src dst)
(p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
   --> (make path ^src <a> ^dst <b>))
(p tc-extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)
   -(path ^src <a> ^dst <c>)
   --> (make path ^src <a> ^dst <c>))
"""

FACTS = "".join(f"(edge ^src n{i} ^dst n{i + 1})\n" for i in range(5))


@pytest.fixture()
def program_files(tmp_path):
    program = tmp_path / "tc.pl"
    facts = tmp_path / "tc.facts"
    program.write_text(TC_SRC)
    facts.write_text(FACTS)
    return str(program), str(facts)


class TestRunArtifacts:
    def test_trace_and_metrics_out(self, program_files, tmp_path, capsys):
        program, facts = program_files
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "run", program, "--facts", facts,
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        doc = json.loads(trace_path.read_text())
        validate_chrome_trace(doc)
        lanes = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        ]
        assert "engine" in lanes
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["parulel_firings_total"] == 15

    def test_jsonl_and_prometheus_suffixes(self, program_files, tmp_path):
        program, facts = program_files
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            [
                "run", program, "--facts", facts,
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        lines = [json.loads(l) for l in trace_path.read_text().splitlines()]
        assert all({"ph", "name", "lane", "ts_us"} <= set(l) for l in lines)
        prom = metrics_path.read_text()
        assert "# TYPE parulel_firings_total counter" in prom
        assert "parulel_firings_total 15" in prom

    def test_rejected_for_ops5(self, program_files, tmp_path, capsys):
        program, facts = program_files
        code = main(
            [
                "run", program, "--facts", facts, "--engine", "ops5",
                "--trace-out", str(tmp_path / "t.json"),
            ]
        )
        assert code == 2
        assert "parulel only" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_program_file(self, program_files, capsys):
        program, facts = program_files
        code = main(["profile", program, "--facts", facts])
        assert code == 0
        out = capsys.readouterr().out
        assert "hot rules" in out
        assert "tc-extend" in out
        assert "phases:" in out

    def test_profile_registry_workload(self, capsys):
        code = main(["profile", "tc", "--max-cycles", "1000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tc-extend" in out
        assert "stopped by quiescence" in out

    def test_profile_writes_artifacts(self, program_files, tmp_path, capsys):
        program, facts = program_files
        trace_path = tmp_path / "p.json"
        metrics_path = tmp_path / "p.prom"
        code = main(
            [
                "profile", program, "--facts", facts,
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        validate_chrome_trace(json.loads(trace_path.read_text()))
        assert "parulel_rule_eval_seconds" in metrics_path.read_text()

    def test_profile_unknown_target(self, capsys):
        code = main(["profile", "no-such-workload"])
        assert code == 2
        assert "neither a file nor a bundled workload" in capsys.readouterr().err

    def test_profile_top_limits_table(self, program_files, capsys):
        program, facts = program_files
        code = main(["profile", program, "--facts", facts, "--top", "1"])
        assert code == 0
        out = capsys.readouterr().out
        # Only the hottest rule row remains.
        assert out.count("tc-") == 1
