"""CLI observability: --trace-out/--metrics-out and `parulel profile`."""

import json

import pytest

from repro.cli import main
from repro.obs import validate_chrome_trace

TC_SRC = """\
(literalize edge src dst)
(literalize path src dst)
(p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
   --> (make path ^src <a> ^dst <b>))
(p tc-extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)
   -(path ^src <a> ^dst <c>)
   --> (make path ^src <a> ^dst <c>))
"""

FACTS = "".join(f"(edge ^src n{i} ^dst n{i + 1})\n" for i in range(5))


@pytest.fixture()
def program_files(tmp_path):
    program = tmp_path / "tc.pl"
    facts = tmp_path / "tc.facts"
    program.write_text(TC_SRC)
    facts.write_text(FACTS)
    return str(program), str(facts)


class TestRunArtifacts:
    def test_trace_and_metrics_out(self, program_files, tmp_path, capsys):
        program, facts = program_files
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "run", program, "--facts", facts,
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        doc = json.loads(trace_path.read_text())
        validate_chrome_trace(doc)
        lanes = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        ]
        assert "engine" in lanes
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["parulel_firings_total"] == 15

    def test_jsonl_and_prometheus_suffixes(self, program_files, tmp_path):
        program, facts = program_files
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            [
                "run", program, "--facts", facts,
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        lines = [json.loads(l) for l in trace_path.read_text().splitlines()]
        assert all({"ph", "name", "lane", "ts_us"} <= set(l) for l in lines)
        prom = metrics_path.read_text()
        assert "# TYPE parulel_firings_total counter" in prom
        assert "parulel_firings_total 15" in prom

    def test_rejected_for_ops5(self, program_files, tmp_path, capsys):
        program, facts = program_files
        code = main(
            [
                "run", program, "--facts", facts, "--engine", "ops5",
                "--trace-out", str(tmp_path / "t.json"),
            ]
        )
        assert code == 2
        assert "parulel only" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_program_file(self, program_files, capsys):
        program, facts = program_files
        code = main(["profile", program, "--facts", facts])
        assert code == 0
        out = capsys.readouterr().out
        assert "hot rules" in out
        assert "tc-extend" in out
        assert "phases:" in out

    def test_profile_registry_workload(self, capsys):
        code = main(["profile", "tc", "--max-cycles", "1000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tc-extend" in out
        assert "stopped by quiescence" in out

    def test_profile_writes_artifacts(self, program_files, tmp_path, capsys):
        program, facts = program_files
        trace_path = tmp_path / "p.json"
        metrics_path = tmp_path / "p.prom"
        code = main(
            [
                "profile", program, "--facts", facts,
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        validate_chrome_trace(json.loads(trace_path.read_text()))
        assert "parulel_rule_eval_seconds" in metrics_path.read_text()

    def test_profile_unknown_target(self, capsys):
        code = main(["profile", "no-such-workload"])
        assert code == 2
        assert "neither a file nor a bundled workload" in capsys.readouterr().err

    def test_profile_top_limits_table(self, program_files, capsys):
        program, facts = program_files
        code = main(["profile", program, "--facts", facts, "--top", "1"])
        assert code == 0
        out = capsys.readouterr().out
        # Only the hottest rule row remains.
        assert out.count("tc-") == 1


class TestFlightRecorderFlags:
    def test_default_run_writes_no_dump(self, program_files, tmp_path):
        program, facts = program_files
        bb = tmp_path / "run.blackbox"
        assert main(
            ["run", program, "--facts", facts, "--blackbox", str(bb)]
        ) == 0
        assert not bb.exists()

    def test_cycle_limit_dumps_and_hints(self, program_files, tmp_path, capsys):
        program, facts = program_files
        bb = tmp_path / "limit.blackbox"
        code = main(
            [
                "run", program, "--facts", facts,
                "--max-cycles", "1", "--blackbox", str(bb),
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "black-box dump written" in err
        assert "parulel blackbox dump" in err
        assert bb.exists()

    def test_no_flight_recorder_suppresses_dump(
        self, program_files, tmp_path, capsys
    ):
        program, facts = program_files
        bb = tmp_path / "off.blackbox"
        code = main(
            [
                "run", program, "--facts", facts, "--max-cycles", "1",
                "--no-flight-recorder", "--blackbox", str(bb),
            ]
        )
        assert code == 1
        assert not bb.exists()
        assert "black-box dump" not in capsys.readouterr().err

    def test_flags_rejected_for_ops5(self, program_files, capsys):
        program, facts = program_files
        code = main(
            [
                "run", program, "--facts", facts,
                "--engine", "ops5", "--no-flight-recorder",
            ]
        )
        assert code == 2

    def test_metrics_port_serves_and_lingers(self, program_files, capsys):
        program, facts = program_files
        code = main(
            [
                "run", program, "--facts", facts,
                "--metrics-port", "0", "--metrics-linger", "0.2",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "serving metrics at http://127.0.0.1:" in err
        assert "no scrape before the linger deadline" in err


class TestBlackboxCommand:
    @pytest.fixture()
    def dump_path(self, program_files, tmp_path):
        program, facts = program_files
        bb = tmp_path / "crash.blackbox"
        assert main(
            [
                "run", program, "--facts", facts,
                "--max-cycles", "1", "--blackbox", str(bb),
            ]
        ) == 1
        return str(bb)

    def test_dump_prints_timeline(self, dump_path, capsys):
        capsys.readouterr()
        assert main(["blackbox", "dump", dump_path]) == 0
        out = capsys.readouterr().out
        assert "# reason: CycleLimitExceeded" in out
        assert "cycle 1 done" in out
        assert "dump: CycleLimitExceeded" in out

    def test_dump_limit_keeps_newest(self, dump_path, capsys):
        capsys.readouterr()
        assert main(["blackbox", "dump", dump_path, "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "earlier event(s) omitted" in out
        body = [l for l in out.splitlines() if not l.startswith("#")]
        assert len(body) == 3

    def test_report_phases_and_rules(self, dump_path, tmp_path, capsys):
        capsys.readouterr()
        prom = tmp_path / "skew.prom"
        assert main(
            ["blackbox", "report", dump_path, "--metrics-out", str(prom)]
        ) == 0
        out = capsys.readouterr().out
        assert "cycle phases (seconds):" in out
        assert "rule time share" in out
        text = prom.read_text()
        assert "parulel_rule_time_share" in text

    def test_diff_identical_is_clean(self, dump_path, capsys):
        capsys.readouterr()
        assert main(["blackbox", "diff", dump_path, dump_path]) == 0
        assert "no divergence" in capsys.readouterr().out

    def test_diff_divergent_pinpoints_event(
        self, program_files, tmp_path, capsys
    ):
        program, facts = program_files
        left = tmp_path / "l.blackbox"
        right = tmp_path / "r.blackbox"
        main(["run", program, "--facts", facts,
              "--max-cycles", "1", "--blackbox", str(left)])
        # A different fact set diverges in cycle 1's deterministic record.
        short_facts = tmp_path / "short.facts"
        short_facts.write_text("(edge ^src n0 ^dst n1)\n")
        main(["run", program, "--facts", str(short_facts),
              "--max-cycles", "1", "--blackbox", str(right)])
        capsys.readouterr()
        code = main(["blackbox", "diff", str(left), str(right)])
        assert code == 1
        out = capsys.readouterr().out
        assert "first divergence at engine-ring event" in out
        assert "left :" in out and "right:" in out

    def test_corrupt_file_is_clear_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.blackbox"
        bad.write_bytes(b"not a dump")
        code = main(["blackbox", "dump", str(bad)])
        assert code == 1
        assert "not a blackbox dump" in capsys.readouterr().err
