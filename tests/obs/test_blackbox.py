"""Blackbox decoding end to end: engine crash dumps, timelines, skew, diffs.

These drive real engines (``parse_program`` + :class:`ParulelEngine`) and
assert on the loaded ``*.blackbox`` artifacts — the same files an operator
would feed to ``parulel blackbox dump/report/diff`` after a crash.
"""

import pytest

from repro.core import EngineConfig, ParulelEngine
from repro.errors import CycleLimitExceeded
from repro.faults import FaultPlan, WorkerKill
from repro.lang.parser import parse_program
from repro.obs.blackbox import diff_blackbox, load_blackbox, skew_report
from repro.obs.flightrec import (
    EV_CYCLE,
    EV_DUMP,
    EV_FAULT,
    EV_MATCH_REPLY,
    EV_MATCH_REQ,
    EV_PHASE,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import RULE_TIME_SHARE, SITE_SKEW_RATIO

TC = """
(literalize edge src dst)
(literalize path src dst)
(p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
 --> (make path ^src <a> ^dst <b>))
(p tc-extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)
 -(path ^src <a> ^dst <c>) --> (make path ^src <a> ^dst <c>))
"""

EDGES = [("a", "b"), ("b", "c"), ("c", "d")]


def tc_engine(blackbox_path, edges=EDGES, **cfg):
    engine = ParulelEngine(
        parse_program(TC),
        EngineConfig(blackbox_path=str(blackbox_path), **cfg),
    )
    for src, dst in edges:
        engine.make("edge", src=src, dst=dst)
    return engine


class TestEngineDumps:
    def test_cycle_limit_dumps_blackbox(self, tmp_path):
        path = tmp_path / "limit.blackbox"
        engine = tc_engine(path)
        try:
            with pytest.raises(CycleLimitExceeded):
                engine.run(max_cycles=1)
        finally:
            engine.close()
        bb = load_blackbox(str(path))
        assert bb.reason.startswith("CycleLimitExceeded")
        assert bb.header["info"]["cycle"] == 1
        assert "tc-init" in bb.rules and "tc-extend" in bb.rules
        kinds = {r["kind"] for r in bb.main.records}
        assert EV_CYCLE in kinds and EV_PHASE in kinds and EV_DUMP in kinds

    def test_clean_run_leaves_no_dump(self, tmp_path):
        path = tmp_path / "clean.blackbox"
        engine = tc_engine(path)
        try:
            result = engine.run()
            assert result.reason == "quiescence"
        finally:
            engine.close()
        assert not path.exists()

    @pytest.mark.slow
    @pytest.mark.timeout(60)
    def test_manual_dump_records_config_and_seed(self, tmp_path):
        path = tmp_path / "manual.blackbox"
        engine = tc_engine(
            path, matcher="process:2", fault_plan=FaultPlan(seed=42)
        )
        try:
            engine.run()
            assert engine.dump_blackbox() == str(path)
        finally:
            engine.close()
        bb = load_blackbox(str(path))
        assert bb.reason == "manual"
        assert bb.header["info"]["seed"] == 42
        assert "max_cycles" in bb.header["info"]["config"]

    @pytest.mark.slow
    @pytest.mark.timeout(90)
    def test_worker_kill_dumps_and_names_site(self, tmp_path):
        path = tmp_path / "kill.blackbox"
        plan = FaultPlan(kills=(WorkerKill(cycle=1, site=1),))
        engine = tc_engine(
            path, matcher="process:2", respawn_limit=1, fault_plan=plan
        )
        try:
            engine.run()
        finally:
            engine.close()
        bb = load_blackbox(str(path))
        assert bb.reason.startswith("worker fault")
        faults = [r for r in bb.main.records if r["kind"] == EV_FAULT]
        assert {bb.string(r["code"]) for r in faults} >= {"kill", "respawn"}
        # The killed site's ring survived and shows up in the timeline.
        assert any(site == 1 for _, site, _ in bb.timeline())


class TestTimeline:
    def test_merged_timeline_is_time_ordered(self, tmp_path):
        path = tmp_path / "t.blackbox"
        engine = tc_engine(path)
        try:
            engine.run()
            engine.dump_blackbox()
        finally:
            engine.close()
        timeline = load_blackbox(str(path)).timeline()
        assert timeline
        stamps = [ts for ts, _, _ in timeline]
        assert stamps == sorted(stamps)


class TestSkewReport:
    def test_serial_run_reports_phases_and_rules(self, tmp_path):
        path = tmp_path / "s.blackbox"
        engine = tc_engine(path)
        try:
            engine.run()
            engine.dump_blackbox()
        finally:
            engine.close()
        report = skew_report(load_blackbox(str(path)))
        assert set(report["phases"]) >= {"match", "act"}
        for stats in report["phases"].values():
            assert stats["p50"] <= stats["p95"] <= stats["max"]
        assert set(report["rules"]) == {"tc-init", "tc-extend"}
        assert sum(r["share"] for r in report["rules"].values()) == pytest.approx(1.0)

    def test_site_tagged_main_ring_records_fold_into_sites(self, tmp_path):
        # The threaded pool journals site-tagged req/reply pairs into the
        # engine ring instead of separate rings; skew must fold them.
        path = tmp_path / "tagged.blackbox"
        engine = tc_engine(path)
        try:
            fr = engine.flightrec
            for site, busy in ((0, 1), (1, 3)):
                fr.record(EV_MATCH_REQ, 1, site=site)
                fr.record(EV_MATCH_REPLY, 1, a=2, site=site)
            engine.dump_blackbox()
        finally:
            engine.close()
        report = skew_report(load_blackbox(str(path)))
        assert set(report["sites"]) == {0, 1}
        for stats in report["sites"].values():
            assert stats["cycles"] == 1

    def test_registry_export_gauges(self, tmp_path):
        path = tmp_path / "g.blackbox"
        engine = tc_engine(path)
        try:
            fr = engine.flightrec
            fr.record(EV_MATCH_REQ, 1, site=0)
            fr.record(EV_MATCH_REPLY, 1, a=2, site=0)
            engine.run()
            engine.dump_blackbox()
        finally:
            engine.close()
        registry = MetricsRegistry()
        skew_report(load_blackbox(str(path)), registry=registry)
        text = registry.to_prometheus()
        assert SITE_SKEW_RATIO in text
        assert RULE_TIME_SHARE in text
        assert 'rule="tc-init"' in text


class TestDiff:
    def _dump(self, tmp_path, name, edges):
        path = tmp_path / name
        engine = tc_engine(path, edges=edges)
        try:
            engine.run()
            engine.dump_blackbox()
        finally:
            engine.close()
        return load_blackbox(str(path))

    def test_same_seed_runs_diff_clean(self, tmp_path):
        left = self._dump(tmp_path, "l.blackbox", EDGES)
        right = self._dump(tmp_path, "r.blackbox", EDGES)
        assert diff_blackbox(left, right) is None

    def test_diverging_runs_pinpoint_first_event(self, tmp_path):
        left = self._dump(tmp_path, "l.blackbox", EDGES)
        right = self._dump(tmp_path, "r.blackbox", EDGES + [("d", "e")])
        result = diff_blackbox(left, right)
        assert result is not None
        assert result.index >= 0
        assert result.left_text != result.right_text or result.left != result.right
        # Divergence is detected from deterministic fields, so the index
        # is stable run to run for the same pair of workloads.
        again = diff_blackbox(left, right)
        assert again.index == result.index

    def test_timestamps_do_not_cause_divergence(self, tmp_path):
        # Two identical runs have different wall-clock durations on every
        # phase record; the projection must ignore them.
        left = self._dump(tmp_path, "a.blackbox", EDGES)
        right = self._dump(tmp_path, "b.blackbox", EDGES)
        lphase = [r for r in left.main.records if r["kind"] == EV_PHASE]
        rphase = [r for r in right.main.records if r["kind"] == EV_PHASE]
        assert lphase and rphase
        assert diff_blackbox(left, right) is None
