"""Observability wired through the engine and execution substrates.

Covers: engine phase spans + metrics, the exactly-one-trace-callback
guarantee (meta-cycles included), the process pool's worker lanes and
exact cross-process counts, fault instants under an injected plan, and
the distributed machine's virtual site/network lanes.
"""

import pytest

from repro.core import EngineConfig, ParulelEngine
from repro.faults import FaultPlan, WorkerKill
from repro.lang.parser import parse_program
from repro.obs import MetricsRegistry, Tracer, validate_chrome_trace
from repro.obs.profile import (
    RULE_CANDIDATES,
    RULE_EVAL_SECONDS,
    RULE_FIRINGS,
    RULE_MATCH_SECONDS,
    RULE_REDACTIONS,
    rule_profiles,
)
from repro.obs.trace import NULL_TRACER
from repro.obs.metrics import NULL_METRICS
from repro.parallel.distributed import DistributedMachine
from repro.programs.tc import build_tc

TC_FACTS = [
    ("edge", {"src": f"n{i}", "dst": f"n{i + 1}"}) for i in range(6)
]

TC_SRC = """
(literalize edge src dst)
(literalize path src dst)
(p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
   --> (make path ^src <a> ^dst <b>))
(p tc-extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)
   -(path ^src <a> ^dst <c>)
   --> (make path ^src <a> ^dst <c>))
"""

#: A program whose meta level redacts work every cycle AND ends in
#: redaction quiescence — the branchy reporting path of the engine.
REDACT_SRC = """
(literalize req name)
(literalize grant name)
(p grant (req ^name <n>) --> (make grant ^name <n>))
(mp keep-first
    (instantiation ^rule grant ^id <i> ^n <a>)
    (instantiation ^rule grant ^id {<j> <> <i>} ^n > <a>)
    -->
    (redact <j>))
"""


def run_tc(tracer=None, metrics=None, **config):
    engine = ParulelEngine(
        parse_program(TC_SRC),
        EngineConfig(**config),
        tracer=tracer,
        metrics=metrics,
    )
    for cls, attrs in TC_FACTS:
        engine.make(cls, attrs)
    result = engine.run(max_cycles=100)
    return engine, result


class TestEngineSpans:
    def test_phase_spans_cover_the_cycle(self):
        tracer = Tracer()
        engine, result = run_tc(tracer=tracer)
        names = {e[1] for e in tracer.events()}
        assert {"run", "match", "redact", "act", "merge"} <= names
        validate_chrome_trace(tracer.to_chrome())
        # Spans land on the engine lane; aggregate seconds are queryable
        # without replaying events.
        assert tracer.lanes() == ["engine"]
        assert tracer.timer.entries["match"] >= result.cycles

    def test_phase_times_public_keys_unchanged(self):
        tracer = Tracer()
        engine, _result = run_tc(tracer=tracer)
        assert {"collect", "redact", "evaluate", "apply"} <= set(
            engine.phase_times
        )

    def test_run_span_closes_on_cycle_limit(self):
        from repro.errors import CycleLimitExceeded

        tracer = Tracer()
        engine = ParulelEngine(
            parse_program(TC_SRC), EngineConfig(), tracer=tracer
        )
        for cls, attrs in TC_FACTS:
            engine.make(cls, attrs)
        with pytest.raises(CycleLimitExceeded):
            engine.run(max_cycles=2)
        validate_chrome_trace(tracer.to_chrome())  # no unclosed spans

    def test_observability_defaults_to_noop_singletons(self):
        engine, _result = run_tc()
        assert engine.tracer is NULL_TRACER
        assert engine.metrics is NULL_METRICS


class TestEngineMetrics:
    def test_counts_match_the_run_result(self):
        metrics = MetricsRegistry()
        engine, result = run_tc(metrics=metrics)
        assert metrics.counter_value("parulel_cycles_total") == result.cycles
        assert metrics.counter_value("parulel_firings_total") == result.firings
        assert metrics.counter_value("parulel_candidates_total") == sum(
            r.candidates for r in engine.reports
        )
        assert metrics.counter_value("parulel_delta_makes_total") == sum(
            r.delta_makes for r in engine.reports
        )
        assert metrics.gauge_value("parulel_wm_size") == len(engine.wm)
        # Per-rule series agree with the total.
        per_rule = sum(metrics.series(RULE_FIRINGS).values())
        assert per_rule == result.firings
        # Rule evaluation histograms exist for every fired rule.
        assert set(
            dict(labels)["rule"]
            for labels in metrics.histogram_series(RULE_EVAL_SECONDS)
        ) == {"tc-init", "tc-extend"}

    def test_redaction_counts_per_rule(self):
        metrics = MetricsRegistry()
        engine = ParulelEngine(
            parse_program(REDACT_SRC), EngineConfig(), metrics=metrics
        )
        for i in range(4):
            engine.make("req", {"name": f"r{i}"})
        result = engine.run(max_cycles=100)
        redacted = metrics.counter_value("parulel_redacted_total")
        assert redacted == sum(r.redaction.redacted for r in engine.reports)
        assert (
            metrics.counter_value(RULE_REDACTIONS, rule="grant") == redacted
        )
        assert metrics.counter_value("parulel_meta_firings_total") > 0
        profile = next(
            p for p in rule_profiles(metrics) if p.rule == "grant"
        )
        assert profile.redacted == redacted
        assert profile.fired == result.firings

    def test_certified_commute_counts_skipped_reifications(self):
        from repro.obs.profile import REDACTION_SKIPPED

        metrics = MetricsRegistry()
        engine, _result = run_tc(metrics=metrics, certified_commute=True)
        skipped = metrics.counter_value(REDACTION_SKIPPED)
        assert skipped == sum(r.redaction.skipped for r in engine.reports)
        assert skipped > 0  # tc's candidates are all provably commuting

    def test_sanitizer_counts_pair_replays(self):
        from repro.obs.profile import SANITIZER_REPLAYS

        metrics = MetricsRegistry()
        engine, _result = run_tc(metrics=metrics, sanitize_races=True)
        replays = metrics.counter_value(SANITIZER_REPLAYS)
        # tc fires multi-instantiation sets: every unordered pair of a
        # cycle's firings is replayed exactly once.
        expected = sum(
            r.fired * (r.fired - 1) // 2 for r in engine.reports
        )
        assert replays == expected
        assert replays > 0

    def test_new_counters_absent_when_features_off(self):
        from repro.obs.profile import REDACTION_SKIPPED, SANITIZER_REPLAYS

        metrics = MetricsRegistry()
        run_tc(metrics=metrics)
        assert metrics.counter_value(REDACTION_SKIPPED) == 0
        assert metrics.counter_value(SANITIZER_REPLAYS) == 0


#: REDACT_SRC plus a rule the meta level vetoes *every* cycle, so the run
#: ends in redaction quiescence (candidates exist, all redacted, WM
#: unchanged) — the CycleReport branch that bypasses the act/merge path.
META_QUIESCE_SRC = REDACT_SRC + """
(literalize never x)
(p doomed (req ^name <n>) --> (make never ^x <n>))
(mp veto-doomed (instantiation ^rule doomed ^id <i>) --> (redact <i>))
"""


class TestTraceCallbackOnce:
    def test_exactly_one_callback_per_report_with_meta_rules(self):
        """Regression: every emitted CycleReport triggers the trace
        callback exactly once — including the final redaction-quiescent
        cycle, which leaves by a different branch."""
        seen = []
        engine = ParulelEngine(
            parse_program(META_QUIESCE_SRC), EngineConfig(), trace=seen.append
        )
        for i in range(4):
            engine.make("req", {"name": f"r{i}"})
        engine.run(max_cycles=100)
        assert seen == engine.reports
        assert [r.cycle for r in seen] == sorted({r.cycle for r in seen})
        # The run genuinely exercised both report branches: fired cycles
        # and the closing all-redacted cycle.
        assert any(r.fired for r in seen)
        assert seen[-1].fired == 0 and seen[-1].candidates > 0

    def test_exactly_one_callback_per_report_plain_program(self):
        seen = []
        engine = ParulelEngine(
            parse_program(TC_SRC), EngineConfig(), trace=seen.append
        )
        for cls, attrs in TC_FACTS:
            engine.make(cls, attrs)
        engine.run(max_cycles=100)
        assert seen == engine.reports


@pytest.mark.timeout(60)
class TestProcessBackendObs:
    def test_worker_lanes_and_exact_counts(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        engine, result = run_tc(
            tracer=tracer, metrics=metrics, matcher="process:2"
        )
        lanes = tracer.lanes()
        assert lanes[0] == "engine"
        worker_lanes = [l for l in lanes if l.startswith("worker-")]
        assert len(worker_lanes) == 2
        # Worker spans shipped across the process boundary and landed.
        worker_spans = [
            e for e in tracer.events() if e[2].startswith("worker-")
        ]
        assert any(e[1] == "match" for e in worker_spans)
        validate_chrome_trace(tracer.to_chrome())

        # Cross-process counts stay exact: every request got a reply, and
        # per-rule candidates equal what the engine observed.
        sends = metrics.counter_value(
            "parulel_ipc_messages_total", direction="request"
        )
        replies = metrics.counter_value(
            "parulel_ipc_messages_total", direction="reply"
        )
        assert sends == replies > 0
        assert metrics.counter_value("parulel_ipc_bytes_total", site=0) > 0
        assert sum(metrics.series(RULE_CANDIDATES).values()) == sum(
            r.candidates for r in engine.reports
        )
        # Workers attributed per-rule match time with site labels.
        match_sites = {
            dict(labels).get("site")
            for labels in metrics.histogram_series(RULE_MATCH_SECONDS)
        }
        assert match_sites == {"0", "1"}

    @pytest.mark.slow
    @pytest.mark.faults
    def test_fault_instants_and_metrics_under_injected_kills(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        plan = FaultPlan(kills=(WorkerKill(cycle=2, site=1),))
        engine, result = run_tc(
            tracer=tracer,
            metrics=metrics,
            matcher="process:2",
            fault_plan=plan,
        )
        kinds = [e.kind for e in engine.fault_events]
        assert "kill" in kinds and "respawn" in kinds
        instants = [e for e in tracer.events() if e[0] == "i"]
        assert {e[1] for e in instants} >= {"kill", "respawn"}
        assert all(e[2] == "worker-1" for e in instants)
        assert metrics.counter_value(
            "parulel_fault_events_total", kind="kill"
        ) == kinds.count("kill")
        assert metrics.counter_value(
            "parulel_worker_respawns_total", site=1
        ) == kinds.count("respawn")
        validate_chrome_trace(tracer.to_chrome())


class TestDistributedObs:
    def test_site_and_network_lanes_on_virtual_clock(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        wl = build_tc(n_nodes=10)
        machine = DistributedMachine(
            wl.program, n_sites=3, tracer=tracer, metrics=metrics
        )
        wl.setup(machine)
        result = machine.run()

        assert tracer.lanes() == ["site-0", "site-1", "site-2", "network"]
        names_by_lane = {}
        for _ph, name, lane, _ts, _args in tracer.events():
            names_by_lane.setdefault(lane, set()).add(name)
        assert "gather" in names_by_lane["network"]
        assert "scatter" in names_by_lane["network"]
        assert "redact" in names_by_lane["site-0"]  # the master
        for site in range(3):
            assert "match+fire" in names_by_lane[f"site-{site}"]
        validate_chrome_trace(tracer.to_chrome())

        # Without faults the network counters account for every message.
        counted = sum(
            metrics.counter_value("parulel_network_messages_total", round=r)
            for r in ("gather", "verdict", "scatter")
        )
        assert counted == result.messages

    def test_single_site_machine_has_no_network_spans(self):
        tracer = Tracer()
        wl = build_tc(n_nodes=6)
        machine = DistributedMachine(wl.program, n_sites=1, tracer=tracer)
        wl.setup(machine)
        machine.run()
        network = [e for e in tracer.events() if e[2] == "network"]
        assert network == []
        validate_chrome_trace(tracer.to_chrome())


class TestRestore:
    def test_restored_engine_carries_observability(self, tmp_path):
        engine, _ = run_tc()
        path = str(tmp_path / "ck.json")
        engine.checkpoint(path)
        tracer = Tracer()
        metrics = MetricsRegistry()
        restored = ParulelEngine.restore(
            parse_program(TC_SRC), path, tracer=tracer, metrics=metrics
        )
        assert restored.tracer is tracer
        assert restored.metrics is metrics
