"""Flight-recorder core: ring semantics, dumps, SIGKILL survival.

The ring tests exercise the packed-record format directly — wraparound
must evict oldest-first with an accurate dropped count, and a torn write
(a slot whose stored sequence number disagrees with its position) must be
detected and skipped, never misread. The SIGKILL test is the tentpole's
core claim made literal: a worker journals into a parent-created
shared-memory ring, dies by real ``SIGKILL`` mid-flight, and the parent
decodes everything the worker wrote — including the unmatched
rule-begin record that names what it was doing when it died.
"""

import multiprocessing
import os
import signal
import struct

import pytest

from repro.errors import BlackboxCorruptError
from repro.obs.blackbox import load_blackbox
from repro.obs.flightrec import (
    EV_CYCLE,
    EV_FIRE,
    EV_RULE_BEGIN,
    EV_RULE_END,
    EV_WORKER_START,
    FLIGHT_PREFIX,
    HEADER_SIZE,
    RECORD_SIZE,
    FlightRecorder,
    FlightRing,
    decode_ring,
    flight_owner_pid,
)


class TestRingRoundtrip:
    def test_append_decode_roundtrip(self):
        ring = FlightRing(capacity=64, shared=False)
        ring.append(EV_CYCLE, 1, code=0, a=3, b=7)
        ring.append(EV_FIRE, 1, code=2, a=-5, site=1)
        out = decode_ring(ring.snapshot())
        ring.close()
        assert out["seq"] == 2
        assert out["dropped"] == 0
        assert out["torn"] == 0
        recs = out["records"]
        assert [r["kind"] for r in recs] == [EV_CYCLE, EV_FIRE]
        assert recs[0]["a"] == 3 and recs[0]["b"] == 7
        assert recs[1]["a"] == -5 and recs[1]["site"] == 1
        # Timestamps are monotonic within one ring.
        assert recs[0]["ts_ns"] <= recs[1]["ts_ns"]

    def test_capacity_floor(self):
        ring = FlightRing(capacity=1, shared=False)
        try:
            assert ring._cap >= 16
        finally:
            ring.close()

    def test_shared_ring_name_embeds_owner_pid(self):
        ring = FlightRing(capacity=16, shared=True)
        try:
            if ring.name is None:
                pytest.skip("no shared memory on this platform")
            assert ring.name.startswith(FLIGHT_PREFIX)
            assert flight_owner_pid(ring.name) == os.getpid()
        finally:
            ring.close()


class TestWraparound:
    def test_oldest_records_evicted(self):
        ring = FlightRing(capacity=16, shared=False)
        for i in range(40):
            ring.append(EV_CYCLE, i, a=i)
        out = decode_ring(ring.snapshot())
        ring.close()
        assert out["seq"] == 40
        assert out["dropped"] == 24
        assert len(out["records"]) == 16
        # The survivors are exactly the newest 16, in append order.
        assert [r["a"] for r in out["records"]] == list(range(24, 40))
        assert [r["seq"] for r in out["records"]] == list(range(24, 40))


class TestTornWrites:
    def test_corrupt_slot_detected_and_skipped(self):
        ring = FlightRing(capacity=16, shared=False)
        for i in range(8):
            ring.append(EV_CYCLE, i, a=i)
        raw = bytearray(ring.snapshot())
        ring.close()
        # Smash slot 3's stored sequence number: a torn write leaves a
        # slot whose seq disagrees with its ring position.
        offset = HEADER_SIZE + 3 * RECORD_SIZE
        struct.pack_into("<Q", raw, offset, 9999)
        out = decode_ring(bytes(raw))
        assert out["torn"] == 1
        assert [r["a"] for r in out["records"]] == [0, 1, 2, 4, 5, 6, 7]

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_ring(b"NOTARING" + b"\x00" * 120)


class TestAttach:
    def test_attach_continues_sequence(self):
        ring = FlightRing(capacity=32, shared=True)
        if ring.name is None:
            ring.close()
            pytest.skip("no shared memory on this platform")
        try:
            ring.append(EV_CYCLE, 1)
            # A respawned worker attaches to its predecessor's ring and
            # keeps appending where it stopped (single writer at a time).
            other = FlightRing.attach(ring.name)
            assert other.seq == 1
            other.append(EV_CYCLE, 2)
            other.append(EV_CYCLE, 3)
            other.close()  # attached: must NOT unlink the segment
            out = decode_ring(ring.snapshot())
            assert out["seq"] == 3
            assert out["torn"] == 0
            assert [r["cycle"] for r in out["records"]] == [1, 2, 3]
        finally:
            ring.close()


class TestRecorderDump:
    def test_dump_load_roundtrip(self, tmp_path):
        rec = FlightRecorder(rule_names=["r1", "r2"], capacity=64)
        rec.record(EV_FIRE, 1, code=rec.rule_id("r2"), a=1000)
        path = str(tmp_path / "t.blackbox")
        rec.dump(path, reason="test", info={"k": "v"})
        rec.close()
        bb = load_blackbox(path)
        assert bb.reason == "test"
        assert bb.header["info"]["k"] == "v"
        assert bb.rules == ["r1", "r2"]
        fires = [r for r in bb.main.records if r["kind"] == EV_FIRE]
        assert len(fires) == 1
        assert bb.rule_name(fires[0]["code"]) == "r2"

    def test_truncated_dump_raises_corrupt_error(self, tmp_path):
        rec = FlightRecorder(rule_names=["r"], capacity=64)
        path = str(tmp_path / "t.blackbox")
        rec.dump(path)
        rec.close()
        size = os.path.getsize(path)
        for cut in (4, size // 2, size - 8):
            clipped = str(tmp_path / f"cut{cut}.blackbox")
            with open(path, "rb") as src, open(clipped, "wb") as dst:
                dst.write(src.read(cut))
            with pytest.raises(BlackboxCorruptError):
                load_blackbox(clipped)

    def test_rule_id_interns_dynamically(self):
        rec = FlightRecorder(rule_names=["a"], capacity=64, shared=False)
        try:
            known = rec.rule_id("a")
            fresh = rec.rule_id("later")
            assert rec.rule_id("later") == fresh  # stable
            assert fresh != known
            assert rec.manifest()["rules"][fresh] == "later"
        finally:
            rec.close()


def _ring_writer_child(name: str) -> None:  # pragma: no cover - child proc
    ring = FlightRing.attach(name)
    ring.append(EV_WORKER_START, 0, a=os.getpid())
    ring.append(EV_RULE_BEGIN, 1, code=1)
    ring.append(EV_RULE_END, 1, code=1, a=4)
    ring.append(EV_RULE_BEGIN, 2, code=2)  # in flight at the kill
    os.kill(os.getpid(), signal.SIGSTOP)  # freeze until the parent kills


class TestSIGKILLSurvival:
    @pytest.mark.timeout(60)
    def test_parent_decodes_ring_after_worker_sigkill(self):
        if not hasattr(signal, "SIGSTOP"):
            pytest.skip("needs SIGSTOP/SIGKILL")
        ring = FlightRing(capacity=64, shared=True)
        if ring.name is None:
            ring.close()
            pytest.skip("no shared memory on this platform")
        try:
            ctx = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
            proc = ctx.Process(target=_ring_writer_child, args=(ring.name,))
            proc.start()
            # Wait until the child has written all four records, then
            # SIGKILL it — no cleanup of any kind runs in the child.
            import time as _time

            deadline = _time.monotonic() + 30.0
            while decode_ring(ring.snapshot())["seq"] < 4:
                if not proc.is_alive():  # pragma: no cover - child crashed
                    pytest.fail("ring-writer child died early")
                if _time.monotonic() > deadline:  # pragma: no cover
                    proc.kill()
                    proc.join()
                    pytest.fail("child never wrote its records")
                _time.sleep(0.005)
            proc.kill()
            proc.join()
            out = decode_ring(ring.snapshot())
            assert out["seq"] == 4
            assert out["torn"] == 0
            kinds = [r["kind"] for r in out["records"]]
            assert kinds == [
                EV_WORKER_START,
                EV_RULE_BEGIN,
                EV_RULE_END,
                EV_RULE_BEGIN,
            ]
            # The unmatched BEGIN is the post-mortem "what was it doing".
            begins = [r for r in out["records"] if r["kind"] == EV_RULE_BEGIN]
            ends = {r["code"] for r in out["records"] if r["kind"] == EV_RULE_END}
            assert begins[-1]["code"] == 2 and 2 not in ends
        finally:
            ring.close()
