"""Unit tests for WMEs."""

import pytest

from repro.wm.wme import NIL, WME


class TestAccess:
    def test_get_assigned_attribute(self):
        w = WME("block", {"name": "b1", "size": 3}, 1)
        assert w.get("name") == "b1"
        assert w.get("size") == 3

    def test_missing_attribute_is_nil(self):
        w = WME("block", {"name": "b1"}, 1)
        assert w.get("size") == NIL
        assert w["size"] == "nil"

    def test_getitem(self):
        w = WME("block", {"name": "b1"}, 1)
        assert w["name"] == "b1"

    def test_attributes_returns_fresh_dict(self):
        w = WME("block", {"name": "b1"}, 1)
        d = w.attributes
        d["name"] = "tampered"
        assert w.get("name") == "b1"

    def test_items_iteration_sorted(self):
        w = WME("c", {"z": 1, "a": 2}, 1)
        assert list(w.items()) == [("a", 2), ("z", 1)]

    def test_class_name_and_timestamp(self):
        w = WME("goal", {}, 42)
        assert w.class_name == "goal"
        assert w.timestamp == 42


class TestIdentity:
    def test_equal_contents_equal_timestamp(self):
        a = WME("c", {"x": 1}, 5)
        b = WME("c", {"x": 1}, 5)
        assert a == b
        assert hash(a) == hash(b)

    def test_attr_order_irrelevant(self):
        a = WME("c", {"x": 1, "y": 2}, 5)
        b = WME("c", {"y": 2, "x": 1}, 5)
        assert a == b

    def test_different_timestamps_differ(self):
        assert WME("c", {"x": 1}, 1) != WME("c", {"x": 1}, 2)

    def test_different_class_differ(self):
        assert WME("c", {"x": 1}, 1) != WME("d", {"x": 1}, 1)

    def test_not_equal_to_other_types(self):
        assert WME("c", {}, 1) != "not a wme"

    def test_content_key_ignores_timestamp(self):
        a = WME("c", {"x": 1}, 1)
        b = WME("c", {"x": 1}, 99)
        assert a.content_key() == b.content_key()

    def test_usable_in_sets(self):
        s = {WME("c", {"x": 1}, 1), WME("c", {"x": 1}, 1), WME("c", {"x": 2}, 2)}
        assert len(s) == 2


class TestWithUpdates:
    def test_update_changes_value(self):
        w = WME("c", {"x": 1, "y": 2}, 1)
        w2 = w.with_updates({"x": 10}, 7)
        assert w2.get("x") == 10
        assert w2.get("y") == 2
        assert w2.timestamp == 7

    def test_update_adds_attribute(self):
        w = WME("c", {"x": 1}, 1)
        w2 = w.with_updates({"z": 3}, 2)
        assert w2.get("z") == 3

    def test_original_untouched(self):
        w = WME("c", {"x": 1}, 1)
        w.with_updates({"x": 2}, 2)
        assert w.get("x") == 1


class TestRepr:
    def test_repr_surface_form(self):
        w = WME("block", {"name": "b1", "size": 3}, 4)
        assert repr(w) == "(block ^name b1 ^size 3)@4"

    def test_repr_empty_attrs(self):
        assert repr(WME("goal", {}, 1)) == "(goal)@1"

    def test_repr_quotes_spacey_strings(self):
        w = WME("note", {"text": "two words"}, 1)
        assert "^text |two words|" in repr(w)
