"""Tests for working-memory persistence (dump/load facts)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import ParseError
from repro.wm.io import dumps, load_facts, parse_facts_text
from repro.wm.memory import WorkingMemory


class TestDumps:
    def test_empty(self):
        assert dumps(WorkingMemory()) == ""

    def test_timestamp_order(self):
        wm = WorkingMemory()
        wm.make("b", x=2)
        wm.make("a", x=1)
        lines = dumps(wm).splitlines()
        assert lines == ["(b ^x 2)", "(a ^x 1)"]

    def test_quoting(self):
        wm = WorkingMemory()
        wm.make("note", text="two words", n="42")
        out = dumps(wm)
        assert "|two words|" in out
        assert "|42|" in out  # string "42" must not round-trip into int 42

    def test_no_attrs(self):
        wm = WorkingMemory()
        wm.make("goal")
        assert dumps(wm) == "(goal)\n"


class TestRoundTrip:
    def test_content_round_trips(self):
        wm = WorkingMemory()
        wm.make("edge", src="n0", dst="n1")
        wm.make("dist", node="n0", cost=0)
        wm.make("note", text="hello world", ratio=2.5)
        loaded = load_facts(dumps(wm))
        original = sorted(w.content_key() for w in wm)
        reloaded = sorted(w.content_key() for w in loaded)
        assert original == reloaded

    def test_load_into_existing_memory(self):
        wm = WorkingMemory()
        wm.make("pre", x=1)
        load_facts("(extra ^y 2)", wm)
        assert wm.count_class("pre") == 1
        assert wm.count_class("extra") == 1

    symbols = st.from_regex(r"[a-z][a-z0-9\-]{0,8}", fullmatch=True).filter(
        lambda s: not s.endswith("-")
    )
    values = st.one_of(
        symbols,
        st.integers(-10_000, 10_000),
        st.floats(allow_nan=False, allow_infinity=False, width=32).map(
            lambda f: round(f, 3)
        ),
        st.text(
            alphabet=st.characters(
                whitelist_categories=("Ll", "Nd", "Zs"), max_codepoint=127
            ),
            max_size=12,
        ).filter(lambda s: "|" not in s),
    )

    @settings(max_examples=100, deadline=None)
    @given(
        facts=st.lists(
            st.tuples(
                symbols,
                st.dictionaries(symbols, values, max_size=4),
            ),
            max_size=8,
        )
    )
    def test_property_round_trip(self, facts):
        wm = WorkingMemory()
        for cls, attrs in facts:
            wm.make(cls, attrs)
        reloaded = load_facts(dumps(wm))
        # repr-keyed sort: content keys mix ints and strs, which do not
        # order against each other directly.
        assert sorted((w.content_key() for w in wm), key=repr) == sorted(
            (w.content_key() for w in reloaded), key=repr
        )


class TestParseErrors:
    def test_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_facts_text("(edge ^src <x>)")

    def test_unclosed(self):
        with pytest.raises(ParseError):
            parse_facts_text("(edge ^src a")

    def test_comments_allowed(self):
        facts = parse_facts_text("; header\n(a ^x 1) ; trailing\n")
        assert facts == [("a", {"x": 1})]


class TestCliDumpWm(object):
    def test_dump_wm_flag(self, tmp_path):
        from repro.cli import main

        prog = tmp_path / "p.pl"
        prog.write_text(
            "(literalize c v)\n"
            "(p bump (c ^v {<x> < 2}) --> (modify 1 ^v (compute <x> + 1)))\n"
        )
        facts = tmp_path / "f.pl"
        facts.write_text("(c ^v 0)\n")
        out = tmp_path / "final.pl"
        rc = main(
            ["run", str(prog), "--facts", str(facts), "--dump-wm", str(out)]
        )
        assert rc == 0
        assert "(c ^v 2)" in out.read_text()
        reloaded = load_facts(out.read_text())
        assert reloaded.count_class("c") == 1
