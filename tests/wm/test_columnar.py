"""Property tests: the columnar store is observationally identical to the
dict store, and its shared-memory machinery (growth, journal, reader
attach/refresh, cleanup) is sound.

The equivalence suite drives both stores through identical randomized
scripts and asserts every observable agrees after every operation —
contents, order, counts, timestamps, listener event sequences, and
``dump_records`` round-trips. That is the contract that lets
``EngineConfig(wm_backend="columnar")`` claim byte-identical runs.
"""

import glob

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import WorkingMemoryError
from repro.wm.columnar import ColumnarReader, ColumnarWorkingMemory
from repro.wm.memory import WorkingMemory

CLASSES = ["alpha", "beta", "gamma"]
ATTRS = ["k", "m", "tag"]
#: Every encodable value shape: symbols, small/big ints, floats, bools.
VALUES = [0, 1, -7, 2**70, 1.5, -0.0, True, False, "sym", "oth-er", ""]

#: Script steps the equivalence suite replays into both stores.
step_strategy = st.one_of(
    st.tuples(
        st.just("make"),
        st.sampled_from(CLASSES),
        st.lists(
            st.tuples(st.sampled_from(ATTRS), st.sampled_from(VALUES)),
            max_size=3,
        ),
    ),
    st.tuples(st.just("remove"), st.integers(0, 10_000)),
    st.tuples(st.just("discard"), st.integers(0, 10_000)),
    st.tuples(st.just("clear"), st.sampled_from(CLASSES)),
)


def observables(wm):
    return {
        "len": len(wm),
        "iter": [repr(w) for w in wm],
        "by_class": {c: [repr(w) for w in wm.by_class(c)] for c in CLASSES},
        "counts": {c: wm.count_class(c) for c in CLASSES},
        "latest": wm.latest_timestamp,
        "records": wm.dump_records(),
    }


class TestEquivalence:
    @settings(
        max_examples=80,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(script=st.lists(step_strategy, min_size=1, max_size=30))
    def test_matches_dict_store_at_every_step(self, script):
        # Tiny initial capacity so realistic scripts cross growth
        # boundaries (rows, journal) many times.
        col = ColumnarWorkingMemory(initial_capacity=2)
        ref = WorkingMemory()
        col_events, ref_events = [], []
        col.add_listener(lambda w, a: col_events.append((repr(w), a)))
        ref.add_listener(lambda w, a: ref_events.append((repr(w), a)))
        live_col, live_ref = [], []
        try:
            for step in script:
                if step[0] == "make":
                    _, cls, pairs = step
                    attrs = dict(pairs)
                    live_col.append(col.make(cls, attrs))
                    live_ref.append(ref.make(cls, attrs))
                elif step[0] == "remove" and live_ref:
                    idx = step[1] % len(live_ref)
                    col.remove(live_col.pop(idx))
                    ref.remove(live_ref.pop(idx))
                elif step[0] == "discard" and live_ref:
                    idx = step[1] % len(live_ref)
                    assert col.discard(live_col.pop(idx)) == ref.discard(
                        live_ref.pop(idx)
                    )
                elif step[0] == "clear":
                    assert col.clear_class(step[1]) == ref.clear_class(step[1])
                    live_col = [w for w in live_col if w.class_name != step[1]]
                    live_ref = [w for w in live_ref if w.class_name != step[1]]
                assert observables(col) == observables(ref)
                assert col_events == ref_events
        finally:
            col.close()

    def test_dump_records_round_trip_byte_identical(self):
        col = ColumnarWorkingMemory()
        try:
            a = col.make("alpha", k=1, m="x")
            col.make("beta", k=2.5)
            col.remove(a)
            col.make("alpha", k=3)
            records, next_ts = col.dump_records()
            reloaded = ColumnarWorkingMemory()
            try:
                reloaded.load_records(records, next_ts)
                assert reloaded.dump_records() == (records, next_ts)
            finally:
                reloaded.close()
        finally:
            col.close()

    def test_duplicate_insert_leaves_no_orphan_row(self):
        col = ColumnarWorkingMemory()
        try:
            wme = col.make("alpha", k=1)
            journal_before = col.journal_len
            with pytest.raises(WorkingMemoryError):
                col.add(wme)
            assert col.journal_len == journal_before
            assert len(col) == 1
        finally:
            col.close()

    def test_remove_absent_raises_without_journal_entry(self):
        col = ColumnarWorkingMemory()
        try:
            wme = col.make("alpha", k=1)
            col.remove(wme)
            journal_before = col.journal_len
            with pytest.raises(WorkingMemoryError):
                col.remove(wme)
            assert col.journal_len == journal_before
        finally:
            col.close()

    def test_unencodable_value_rejected(self):
        col = ColumnarWorkingMemory()
        try:
            with pytest.raises(WorkingMemoryError):
                col.make("alpha", k=(1, 2))
        finally:
            col.close()


class TestReader:
    """In-process reader attach/refresh against a live store."""

    def replica(self, reader):
        wm = WorkingMemory()
        by_ts = {}

        def on_add(w):
            wm.add(w)
            by_ts[w.timestamp] = w

        def on_remove(w):
            del by_ts[w.timestamp]
            wm.remove(w)

        return wm, on_add, on_remove

    def test_attach_builds_identical_replica(self):
        col = ColumnarWorkingMemory(initial_capacity=2)
        try:
            for i in range(20):
                col.make("alpha", k=i, m=f"s{i % 3}")
            col.remove(col.by_class("alpha")[3])
            reader = ColumnarReader(col.attach_spec())
            rep, on_add, on_remove = self.replica(reader)
            n = reader.attach(on_add)
            assert n == len(col)
            assert observables(rep) == observables(col)
            reader.close()
        finally:
            col.close()

    def test_refresh_tracks_churn_growth_and_new_classes(self):
        col = ColumnarWorkingMemory(initial_capacity=2)
        try:
            col.make("alpha", k=1)
            reader = ColumnarReader(col.attach_spec())
            rep, on_add, on_remove = self.replica(reader)
            reader.attach(on_add)
            for cycle in range(6):
                # Each cycle: churn, force growth, add a brand-new class
                # and a brand-new attribute mid-run.
                for i in range(10):
                    col.make("alpha", k=i, m=f"sym{cycle}")
                victims = col.by_class("alpha")[::3]
                for w in victims:
                    col.remove(w)
                col.make(f"late{cycle}", tag=cycle)
                reader.refresh(col.cycle_info(), on_add, on_remove)
                assert rep.dump_records()[0] == col.dump_records()[0]
            reader.close()
        finally:
            col.close()

    def test_refresh_is_cursor_bounded(self):
        col = ColumnarWorkingMemory()
        try:
            col.make("alpha", k=1)
            reader = ColumnarReader(col.attach_spec())
            rep, on_add, on_remove = self.replica(reader)
            reader.attach(on_add)
            info = col.cycle_info()
            # Mutations after the cursor snapshot must not be applied.
            col.make("alpha", k=2)
            applied = reader.refresh(info, on_add, on_remove)
            assert applied == 0
            assert len(rep) == 1
            reader.close()
        finally:
            col.close()


class TestRawReader:
    """The non-materializing reader surface the vectorized probe kernel is
    built on: ``refresh_raw``, ``attach_bulk`` and the intern-map queries
    (``offset_of``/``nil_offset``) that back packed probe keys."""

    def test_refresh_raw_advances_without_materializing(self):
        col = ColumnarWorkingMemory(initial_capacity=2)
        try:
            col.make("alpha", k=0)  # pre-attach: snapshot, not journal
            reader = ColumnarReader(col.attach_spec())
            for i in range(10):  # forces row + journal growth
                col.make("alpha", k=i, m=f"s{i}")
            col.remove(col.by_class("alpha")[2])
            col.make("late", tag=1)
            records = []
            n = reader.refresh_raw(
                col.cycle_info(),
                lambda added, cid, row: records.append((added, cid, row)),
            )
            assert n == len(records) == 12
            assert sum(1 for added, _c, _r in records if added) == 11
            for cid in {cid for _a, cid, _r in records}:
                table = reader.table(cid)
                assert table.wme_by_row == {}  # nothing decoded
                assert table.rows_known > max(
                    row for _a, c, row in records if c == cid
                )
            reader.close()
        finally:
            col.close()

    def test_refresh_raw_is_cursor_bounded(self):
        col = ColumnarWorkingMemory()
        try:
            col.make("alpha", k=1)
            reader = ColumnarReader(col.attach_spec())
            info = col.cycle_info()
            col.make("alpha", k=2)  # after the cursor snapshot
            applied = reader.refresh_raw(info, lambda *_: None)
            assert applied == 0
            reader.close()
        finally:
            col.close()

    def test_attach_bulk_delivers_attach_in_class_batches(self):
        col = ColumnarWorkingMemory(initial_capacity=2)
        try:
            for i in range(12):
                col.make("alpha" if i % 2 else "beta", k=i)
            col.remove(col.by_class("alpha")[1])
            r1 = ColumnarReader(col.attach_spec())
            per_wme = []
            n1 = r1.attach(lambda w: per_wme.append(w))
            r2 = ColumnarReader(col.attach_spec())
            batches = []
            n2 = r2.attach_bulk(lambda name, batch: batches.append((name, batch)))
            assert n1 == n2 == len(col)
            # One batch per non-empty class, rows in timestamp order, and
            # the concatenation replays exactly the per-WME attach.
            assert {name for name, _b in batches} == {"alpha", "beta"}
            assert len(batches) == 2
            flat = [repr(w) for _n, b in batches for w in b]
            assert sorted(flat) == sorted(repr(w) for w in per_wme)
            for _name, batch in batches:
                assert [w.timestamp for w in batch] == sorted(
                    w.timestamp for w in batch
                )
            r1.close()
            r2.close()
        finally:
            col.close()

    def test_offset_of_tracks_the_heap_across_refresh(self):
        col = ColumnarWorkingMemory()
        try:
            col.make("alpha", k="sym", m=2**70)
            reader = ColumnarReader(col.attach_spec())
            off = reader.offset_of("sym")
            assert off is not None and reader._resolve(off) == "sym"
            assert reader.offset_of(str(2**70)) is not None
            assert reader.offset_of("never-interned") is None
            # A symbol interned after attach is invisible (its row is too)
            # until a refresh advances the heap cursor — the packed-probe
            # "definitive miss" protocol depends on exactly this.
            col.make("alpha", k="late-sym")
            assert reader.offset_of("late-sym") is None
            reader.refresh_raw(col.cycle_info(), lambda *_: None)
            assert reader.offset_of("late-sym") is not None
            reader.close()
        finally:
            col.close()

    def test_nil_offset_matches_interned_nil(self):
        col = ColumnarWorkingMemory()
        try:
            col.make("alpha", k="nil", m=1)
            reader = ColumnarReader(col.attach_spec())
            off = reader.nil_offset()
            assert off is not None and reader._resolve(off) == "nil"
            reader.close()
        finally:
            col.close()


class TestLifecycle:
    def test_close_unlinks_all_segments(self):
        col = ColumnarWorkingMemory()
        col.make("alpha", k=1, m="x")
        names = col.segment_names
        assert names
        col.close()
        for name in names:
            assert not glob.glob(f"/dev/shm/{name}")

    def test_close_idempotent(self):
        col = ColumnarWorkingMemory()
        col.make("alpha", k=1)
        col.close()
        col.close()

    def test_growth_unlinks_old_generations(self):
        col = ColumnarWorkingMemory(initial_capacity=2)
        try:
            for i in range(50):
                col.make("alpha", k=i)
            # Only the newest generation's segments may exist on disk.
            live = set(col.segment_names)
            on_disk = {
                name.rsplit("/", 1)[-1]
                for name in glob.glob(f"/dev/shm/{col.token}*")
            }
            assert on_disk == live
        finally:
            col.close()
        # And close() then removes that newest generation too.
        assert not glob.glob(f"/dev/shm/{col.token}*")
