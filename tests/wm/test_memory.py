"""Unit tests for the working-memory store."""

import pytest

from repro.errors import WorkingMemoryError
from repro.wm.memory import WorkingMemory
from repro.wm.template import TemplateRegistry
from repro.wm.wme import WME


@pytest.fixture
def wm():
    return WorkingMemory()


class TestMakeAndRemove:
    def test_make_assigns_increasing_timestamps(self, wm):
        a = wm.make("c", x=1)
        b = wm.make("c", x=2)
        assert b.timestamp == a.timestamp + 1

    def test_make_with_dict_and_kwargs(self, wm):
        w = wm.make("c", {"a": 1}, b=2)
        assert w.get("a") == 1
        assert w.get("b") == 2

    def test_kwargs_translate_underscores(self, wm):
        w = wm.make("block", on_top_of="nil")
        assert w.get("on-top-of") == "nil"

    def test_len_counts_all_classes(self, wm):
        wm.make("a", x=1)
        wm.make("b", x=1)
        assert len(wm) == 2

    def test_contains(self, wm):
        w = wm.make("c", x=1)
        assert w in wm
        wm.remove(w)
        assert w not in wm

    def test_remove_absent_raises(self, wm):
        w = wm.make("c", x=1)
        wm.remove(w)
        with pytest.raises(WorkingMemoryError):
            wm.remove(w)

    def test_discard_returns_flag(self, wm):
        w = wm.make("c", x=1)
        assert wm.discard(w) is True
        assert wm.discard(w) is False

    def test_duplicate_add_raises(self, wm):
        w = wm.make("c", x=1)
        with pytest.raises(WorkingMemoryError):
            wm.add(w)

    def test_add_prebuilt_advances_timestamp(self, wm):
        wm.add(WME("c", {"x": 1}, 10))
        nxt = wm.make("c", x=2)
        assert nxt.timestamp == 11

    def test_allocate_timestamp(self, wm):
        t1 = wm.allocate_timestamp()
        t2 = wm.allocate_timestamp()
        assert t2 == t1 + 1
        assert wm.latest_timestamp == t2


class TestQueries:
    def test_by_class_in_timestamp_order(self, wm):
        a = wm.make("c", x=1)
        wm.make("d", x=9)
        b = wm.make("c", x=2)
        assert wm.by_class("c") == (a, b)

    def test_by_class_unknown_is_empty(self, wm):
        assert wm.by_class("nope") == ()

    def test_count_class(self, wm):
        wm.make("c", x=1)
        wm.make("c", x=2)
        assert wm.count_class("c") == 2
        assert wm.count_class("d") == 0

    def test_find_by_attribute(self, wm):
        wm.make("c", x=1, y="a")
        hit = wm.make("c", x=2, y="b")
        assert wm.find("c", x=2) == (hit,)
        assert wm.find("c", x=3) == ()

    def test_find_with_underscore_translation(self, wm):
        w = wm.make("block", on_top_of="b2")
        assert wm.find("block", on_top_of="b2") == (w,)

    def test_snapshot_global_timestamp_order(self, wm):
        a = wm.make("b", x=1)
        b = wm.make("a", x=2)
        c = wm.make("b", x=3)
        assert wm.snapshot() == (a, b, c)

    def test_iteration_covers_everything(self, wm):
        made = {wm.make("c", x=i) for i in range(5)}
        made |= {wm.make("d", x=i) for i in range(3)}
        assert set(wm) == made


class TestListeners:
    def test_listener_sees_adds_and_removes(self, wm):
        events = []
        wm.add_listener(lambda w, added: events.append((w.get("x"), added)))
        w = wm.make("c", x=1)
        wm.remove(w)
        assert events == [(1, True), (1, False)]

    def test_listener_removal(self, wm):
        events = []
        listener = lambda w, added: events.append(added)  # noqa: E731
        wm.add_listener(listener)
        wm.make("c", x=1)
        wm.remove_listener(listener)
        wm.make("c", x=2)
        assert events == [True]

    def test_multiple_listeners_in_order(self, wm):
        order = []
        wm.add_listener(lambda w, a: order.append("first"))
        wm.add_listener(lambda w, a: order.append("second"))
        wm.make("c", x=1)
        assert order == ["first", "second"]

    def test_clear_class_notifies(self, wm):
        events = []
        wm.make("c", x=1)
        wm.make("c", x=2)
        wm.make("d", x=3)
        wm.add_listener(lambda w, added: events.append((w.class_name, added)))
        n = wm.clear_class("c")
        assert n == 2
        assert events == [("c", False), ("c", False)]
        assert wm.count_class("c") == 0
        assert wm.count_class("d") == 1

    def test_clear_absent_class_is_zero(self, wm):
        assert wm.clear_class("ghost") == 0


class TestTemplates:
    def test_strict_registry_rejects_undeclared_class(self):
        reg = TemplateRegistry(strict=True)
        reg.declare("block", ["name"])
        wm = WorkingMemory(reg)
        with pytest.raises(WorkingMemoryError, match="never declared"):
            wm.make("ghost", x=1)

    def test_strict_registry_rejects_undeclared_attr(self):
        reg = TemplateRegistry(strict=True)
        reg.declare("block", ["name"])
        wm = WorkingMemory(reg)
        with pytest.raises(WorkingMemoryError, match="no attribute"):
            wm.make("block", size=3)

    def test_instantiation_class_always_allowed(self):
        reg = TemplateRegistry(strict=True)
        wm = WorkingMemory(reg)
        wm.make("instantiation", rule="r", id=1)  # no error

    def test_permissive_registry_allows_anything(self):
        wm = WorkingMemory(TemplateRegistry(strict=False))
        wm.make("anything", whatever=1)

    def test_from_program_strictness(self):
        from repro.lang.parser import parse_program

        typed = TemplateRegistry.from_program(
            parse_program("(literalize c a)")
        )
        untyped = TemplateRegistry.from_program(parse_program(""))
        assert typed.strict
        assert not untyped.strict
        assert typed.attributes("c") == frozenset({"a"})
        assert untyped.attributes("c") is None

    def test_declare_widens(self):
        reg = TemplateRegistry(strict=True)
        reg.declare("c", ["a"])
        reg.declare("c", ["b"])
        assert reg.attributes("c") == frozenset({"a", "b"})
        assert reg.class_names == frozenset({"c"})
