"""Unit tests for LEX and MEA conflict-resolution strategies."""

import pytest

from repro.baseline.strategy import LexStrategy, MeaStrategy, create_strategy
from repro.lang.parser import parse_program
from repro.match.instantiation import Instantiation
from repro.wm.wme import WME

PLAIN = parse_program("(p plain (a ^x <x>) (b ^x <x>) --> (halt))").rules[0]
SPECIFIC = parse_program(
    "(p specific (a ^x <x> ^y 1 ^z 2) (b ^x <x>) --> (halt))"
).rules[0]
SALIENT = parse_program(
    "(p salient (salience 5) (a ^x <x>) (b ^x <x>) --> (halt))"
).rules[0]


def make_inst(rule, ts_a, ts_b, x=0):
    return Instantiation(
        rule, (WME("a", {"x": x}, ts_a), WME("b", {"x": x}, ts_b)), {"x": x}
    )


class TestLex:
    def test_recency_wins(self):
        older = make_inst(PLAIN, 1, 2)
        newer = make_inst(PLAIN, 1, 5)
        assert LexStrategy().select([older, newer]) == newer

    def test_recency_vector_lexicographic(self):
        # (9, 1) beats (8, 7): compare most recent first.
        a = make_inst(PLAIN, 9, 1)
        b = make_inst(PLAIN, 8, 7)
        assert LexStrategy().select([a, b]) == a

    def test_specificity_breaks_recency_tie(self):
        plain = make_inst(PLAIN, 1, 2)
        specific = make_inst(SPECIFIC, 1, 2)
        assert LexStrategy().select([plain, specific]) == specific

    def test_salience_dominates_recency(self):
        salient_old = make_inst(SALIENT, 1, 2)
        plain_new = make_inst(PLAIN, 10, 11)
        assert LexStrategy().select([salient_old, plain_new]) == salient_old

    def test_rule_name_breaks_full_tie_deterministically(self):
        # Same timestamps, same specificity: alphabetically first rule wins.
        other = parse_program("(p aaa (a ^x <x>) (b ^x <x>) --> (halt))").rules[0]
        i1 = make_inst(PLAIN, 1, 2)
        i2 = make_inst(other, 1, 2)
        assert LexStrategy().select([i1, i2]) == i2

    def test_select_none_on_empty(self):
        assert LexStrategy().select([]) is None

    def test_order_is_total_and_stable(self):
        insts = [make_inst(PLAIN, i, i + 1) for i in range(1, 9, 2)]
        ordered = LexStrategy().order(insts)
        assert ordered[0].recency == max(i.recency for i in insts)
        assert ordered == sorted(
            insts, key=LexStrategy().sort_key, reverse=True
        )


class TestMea:
    def test_first_ce_recency_dominates(self):
        # LEX would prefer b (overall recency 9); MEA compares the first
        # CE's timestamp: 5 > 2, so a wins.
        a = make_inst(PLAIN, 5, 6)
        b = make_inst(PLAIN, 2, 9)
        assert MeaStrategy().select([a, b]) == a
        assert LexStrategy().select([a, b]) == b

    def test_falls_back_to_lex_on_first_ce_tie(self):
        plain = make_inst(PLAIN, 5, 2)
        specific = make_inst(SPECIFIC, 5, 2)
        assert MeaStrategy().select([plain, specific]) == specific

    def test_salience_still_first(self):
        salient = make_inst(SALIENT, 1, 1)
        plain = make_inst(PLAIN, 9, 9)
        assert MeaStrategy().select([salient, plain]) == salient


class TestFactory:
    def test_create_by_name(self):
        assert isinstance(create_strategy("lex"), LexStrategy)
        assert isinstance(create_strategy("mea"), MeaStrategy)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            create_strategy("random")
