"""Tests for the sequential OPS5 engine."""

import pytest

from repro.errors import CycleLimitExceeded
from repro.baseline import OPS5Engine
from repro.lang.parser import parse_program


def engine_for(src, **kw):
    return OPS5Engine(parse_program(src), **kw)


COUNTER = """
(literalize count value)
(p bump
    (count ^value {<v> < 3})
    -->
    (modify 1 ^value (compute <v> + 1)))
"""


class TestSequentialCycle:
    def test_one_firing_per_cycle(self):
        src = """
        (literalize f n)
        (literalize g n)
        (p copy (f ^n <n>) --> (make g ^n <n>))
        """
        e = engine_for(src)
        for i in range(5):
            e.make("f", n=i)
        result = e.run()
        assert result.cycles == 5  # PARULEL does this in 1
        assert result.firings == 5
        assert e.wm.count_class("g") == 5

    def test_counter_runs_to_quiescence(self):
        e = engine_for(COUNTER)
        e.make("count", value=0)
        result = e.run()
        assert result.cycles == 3
        assert result.reason == "quiescence"
        assert e.wm.find("count", value=3)

    def test_halt(self):
        src = """
        (literalize f n)
        (p stop (f ^n <n>) --> (write stopping) (halt))
        """
        e = engine_for(src)
        e.make("f", n=1)
        e.make("f", n=2)
        result = e.run()
        assert result.reason == "halt"
        assert result.cycles == 1  # halt prevents the second firing
        assert result.output == ["stopping"]

    def test_cycle_limit(self):
        src = """
        (literalize tick n)
        (p forever (tick ^n <n>) --> (modify 1 ^n (compute <n> + 1)))
        """
        e = engine_for(src)
        e.make("tick", n=0)
        with pytest.raises(CycleLimitExceeded):
            e.run(max_cycles=7)

    def test_effects_visible_immediately(self):
        # The second firing must see the first's make (unlike PARULEL's
        # snapshot semantics within a cycle).
        src = """
        (literalize seed n)
        (literalize chain n)
        (p start (seed ^n <n>) -(chain ^n <n>) --> (make chain ^n <n>))
        (p grow (chain ^n {<n> < 3}) --> (make chain ^n (compute <n> + 1)))
        """
        e = engine_for(src)
        e.make("seed", n=0)
        result = e.run()
        assert e.wm.count_class("chain") == 4  # 0,1,2,3 sequentially

    def test_fired_rules_recorded_in_order(self):
        e = engine_for(COUNTER)
        e.make("count", value=1)
        result = e.run()
        assert result.fired_rules == ["bump", "bump"]

    def test_step_returns_winner(self):
        e = engine_for(COUNTER)
        e.make("count", value=2)
        winner = e.step()
        assert winner.rule.name == "bump"
        assert e.step() is None


class TestStrategySelection:
    PROG = """
    (literalize goal n)
    (literalize item n)
    (literalize log rule)
    (p general (item ^n <n>) --> (make log ^rule general) (remove 1))
    (p specific (item ^n <n> ^n > 0) --> (make log ^rule specific) (remove 1))
    """

    def test_lex_prefers_specific_rule(self):
        e = engine_for(self.PROG, strategy="lex")
        e.make("item", n=5)
        e.step()
        assert e.wm.by_class("log")[0].get("rule") == "specific"

    def test_mea_uses_first_ce_recency(self):
        src = """
        (literalize ctx name)
        (literalize item n)
        (literalize log ctx)
        (p via-old (ctx ^name old) (item ^n <n>) --> (make log ^ctx old) (remove 2))
        (p via-new (ctx ^name new) (item ^n <n>) --> (make log ^ctx new) (remove 2))
        """
        for strategy, expected in (("mea", "new"),):
            e = engine_for(src, strategy=strategy)
            e.make("ctx", name="old")
            e.make("ctx", name="new")  # more recent context
            e.make("item", n=1)
            e.step()
            assert e.wm.by_class("log")[0].get("ctx") == expected

    def test_salience_priority(self):
        src = """
        (literalize item n)
        (literalize log rule)
        (p low (item ^n <n>) --> (make log ^rule low) (remove 1))
        (p high (salience 9) (item ^n <n>) --> (make log ^rule high) (remove 1))
        """
        e = engine_for(src)
        e.make("item", n=1)
        e.step()
        assert e.wm.by_class("log")[0].get("rule") == "high"


class TestMatcherChoices:
    @pytest.mark.parametrize("matcher", ["rete", "treat", "naive"])
    def test_same_result_all_matchers(self, matcher):
        e = engine_for(COUNTER, matcher=matcher)
        e.make("count", value=0)
        result = e.run()
        assert result.cycles == 3
        assert e.wm.find("count", value=3)


class TestModifyRemoveApplication:
    def test_modify_then_remove_same_wme_is_safe(self):
        # A rule that modifies CE 1 and also removes it: the remove targets
        # the already-displaced WME; discard semantics tolerate it.
        src = """
        (literalize f n)
        (p odd (f ^n {<n> <> 99}) --> (modify 1 ^n 99) (remove 1))
        """
        e = engine_for(src)
        e.make("f", n=1)
        e.run(max_cycles=5)
        # modify re-made it with n=99, remove discarded the stale original.
        assert [w.get("n") for w in e.wm.by_class("f")] == [99]
