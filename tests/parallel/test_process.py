"""Tests for the process-parallel match pool (GIL-free backend)."""

import os
import signal

import pytest

from repro.core import EngineConfig, ParulelEngine
from repro.errors import MatchError
from repro.lang.parser import parse_program
from repro.match.interface import MATCHER_NAMES, create_matcher
from repro.parallel.process import (
    ProcessMatchPool,
    ProcessMatcher,
    default_worker_count,
)
from repro.wm.memory import WorkingMemory

SRC = """
(p j0 (a0 ^k <k>) (b0 ^k <k>) --> (halt))
(p j1 (a1 ^k <k>) (b1 ^k <k>) --> (halt))
(p j2 (a2 ^k <k>) (b2 ^k <k>) --> (halt))
(p neg (a0 ^k <k>) -(b1 ^k <k>) --> (halt))
"""


def load(wm, n=6):
    for r in range(3):
        for i in range(n):
            wm.make(f"a{r}", k=i % 3)
            wm.make(f"b{r}", k=i % 3)


def keys(insts):
    return sorted(i.key for i in insts)


class TestProcessMatchPool:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_agrees_with_rete(self, n_workers):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        rete = create_matcher("rete", prog.rules, wm)
        load(wm)
        with ProcessMatchPool(prog.rules, wm, n_workers) as pool:
            assert keys(pool.conflict_set()) == keys(rete.instantiations())

    def test_deterministic_order_and_site_merge(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        load(wm)
        with ProcessMatchPool(prog.rules, wm, 3) as pool:
            first = [i.key for i in pool.conflict_set()]
            second = [i.key for i in pool.conflict_set()]
        assert first == second
        # Same merge order as the threaded pool: site order, and within a
        # site the compiled-rule order.
        with ProcessMatchPool(prog.rules, wm, 3) as again:
            assert [i.key for i in again.conflict_set()] == first

    def test_incremental_deltas_between_calls(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        rete = create_matcher("rete", prog.rules, wm)
        with ProcessMatchPool(prog.rules, wm, 2) as pool:
            assert pool.conflict_set() == []
            live = []
            for i in range(4):
                live.append(wm.make("a0", k=i % 2))
                live.append(wm.make("b0", k=i % 2))
                assert keys(pool.conflict_set()) == keys(rete.instantiations())
            wm.remove(live[0])
            wm.remove(live[1])
            assert keys(pool.conflict_set()) == keys(rete.instantiations())

    def test_instantiations_reference_parent_wme_objects(self):
        # The rebuilt instantiations must carry the parent's exact WME
        # objects so downstream identity (refraction, provenance) holds.
        prog = parse_program(SRC)
        wm = WorkingMemory()
        a = wm.make("a0", k=1)
        b = wm.make("b0", k=1)
        with ProcessMatchPool(prog.rules, wm, 2) as pool:
            insts = [i for i in pool.conflict_set() if i.rule.name == "j0"]
        assert len(insts) == 1
        assert insts[0].wmes[0] is a
        assert insts[0].wmes[1] is b

    def test_empty_sites_get_no_process(self):
        prog = parse_program(SRC)  # 4 rules
        wm = WorkingMemory()
        rete = create_matcher("rete", prog.rules, wm)
        load(wm)
        with ProcessMatchPool(prog.rules, wm, 16) as pool:
            assert pool.active_sites == tuple(range(4))
            assert len(pool._procs) == 4
            assert keys(pool.conflict_set()) == keys(rete.instantiations())

    def test_pool_with_no_rules(self):
        pool = ProcessMatchPool([], WorkingMemory(), 4)
        assert pool.active_sites == ()
        assert pool.conflict_set() == []
        pool.close()

    def test_zero_workers_rejected(self):
        prog = parse_program(SRC)
        with pytest.raises(ValueError):
            ProcessMatchPool(prog.rules, WorkingMemory(), 0)

    def test_close_idempotent_and_closed_pool_raises(self):
        prog = parse_program(SRC)
        pool = ProcessMatchPool(prog.rules, WorkingMemory(), 2)
        pool.close()
        pool.close()
        with pytest.raises(MatchError):
            pool.conflict_set()

    def test_close_detaches_from_working_memory(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        pool = ProcessMatchPool(prog.rules, wm, 2)
        pool.close()
        wm.make("a0", k=0)  # must not notify a closed recorder

    def test_workers_are_daemonic(self):
        prog = parse_program(SRC)
        with ProcessMatchPool(prog.rules, WorkingMemory(), 2) as pool:
            assert all(p.daemon for p in pool._procs.values())


class TestWorkerRobustness:
    def test_survives_worker_crash_mid_run(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        rete = create_matcher("rete", prog.rules, wm)
        load(wm)
        with ProcessMatchPool(prog.rules, wm, 2) as pool:
            before = keys(pool.conflict_set())
            assert before == keys(rete.instantiations())
            # SIGKILL a worker between cycles; the pool must respawn it and
            # replay the cumulative delta log.
            victim = pool.active_sites[0]
            pool._procs[victim].kill()
            pool._procs[victim].join()
            wm.make("a0", k=1)
            wm.make("b0", k=1)
            after = keys(pool.conflict_set())
            assert after == keys(rete.instantiations())
            assert len(after) > len(before)
            assert pool.respawns == 1
            # Subsequent cycles keep working with the respawned worker.
            wm.make("a1", k=2)
            wm.make("b1", k=2)
            assert keys(pool.conflict_set()) == keys(rete.instantiations())
            assert pool.respawns == 1

    def test_all_workers_crashing_still_recovers(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        rete = create_matcher("rete", prog.rules, wm)
        load(wm)
        with ProcessMatchPool(prog.rules, wm, 4) as pool:
            pool.conflict_set()
            for site in pool.active_sites:
                pool._procs[site].kill()
                pool._procs[site].join()
            assert keys(pool.conflict_set()) == keys(rete.instantiations())
            assert pool.respawns == len(pool.active_sites)

    @pytest.mark.skipif(
        not hasattr(signal, "SIGSTOP"), reason="needs SIGSTOP (POSIX)"
    )
    def test_wedged_worker_times_out_and_respawns(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        rete = create_matcher("rete", prog.rules, wm)
        load(wm)
        with ProcessMatchPool(prog.rules, wm, 2, timeout=0.5) as pool:
            pool.conflict_set()
            victim = pool.active_sites[0]
            os.kill(pool._procs[victim].pid, signal.SIGSTOP)
            wm.make("a0", k=2)
            wm.make("b0", k=2)
            assert keys(pool.conflict_set()) == keys(rete.instantiations())
            assert pool.respawns >= 1


class TestProcessMatcher:
    def test_registered_backend(self):
        assert "process" in MATCHER_NAMES
        prog = parse_program(SRC)
        wm = WorkingMemory()
        matcher = create_matcher("process:2", prog.rules, wm)
        assert isinstance(matcher, ProcessMatcher)
        assert matcher.pool.n_workers == 2
        matcher.close()

    def test_bad_worker_spec_rejected(self):
        prog = parse_program(SRC)
        with pytest.raises(ValueError):
            create_matcher("process:x", prog.rules, WorkingMemory())

    def test_zero_worker_spec_rejected(self):
        # Regression: an explicit 0 used to fall through a falsy
        # ``n_workers or default`` check and silently get the default.
        prog = parse_program(SRC)
        with pytest.raises(ValueError, match="worker"):
            create_matcher("process:0", prog.rules, WorkingMemory())

    def test_default_worker_count_bounds(self):
        assert 1 <= default_worker_count() <= 4

    def test_attaches_to_populated_memory(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        rete = create_matcher("rete", prog.rules, wm)
        load(wm)
        matcher = create_matcher("process:2", prog.rules, wm)
        try:
            assert keys(matcher.instantiations()) == keys(rete.instantiations())
        finally:
            matcher.close()

    def test_lazy_recompute_only_when_dirty(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        matcher = create_matcher("process:2", prog.rules, wm)
        try:
            wm.make("a0", k=1)
            wm.make("b0", k=1)
            first = matcher.instantiations()
            # No WM change: the cached conflict set is returned as-is.
            assert matcher.instantiations() is not first  # fresh snapshot list
            calls = []
            real = matcher.pool.conflict_set
            matcher.pool.conflict_set = lambda: calls.append(1) or real()
            matcher.instantiations()
            assert calls == []  # clean → no IPC round
            wm.make("a0", k=2)
            matcher.instantiations()
            assert calls == [1]  # dirty → exactly one recompute
        finally:
            matcher.pool.close()

    def test_engine_with_process_matcher_matches_rete(self):
        src = """
        (literalize edge src dst)
        (literalize path src dst)
        (p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
         --> (make path ^src <a> ^dst <b>))
        (p tc-extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)
         -(path ^src <a> ^dst <c>) --> (make path ^src <a> ^dst <c>))
        """
        prog = parse_program(src)
        ref = ParulelEngine(prog)
        eng = ParulelEngine(prog, EngineConfig(matcher="process:2"))
        for e in (ref, eng):
            for i in range(8):
                e.make("edge", src=f"n{i}", dst=f"n{i + 1}")
        r_ref = ref.run()
        r_eng = eng.run()
        eng.matcher.close()
        assert (r_eng.cycles, r_eng.firings) == (r_ref.cycles, r_ref.firings)
        paths = lambda wm: sorted(  # noqa: E731
            (w.get("src"), w.get("dst")) for w in wm.by_class("path")
        )
        assert paths(eng.wm) == paths(ref.wm)
