"""Tests for rule assignment, LPT, profiling, and copy-and-constrain."""

import pytest

from repro.errors import MatchError
from repro.lang.parser import parse_program
from repro.parallel.partition import (
    Assignment,
    copy_and_constrain,
    copy_and_constrain_program,
    hash_partitions,
    lpt_assignment,
    profile_rule_weights,
    round_robin_assignment,
)

PROG = parse_program(
    "(p r0 (c ^a <x>) --> (halt))"
    "(p r1 (c ^a <x>) --> (halt))"
    "(p r2 (c ^a <x>) --> (halt))"
    "(p r3 (c ^a <x>) --> (halt))"
    "(p r4 (c ^a <x>) --> (halt))"
)


class TestRoundRobin:
    def test_cyclic_distribution(self):
        a = round_robin_assignment(PROG.rules, 2)
        assert [a.site_of[f"r{i}"] for i in range(5)] == [0, 1, 0, 1, 0]

    def test_single_site(self):
        a = round_robin_assignment(PROG.rules, 1)
        assert set(a.site_of.values()) == {0}

    def test_more_sites_than_rules(self):
        a = round_robin_assignment(PROG.rules, 10)
        assert a.n_sites == 10
        a.validate(PROG.rules)

    def test_zero_sites_rejected(self):
        with pytest.raises(ValueError):
            round_robin_assignment(PROG.rules, 0)

    def test_rules_of_site(self):
        a = round_robin_assignment(PROG.rules, 2)
        assert [r.name for r in a.rules_of_site(0, PROG.rules)] == ["r0", "r2", "r4"]

    def test_validate_missing_rule(self):
        a = Assignment(n_sites=1, site_of={"r0": 0})
        with pytest.raises(ValueError, match="no site assignment"):
            a.validate(PROG.rules)

    def test_validate_out_of_range(self):
        a = Assignment(n_sites=1, site_of={r.name: 5 for r in PROG.rules})
        with pytest.raises(ValueError, match="only 1 sites"):
            a.validate(PROG.rules)


class TestLPT:
    def test_heaviest_rules_spread(self):
        weights = {"r0": 100.0, "r1": 90.0, "r2": 10.0, "r3": 5.0, "r4": 5.0}
        a = lpt_assignment(PROG.rules, 2, weights)
        # r0 and r1 must land on different sites.
        assert a.site_of["r0"] != a.site_of["r1"]
        loads = [0.0, 0.0]
        for name, w in weights.items():
            loads[a.site_of[name]] += w
        assert max(loads) <= 110  # near-balanced (optimal is 105)

    def test_missing_weight_defaults(self):
        a = lpt_assignment(PROG.rules, 2, {})
        a.validate(PROG.rules)

    def test_deterministic_given_ties(self):
        w = {r.name: 1.0 for r in PROG.rules}
        a1 = lpt_assignment(PROG.rules, 3, w)
        a2 = lpt_assignment(PROG.rules, 3, w)
        assert a1.site_of == a2.site_of


class TestProfileWeights:
    def test_busy_rule_weighs_more(self):
        prog = parse_program(
            "(literalize item n)"
            "(literalize out a b)"
            "(p heavy (item ^n <a>) (item ^n <b>) -(out ^a <a> ^b <b>) "
            "--> (make out ^a <a> ^b <b>))"
            "(p light (item ^n 99999) --> (halt))"
        )

        def setup(engine):
            for i in range(6):
                engine.make("item", n=i)

        weights = profile_rule_weights(prog, setup)
        assert weights["heavy"] > weights["light"]
        assert weights["light"] >= 1.0


class TestHashPartitions:
    def test_cover_and_disjoint(self):
        domain = [f"v{i}" for i in range(10)]
        parts = hash_partitions(domain, 3)
        assert len(parts) == 3
        flat = [v for p in parts for v in p]
        assert sorted(flat) == sorted(domain)

    def test_balance_within_one(self):
        parts = hash_partitions(list(range(11)), 4)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_single_partition(self):
        assert hash_partitions([1, 2], 1) == [(1, 2)]

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            hash_partitions([1], 0)


class TestCopyAndConstrain:
    TC = parse_program(
        "(literalize edge src dst)"
        "(literalize path src dst)"
        "(p extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)"
        " -(path ^src <a> ^dst <c>) --> (make path ^src <a> ^dst <c>))"
    )

    def test_copies_named_and_constrained(self):
        rule = self.TC.rule("extend")
        copies = copy_and_constrain(rule, 1, "src", [("a", "b"), ("c",)])
        assert [c.name for c in copies] == ["extend@cc0", "extend@cc1"]
        test0 = dict(copies[0].conditions[0].tests)["src"]
        assert "<< a b >>" in str(test0)

    def test_existing_test_conjoined(self):
        # ^src already carries <a>; the constraint must be added, not replace.
        rule = self.TC.rule("extend")
        copies = copy_and_constrain(rule, 1, "src", [("a",)])
        test = dict(copies[0].conditions[0].tests)["src"]
        assert "<a>" in str(test) and "<< a >>" in str(test)

    def test_attr_without_existing_test_gets_added(self):
        rule = self.TC.rule("extend")
        copies = copy_and_constrain(rule, 2, "dst", [("x",), ("y",)])
        ce = copies[0].conditions[1]
        assert dict(ce.tests)["dst"] is not None

    def test_negated_ce_rejected(self):
        rule = self.TC.rule("extend")
        with pytest.raises(MatchError, match="negated"):
            copy_and_constrain(rule, 3, "src", [("a",)])

    def test_out_of_range_rejected(self):
        rule = self.TC.rule("extend")
        with pytest.raises(MatchError, match="out of range"):
            copy_and_constrain(rule, 9, "src", [("a",)])

    def test_overlapping_partitions_rejected(self):
        rule = self.TC.rule("extend")
        with pytest.raises(MatchError, match="two partitions"):
            copy_and_constrain(rule, 1, "src", [("a", "b"), ("b",)])

    def test_program_transform_replaces_rule(self):
        prog2 = copy_and_constrain_program(self.TC, "extend", 1, "src", [("a",), ("b",)])
        names = [r.name for r in prog2.rules]
        assert "extend" not in names
        assert "extend@cc0" in names and "extend@cc1" in names
        assert prog2.literalizes == self.TC.literalizes

    def test_semantics_preserved(self):
        """The union of constrained copies derives exactly the original
        closure when partitions cover the node domain."""
        from repro.core import ParulelEngine

        def run(program):
            e = ParulelEngine(program)
            for i in range(8):
                e.make("edge", src=f"n{i}", dst=f"n{i + 1}")
                e.make("path", src=f"n{i}", dst=f"n{i + 1}")
            e.run(max_cycles=100)
            return sorted(
                (w.get("src"), w.get("dst")) for w in e.wm.by_class("path")
            )

        domain = [f"n{i}" for i in range(9)]
        cc = copy_and_constrain_program(
            self.TC, "extend", 1, "src", hash_partitions(domain, 3)
        )
        assert run(self.TC) == run(cc)


class TestPartitionSatisfiability:
    """Satellite of the commute PR: unsatisfiable constrained copies are
    rejected with a typed error instead of silently dropping work."""

    CONST = parse_program(
        "(literalize edge src dst)"
        "(literalize path src dst)"
        "(p pinned (path ^src a ^dst <b>) (edge ^src <b> ^dst <c>)"
        " --> (make path ^src a ^dst <c>))"
    )

    def test_contradictory_partition_rejected(self):
        from repro.errors import PartitionConstraintError

        rule = self.CONST.rule("pinned")
        # CE 1 already pins ^src to the constant a; a partition without a
        # can never match — the copy would silently drop instantiations.
        with pytest.raises(PartitionConstraintError) as exc:
            copy_and_constrain(rule, 1, "src", [("x", "y"), ("a",)])
        assert exc.value.rule == "pinned"
        assert exc.value.attribute == "src"

    def test_partition_containing_the_constant_accepted(self):
        rule = self.CONST.rule("pinned")
        copies = copy_and_constrain(rule, 1, "src", [("a", "b")])
        assert copies[0].name == "pinned@cc0"

    def test_typed_error_is_a_match_error(self):
        from repro.errors import PartitionConstraintError

        assert issubclass(PartitionConstraintError, MatchError)

    def test_empty_partition_stays_legal(self):
        # k exceeding the domain size produces empty partitions; an empty
        # membership test is inert, not contradictory.
        rule = self.CONST.rule("pinned")
        copies = copy_and_constrain(rule, 1, "src", [("a",), ()])
        assert len(copies) == 2

    def test_membership_contradiction_rejected(self):
        from repro.errors import PartitionConstraintError

        src = parse_program(
            "(literalize box owner)"
            "(p pick (box ^owner << a b >>) --> (remove 1))"
        )
        rule = src.rule("pick")
        with pytest.raises(PartitionConstraintError):
            copy_and_constrain(rule, 1, "owner", [("c", "d")])


class TestRacingCopyWarning:
    """copy_and_constrain consults the commute detector: copies proven to
    race earn a UserWarning (the split is still returned — meta-rules may
    arbitrate at runtime)."""

    def test_disjoint_copies_do_not_warn(self):
        import warnings

        src = parse_program(
            "(literalize counter owner n)"
            "(literalize phase name)"
            "(p bump (phase ^name go) (counter ^owner <o> ^n <n>)"
            " --> (modify 2 ^n 0))"
        )
        rule = src.rule("bump")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            copy_and_constrain(rule, 2, "owner", [("a", "b"), ("c", "d")])

    def test_racing_copies_warn(self):
        import warnings

        # Partitioning on an attribute of a *different* CE than the modify
        # target leaves the written WMEs shared across copies: the copies
        # race and the detector can prove it with a witness.
        src = parse_program(
            "(literalize slot owner)"
            "(literalize req n)"
            "(p claim (slot ^owner nil) (req ^n <n>)"
            " --> (modify 1 ^owner <n>))"
        )
        rule = src.rule("claim")
        with pytest.warns(UserWarning, match="race"):
            copy_and_constrain(rule, 2, "n", [(1, 2), (3, 4)])
