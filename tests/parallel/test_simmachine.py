"""Tests for the simulated multiprocessor."""

import pytest

from repro.core import EngineConfig, ParulelEngine
from repro.lang.parser import parse_program
from repro.parallel import (
    CostModel,
    SimMachine,
    SpeedupSeries,
    lpt_assignment,
    round_robin_assignment,
)
from repro.programs import build_tc, build_waltz

TC_SRC = """
(literalize edge src dst)
(literalize path src dst)
(p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
 --> (make path ^src <a> ^dst <b>))
(p tc-extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)
 -(path ^src <a> ^dst <c>) --> (make path ^src <a> ^dst <c>))
"""


def load_chain(machine, n=10):
    for i in range(n):
        machine.make("edge", src=f"n{i}", dst=f"n{i + 1}")


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("n_sites", [1, 2, 3, 8])
    def test_same_result_as_single_engine(self, n_sites):
        prog = parse_program(TC_SRC)
        engine = ParulelEngine(prog)
        for i in range(10):
            engine.make("edge", src=f"n{i}", dst=f"n{i + 1}")
        ref = engine.run()
        ref_paths = sorted(
            (w.get("src"), w.get("dst")) for w in engine.wm.by_class("path")
        )

        sm = SimMachine(prog, n_sites)
        load_chain(sm)
        res = sm.run()
        paths = sorted((w.get("src"), w.get("dst")) for w in sm.wm.by_class("path"))
        assert paths == ref_paths
        assert res.cycles == ref.cycles
        assert res.firings == ref.firings

    def test_workload_verification_under_simulation(self):
        wl = build_waltz(n_drawings=4, chain_length=6)
        sm = SimMachine(wl.program, 4)
        wl.setup(sm)
        sm.run()
        assert wl.verify_ok(sm.wm)

    def test_meta_rules_respected(self):
        src = """
        (literalize req name)
        (p grant (req ^name <n>) --> (remove 1))
        (mp one-at-a-time
            (instantiation ^rule grant ^id <i> ^n <a>)
            (instantiation ^rule grant ^id {<j> <> <i>} ^n > <a>)
            -->
            (redact <j>))
        """
        sm = SimMachine(parse_program(src), 2)
        for i in range(3):
            sm.make("req", name=f"r{i}")
        res = sm.run()
        assert res.cycles == 3  # serialized by the meta level
        assert res.firings == 3


class TestTimingModel:
    def test_deterministic_ticks(self):
        prog = parse_program(TC_SRC)
        results = []
        for _ in range(2):
            sm = SimMachine(prog, 4)
            load_chain(sm)
            results.append(sm.run().total_ticks)
        assert results[0] == results[1]

    def test_single_site_work_equals_makespan_sum(self):
        prog = parse_program(TC_SRC)
        sm = SimMachine(prog, 1)
        load_chain(sm)
        res = sm.run()
        assert res.parallel_ticks == pytest.approx(sum(res.makespans))
        assert res.load_imbalance == pytest.approx(1.0)

    def test_parallel_reduces_makespan_on_balanced_workload(self):
        # waltz has 1 rule but the work is per-drawing; rule-parallel can't
        # split one rule, so use tc with its two rules on two sites.
        prog = parse_program(TC_SRC)
        series = SpeedupSeries("tc")
        for p in (1, 2):
            sm = SimMachine(prog, p)
            load_chain(sm, 14)
            series.add(p, sm.run().total_ticks)
        assert series.speedup(2) > 1.0

    def test_barrier_and_redaction_are_serial(self):
        prog = parse_program(TC_SRC)
        sm = SimMachine(prog, 2)
        load_chain(sm, 6)
        res = sm.run()
        cost = CostModel()
        assert res.serial_ticks >= cost.barrier * res.cycles

    def test_custom_cost_model(self):
        prog = parse_program(TC_SRC)
        cheap = CostModel(barrier=0.0, wm_broadcast=0.0)
        sm = SimMachine(prog, 2, cost_model=cheap)
        load_chain(sm, 6)
        res = sm.run()
        sm2 = SimMachine(prog, 2)
        load_chain(sm2, 6)
        res2 = sm2.run()
        assert res.total_ticks < res2.total_ticks

    def test_site_totals_cover_all_sites(self):
        prog = parse_program(TC_SRC)
        sm = SimMachine(prog, 3)
        load_chain(sm)
        res = sm.run()
        assert len(res.site_totals) == 3

    def test_quiescence_reason(self):
        prog = parse_program(TC_SRC)
        sm = SimMachine(prog, 2)
        load_chain(sm, 3)
        assert sm.run().reason == "quiescence"

    def test_zero_sites_rejected(self):
        with pytest.raises(ValueError):
            SimMachine(parse_program(TC_SRC), 0)


class TestAssignments:
    def test_explicit_assignment_used(self):
        prog = parse_program(TC_SRC)
        a = lpt_assignment(prog.rules, 2, {"tc-extend": 10.0, "tc-init": 1.0})
        sm = SimMachine(prog, 2, assignment=a)
        load_chain(sm)
        res = sm.run()
        assert res.cycles > 0

    def test_mismatched_assignment_rejected(self):
        prog = parse_program(TC_SRC)
        other = parse_program("(p lonely (c ^a 1) --> (halt))")
        bad = round_robin_assignment(other.rules, 2)
        with pytest.raises(ValueError):
            SimMachine(prog, 2, assignment=bad)


class TestSpeedupSeries:
    def test_series_math(self):
        s = SpeedupSeries("x")
        s.add(1, 100.0)
        s.add(2, 60.0)
        s.add(4, 40.0)
        assert s.speedup(2) == pytest.approx(100 / 60)
        assert s.efficiency(4) == pytest.approx((100 / 40) / 4)
        rows = s.series()
        assert [r[0] for r in rows] == [1, 2, 4]

    def test_monotone_check(self):
        s = SpeedupSeries("x")
        s.add(1, 100.0)
        s.add(2, 50.0)
        s.add(4, 55.0)  # speedup drops from 2.0 to 1.8
        assert s.is_monotone_to(2)
        assert not s.is_monotone_to(4)

    def test_missing_baseline_raises(self):
        s = SpeedupSeries("x")
        s.add(2, 10.0)
        with pytest.raises(ValueError, match="baseline"):
            s.speedup(2)

    def test_bad_points_rejected(self):
        s = SpeedupSeries("x")
        with pytest.raises(ValueError):
            s.add(0, 10.0)
        with pytest.raises(ValueError):
            s.add(1, 0.0)


class TestMulticast:
    def test_multicast_counts_fewer_messages(self):
        from repro.lang.ast import Program
        from repro.programs import build_sieve, build_tc

        tc = build_tc(12, "chain")
        sieve = build_sieve(30)
        program = Program(
            literalizes=tc.program.literalizes + sieve.program.literalizes,
            rules=tc.program.rules + sieve.program.rules,
        )

        def run(multicast):
            sm = SimMachine(program, 4, multicast=multicast)
            tc.setup(sm)
            sieve.setup(sm)
            res = sm.run()
            assert tc.verify_ok(sm.wm) and sieve.verify_ok(sm.wm)
            return res

        broadcast, multicast = run(False), run(True)
        assert multicast.messages < broadcast.messages
        assert multicast.total_ticks <= broadcast.total_ticks
        assert broadcast.cycles == multicast.cycles
        assert broadcast.firings == multicast.firings

    def test_broadcast_message_count_formula(self):
        # broadcast: every change delivered to every site.
        prog = parse_program(TC_SRC)
        sm = SimMachine(prog, 3, multicast=False)
        load_chain(sm, 5)
        res = sm.run()
        total_changes = res.firings  # every firing makes exactly one path
        assert res.messages == total_changes * 3

    def test_single_program_multicast_equals_broadcast(self):
        # All sites read both classes of tc: interest sets are total, so
        # multicast degenerates to broadcast.
        prog = parse_program(TC_SRC)
        a = SimMachine(prog, 2, multicast=False)
        load_chain(a, 6)
        b = SimMachine(prog, 2, multicast=True)
        load_chain(b, 6)
        assert a.run().messages == b.run().messages
