"""Unit tests for the simulation cost model."""

from collections import Counter

import pytest

from repro.parallel import CostModel


class TestMatchCost:
    def test_weighted_sum(self):
        cm = CostModel()
        counters = Counter(
            alpha_tests=10, join_probes=5, join_checks=4, tokens=3,
            instantiations=2, retractions=1,
        )
        expected = 10 * 1 + 5 * 2 + 4 * 1 + 3 * 2 + 2 * 3 + 1 * 2
        assert cm.match_cost(counters) == expected

    def test_missing_counters_are_zero(self):
        assert CostModel().match_cost({}) == 0.0

    def test_unknown_counters_ignored(self):
        assert CostModel().match_cost({"bogus": 1000}) == 0.0

    def test_custom_weights(self):
        cm = CostModel(alpha_tests=100.0)
        assert cm.match_cost({"alpha_tests": 2}) == 200.0


class TestPhaseCosts:
    def test_fire_cost(self):
        assert CostModel().fire_cost(3) == 30.0
        assert CostModel(fire=1.0).fire_cost(3) == 3.0

    def test_broadcast_cost(self):
        assert CostModel().broadcast_cost(5) == 20.0

    def test_redaction_cost_combines_match_and_firings(self):
        cm = CostModel()
        cost = cm.redaction_cost({"alpha_tests": 4}, meta_firings=2)
        assert cost == 4 * 1 + 2 * 5

    def test_frozen(self):
        cm = CostModel()
        with pytest.raises(Exception):
            cm.fire = 999.0
