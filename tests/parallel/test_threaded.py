"""Tests for the real-thread match pool."""

import pytest

from repro.lang.parser import parse_program
from repro.match.interface import create_matcher
from repro.parallel.threaded import ThreadedMatchPool
from repro.wm.memory import WorkingMemory

SRC = """
(p j0 (a0 ^k <k>) (b0 ^k <k>) --> (halt))
(p j1 (a1 ^k <k>) (b1 ^k <k>) --> (halt))
(p j2 (a2 ^k <k>) (b2 ^k <k>) --> (halt))
(p neg (a0 ^k <k>) -(b1 ^k <k>) --> (halt))
"""


def load(wm, n=6):
    for r in range(3):
        for i in range(n):
            wm.make(f"a{r}", k=i % 3)
            wm.make(f"b{r}", k=i % 3)


class TestThreadedMatchPool:
    @pytest.mark.parametrize("n_threads", [1, 2, 4])
    def test_agrees_with_rete(self, n_threads):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        rete = create_matcher("rete", prog.rules, wm)
        load(wm)
        with ThreadedMatchPool(prog.rules, wm, n_threads) as pool:
            pooled = sorted(i.key for i in pool.conflict_set())
        expected = sorted(i.key for i in rete.instantiations())
        assert pooled == expected

    def test_deterministic_order(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        load(wm)
        with ThreadedMatchPool(prog.rules, wm, 3) as pool:
            first = [i.key for i in pool.conflict_set()]
            second = [i.key for i in pool.conflict_set()]
        assert first == second

    def test_reflects_wm_changes_between_calls(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        with ThreadedMatchPool(prog.rules, wm, 2) as pool:
            assert pool.conflict_set() == []
            wm.make("a0", k=1)
            wm.make("b0", k=1)
            assert len(pool.conflict_set()) >= 1

    def test_zero_threads_rejected(self):
        prog = parse_program(SRC)
        with pytest.raises(ValueError):
            ThreadedMatchPool(prog.rules, WorkingMemory(), 0)

    def test_close_idempotent(self):
        prog = parse_program(SRC)
        pool = ThreadedMatchPool(prog.rules, WorkingMemory(), 1)
        pool.close()
        pool.close()

    def test_more_threads_than_rules_skips_empty_sites(self):
        # Regression: sites with zero assigned rules used to get no-op
        # futures submitted every cycle.
        prog = parse_program(SRC)  # 4 rules
        wm = WorkingMemory()
        rete = create_matcher("rete", prog.rules, wm)
        load(wm)
        submitted = []
        with ThreadedMatchPool(prog.rules, wm, 16) as pool:
            assert pool.active_sites == tuple(range(4))
            real_submit = pool._pool.submit

            def counting_submit(fn, *args):
                submitted.append(args)
                return real_submit(fn, *args)

            pool._pool.submit = counting_submit
            pooled = sorted(i.key for i in pool.conflict_set())
        assert len(submitted) == 4  # one per non-empty site, not 16
        assert pooled == sorted(i.key for i in rete.instantiations())

    def test_pool_with_no_rules(self):
        pool = ThreadedMatchPool([], WorkingMemory(), 4)
        assert pool.active_sites == ()
        assert pool.conflict_set() == []
        pool.close()
        pool.close()
