"""Tests for the automatic parallelization planner."""

import pytest

from repro.parallel import SimMachine, autotune, hottest_rule, round_robin_assignment
from repro.programs import build_tc, build_waltz


class TestHottestRule:
    def test_picks_max(self):
        name, share = hottest_rule({"a": 10.0, "b": 30.0, "c": 60.0})
        assert name == "c"
        assert share == pytest.approx(0.6)

    def test_deterministic_on_ties(self):
        assert hottest_rule({"b": 5.0, "a": 5.0})[0] == hottest_rule(
            {"a": 5.0, "b": 5.0}
        )[0]

    def test_zero_weights(self):
        name, share = hottest_rule({"a": 0.0})
        assert share == 0.0


class TestAutotunePlans:
    def test_tc_split_on_hot_join(self):
        wl = build_tc(n_nodes=20, shape="chain")
        plan = autotune(wl.program, wl.setup, n_sites=4, domains=wl.domains)
        assert plan.split_rule == "tc-extend"
        assert plan.split_on == ("path", "src")
        assert plan.hot_share > 0.4
        # Original rule replaced by constrained copies.
        names = [r.name for r in plan.program.rules]
        assert "tc-extend" not in names
        assert sum(1 for n in names if n.startswith("tc-extend@cc")) == 4
        assert "copy-and-constrained" in plan.report()

    def test_single_site_never_splits(self):
        wl = build_tc(n_nodes=12, shape="chain")
        plan = autotune(wl.program, wl.setup, n_sites=1, domains=wl.domains)
        assert plan.split_rule is None
        assert [r.name for r in plan.program.rules] == [
            r.name for r in wl.program.rules
        ]

    def test_no_domain_no_split(self):
        wl = build_tc(n_nodes=12, shape="chain")
        plan = autotune(wl.program, wl.setup, n_sites=4, domains={})
        assert plan.split_rule is None
        assert "no value domain" in plan.report() or "no split" in plan.report()

    def test_below_threshold_no_split(self):
        wl = build_tc(n_nodes=12, shape="chain")
        plan = autotune(
            wl.program, wl.setup, n_sites=4, domains=wl.domains, threshold=1.01
        )
        assert plan.split_rule is None

    def test_assignment_covers_all_rules(self):
        wl = build_waltz(n_drawings=4, chain_length=6)
        plan = autotune(wl.program, wl.setup, n_sites=3, domains=wl.domains)
        plan.assignment.validate(plan.program.rules)


class TestAutotunedExecution:
    def test_tuned_plan_beats_naive_distribution(self):
        """On tc at 8 sites, the autotuned plan (split + LPT) must beat
        round-robin over the unsplit program in simulated time, with
        identical results."""
        wl = build_tc(n_nodes=20, shape="chain")
        plan = autotune(wl.program, wl.setup, n_sites=8, domains=wl.domains)

        tuned = SimMachine(plan.program, 8, assignment=plan.assignment)
        wl.setup(tuned)
        tuned_res = tuned.run()
        assert wl.failed_checks(tuned.wm) == []

        plain = SimMachine(
            wl.program, 8, assignment=round_robin_assignment(wl.program.rules, 8)
        )
        wl.setup(plain)
        plain_res = plain.run()
        assert wl.failed_checks(plain.wm) == []

        assert tuned_res.firings == plain_res.firings
        assert tuned_res.parallel_ticks < plain_res.parallel_ticks
