"""Tests for the distributed (replicated-WM) machine."""

import pytest

from repro.core import ParulelEngine
from repro.lang.parser import parse_program
from repro.parallel import DistributedMachine, NetworkModel
from repro.programs import REGISTRY, build_routing, build_tc

TC_SRC = """
(literalize edge src dst)
(literalize path src dst)
(p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
 --> (make path ^src <a> ^dst <b>))
(p tc-extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)
 -(path ^src <a> ^dst <c>) --> (make path ^src <a> ^dst <c>))
"""


def load_chain(machine, n=10):
    for i in range(n):
        machine.make("edge", src=f"n{i}", dst=f"n{i + 1}")


class TestReplicaConsistency:
    @pytest.mark.parametrize("n_sites", [1, 2, 3, 5])
    def test_replicas_identical_after_run(self, n_sites):
        dm = DistributedMachine(parse_program(TC_SRC), n_sites)
        load_chain(dm)
        dm.run()
        assert dm.replicas_consistent()

    def test_replicas_share_nothing(self):
        dm = DistributedMachine(parse_program(TC_SRC), 3)
        assert len({id(r) for r in dm.replicas}) == 3

    def test_consistency_with_meta_rules(self):
        wl = build_routing(n_nodes=10, extra_edges=10)
        dm = DistributedMachine(wl.program, 3)
        wl.setup(dm)
        dm.run()
        assert dm.replicas_consistent()
        # Meta reifications never leak into any replica.
        for replica in dm.replicas:
            assert replica.count_class("instantiation") == 0

    @pytest.mark.parametrize("name", ["tc", "waltz", "manners", "circuit", "routing"])
    def test_workloads_verify_on_every_replica(self, name):
        wl = REGISTRY[name]()
        dm = DistributedMachine(wl.program, 3)
        wl.setup(dm)
        dm.run(max_cycles=5000)
        for replica in dm.replicas:
            assert wl.failed_checks(replica) == [], name


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("n_sites", [1, 2, 4])
    def test_matches_single_engine(self, n_sites):
        prog = parse_program(TC_SRC)
        engine = ParulelEngine(prog)
        for i in range(10):
            engine.make("edge", src=f"n{i}", dst=f"n{i + 1}")
        ref = engine.run()

        dm = DistributedMachine(prog, n_sites)
        load_chain(dm)
        res = dm.run()
        assert res.cycles == ref.cycles
        assert res.firings == ref.firings
        ref_paths = sorted(
            (w.get("src"), w.get("dst")) for w in engine.wm.by_class("path")
        )
        for replica in dm.replicas:
            paths = sorted(
                (w.get("src"), w.get("dst")) for w in replica.by_class("path")
            )
            assert paths == ref_paths


class TestCommunicationAccounting:
    def test_single_site_sends_nothing(self):
        dm = DistributedMachine(parse_program(TC_SRC), 1)
        load_chain(dm)
        res = dm.run()
        assert res.messages == 0

    def test_single_site_pays_no_latency(self):
        # Regression: round latency used to be charged for the gather and
        # scatter rounds even at P=1 (zero messages, no communication),
        # inflating the serial baseline every speedup is computed against.
        dm = DistributedMachine(
            parse_program(TC_SRC), 1, network=NetworkModel(latency=1000.0)
        )
        load_chain(dm)
        res = dm.run()
        assert res.comm_ticks == 0.0
        assert res.comm_fraction == 0.0

    def test_single_site_total_invariant_to_network(self):
        totals = []
        for latency in (0.0, 500.0):
            dm = DistributedMachine(
                parse_program(TC_SRC), 1, network=NetworkModel(latency=latency)
            )
            load_chain(dm)
            totals.append(dm.run().total_ticks)
        assert totals[0] == totals[1]

    def test_messages_grow_with_sites(self):
        results = {}
        for p in (2, 4):
            dm = DistributedMachine(parse_program(TC_SRC), p)
            load_chain(dm)
            results[p] = dm.run().messages
        assert results[4] > results[2]

    def test_latency_scales_comm_ticks(self):
        slow = DistributedMachine(
            parse_program(TC_SRC), 2, network=NetworkModel(latency=500.0)
        )
        load_chain(slow)
        fast = DistributedMachine(
            parse_program(TC_SRC), 2, network=NetworkModel(latency=1.0)
        )
        load_chain(fast)
        rs, rf = slow.run(), fast.run()
        assert rs.comm_ticks > rf.comm_ticks
        assert rs.cycles == rf.cycles  # timing model never changes results
        assert rs.comm_fraction > rf.comm_fraction

    def test_multicast_reduces_messages_on_fused_rules(self):
        from repro.lang.ast import Program
        from repro.programs import build_sieve

        tc = build_tc(12, "chain")
        sieve = build_sieve(30)
        program = Program(
            literalizes=tc.program.literalizes + sieve.program.literalizes,
            rules=tc.program.rules + sieve.program.rules,
        )

        def run(multicast):
            dm = DistributedMachine(program, 4, multicast=multicast)
            tc.setup(dm)
            sieve.setup(dm)
            res = dm.run()
            assert dm.replicas_consistent()
            return res

        broadcast, multicast = run(False), run(True)
        assert multicast.messages < broadcast.messages
        assert broadcast.cycles == multicast.cycles

    def test_deterministic(self):
        runs = []
        for _ in range(2):
            dm = DistributedMachine(parse_program(TC_SRC), 3)
            load_chain(dm)
            res = dm.run()
            runs.append((res.total_ticks, res.messages, res.cycles))
        assert runs[0] == runs[1]

    def test_zero_sites_rejected(self):
        with pytest.raises(ValueError):
            DistributedMachine(parse_program(TC_SRC), 0)
