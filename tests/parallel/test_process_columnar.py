"""Process-backend tests for the columnar shared-memory store.

Covers the shared-attach protocol end to end: workers attach segments and
refresh from the journal instead of receiving pickled deltas, results stay
byte-identical to the dict store, respawned workers re-attach correctly,
the IPC byte metrics are exact, and the bounded-deadline receive path
fails over to a dead worker's respawn in a fraction of the configured
timeout.
"""

import glob
import pickle
import time

import pytest

from repro.core import EngineConfig, ParulelEngine
from repro.faults import FaultPlan, WorkerKill
from repro.lang.parser import parse_program
from repro.match.interface import create_matcher
from repro.obs.metrics import MetricsRegistry
from repro.parallel.process import ProcessMatchPool
from repro.programs import REGISTRY
from repro.programs.synthetic import build_scale_workload
from repro.wm.columnar import ColumnarWorkingMemory
from repro.wm.memory import DeltaRecorder, WorkingMemory

SRC = """
(p j0 (a0 ^k <k>) (b0 ^k <k>) --> (halt))
(p j1 (a1 ^k <k>) (b1 ^k <k>) --> (halt))
(p neg (a0 ^k <k>) -(b1 ^k <k>) --> (halt))
"""


def load(wm, n=6):
    for r in range(2):
        for i in range(n):
            wm.make(f"a{r}", k=i % 3)
            wm.make(f"b{r}", k=i % 3)


def keys(insts):
    return sorted(i.key for i in insts)


class TestColumnarPool:
    def test_agrees_with_rete_and_tracks_churn(self):
        prog = parse_program(SRC)
        wm = ColumnarWorkingMemory()
        try:
            rete = create_matcher("rete", prog.rules, wm)
            load(wm)
            with ProcessMatchPool(prog.rules, wm, 2) as pool:
                assert keys(pool.conflict_set()) == keys(rete.instantiations())
                live = list(wm.by_class("a0"))
                wm.remove(live[0])
                wm.make("a0", k=2)
                wm.make("b1", k=2)
                assert keys(pool.conflict_set()) == keys(rete.instantiations())
        finally:
            wm.close()

    def test_instantiations_reference_parent_wme_objects(self):
        prog = parse_program(SRC)
        wm = ColumnarWorkingMemory()
        try:
            a = wm.make("a0", k=1)
            b = wm.make("b0", k=1)
            with ProcessMatchPool(prog.rules, wm, 2) as pool:
                insts = [i for i in pool.conflict_set() if i.rule.name == "j0"]
            assert len(insts) == 1
            assert insts[0].wmes[0] is a
            assert insts[0].wmes[1] is b
        finally:
            wm.close()

    def test_engine_run_byte_identical_to_dict_store(self):
        results = {}
        for backend in ("dict", "columnar"):
            wl = REGISTRY["tc"]()
            engine = ParulelEngine(
                wl.program,
                EngineConfig(matcher="process:2", wm_backend=backend),
            )
            try:
                wl.setup(engine)
                run = engine.run()
                results[backend] = (
                    run.cycles,
                    run.firings,
                    run.output,
                    engine.wm.dump_records(),
                )
                assert wl.verify(engine.wm)
            finally:
                engine.close()
        assert results["dict"] == results["columnar"]

    def test_killed_worker_reattaches_and_agrees(self):
        prog = parse_program(SRC)
        wm = ColumnarWorkingMemory()
        try:
            rete = create_matcher("rete", prog.rules, wm)
            load(wm)
            plan = FaultPlan(kills=(WorkerKill(cycle=2, site=0),))
            with ProcessMatchPool(prog.rules, wm, 2, fault_plan=plan) as pool:
                assert keys(pool.conflict_set()) == keys(rete.instantiations())
                wm.make("a0", k=0)
                # Cycle 2: site 0's worker is SIGKILLed before the request;
                # the respawned worker must re-attach the shared segments
                # (including rows journaled since its predecessor attached).
                assert keys(pool.conflict_set()) == keys(rete.instantiations())
                assert pool.respawns >= 1
                wm.make("b1", k=0)
                assert keys(pool.conflict_set()) == keys(rete.instantiations())
        finally:
            wm.close()

    def test_close_releases_listener_and_segments_outlive_pool(self):
        prog = parse_program(SRC)
        wm = ColumnarWorkingMemory()
        try:
            pool = ProcessMatchPool(prog.rules, wm, 2)
            pool.close()
            wm.make("a0", k=0)  # must not notify a closed pool
        finally:
            wm.close()
        assert not glob.glob(f"/dev/shm/{wm.token}*")


class TestVectorProbe:
    """The vectorized column-scan probe kernel through the pool: workers
    build alpha state from shared-column scans (``ColumnVectorCache``)
    instead of a replica WM, with ``vector_probe=False`` as the escape
    hatch back to the object path. Both must be byte-identical."""

    def test_pool_agrees_with_escape_hatch_and_rete(self):
        prog = parse_program(SRC)
        results = {}
        for vector in (True, False):
            wm = ColumnarWorkingMemory()
            try:
                rete = create_matcher("rete", prog.rules, wm)
                load(wm)
                with ProcessMatchPool(
                    prog.rules, wm, 2, vector_probe=vector
                ) as pool:
                    sets = [keys(pool.conflict_set())]
                    assert sets[0] == keys(rete.instantiations())
                    # churn incl. a value only the fallback path can key
                    wm.remove(list(wm.by_class("a0"))[0])
                    wm.make("a0", k=2)
                    wm.make("a0", k=2**70)
                    wm.make("b0", k=2**70)
                    sets.append(keys(pool.conflict_set()))
                    assert sets[1] == keys(rete.instantiations())
                    results[vector] = sets
            finally:
                wm.close()
        assert results[True] == results[False]

    def test_engine_run_vector_off_byte_identical(self):
        results = {}
        for vector in (True, False):
            wl = REGISTRY["tc"]()
            engine = ParulelEngine(
                wl.program,
                EngineConfig(
                    matcher="process:2",
                    wm_backend="columnar",
                    vector_probe=vector,
                ),
            )
            try:
                wl.setup(engine)
                run = engine.run()
                results[vector] = (
                    run.cycles,
                    run.firings,
                    run.output,
                    engine.wm.dump_records(),
                )
                assert wl.verify(engine.wm)
            finally:
                engine.close()
        assert results[True] == results[False]

    def test_vector_metrics_follow_the_flag(self):
        from repro.obs.profile import VECTOR_SCAN_ROWS

        prog = parse_program(SRC)
        for vector in (True, False):
            wm = ColumnarWorkingMemory()
            try:
                load(wm)
                metrics = MetricsRegistry()
                with ProcessMatchPool(
                    prog.rules, wm, 2, metrics=metrics, vector_probe=vector
                ) as pool:
                    pool.conflict_set()
                    wm.make("a0", k=1)
                    pool.conflict_set()
                scanned = sum(metrics.series(VECTOR_SCAN_ROWS).values())
                if vector:
                    assert scanned > 0
                else:
                    assert scanned == 0
            finally:
                wm.close()


class TestByteAccounting:
    def test_columnar_ships_10x_fewer_bytes(self):
        """The acceptance bar, at test scale: a bulky inert WM plus small
        churn must cost >= 10x fewer request bytes under the columnar
        store than under delta shipping."""
        wl = build_scale_workload(n_facts=3000, n_keys=30, churn_block=20)
        totals = {}
        images = {}
        for backend in ("dict", "columnar"):
            wm = (
                ColumnarWorkingMemory(wl.fresh_wm().templates)
                if backend == "columnar"
                else wl.fresh_wm()
            )
            try:
                block = wl.load(wm)
                metrics = MetricsRegistry()
                with ProcessMatchPool(
                    wl.program.rules, wm, 2, metrics=metrics
                ) as pool:
                    imgs = [keys(pool.conflict_set())]
                    for step in range(3):
                        block = wl.churn(wm, block, step + 1)
                        imgs.append(keys(pool.conflict_set()))
                totals[backend] = sum(
                    metrics.series("parulel_ipc_bytes_total").values()
                )
                images[backend] = imgs
            finally:
                if backend == "columnar":
                    wm.close()
        assert images["dict"] == images["columnar"]
        assert totals["dict"] >= 10 * totals["columnar"], totals

    def test_delta_mode_byte_metric_is_exact(self):
        """The metric must equal the pickled request blob's length exactly
        (the old scatter path measured a *second* pickle of only the
        payload — off by the envelope and doubled the serialization work)."""
        prog = parse_program(SRC)
        wm = WorkingMemory()
        shadow = WorkingMemory()
        load(wm)
        load(shadow)
        shadow_recorder = DeltaRecorder(shadow)
        metrics = MetricsRegistry()
        with ProcessMatchPool(prog.rules, wm, 1, metrics=metrics) as pool:
            pool.conflict_set()
            expected = len(
                pickle.dumps(
                    ("match", [shadow_recorder.drain().wire()]),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
            assert metrics.counter_value(
                "parulel_ipc_bytes_total", site=0
            ) == expected

    def test_columnar_byte_metric_is_exact(self):
        prog = parse_program(SRC)
        wm = ColumnarWorkingMemory()
        try:
            load(wm)
            metrics = MetricsRegistry()
            with ProcessMatchPool(prog.rules, wm, 1, metrics=metrics) as pool:
                # Drain structural dirt first so the expected cursor-only
                # message below matches what the pool will ship.
                wm.cycle_info()
                expected = len(
                    pickle.dumps(
                        ("attach", wm.attach_spec()),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                ) + len(
                    pickle.dumps(
                        ("match-shm", wm.refresh_info()),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                )
                pool.conflict_set()
                assert metrics.counter_value(
                    "parulel_ipc_bytes_total", site=0
                ) == expected
        finally:
            wm.close()


class TestBoundedRecv:
    @pytest.mark.parametrize("backend", ["dict", "columnar"])
    def test_dead_worker_fails_over_long_before_timeout(self, backend):
        """A worker that dies after the request is sent must be detected by
        liveness polling in well under the reply deadline — the hang this
        fix removes would burn the full 60 s (or block forever when no
        timeout was configured)."""
        prog = parse_program(SRC)
        wm = ColumnarWorkingMemory() if backend == "columnar" else WorkingMemory()
        try:
            load(wm)
            plan = FaultPlan(kills=(WorkerKill(cycle=2, site=0),))
            with ProcessMatchPool(
                prog.rules, wm, 2, timeout=60.0, fault_plan=plan
            ) as pool:
                rete = create_matcher("rete", prog.rules, wm)
                pool.conflict_set()
                start = time.monotonic()
                assert keys(pool.conflict_set()) == keys(rete.instantiations())
                elapsed = time.monotonic() - start
            assert elapsed < 30.0, (
                f"failover took {elapsed:.1f}s with a 60s deadline"
            )
        finally:
            if backend == "columnar":
                wm.close()
