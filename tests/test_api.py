"""Public-API surface tests: the names README documents must exist and the
one-screen quickstart must run exactly as printed."""

import inspect

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "name",
        [
            "ParulelEngine",
            "OPS5Engine",
            "EngineConfig",
            "WorkingMemory",
            "WME",
            "parse_program",
            "analyze_program",
            "format_program",
            "create_matcher",
        ],
    )
    def test_core_entry_points(self, name):
        assert hasattr(repro, name)

    def test_errors_form_a_hierarchy(self):
        for name in (
            "LexError",
            "ParseError",
            "SemanticError",
            "MatchError",
            "ExecutionError",
            "InterferenceError",
            "WorkingMemoryError",
            "CycleLimitExceeded",
        ):
            exc = getattr(repro, name)
            assert issubclass(exc, repro.ReproError), name

    def test_subpackage_apis(self):
        from repro import parallel, programs, tools, wm

        for name in parallel.__all__:
            assert hasattr(parallel, name), f"parallel.{name}"
        for name in tools.__all__:
            assert hasattr(tools, name), f"tools.{name}"
        for name in programs.__all__:
            assert hasattr(programs, name), f"programs.{name}"
        for name in wm.__all__:
            assert hasattr(wm, name), f"wm.{name}"


class TestReadmeQuickstart:
    def test_module_docstring_example(self):
        # The example in repro/__init__.py's docstring, executed verbatim.
        src = """
        (literalize count value)
        (p bump
            (count ^value {<v> < 5})
            -->
            (modify 1 ^value (compute <v> + 1)))
        """
        engine = repro.ParulelEngine(repro.parse_program(src))
        engine.make("count", value=0)
        engine.run()
        assert engine.wm.find("count", value=5)

    def test_readme_quickstart(self):
        src = """
        (literalize task name priority status)
        (literalize resource name owner)
        (p grab
            (task ^name <t> ^priority <pr> ^status waiting)
            (resource ^name <res> ^owner nil)
            -->
            (modify 2 ^owner <t>)
            (modify 1 ^status running))
        (mp prefer-higher-priority
            (instantiation ^rule grab ^id <i> ^pr <p1> ^res <r>)
            (instantiation ^rule grab ^id {<j> <> <i>} ^pr < <p1> ^res <r>)
            -->
            (redact <j>))
        """
        engine = repro.ParulelEngine(repro.parse_program(src))
        engine.make("task", name="alpha", priority=1, status="waiting")
        engine.make("task", name="beta", priority=5, status="waiting")
        engine.make("resource", name="gpu", owner="nil")
        engine.run()
        assert engine.wm.find("resource")[0].get("owner") == "beta"


class TestDocstringCoverage:
    def test_public_modules_documented(self):
        import pkgutil

        import repro as pkg

        undocumented = []
        for info in pkgutil.walk_packages(pkg.__path__, prefix="repro."):
            module = __import__(info.name, fromlist=["_"])
            if not (module.__doc__ or "").strip():
                undocumented.append(info.name)
        assert undocumented == []

    def test_public_classes_documented(self):
        from repro import baseline, core, match, parallel

        for ns in (core, baseline, parallel, match):
            for name in ns.__all__:
                obj = getattr(ns, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    assert (obj.__doc__ or "").strip(), f"{ns.__name__}.{name}"
