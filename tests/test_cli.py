"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main, parse_facts
from repro.errors import ParseError

TC = """
(literalize edge src dst)
(literalize path src dst)
(p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
 --> (make path ^src <a> ^dst <b>))
(p tc-extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)
 -(path ^src <a> ^dst <c>) --> (make path ^src <a> ^dst <c>) (write path <a> <c>))
"""

FACTS = """
(edge ^src a ^dst b)
(edge ^src b ^dst c)
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "tc.pl"
    path.write_text(TC)
    return str(path)


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "facts.pl"
    path.write_text(FACTS)
    return str(path)


class TestParseFacts:
    def test_basic(self):
        facts = parse_facts("(edge ^src a ^dst 2)(goal)")
        assert facts == [("edge", {"src": "a", "dst": 2}), ("goal", {})]

    def test_malformed_rejected(self):
        with pytest.raises(ParseError):
            parse_facts("(edge ^src <var>)")

    def test_empty(self):
        assert parse_facts("") == []


class TestRunCommand:
    def test_parulel_run(self, program_file, facts_file, capsys):
        rc = main(["run", program_file, "--facts", facts_file])
        assert rc == 0
        out, err = capsys.readouterr()
        assert "path a c" in out
        assert "[parulel]" in err

    def test_ops5_run(self, program_file, facts_file, capsys):
        rc = main(
            ["run", program_file, "--facts", facts_file, "--engine", "ops5"]
        )
        assert rc == 0
        _out, err = capsys.readouterr()
        assert "[ops5/lex]" in err

    def test_trace_and_stats(self, program_file, facts_file, capsys):
        rc = main(
            ["run", program_file, "--facts", facts_file, "--trace", "--stats"]
        )
        assert rc == 0
        _out, err = capsys.readouterr()
        assert "[cycle 1]" in err
        assert "match:" in err

    def test_matcher_option(self, program_file, facts_file):
        for matcher in ("rete", "treat", "naive"):
            assert (
                main(["run", program_file, "--facts", facts_file, "--matcher", matcher])
                == 0
            )

    def test_process_matcher_with_workers(self, program_file, facts_file):
        rc = main(
            ["run", program_file, "--facts", facts_file,
             "--matcher", "process", "--workers", "2"]
        )
        assert rc == 0

    def test_process_matcher_rejects_zero_workers(
        self, program_file, facts_file, capsys
    ):
        # Regression: --workers 0 used to fall through a falsy check and
        # silently run with the default worker count.
        rc = main(
            ["run", program_file, "--facts", facts_file,
             "--matcher", "process", "--workers", "0"]
        )
        assert rc == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_missing_file_errors(self, capsys):
        rc = main(["run", "/nonexistent/prog.pl"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_program_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.pl"
        bad.write_text("(p broken")
        rc = main(["run", str(bad)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestCheckCommand:
    def test_inventory(self, program_file, capsys):
        rc = main(["check", program_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 classes, 2 rules, 0 meta-rules" in out
        assert "tc-extend" in out

    def test_semantic_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.pl"
        bad.write_text("(literalize c a)(p r (d ^a 1) --> (halt))")
        rc = main(["check", str(bad)])
        assert rc == 1
        assert "undeclared class" in capsys.readouterr().err


class TestFmtCommand:
    def test_canonical_output_reparses(self, program_file, capsys):
        rc = main(["fmt", program_file])
        assert rc == 0
        out = capsys.readouterr().out
        from repro.lang.parser import parse_program

        assert parse_program(out) == parse_program(TC)


class TestDemoCommand:
    def test_known_demo(self, capsys):
        rc = main(["demo", "monkey"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "parulel:" in out and "OK" in out

    def test_unknown_demo(self, capsys):
        rc = main(["demo", "nope"])
        assert rc == 2
        assert "available" in capsys.readouterr().err


class TestDotCommand:
    def test_dot_output(self, program_file, facts_file, capsys):
        rc = main(["dot", program_file, "--facts", facts_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph rete {")
        assert "tc-extend" in out
        assert "[2 wmes]" in out  # the two edge facts

    def test_dot_without_facts(self, program_file, capsys):
        rc = main(["dot", program_file])
        assert rc == 0
        assert "digraph" in capsys.readouterr().out


class TestExplainCommand:
    def test_explain_derivation(self, program_file, facts_file, capsys):
        rc = main(
            [
                "explain",
                program_file,
                "--facts",
                facts_file,
                "--wme",
                "(path ^src a ^dst c)",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "made by rule 'tc-extend'" in out
        assert "asserted initially" in out

    def test_explain_no_match(self, program_file, facts_file, capsys):
        rc = main(
            [
                "explain",
                program_file,
                "--facts",
                facts_file,
                "--wme",
                "(path ^src z ^dst z)",
            ]
        )
        assert rc == 1
        assert "no live WME" in capsys.readouterr().err

    def test_explain_bad_pattern(self, program_file, facts_file, capsys):
        rc = main(
            ["explain", program_file, "--facts", facts_file, "--wme", "(a)(b)"]
        )
        assert rc == 2


class TestLintCommand:
    def test_clean_program(self, program_file, capsys):
        rc = main(["lint", program_file])  # tc only makes -> clean
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_flagged_program(self, tmp_path, capsys):
        prog = tmp_path / "contended.pl"
        prog.write_text(
            "(literalize req n)\n"
            "(literalize slot owner)\n"
            "(p claim (req ^n <n>) (slot ^owner nil) --> (modify 2 ^owner <n>))\n"
        )
        rc = main(["lint", str(prog)])
        assert rc == 3
        out = capsys.readouterr().out
        assert "interference" in out
        assert "(mp arbitrate-claim" in out


class TestRobustnessOptions:
    COUNTER = """
    (literalize count value)
    (p bump
        (count ^value {<v> < 8})
        -->
        (modify 1 ^value (compute <v> + 1)))
    """

    @pytest.fixture
    def counter_file(self, tmp_path):
        path = tmp_path / "counter.pl"
        path.write_text(self.COUNTER)
        return str(path)

    @pytest.fixture
    def counter_facts(self, tmp_path):
        path = tmp_path / "counter-facts.pl"
        path.write_text("(count ^value 0)\n")
        return str(path)

    def test_matcher_timeout_rejects_nonpositive(self, counter_file, capsys):
        rc = main(["run", counter_file, "--matcher", "process",
                   "--matcher-timeout", "0"])
        assert rc == 2
        assert "--matcher-timeout must be > 0" in capsys.readouterr().err

    def test_respawn_limit_rejects_negative(self, counter_file, capsys):
        rc = main(["run", counter_file, "--matcher", "process",
                   "--respawn-limit", "-1"])
        assert rc == 2
        assert "--respawn-limit must be >= 0" in capsys.readouterr().err

    def test_process_options_require_process_matcher(self, counter_file, capsys):
        rc = main(["run", counter_file, "--respawn-limit", "2"])
        assert rc == 2
        assert "require --matcher process" in capsys.readouterr().err

    def test_process_options_accepted(self, counter_file, counter_facts):
        rc = main(["run", counter_file, "--facts", counter_facts,
                   "--matcher", "process", "--workers", "1",
                   "--matcher-timeout", "30", "--respawn-limit", "2"])
        assert rc == 0

    def test_checkpoint_every_rejects_nonpositive(self, counter_file, capsys):
        rc = main(["run", counter_file, "--checkpoint-every", "0"])
        assert rc == 2
        assert "--checkpoint-every must be >= 1" in capsys.readouterr().err

    def test_checkpoint_options_rejected_for_ops5(self, counter_file, capsys):
        rc = main(["run", counter_file, "--engine", "ops5",
                   "--checkpoint-every", "2"])
        assert rc == 2
        assert "parulel only" in capsys.readouterr().err

    def test_checkpoint_written_at_default_path(
        self, counter_file, counter_facts
    ):
        rc = main(["run", counter_file, "--facts", counter_facts,
                   "--checkpoint-every", "3"])
        assert rc == 0
        assert os.path.exists(counter_file + ".ckpt")

    def test_interrupted_run_resumes_to_same_result(
        self, counter_file, counter_facts, tmp_path, capsys
    ):
        ckpt = str(tmp_path / "run.ckpt")
        # Hit the cycle limit mid-run; the salvage checkpoint is written.
        rc = main(["run", counter_file, "--facts", counter_facts,
                   "--checkpoint-every", "2", "--checkpoint", ckpt,
                   "--max-cycles", "4"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "cycle limit hit after 4 cycles and 4 firings" in err
        assert os.path.exists(ckpt)
        # Resuming finishes the remaining 4 cycles.
        rc = main(["run", counter_file, "--resume", ckpt,
                   "--dump-wm", str(tmp_path / "resumed.wm")])
        assert rc == 0
        assert "4 cycles, 4 firings" in capsys.readouterr().err
        # Uninterrupted reference.
        rc = main(["run", counter_file, "--facts", counter_facts,
                   "--dump-wm", str(tmp_path / "straight.wm")])
        assert rc == 0
        resumed = (tmp_path / "resumed.wm").read_text()
        straight = (tmp_path / "straight.wm").read_text()
        assert resumed == straight

    def test_resume_ignores_facts_with_warning(
        self, counter_file, counter_facts, tmp_path, capsys
    ):
        ckpt = str(tmp_path / "warn.ckpt")
        main(["run", counter_file, "--facts", counter_facts,
              "--checkpoint-every", "1", "--checkpoint", ckpt])
        capsys.readouterr()
        rc = main(["run", counter_file, "--resume", ckpt,
                   "--facts", counter_facts])
        assert rc == 0
        assert "--facts is ignored" in capsys.readouterr().err


class TestExplainJSON:
    def test_json_emits_derivation_trees(self, program_file, facts_file, capsys):
        import json

        rc = main(
            [
                "explain", program_file, "--facts", facts_file,
                "--wme", "(path ^src a ^dst c)", "--json",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["pattern"] == "(path ^src a ^dst c)"
        (tree,) = doc["matches"]
        assert tree["kind"] == "make"
        assert tree["rule"] == "tc-extend"
        # Parents walk down to the initially asserted edges.
        kinds = {p["kind"] for p in tree["parents"]}
        assert "initial" in kinds or "make" in kinds
        assert doc["ruleCounts"] == {"tc-init": 2, "tc-extend": 1}

    def test_text_mode_prints_rule_count_footer(
        self, program_file, facts_file, capsys
    ):
        rc = main(
            [
                "explain", program_file, "--facts", facts_file,
                "--wme", "(path ^src a ^dst c)",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "derivations by rule:" in out
        assert "tc-init: 2" in out
        assert "tc-extend: 1" in out

    def test_absent_wme_diagnostic_names_class_state(
        self, program_file, facts_file, capsys
    ):
        # Class exists but no attribute match: the hint says so.
        rc = main(
            [
                "explain", program_file, "--facts", facts_file,
                "--wme", "(path ^src z ^dst z)",
            ]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "no live WME matches (path ^src z ^dst z)" in err
        assert "have other attributes" in err
        # Class entirely absent: different hint, still no traceback.
        rc = main(
            [
                "explain", program_file, "--facts", facts_file,
                "--wme", "(ghost ^x 1)",
            ]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "no live WMEs of class 'ghost' at all" in err
