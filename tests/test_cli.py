"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_facts
from repro.errors import ParseError

TC = """
(literalize edge src dst)
(literalize path src dst)
(p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
 --> (make path ^src <a> ^dst <b>))
(p tc-extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)
 -(path ^src <a> ^dst <c>) --> (make path ^src <a> ^dst <c>) (write path <a> <c>))
"""

FACTS = """
(edge ^src a ^dst b)
(edge ^src b ^dst c)
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "tc.pl"
    path.write_text(TC)
    return str(path)


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "facts.pl"
    path.write_text(FACTS)
    return str(path)


class TestParseFacts:
    def test_basic(self):
        facts = parse_facts("(edge ^src a ^dst 2)(goal)")
        assert facts == [("edge", {"src": "a", "dst": 2}), ("goal", {})]

    def test_malformed_rejected(self):
        with pytest.raises(ParseError):
            parse_facts("(edge ^src <var>)")

    def test_empty(self):
        assert parse_facts("") == []


class TestRunCommand:
    def test_parulel_run(self, program_file, facts_file, capsys):
        rc = main(["run", program_file, "--facts", facts_file])
        assert rc == 0
        out, err = capsys.readouterr()
        assert "path a c" in out
        assert "[parulel]" in err

    def test_ops5_run(self, program_file, facts_file, capsys):
        rc = main(
            ["run", program_file, "--facts", facts_file, "--engine", "ops5"]
        )
        assert rc == 0
        _out, err = capsys.readouterr()
        assert "[ops5/lex]" in err

    def test_trace_and_stats(self, program_file, facts_file, capsys):
        rc = main(
            ["run", program_file, "--facts", facts_file, "--trace", "--stats"]
        )
        assert rc == 0
        _out, err = capsys.readouterr()
        assert "[cycle 1]" in err
        assert "match:" in err

    def test_matcher_option(self, program_file, facts_file):
        for matcher in ("rete", "treat", "naive"):
            assert (
                main(["run", program_file, "--facts", facts_file, "--matcher", matcher])
                == 0
            )

    def test_process_matcher_with_workers(self, program_file, facts_file):
        rc = main(
            ["run", program_file, "--facts", facts_file,
             "--matcher", "process", "--workers", "2"]
        )
        assert rc == 0

    def test_process_matcher_rejects_zero_workers(
        self, program_file, facts_file, capsys
    ):
        # Regression: --workers 0 used to fall through a falsy check and
        # silently run with the default worker count.
        rc = main(
            ["run", program_file, "--facts", facts_file,
             "--matcher", "process", "--workers", "0"]
        )
        assert rc == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_missing_file_errors(self, capsys):
        rc = main(["run", "/nonexistent/prog.pl"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_program_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.pl"
        bad.write_text("(p broken")
        rc = main(["run", str(bad)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestCheckCommand:
    def test_inventory(self, program_file, capsys):
        rc = main(["check", program_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 classes, 2 rules, 0 meta-rules" in out
        assert "tc-extend" in out

    def test_semantic_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.pl"
        bad.write_text("(literalize c a)(p r (d ^a 1) --> (halt))")
        rc = main(["check", str(bad)])
        assert rc == 1
        assert "undeclared class" in capsys.readouterr().err


class TestFmtCommand:
    def test_canonical_output_reparses(self, program_file, capsys):
        rc = main(["fmt", program_file])
        assert rc == 0
        out = capsys.readouterr().out
        from repro.lang.parser import parse_program

        assert parse_program(out) == parse_program(TC)


class TestDemoCommand:
    def test_known_demo(self, capsys):
        rc = main(["demo", "monkey"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "parulel:" in out and "OK" in out

    def test_unknown_demo(self, capsys):
        rc = main(["demo", "nope"])
        assert rc == 2
        assert "available" in capsys.readouterr().err


class TestDotCommand:
    def test_dot_output(self, program_file, facts_file, capsys):
        rc = main(["dot", program_file, "--facts", facts_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph rete {")
        assert "tc-extend" in out
        assert "[2 wmes]" in out  # the two edge facts

    def test_dot_without_facts(self, program_file, capsys):
        rc = main(["dot", program_file])
        assert rc == 0
        assert "digraph" in capsys.readouterr().out


class TestExplainCommand:
    def test_explain_derivation(self, program_file, facts_file, capsys):
        rc = main(
            [
                "explain",
                program_file,
                "--facts",
                facts_file,
                "--wme",
                "(path ^src a ^dst c)",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "made by rule 'tc-extend'" in out
        assert "asserted initially" in out

    def test_explain_no_match(self, program_file, facts_file, capsys):
        rc = main(
            [
                "explain",
                program_file,
                "--facts",
                facts_file,
                "--wme",
                "(path ^src z ^dst z)",
            ]
        )
        assert rc == 1
        assert "no live WME" in capsys.readouterr().err

    def test_explain_bad_pattern(self, program_file, facts_file, capsys):
        rc = main(
            ["explain", program_file, "--facts", facts_file, "--wme", "(a)(b)"]
        )
        assert rc == 2


class TestLintCommand:
    def test_clean_program(self, program_file, capsys):
        rc = main(["lint", program_file])  # tc only makes -> clean
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_flagged_program(self, tmp_path, capsys):
        prog = tmp_path / "contended.pl"
        prog.write_text(
            "(literalize req n)\n"
            "(literalize slot owner)\n"
            "(p claim (req ^n <n>) (slot ^owner nil) --> (modify 2 ^owner <n>))\n"
        )
        rc = main(["lint", str(prog)])
        assert rc == 3
        out = capsys.readouterr().out
        assert "interference" in out
        assert "(mp arbitrate-claim" in out
