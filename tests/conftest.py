"""Shared test plumbing: per-test timeouts and the slow/faults markers.

The container has no ``pytest-timeout`` plugin, so timeouts are enforced
with ``SIGALRM``: ``@pytest.mark.timeout(seconds)`` arms an alarm around
the test call and fails the test (instead of hanging the whole suite) if
it expires. Fault-injection tests that kill or SIGSTOP real worker
processes carry ``@pytest.mark.slow`` and a timeout, so a recovery bug
shows up as one failed test, not a wedged CI job.
"""

import signal

import pytest

#: Default ceiling applied to every test marked ``faults`` that does not
#: set an explicit ``timeout`` marker.
DEFAULT_FAULTS_TIMEOUT = 60.0


class _TestTimeout(Exception):
    pass


def _timeout_seconds(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    if item.get_closest_marker("faults") is not None:
        return DEFAULT_FAULTS_TIMEOUT
    return 0.0  # no alarm


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    seconds = _timeout_seconds(item)
    if seconds <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expire(signum, frame):
        raise _TestTimeout(f"test exceeded its {seconds:.0f}s timeout marker")

    previous = signal.signal(signal.SIGALRM, _expire)
    # setitimer keeps sub-second precision, unlike alarm().
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
