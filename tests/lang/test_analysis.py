"""Semantic-analysis tests: what programs are rejected, and why."""

import pytest

from repro.errors import SemanticError
from repro.lang.analysis import analyze_program
from repro.lang.parser import parse_program


def analyze(src, **kw):
    return analyze_program(parse_program(src), **kw)


GOOD = """
(literalize block name size)
(p grow
    (block ^name <n> ^size <s>)
    -->
    (modify 1 ^size (compute <s> + 1)))
"""


class TestStructure:
    def test_valid_program_passes(self):
        info = analyze(GOOD)
        assert info.info("grow").bound_variables == ("n", "s")

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(SemanticError, match="duplicate rule name"):
            analyze("(p r (c) --> (halt)) (p r (c) --> (halt))")

    def test_duplicate_rule_and_meta_rule_name_rejected(self):
        with pytest.raises(SemanticError, match="duplicate rule name"):
            analyze(
                "(p r (c) --> (halt))"
                "(mp r (instantiation ^id <i>) --> (redact <i>))"
            )

    def test_duplicate_literalize_rejected(self):
        with pytest.raises(SemanticError, match="duplicate literalize"):
            analyze("(literalize c a) (literalize c b)")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SemanticError, match="duplicate attributes"):
            analyze("(literalize c a a)")

    def test_instantiation_class_reserved(self):
        with pytest.raises(SemanticError, match="reserved"):
            analyze("(literalize instantiation id)")

    def test_first_ce_must_be_positive(self):
        with pytest.raises(SemanticError, match="first condition"):
            analyze("(p r -(c ^a 1) (d) --> (halt))")


class TestClassDiscipline:
    def test_undeclared_class_in_ce_rejected(self):
        with pytest.raises(SemanticError, match="undeclared class"):
            analyze("(literalize c a) (p r (d ^a 1) --> (halt))")

    def test_undeclared_attribute_in_ce_rejected(self):
        with pytest.raises(SemanticError, match="no attribute"):
            analyze("(literalize c a) (p r (c ^b 1) --> (halt))")

    def test_make_of_undeclared_class_rejected(self):
        with pytest.raises(SemanticError, match="make of undeclared"):
            analyze("(literalize c a) (p r (c ^a 1) --> (make d ^a 1))")

    def test_make_with_undeclared_attribute_rejected(self):
        with pytest.raises(SemanticError, match="undeclared attribute"):
            analyze("(literalize c a) (p r (c ^a 1) --> (make c ^b 1))")

    def test_modify_with_undeclared_attribute_rejected(self):
        with pytest.raises(SemanticError, match="undeclared attribute"):
            analyze("(literalize c a) (p r (c ^a 1) --> (modify 1 ^b 2))")

    def test_untyped_program_skips_class_checks(self):
        # No literalize at all: classes are implicit, everything allowed.
        analyze("(p r (anything ^whatever 1) --> (make other ^x 2))")

    def test_enforce_templates_false_skips_checks(self):
        analyze(
            "(literalize c a) (p r (d ^b 1) --> (halt))",
            enforce_templates=False,
        )

    def test_meta_rules_may_match_instantiation_without_declaration(self):
        analyze(
            "(literalize c a)"
            "(p r (c ^a <x>) --> (halt))"
            "(mp m (instantiation ^rule r ^id <i> ^x <v>) --> (redact <i>))"
        )


class TestVariableDiscipline:
    def test_predicate_on_unbound_variable_rejected(self):
        with pytest.raises(SemanticError, match="never bound"):
            analyze("(p r (c ^a <> <nope>) --> (halt))")

    def test_variable_only_in_negated_ce_rejected(self):
        with pytest.raises(SemanticError, match="only\\s+inside a negated"):
            analyze("(p r (c ^a 1) -(d ^b <x>) --> (halt))")

    def test_negated_ce_may_use_bound_variables(self):
        analyze("(p r (c ^a <x>) -(d ^b <x>) --> (halt))")

    def test_rhs_unbound_variable_rejected(self):
        with pytest.raises(SemanticError, match="unbound variable"):
            analyze("(p r (c ^a 1) --> (make d ^b <x>))")

    def test_bind_introduces_variable_for_later_actions(self):
        analyze("(p r (c ^a <x>) --> (bind <y> (compute <x> + 1)) (make d ^b <y>))")

    def test_bind_scope_is_downward_only(self):
        with pytest.raises(SemanticError, match="unbound variable"):
            analyze("(p r (c ^a <x>) --> (make d ^b <y>) (bind <y> 1))")

    def test_conjunctive_binding_counts(self):
        # {<x> > 4} binds <x> and constrains it.
        analyze("(p r (c ^a { <x> > 4 }) --> (make d ^b <x>))")


class TestActionDiscipline:
    def test_modify_index_out_of_range(self):
        with pytest.raises(SemanticError, match="out of range"):
            analyze("(p r (c ^a 1) --> (modify 2 ^a 2))")

    def test_modify_of_negated_ce_rejected(self):
        with pytest.raises(SemanticError, match="negated"):
            analyze("(p r (c ^a <x>) -(d ^b <x>) --> (modify 2 ^b 1))")

    def test_remove_index_out_of_range(self):
        with pytest.raises(SemanticError, match="out of range"):
            analyze("(p r (c ^a 1) --> (remove 3))")

    def test_remove_of_negated_ce_rejected(self):
        with pytest.raises(SemanticError, match="negated"):
            analyze("(p r (c ^a <x>) -(d ^b <x>) --> (remove 2))")

    def test_redact_in_object_rule_rejected(self):
        with pytest.raises(SemanticError, match="only legal in meta-rules"):
            analyze("(p r (c ^a <x>) --> (redact <x>))")


class TestMetaRuleDiscipline:
    def test_meta_rule_make_rejected(self):
        with pytest.raises(SemanticError, match="not allowed at the\\s+meta level"):
            analyze("(mp m (instantiation ^id <i>) --> (make c ^a 1))")

    def test_meta_rule_modify_rejected(self):
        with pytest.raises(SemanticError, match="not allowed"):
            analyze("(mp m (instantiation ^id <i>) --> (modify 1 ^id 2))")

    def test_meta_rule_remove_rejected(self):
        with pytest.raises(SemanticError, match="not allowed"):
            analyze("(mp m (instantiation ^id <i>) --> (remove 1))")

    def test_meta_rule_redact_write_bind_halt_call_allowed(self):
        analyze(
            "(mp m (instantiation ^id <i>) --> "
            "(bind <j> <i>) (write redacting <j>) (call log <j>) "
            "(redact <j>) (halt))"
        )


class TestRuleInfo:
    def test_classes_read_and_written(self):
        info = analyze(
            "(literalize a x) (literalize b x) (literalize c x)"
            "(p r (a ^x <v>) -(b ^x <v>) --> (make c ^x <v>) (remove 1))"
        )
        ri = info.info("r")
        assert ri.classes_read == frozenset({"a", "b"})
        assert ri.classes_written == frozenset({"a", "c"})

    def test_is_meta_flag(self):
        info = analyze(
            "(p r (c ^a <x>) --> (halt))"
            "(mp m (instantiation ^id <i>) --> (redact <i>))"
        )
        assert not info.info("r").is_meta
        assert info.info("m").is_meta

    def test_unknown_rule_info_raises(self):
        with pytest.raises(KeyError):
            analyze(GOOD).info("absent")


# Every rejection must say *which* rule broke the rules — the analyzer's
# messages are what `parulel check`/`analyze` surface to the porter, and
# a diagnostic that doesn't name its rule is useless in a 100-rule file.
REJECTION_CASES = [
    pytest.param(
        "(literalize c a)"
        "(p offender -(c ^a 1) (c ^a 2) --> (halt))",
        "first condition element must be positive",
        id="negated-first-ce",
    ),
    pytest.param(
        "(literalize c a)"
        "(p offender (c ^a <x>) --> (modify 9 ^a 1))",
        "modify index 9 out of range",
        id="modify-index-out-of-range",
    ),
    pytest.param(
        "(literalize c a)"
        "(p offender (c ^a <x>) --> (redact <x>))",
        "only legal in meta-rules",
        id="redact-in-object-rule",
    ),
    pytest.param(
        "(literalize c a)"
        "(p offender (c ^a <x> ^b 1) --> (halt))",
        "no attribute 'b'",
        id="undeclared-attribute-in-ce",
    ),
    pytest.param(
        "(literalize c a)"
        "(p offender (c ^a <x>) --> (modify 1 ^b 1))",
        "assigns undeclared attribute 'b'",
        id="undeclared-attribute-in-modify",
    ),
    pytest.param(
        "(literalize c a)"
        "(p offender (c ^a <x>) - (c ^a <y>) --> (halt))",
        "appears only inside a negated condition element",
        id="variable-only-in-negated-ce",
    ),
    pytest.param(
        "(literalize c a)"
        "(p offender (c ^a <x>) --> (make d ^a <x>))",
        "make of undeclared class 'd'",
        id="make-of-undeclared-class",
    ),
    pytest.param(
        "(literalize c a)"
        "(p offender (c ^a <x>) - (c ^a 2) --> (remove 2))",
        "refers to a negated condition element",
        id="remove-of-negated-ce",
    ),
]


class TestRejectionMessagesNameTheRule:
    @pytest.mark.parametrize("src,fragment", REJECTION_CASES)
    def test_message_names_offender_and_cause(self, src, fragment):
        with pytest.raises(SemanticError) as excinfo:
            analyze(src)
        message = str(excinfo.value)
        assert "'offender'" in message
        assert fragment in message
