"""Unit tests for the PARULEL lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def values(source):
    return [t.value for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_parens(self):
        assert kinds("()") == [TokenKind.LPAREN, TokenKind.RPAREN]

    def test_braces(self):
        assert kinds("{}") == [TokenKind.LBRACE, TokenKind.RBRACE]

    def test_caret(self):
        assert kinds("^") == [TokenKind.CARET]

    def test_arrow(self):
        assert kinds("-->") == [TokenKind.ARROW]

    def test_minus_alone(self):
        assert kinds("-") == [TokenKind.MINUS]

    def test_disjunction_brackets(self):
        assert kinds("<< >>") == [TokenKind.LDISJ, TokenKind.RDISJ]

    def test_whitespace_ignored(self):
        assert kinds("  (\t\n ) ") == [TokenKind.LPAREN, TokenKind.RPAREN]


class TestAtoms:
    def test_symbol(self):
        assert values("hello") == ["hello"]
        assert kinds("hello") == [TokenKind.SYMBOL]

    def test_symbol_with_hyphens(self):
        assert values("on-top-of") == ["on-top-of"]
        assert kinds("on-top-of") == [TokenKind.SYMBOL]

    def test_integer(self):
        toks = tokenize("42")
        assert toks[0].kind is TokenKind.NUMBER
        assert toks[0].value == 42
        assert isinstance(toks[0].value, int)

    def test_float(self):
        toks = tokenize("3.25")
        assert toks[0].kind is TokenKind.NUMBER
        assert toks[0].value == 3.25

    def test_negative_integer(self):
        toks = tokenize("-7")
        assert toks[0].kind is TokenKind.NUMBER
        assert toks[0].value == -7

    def test_negative_float(self):
        toks = tokenize("-0.5")
        assert toks[0].value == -0.5

    def test_exponent_float(self):
        toks = tokenize("1e3")
        assert toks[0].kind is TokenKind.NUMBER
        assert toks[0].value == 1000.0

    def test_symbol_starting_with_digit_is_number_error_free(self):
        # "2x" is not a number; it lexes as a symbol.
        toks = tokenize("2x")
        assert toks[0].kind is TokenKind.SYMBOL
        assert toks[0].value == "2x"


class TestVariables:
    def test_simple_variable(self):
        toks = tokenize("<x>")
        assert toks[0].kind is TokenKind.VARIABLE
        assert toks[0].value == "x"

    def test_multichar_variable(self):
        toks = tokenize("<block-name>")
        assert toks[0].kind is TokenKind.VARIABLE
        assert toks[0].value == "block-name"

    def test_two_variables(self):
        assert values("<a> <b>") == ["a", "b"]

    def test_empty_angle_is_not_variable(self):
        # "<>" is the not-equal predicate symbol.
        toks = tokenize("<>")
        assert toks[0].kind is TokenKind.SYMBOL
        assert toks[0].value == "<>"


class TestPredicateSymbols:
    @pytest.mark.parametrize("sym", ["<", "<=", ">", ">=", "<>", "<=>", "="])
    def test_predicate_lexes_as_symbol(self, sym):
        toks = tokenize(sym)
        assert toks[0].kind is TokenKind.SYMBOL
        assert toks[0].value == sym

    def test_predicate_followed_by_number(self):
        assert values("> 4") == [">", 4]

    def test_le_vs_ldisj(self):
        # "<<" is a disjunction bracket, "<=" a predicate.
        assert kinds("<<")[0] is TokenKind.LDISJ
        assert kinds("<=")[0] is TokenKind.SYMBOL


class TestStrings:
    def test_bar_string(self):
        toks = tokenize("|hello world|")
        assert toks[0].kind is TokenKind.STRING
        assert toks[0].value == "hello world"

    def test_empty_string(self):
        toks = tokenize("||")
        assert toks[0].value == ""

    def test_string_with_specials(self):
        toks = tokenize("|a(b){c}^d|")
        assert toks[0].value == "a(b){c}^d"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("|unterminated")


class TestComments:
    def test_comment_to_eol(self):
        assert values("foo ; this is a comment\nbar") == ["foo", "bar"]

    def test_comment_at_eof(self):
        assert values("foo ; trailing") == ["foo"]

    def test_full_line_comment(self):
        assert values("; nothing here\n(") == ["("]


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("(p\n  foo)")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (1, 2)
        assert (toks[2].line, toks[2].column) == (2, 3)  # foo
        assert (toks[3].line, toks[3].column) == (2, 6)  # )

    def test_lex_error_carries_position(self):
        try:
            tokenize("abc\n  |oops")
        except LexError as exc:
            assert exc.line == 2
            assert exc.column == 3
        else:
            pytest.fail("expected LexError")


class TestRealisticFragments:
    def test_condition_element(self):
        src = "(block ^name <x> ^size > 4)"
        ks = kinds(src)
        assert ks == [
            TokenKind.LPAREN,
            TokenKind.SYMBOL,
            TokenKind.CARET,
            TokenKind.SYMBOL,
            TokenKind.VARIABLE,
            TokenKind.CARET,
            TokenKind.SYMBOL,
            TokenKind.SYMBOL,
            TokenKind.NUMBER,
            TokenKind.RPAREN,
        ]

    def test_negated_ce(self):
        ks = kinds("-(path ^src <a>)")
        assert ks[0] is TokenKind.MINUS
        assert ks[1] is TokenKind.LPAREN

    def test_arrow_between_minus_tokens(self):
        # "a --> b" must not lex the arrow as minus-minus-gt.
        assert kinds("a --> b") == [
            TokenKind.SYMBOL,
            TokenKind.ARROW,
            TokenKind.SYMBOL,
        ]

    def test_conjunctive_test(self):
        ks = kinds("{<x> > 4}")
        assert ks == [
            TokenKind.LBRACE,
            TokenKind.VARIABLE,
            TokenKind.SYMBOL,
            TokenKind.NUMBER,
            TokenKind.RBRACE,
        ]

    def test_disjunction_of_colors(self):
        assert values("<< red green blue >>") == [
            "<<",
            "red",
            "green",
            "blue",
            ">>",
        ]
