"""Pretty-printer round-trip: parse(format(ast)) == ast.

Includes a hypothesis property over randomly generated programs — the
printer and the parser must be exact inverses on the AST domain.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.lang.ast import (
    BindAction,
    CallAction,
    ComputeExpr,
    ConditionElement,
    ConjunctiveTest,
    ConstantExpr,
    ConstantTest,
    DisjunctionTest,
    GenatomExpr,
    HaltAction,
    Literalize,
    MakeAction,
    MetaRule,
    ModifyAction,
    PredicateTest,
    Program,
    RedactAction,
    RemoveAction,
    Rule,
    VariableExpr,
    VariableTest,
    WriteAction,
)
from repro.lang.parser import parse_program
from repro.lang.pretty import format_program, format_rule


class TestHandWrittenRoundTrips:
    CASES = [
        "(literalize block name size)",
        "(p r (c ^a 1) --> (halt))",
        "(p r (c ^a <x> ^b { <y> > 4 <> <x> }) --> (make d ^e <y>))",
        "(p r (c ^a << red green 3 >>) -(d ^a 1) --> (remove 1))",
        "(p r (salience 7) (c ^a <x>) --> (modify 1 ^a (compute <x> + 1 * 2)))",
        "(p r (c ^a <x>) --> (bind <y> (compute <x> mod 3)) (write x is <y>))",
        "(p r (c ^a |two words|) --> (call notify |hello there| 5))",
        "(p r (c ^a <x>) --> (make d ^id (genatom) ^tag (genatom tkt)))",
        "(mp m (instantiation ^rule r ^id <i>) --> (redact <i>))",
    ]

    @pytest.mark.parametrize("src", CASES)
    def test_round_trip(self, src):
        once = parse_program(src)
        twice = parse_program(format_program(once))
        assert once == twice

    def test_format_is_idempotent(self):
        src = "".join(self.CASES)
        first = format_program(parse_program(src))
        second = format_program(parse_program(first))
        assert first == second


# ---------------------------------------------------------------------------
# Hypothesis: generated ASTs survive print -> parse
# ---------------------------------------------------------------------------

# Symbols that cannot collide with syntax: lowercase alpha with hyphens.
symbols = st.from_regex(r"[a-z][a-z0-9]{0,5}(-[a-z0-9]{1,4})?", fullmatch=True)
var_names = st.from_regex(r"[a-z][a-z0-9]{0,5}", fullmatch=True)
numbers = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ).map(lambda f: round(f, 3)),
)
# Strings exercise the bar-quoting path, including delimiter characters.
quoted_strings = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd", "Zs"), max_codepoint=127),
    max_size=10,
).filter(lambda s: "|" not in s)
constants = st.one_of(symbols, numbers, quoted_strings)

predicates = st.sampled_from(["=", "<>", "<", "<=", ">", ">=", "<=>"])


def _pred_test(draw_operand):
    return st.builds(PredicateTest, predicates, draw_operand)


atomic_tests = st.one_of(
    st.builds(ConstantTest, constants),
    st.builds(VariableTest, var_names),
    _pred_test(
        st.one_of(st.builds(ConstantTest, constants), st.builds(VariableTest, var_names))
    ),
    st.builds(
        DisjunctionTest,
        st.lists(constants, min_size=1, max_size=3).map(tuple),
    ),
)

tests = st.one_of(
    atomic_tests,
    st.builds(
        ConjunctiveTest, st.lists(atomic_tests, min_size=1, max_size=3).map(tuple)
    ),
)

condition_elements = st.builds(
    ConditionElement,
    class_name=symbols,
    tests=st.lists(st.tuples(symbols, tests), min_size=0, max_size=3).map(tuple),
    negated=st.booleans(),
)


def _valid_first_positive(ces):
    ces = list(ces)
    if ces and ces[0].negated:
        ces[0] = ConditionElement(ces[0].class_name, ces[0].tests, negated=False)
    return tuple(ces)


exprs = st.recursive(
    st.one_of(
        st.builds(ConstantExpr, constants),
        st.builds(VariableExpr, var_names),
        st.builds(GenatomExpr, var_names),
        st.just(GenatomExpr()),
    ),
    lambda children: st.builds(
        ComputeExpr,
        st.lists(children, min_size=2, max_size=3).flatmap(
            lambda ops: st.lists(
                st.sampled_from(["+", "-", "*", "//", "mod"]),
                min_size=len(ops) - 1,
                max_size=len(ops) - 1,
            ).map(
                lambda operators: tuple(
                    x
                    for pair in zip(ops, operators + [None])
                    for x in pair
                    if x is not None
                )
            )
        ),
    ),
    max_leaves=4,
)

assignments = st.lists(st.tuples(symbols, exprs), min_size=0, max_size=3).map(tuple)

actions = st.one_of(
    st.builds(MakeAction, symbols, assignments),
    st.builds(
        ModifyAction, st.integers(min_value=1, max_value=3), assignments
    ),
    st.builds(
        RemoveAction,
        st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=2).map(
            tuple
        ),
    ),
    st.builds(WriteAction, st.lists(exprs, min_size=0, max_size=3).map(tuple)),
    st.builds(BindAction, var_names, exprs),
    st.just(HaltAction()),
    st.builds(CallAction, symbols, st.lists(exprs, min_size=0, max_size=2).map(tuple)),
)

rules = st.builds(
    Rule,
    name=symbols,
    conditions=st.lists(condition_elements, min_size=1, max_size=3)
    .map(tuple)
    .map(_valid_first_positive),
    actions=st.lists(actions, min_size=0, max_size=3).map(tuple),
    salience=st.integers(min_value=-5, max_value=5),
)

meta_actions = st.one_of(
    st.builds(RedactAction, exprs),
    st.builds(WriteAction, st.lists(exprs, min_size=0, max_size=2).map(tuple)),
    st.just(HaltAction()),
)

meta_rules = st.builds(
    MetaRule,
    name=symbols,
    conditions=st.lists(condition_elements, min_size=1, max_size=2)
    .map(tuple)
    .map(_valid_first_positive),
    actions=st.lists(meta_actions, min_size=0, max_size=2).map(tuple),
    salience=st.integers(min_value=-5, max_value=5),
)

literalizes = st.builds(
    Literalize,
    class_name=symbols,
    attributes=st.lists(symbols, min_size=0, max_size=4, unique=True).map(tuple),
)

programs = st.builds(
    Program,
    literalizes=st.lists(literalizes, min_size=0, max_size=2).map(tuple),
    rules=st.lists(rules, min_size=0, max_size=3).map(tuple),
    meta_rules=st.lists(meta_rules, min_size=0, max_size=2).map(tuple),
)


class TestPropertyRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(programs)
    def test_program_round_trips(self, program):
        assert parse_program(format_program(program)) == program

    @settings(max_examples=100, deadline=None)
    @given(rules)
    def test_single_rule_round_trips(self, rule):
        parsed = parse_program(format_rule(rule))
        assert parsed.rules == (rule,)
