"""Tests for the programmatic builder DSL — it must produce the same ASTs
as the parser does for equivalent surface syntax."""

import pytest

from repro.errors import SemanticError
from repro.lang.builder import (
    ProgramBuilder,
    RuleBuilder,
    compute,
    conj,
    ge,
    gt,
    le,
    lt,
    ne,
    one_of,
    raw,
    same_type,
    v,
)
from repro.lang.parser import parse_program


class TestEquivalenceWithParser:
    def test_simple_rule(self):
        pb = ProgramBuilder()
        pb.literalize("count", "value")
        (
            pb.rule("bump")
            .ce("count", value=conj(v("v"), lt(5)))
            .modify(1, value=compute(v("v"), "+", 1))
        )
        built = pb.build()
        parsed = parse_program(
            """
            (literalize count value)
            (p bump
                (count ^value { <v> < 5 })
                -->
                (modify 1 ^value (compute <v> + 1)))
            """
        )
        assert built == parsed

    def test_negation_and_make(self):
        pb = ProgramBuilder()
        pb.literalize("edge", "src", "dst")
        pb.literalize("path", "src", "dst")
        (
            pb.rule("init")
            .ce("edge", src=v("a"), dst=v("b"))
            .neg("path", src=v("a"), dst=v("b"))
            .make("path", src=v("a"), dst=v("b"))
        )
        parsed = parse_program(
            """
            (literalize edge src dst)
            (literalize path src dst)
            (p init
                (edge ^src <a> ^dst <b>)
                -(path ^src <a> ^dst <b>)
                -->
                (make path ^src <a> ^dst <b>))
            """
        )
        assert pb.build() == parsed

    def test_meta_rule(self):
        pb = ProgramBuilder()
        (
            pb.meta_rule("pick")
            .ce("instantiation", rule="r", id=v("i"))
            .ce("instantiation", rule="r", id=conj(v("j"), gt(v("i"))))
            .redact(v("j"))
        )
        parsed = parse_program(
            """
            (mp pick
                (instantiation ^rule r ^id <i>)
                (instantiation ^rule r ^id { <j> > <i> })
                -->
                (redact <j>))
            """
        )
        assert pb.build() == parsed

    def test_disjunction_and_predicates(self):
        pb = ProgramBuilder()
        (
            pb.rule("x")
            .ce(
                "c",
                color=one_of("red", "green"),
                size=ge(2),
                kind=ne("blob"),
                weight=le(9),
                ty=same_type(4),
            )
            .halt()
        )
        parsed = parse_program(
            """
            (p x
                (c ^color << red green >> ^size >= 2 ^kind <> blob
                   ^weight <= 9 ^ty <=> 4)
                -->
                (halt))
            """
        )
        assert pb.build(analyze=False) == parsed


class TestAttributeNameTranslation:
    def test_underscore_becomes_hyphen(self):
        pb = ProgramBuilder()
        pb.rule("r").ce("block", on_top_of="nil").halt()
        prog = pb.build(analyze=False)
        assert prog.rules[0].conditions[0].tests[0][0] == "on-top-of"

    def test_raw_suppresses_translation(self):
        rb = RuleBuilder("r")
        rb.ce("c", where={raw("keep_underscore"): 1}).halt()
        rule = rb.to_rule()
        assert rule.conditions[0].tests[0][0] == "keep_underscore"

    def test_where_dict_is_verbatim(self):
        rb = RuleBuilder("r")
        rb.ce("c", where={"as-is": 1}).halt()
        assert rb.to_rule().conditions[0].tests[0][0] == "as-is"


class TestBuilderValidation:
    def test_build_analyzes_by_default(self):
        pb = ProgramBuilder()
        pb.literalize("c", "a")
        pb.rule("bad").ce("c", a=v("x")).make("c", b=v("x"))  # undeclared attr b
        with pytest.raises(SemanticError):
            pb.build()

    def test_build_without_analysis(self):
        pb = ProgramBuilder()
        pb.literalize("c", "a")
        pb.rule("bad").ce("c", a=v("x")).make("c", b=v("x"))
        pb.build(analyze=False)  # no error

    def test_compute_rejects_bad_operator(self):
        with pytest.raises(TypeError):
            compute(v("x"), "**", 2)

    def test_compute_rejects_trailing_operator(self):
        with pytest.raises(TypeError):
            compute(v("x"), "+")

    def test_conj_rejects_nesting(self):
        with pytest.raises(TypeError):
            conj(conj(v("x")), 1)

    def test_add_rule_accepts_prebuilt(self):
        pb = ProgramBuilder()
        rb = RuleBuilder("standalone")
        rb.ce("c", a=1).halt()
        pb.add_rule(rb.to_rule())
        prog = pb.build(analyze=False)
        assert prog.rules[0].name == "standalone"

    def test_variable_on_rhs_via_v(self):
        # v("x") is accepted in expression positions as a convenience.
        rb = RuleBuilder("r")
        rb.ce("c", a=v("x")).make("d", b=v("x"))
        rule = rb.to_rule()
        assert str(rule.actions[0]) == "(make d ^b <x>)"
