"""Unit tests for the PARULEL parser."""

import pytest

from repro.errors import ParseError
from repro.lang.ast import (
    BindAction,
    CallAction,
    ComputeExpr,
    ConjunctiveTest,
    ConstantExpr,
    ConstantTest,
    DisjunctionTest,
    HaltAction,
    MakeAction,
    MetaRule,
    ModifyAction,
    PredicateTest,
    RedactAction,
    RemoveAction,
    Rule,
    VariableExpr,
    VariableTest,
    WriteAction,
)
from repro.lang.parser import parse_program


def first_rule(src):
    return parse_program(src).rules[0]


MINIMAL = "(p r (c ^a 1) --> (halt))"


class TestDeclarations:
    def test_empty_program(self):
        prog = parse_program("")
        assert prog.rules == ()
        assert prog.literalizes == ()
        assert prog.meta_rules == ()

    def test_literalize(self):
        prog = parse_program("(literalize block name size on-top-of)")
        lit = prog.literalizes[0]
        assert lit.class_name == "block"
        assert lit.attributes == ("name", "size", "on-top-of")

    def test_literalize_no_attributes(self):
        prog = parse_program("(literalize marker)")
        assert prog.literalizes[0].attributes == ()

    def test_rule_and_meta_rule_separated(self):
        prog = parse_program(
            "(p r (c ^a 1) --> (halt))"
            "(mp m (instantiation ^id <i>) --> (redact <i>))"
        )
        assert len(prog.rules) == 1
        assert len(prog.meta_rules) == 1
        assert isinstance(prog.rules[0], Rule)
        assert not isinstance(prog.rules[0], MetaRule)
        assert isinstance(prog.meta_rules[0], MetaRule)

    def test_unknown_declaration_rejected(self):
        with pytest.raises(ParseError, match="unknown declaration"):
            parse_program("(production foo)")

    def test_rule_lookup_by_name(self):
        prog = parse_program(MINIMAL)
        assert prog.rule("r").name == "r"
        with pytest.raises(KeyError):
            prog.rule("absent")


class TestSalience:
    def test_default_salience_zero(self):
        assert first_rule(MINIMAL).salience == 0

    def test_explicit_salience(self):
        rule = first_rule("(p r (salience 5) (c ^a 1) --> (halt))")
        assert rule.salience == 5

    def test_negative_salience(self):
        rule = first_rule("(p r (salience -3) (c ^a 1) --> (halt))")
        assert rule.salience == -3

    def test_float_salience_rejected(self):
        with pytest.raises(ParseError, match="integer"):
            parse_program("(p r (salience 1.5) (c ^a 1) --> (halt))")


class TestConditionElements:
    def test_class_only_ce(self):
        rule = first_rule("(p r (goal) --> (halt))")
        ce = rule.conditions[0]
        assert ce.class_name == "goal"
        assert ce.tests == ()
        assert not ce.negated

    def test_constant_tests(self):
        rule = first_rule("(p r (c ^a 1 ^b foo ^s |two words|) --> (halt))")
        tests = dict(rule.conditions[0].tests)
        assert tests["a"] == ConstantTest(1)
        assert tests["b"] == ConstantTest("foo")
        assert tests["s"] == ConstantTest("two words")

    def test_variable_test(self):
        rule = first_rule("(p r (c ^a <x>) --> (halt))")
        assert dict(rule.conditions[0].tests)["a"] == VariableTest("x")

    def test_predicate_with_constant(self):
        rule = first_rule("(p r (c ^a > 4) --> (halt))")
        test = dict(rule.conditions[0].tests)["a"]
        assert test == PredicateTest(">", ConstantTest(4))

    def test_predicate_with_variable(self):
        rule = first_rule("(p r (c ^a <x> ^b <> <x>) --> (halt))")
        test = dict(rule.conditions[0].tests)["b"]
        assert test == PredicateTest("<>", VariableTest("x"))

    def test_disjunction(self):
        rule = first_rule("(p r (c ^a << red green 3 >>) --> (halt))")
        test = dict(rule.conditions[0].tests)["a"]
        assert test == DisjunctionTest(("red", "green", 3))

    def test_empty_disjunction_rejected(self):
        with pytest.raises(ParseError):
            parse_program("(p r (c ^a << >>) --> (halt))")

    def test_conjunctive_test(self):
        rule = first_rule("(p r (c ^a { <x> > 4 <> 9 }) --> (halt))")
        test = dict(rule.conditions[0].tests)["a"]
        assert isinstance(test, ConjunctiveTest)
        assert test.tests == (
            VariableTest("x"),
            PredicateTest(">", ConstantTest(4)),
            PredicateTest("<>", ConstantTest(9)),
        )

    def test_empty_conjunction_rejected(self):
        with pytest.raises(ParseError):
            parse_program("(p r (c ^a { }) --> (halt))")

    def test_negated_ce(self):
        rule = first_rule("(p r (c ^a <x>) -(d ^a <x>) --> (halt))")
        assert not rule.conditions[0].negated
        assert rule.conditions[1].negated

    def test_multiple_ces_in_order(self):
        rule = first_rule("(p r (c1) (c2) (c3) --> (halt))")
        assert [ce.class_name for ce in rule.conditions] == ["c1", "c2", "c3"]

    def test_rule_without_conditions_rejected(self):
        with pytest.raises(ParseError):
            parse_program("(p r --> (halt))")


class TestActions:
    def test_make(self):
        rule = first_rule("(p r (c ^a <x>) --> (make d ^b <x> ^c 5))")
        action = rule.actions[0]
        assert action == MakeAction(
            "d", (("b", VariableExpr("x")), ("c", ConstantExpr(5)))
        )

    def test_make_no_assignments(self):
        rule = first_rule("(p r (c) --> (make d))")
        assert rule.actions[0] == MakeAction("d", ())

    def test_modify(self):
        rule = first_rule("(p r (c ^a <x>) --> (modify 1 ^a 2))")
        action = rule.actions[0]
        assert isinstance(action, ModifyAction)
        assert action.ce_index == 1

    def test_modify_requires_positive_index(self):
        with pytest.raises(ParseError):
            parse_program("(p r (c) --> (modify 0 ^a 1))")

    def test_remove_multiple(self):
        rule = first_rule("(p r (c) (d) --> (remove 1 2))")
        assert rule.actions[0] == RemoveAction((1, 2))

    def test_remove_needs_index(self):
        with pytest.raises(ParseError):
            parse_program("(p r (c) --> (remove))")

    def test_write(self):
        rule = first_rule("(p r (c ^a <x>) --> (write found <x> 42))")
        action = rule.actions[0]
        assert action == WriteAction(
            (ConstantExpr("found"), VariableExpr("x"), ConstantExpr(42))
        )

    def test_bind(self):
        rule = first_rule("(p r (c ^a <x>) --> (bind <y> (compute <x> + 1)))")
        action = rule.actions[0]
        assert isinstance(action, BindAction)
        assert action.name == "y"
        assert isinstance(action.expr, ComputeExpr)

    def test_halt(self):
        assert first_rule(MINIMAL).actions[0] == HaltAction()

    def test_call(self):
        rule = first_rule("(p r (c ^a <x>) --> (call notify <x> done))")
        action = rule.actions[0]
        assert action == CallAction(
            "notify", (VariableExpr("x"), ConstantExpr("done"))
        )

    def test_redact_in_meta_rule(self):
        prog = parse_program("(mp m (instantiation ^id <i>) --> (redact <i>))")
        assert prog.meta_rules[0].actions[0] == RedactAction(VariableExpr("i"))

    def test_unknown_action_rejected(self):
        with pytest.raises(ParseError, match="unknown action"):
            parse_program("(p r (c) --> (frobnicate))")


class TestComputeExpressions:
    def test_simple_addition(self):
        rule = first_rule("(p r (c ^a <x>) --> (make d ^b (compute <x> + 1)))")
        expr = rule.actions[0].assignments[0][1]
        assert expr == ComputeExpr((VariableExpr("x"), "+", ConstantExpr(1)))

    def test_chained_operators(self):
        rule = first_rule(
            "(p r (c ^a <x>) --> (make d ^b (compute <x> + 1 * 2 - 3)))"
        )
        expr = rule.actions[0].assignments[0][1]
        assert [i for i in expr.items if isinstance(i, str)] == ["+", "*", "-"]

    def test_mod_and_intdiv(self):
        rule = first_rule(
            "(p r (c ^a <x>) --> (make d ^b (compute <x> mod 2) ^c (compute <x> // 2)))"
        )
        exprs = [e for _a, e in rule.actions[0].assignments]
        assert "mod" in exprs[0].items
        assert "//" in exprs[1].items

    def test_dangling_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_program("(p r (c ^a <x>) --> (make d ^b (compute <x> +)))")

    def test_missing_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_program("(p r (c ^a <x>) --> (make d ^b (compute <x> 1)))")

    def test_only_compute_heads_allowed(self):
        with pytest.raises(ParseError, match="compute"):
            parse_program("(p r (c ^a <x>) --> (make d ^b (plus <x> 1)))")


class TestDerivedProperties:
    def test_specificity_counts_tests(self):
        rule = first_rule("(p r (c ^a 1 ^b <x>) (d ^e { > 1 < 9 }) --> (halt))")
        assert rule.specificity == 4

    def test_variables_in_order(self):
        rule = first_rule("(p r (c ^a <x> ^b <y>) (d ^e <z> ^f <x>) --> (halt))")
        assert rule.variables == ("x", "y", "z")

    def test_positive_conditions_excludes_negated(self):
        rule = first_rule("(p r (c ^a <x>) -(d ^a <x>) --> (halt))")
        assert len(rule.positive_conditions) == 1


class TestErrorPositions:
    def test_error_mentions_line(self):
        with pytest.raises(ParseError) as exc:
            parse_program("(p r\n  (c ^a ^b 1)\n --> (halt))")
        assert exc.value.line == 2
