"""Tests for the parallel-firing interference linter."""

import pytest

from repro.errors import InterferenceError
from repro.core import ParulelEngine
from repro.lang.parser import parse_program
from repro.programs import REGISTRY
from repro.programs.routing import routing_program
from repro.tools.lint import (
    find_interference_candidates,
    lint_program,
    suggest_meta_rules,
)


class TestCandidateDetection:
    def test_classic_contention_flagged(self):
        src = """
        (literalize req n)
        (literalize slot owner)
        (p claim (req ^n <n>) (slot ^owner nil) --> (modify 2 ^owner <n>))
        """
        cands = find_interference_candidates(parse_program(src))
        assert len(cands) == 1
        c = cands[0]
        assert c.rule_a == c.rule_b == "claim"
        assert c.class_name == "slot"
        assert c.kind == "modify/modify"

    def test_single_ce_self_modify_is_safe(self):
        # Two instantiations of a 1-positive-CE rule matched different WMEs.
        src = """
        (literalize count value)
        (p bump (count ^value {<v> < 5}) --> (modify 1 ^value (compute <v> + 1)))
        """
        assert find_interference_candidates(parse_program(src)) == []

    def test_cross_rule_contention(self):
        src = """
        (literalize item state tag)
        (literalize trigger a)
        (p close (trigger ^a 1) (item ^state open) --> (modify 2 ^state closed))
        (p drop  (trigger ^a 2) (item ^state open) --> (remove 2))
        """
        cands = find_interference_candidates(parse_program(src))
        kinds = {(c.rule_a, c.rule_b, c.kind) for c in cands}
        assert ("close", "drop", "modify/remove") in kinds

    def test_disjoint_constants_not_flagged(self):
        # The written CEs force different constants on the same attribute:
        # provably different WMEs.
        src = """
        (literalize item state kind)
        (literalize trigger a)
        (p close-a (trigger ^a <x>) (item ^kind a ^state open) --> (modify 2 ^state closed))
        (p close-b (trigger ^a <x>) (item ^kind b ^state open) --> (modify 2 ^state closed))
        """
        cands = find_interference_candidates(parse_program(src))
        pairs = {(c.rule_a, c.rule_b) for c in cands}
        assert ("close-a", "close-b") not in pairs
        # self-pairs for each rule remain (two triggers, one item).
        assert ("close-a", "close-a") in pairs

    def test_makes_never_flagged(self):
        src = """
        (literalize seed n)
        (literalize out n)
        (p derive (seed ^n <n>) --> (make out ^n <n>))
        """
        assert find_interference_candidates(parse_program(src)) == []

    def test_reads_never_flagged(self):
        src = """
        (literalize ctx phase)
        (literalize item n)
        (p advance (ctx ^phase go) (item ^n <n>) --> (remove 2))
        (p watch (ctx ^phase go) (item ^n <n>) --> (write saw <n>))
        """
        cands = find_interference_candidates(parse_program(src))
        # 'watch' writes nothing; only advance/advance self-pair possible —
        # and 'advance' removes its own per-instantiation item... but two
        # instantiations share ctx; they write item only: flagged self-pair
        # is (advance, advance) on 'item'; watch appears nowhere.
        assert all("watch" not in (c.rule_a, c.rule_b) for c in cands)


class TestRuntimeSoundness:
    """Every runtime InterferenceError must be predicted by the linter."""

    def test_routing_without_meta_rules_is_flagged(self):
        program = routing_program(with_meta_rules=False)
        cands = find_interference_candidates(program)
        flagged_classes = {c.class_name for c in cands}
        assert "dist" in flagged_classes  # the contended class at runtime

    def test_runtime_error_implies_lint_hit(self):
        src = """
        (literalize req n)
        (literalize slot owner)
        (p claim (req ^n <n>) (slot ^owner nil) --> (modify 2 ^owner <n>))
        """
        program = parse_program(src)
        engine = ParulelEngine(program)
        engine.make("req", n="a")
        engine.make("req", n="b")
        engine.make("slot", owner="nil")
        with pytest.raises(InterferenceError):
            engine.run()
        assert find_interference_candidates(program)

    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_bundled_workloads_lint_coverage(self, name):
        """Workloads that run cleanly under the error policy either lint
        clean or carry meta-rules for their flagged pairs (the linter is
        conservative; cleanliness at runtime is the dynamic guarantee)."""
        wl = REGISTRY[name]()
        cands = find_interference_candidates(wl.program)
        if cands:
            # every flagged program in the registry ships meta-rules ...
            # except those whose disjointness the linter cannot see:
            # sort's parity phases, and sieve's promote/skip + mark/
            # mark-known pairs (mutually exclusive via negation/predicates).
            assert wl.program.meta_rules or name in ("sort", "monkey", "sieve"), (
                name,
                [c.describe() for c in cands],
            )


class TestSuggestions:
    SRC = """
    (literalize req n)
    (literalize slot owner)
    (p claim (req ^n <n>) (slot ^owner nil) --> (modify 2 ^owner <n>))
    """

    def test_skeletons_parse_and_run(self):
        program = parse_program(self.SRC)
        skeletons = suggest_meta_rules(program)
        assert len(skeletons) == 1
        # Append the skeleton to the program: it must parse, analyze, and
        # actually prevent the interference.
        patched = parse_program(self.SRC + "\n" + skeletons[0])
        engine = ParulelEngine(patched)
        engine.make("req", n="a")
        engine.make("req", n="b")
        engine.make("slot", owner="nil")
        result = engine.run()  # no InterferenceError
        assert engine.wm.by_class("slot")[0].get("owner") in ("a", "b")

    def test_report_text(self):
        report = lint_program(parse_program(self.SRC))
        assert "potential parallel-firing interference" in report
        assert "arbitrate-claim" in report
        assert "no meta-rules present" in report

    def test_clean_program_empty_report(self):
        src = """
        (literalize seed n)
        (literalize out n)
        (p derive (seed ^n <n>) --> (make out ^n <n>))
        """
        assert lint_program(parse_program(src)) == ""


class TestSkeletonNaming:
    def test_names_unique_across_candidates(self):
        src = """
        (literalize order id item qty status)
        (literalize stock item units)
        (p fill
            (order ^id <o> ^item <i> ^qty <q> ^status open)
            (stock ^item <i> ^units {<u> >= <q>})
            -->
            (modify 2 ^units (compute <u> - <q>))
            (modify 1 ^status filled))
        """
        program = parse_program(src)
        skeletons = suggest_meta_rules(program)
        assert len(skeletons) == 2
        # Both skeletons appended together must parse (unique rule names).
        combined = parse_program(src + "\n" + "\n".join(skeletons))
        assert len(combined.meta_rules) == 2
