"""Distributed recovery: crashed sites, rejoin replay, message faults.

The acceptance bar: with a fixed seed, a run that loses a site completes
with a final working memory *byte-identical* to the fault-free run, and
the recovery is visible as structured FaultEvent records.
"""

import pytest

from repro.faults import FaultPlan, SiteCrash, Straggler
from repro.lang.parser import parse_program
from repro.parallel import DistributedMachine
from repro.parallel.partition import rehost_assignment, round_robin_assignment

pytestmark = pytest.mark.faults

TC_SRC = """
(literalize edge src dst)
(literalize path src dst)
(p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
 --> (make path ^src <a> ^dst <b>))
(p tc-extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)
 -(path ^src <a> ^dst <c>) --> (make path ^src <a> ^dst <c>))
"""


def run_machine(n_sites, fault_plan=None, n_edges=10):
    dm = DistributedMachine(
        parse_program(TC_SRC), n_sites, fault_plan=fault_plan
    )
    for i in range(n_edges):
        dm.make("edge", src=f"n{i}", dst=f"n{i + 1}")
    res = dm.run()
    return dm, res


def wm_bytes(wm):
    """Exact contents, timestamps included."""
    return sorted(repr(w) for w in wm.snapshot())


class TestRehostAssignment:
    def test_survivors_keep_their_rules(self):
        rules = parse_program(TC_SRC).rules
        base = round_robin_assignment(rules, 4)
        rehosted = rehost_assignment(base, [2], rules)
        for rule in rules:
            if base.site_of[rule.name] != 2:
                assert rehosted.site_of[rule.name] == base.site_of[rule.name]
            else:
                assert rehosted.site_of[rule.name] != 2
        rehosted.validate(rules)

    def test_master_cannot_be_dead(self):
        rules = parse_program(TC_SRC).rules
        base = round_robin_assignment(rules, 3)
        with pytest.raises(ValueError):
            rehost_assignment(base, [0], rules)


class TestPermanentCrash:
    def test_final_wm_byte_identical_to_fault_free(self):
        _ref_dm, ref = run_machine(3)
        reference = wm_bytes(_ref_dm.replicas[0])

        plan = FaultPlan(crashes=(SiteCrash(cycle=3, site=2),))
        dm, res = run_machine(3, fault_plan=plan)
        assert res.cycles == ref.cycles
        assert res.firings == ref.firings
        assert wm_bytes(dm.replicas[0]) == reference
        assert dm.replicas_consistent()

    def test_recovery_events_recorded(self):
        plan = FaultPlan(crashes=(SiteCrash(cycle=2, site=1),))
        _dm, res = run_machine(3, fault_plan=plan)
        kinds = [e.kind for e in res.fault_events]
        assert "crash" in kinds
        assert "detect" in kinds
        assert "redistribute" in kinds
        assert res.recoveries >= 1
        crash = next(e for e in res.fault_events if e.kind == "crash")
        assert crash.site == 1
        assert crash.cycle == 2

    def test_recovery_work_is_charged(self):
        _dm, clean = run_machine(3)
        plan = FaultPlan(crashes=(SiteCrash(cycle=2, site=1),))
        _dm2, faulty = run_machine(3, fault_plan=plan)
        # Re-hosted rules replay the whole replica on a survivor, so the
        # makespan rises even though fewer sites exchange fewer messages.
        assert faulty.compute_ticks > clean.compute_ticks

    def test_every_surviving_replica_converges(self):
        plan = FaultPlan(crashes=(SiteCrash(cycle=2, site=2),))
        dm, _res = run_machine(4, fault_plan=plan)
        reference = wm_bytes(dm.replicas[0])
        for site in (1, 3):
            assert wm_bytes(dm.replicas[site]) == reference


class TestRejoin:
    def test_rejoined_replica_caught_up_byte_identically(self):
        _ref_dm, ref = run_machine(3)
        reference = wm_bytes(_ref_dm.replicas[0])

        plan = FaultPlan(crashes=(SiteCrash(cycle=2, site=1, rejoin_cycle=5),))
        dm, res = run_machine(3, fault_plan=plan)
        assert res.cycles == ref.cycles
        assert res.firings == ref.firings
        assert 1 not in dm._dead
        # The rejoined replica itself — rebuilt purely from the delta log —
        # must equal the master byte for byte.
        assert wm_bytes(dm.replicas[1]) == reference
        assert dm.replicas_consistent()
        kinds = [e.kind for e in res.fault_events]
        assert "rejoin" in kinds

    def test_rejoin_replay_charged_as_messages(self):
        _dm, clean = run_machine(3)
        plan = FaultPlan(crashes=(SiteCrash(cycle=2, site=1, rejoin_cycle=4),))
        _dm2, faulty = run_machine(3, fault_plan=plan)
        assert faulty.messages > clean.messages


class TestMessageFaults:
    def test_drops_retry_never_lose_data(self):
        _ref_dm, ref = run_machine(3)
        reference = wm_bytes(_ref_dm.replicas[0])

        plan = FaultPlan(seed=5, drop_rate=0.3, dup_rate=0.1, delay_rate=0.1)
        dm, res = run_machine(3, fault_plan=plan)
        assert res.cycles == ref.cycles
        assert wm_bytes(dm.replicas[0]) == reference
        assert dm.replicas_consistent()
        assert res.retries > 0
        assert res.comm_ticks > ref.comm_ticks
        kinds = {e.kind for e in res.fault_events}
        assert "drop" in kinds

    def test_seeded_runs_reproduce_exactly(self):
        plan = FaultPlan(seed=9, drop_rate=0.25, dup_rate=0.05)
        _dm1, a = run_machine(3, fault_plan=plan)
        _dm2, b = run_machine(3, fault_plan=plan)
        assert a.retries == b.retries
        assert a.messages == b.messages
        assert a.comm_ticks == b.comm_ticks
        assert [
            (e.cycle, e.kind, e.site, e.detail) for e in a.fault_events
        ] == [(e.cycle, e.kind, e.site, e.detail) for e in b.fault_events]


class TestStragglers:
    def test_straggler_slows_compute_not_results(self):
        _ref_dm, ref = run_machine(3)
        reference = wm_bytes(_ref_dm.replicas[0])
        plan = FaultPlan(stragglers=(Straggler(site=1, factor=8.0),))
        dm, res = run_machine(3, fault_plan=plan)
        assert wm_bytes(dm.replicas[0]) == reference
        assert res.compute_ticks > ref.compute_ticks
        assert any(e.kind == "straggler" and e.site == 1 for e in res.fault_events)


class TestCombined:
    def test_crash_plus_message_faults_still_byte_identical(self):
        _ref_dm, ref = run_machine(4)
        reference = wm_bytes(_ref_dm.replicas[0])
        plan = FaultPlan(
            seed=13,
            drop_rate=0.2,
            crashes=(
                SiteCrash(cycle=2, site=3),
                SiteCrash(cycle=3, site=1, rejoin_cycle=6),
            ),
        )
        dm, res = run_machine(4, fault_plan=plan)
        assert res.cycles == ref.cycles
        assert res.firings == ref.firings
        assert wm_bytes(dm.replicas[0]) == reference
        assert dm.replicas_consistent()
        assert res.recoveries >= 2
