"""Process-backend recovery: injected kills, wedges, respawn budgets,
graceful degradation, and bounded close().

These tests signal real worker processes, so they carry ``slow`` (excluded
from the fast gate) and explicit timeouts — a recovery bug should fail one
test, never hang the suite.
"""

import os
import signal
import time

import pytest

from repro.core import EngineConfig, ParulelEngine
from repro.faults import FaultPlan, WorkerKill, WorkerWedge
from repro.lang.parser import parse_program
from repro.match.interface import create_matcher
from repro.parallel.process import ProcessMatchPool
from repro.wm.memory import WorkingMemory

pytestmark = pytest.mark.faults

SRC = """
(p j0 (a0 ^k <k>) (b0 ^k <k>) --> (halt))
(p j1 (a1 ^k <k>) (b1 ^k <k>) --> (halt))
(p j2 (a2 ^k <k>) (b2 ^k <k>) --> (halt))
(p neg (a0 ^k <k>) -(b1 ^k <k>) --> (halt))
"""


def load(wm, n=6):
    for r in range(3):
        for i in range(n):
            wm.make(f"a{r}", k=i % 3)
            wm.make(f"b{r}", k=i % 3)


def keys(insts):
    return sorted(i.key for i in insts)


def rete_keys(prog, wm):
    return keys(create_matcher("rete", prog.rules, wm).instantiations())


class TestInjectedKills:
    @pytest.mark.slow
    @pytest.mark.timeout(60)
    def test_respawn_counters_exact_under_injected_kills(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        load(wm)
        plan = FaultPlan(
            kills=(WorkerKill(cycle=1, site=1), WorkerKill(cycle=2, site=1))
        )
        with ProcessMatchPool(prog.rules, wm, 2, fault_plan=plan) as pool:
            expected = rete_keys(prog, wm)
            assert keys(pool.conflict_set()) == expected
            assert keys(pool.conflict_set()) == expected
            assert keys(pool.conflict_set()) == expected  # no kill scheduled
            assert pool.respawns == 2
            assert pool.site_respawns == {1: 2}
            assert pool.degraded_sites == set()
            events = pool.drain_fault_events()
            assert [e.kind for e in events] == ["kill", "respawn", "kill", "respawn"]
            assert all(e.site == 1 for e in events)

    @pytest.mark.slow
    @pytest.mark.timeout(60)
    def test_degrades_past_respawn_budget_and_stays_correct(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        load(wm)
        plan = FaultPlan(
            kills=(WorkerKill(cycle=1, site=1), WorkerKill(cycle=2, site=1))
        )
        with ProcessMatchPool(
            prog.rules, wm, 2, fault_plan=plan, respawn_limit=1
        ) as pool:
            expected = rete_keys(prog, wm)
            # Kill 1 consumes the whole budget (respawn); kill 2 degrades.
            assert keys(pool.conflict_set()) == expected
            assert keys(pool.conflict_set()) == expected
            assert pool.degraded_sites == {1}
            assert pool.respawns == 1
            kinds = [e.kind for e in pool.drain_fault_events()]
            assert kinds == ["kill", "respawn", "kill", "degrade"]
            # Degraded site keeps matching in-parent, byte-identically,
            # including after further WM changes.
            wm.make("a1", k=0)
            assert keys(pool.conflict_set()) == rete_keys(prog, wm)

    @pytest.mark.slow
    @pytest.mark.timeout(60)
    def test_zero_budget_degrades_on_first_death(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        load(wm)
        plan = FaultPlan(kills=(WorkerKill(cycle=1, site=0),))
        with ProcessMatchPool(
            prog.rules, wm, 2, fault_plan=plan, respawn_limit=0
        ) as pool:
            assert keys(pool.conflict_set()) == rete_keys(prog, wm)
            assert pool.respawns == 0
            assert pool.degraded_sites == {0}


class TestInjectedWedges:
    @pytest.mark.slow
    @pytest.mark.timeout(90)
    @pytest.mark.skipif(
        not hasattr(signal, "SIGSTOP"), reason="needs SIGSTOP"
    )
    def test_wedged_worker_times_out_and_respawns(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        load(wm)
        plan = FaultPlan(wedges=(WorkerWedge(cycle=1, site=1),))
        with ProcessMatchPool(
            prog.rules, wm, 2, timeout=1.0, fault_plan=plan
        ) as pool:
            assert keys(pool.conflict_set()) == rete_keys(prog, wm)
            assert pool.respawns == 1
            kinds = [e.kind for e in pool.drain_fault_events()]
            assert kinds == ["wedge", "respawn"]


class TestBoundedClose:
    @pytest.mark.slow
    @pytest.mark.timeout(60)
    @pytest.mark.skipif(
        not hasattr(signal, "SIGSTOP"), reason="needs SIGSTOP"
    )
    def test_close_prompt_with_sigstopped_worker(self):
        prog = parse_program(SRC)
        wm = WorkingMemory()
        load(wm)
        pool = ProcessMatchPool(prog.rules, wm, 2)
        assert pool.conflict_set()
        victim = pool._procs[pool.active_sites[-1]]
        os.kill(victim.pid, signal.SIGSTOP)
        t0 = time.monotonic()
        pool.close()
        elapsed = time.monotonic() - t0
        # One 1.0 s grace join per worker, then SIGKILL; generous margin
        # for a loaded CI box, but nowhere near a hang.
        assert elapsed < 10.0
        assert not victim.is_alive()
        pool.close()  # idempotent


class TestEngineIntegration:
    @pytest.mark.slow
    @pytest.mark.timeout(120)
    def test_engine_survives_kills_with_identical_results(self):
        src = """
        (literalize edge src dst)
        (literalize path src dst)
        (p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
         --> (make path ^src <a> ^dst <b>))
        (p tc-extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)
         -(path ^src <a> ^dst <c>) --> (make path ^src <a> ^dst <c>))
        """
        prog = parse_program(src)

        ref = ParulelEngine(prog)
        for i in range(8):
            ref.make("edge", src=f"n{i}", dst=f"n{i + 1}")
        ref_result = ref.run()
        reference = sorted(repr(w) for w in ref.wm.snapshot())

        plan = FaultPlan(
            kills=(WorkerKill(cycle=2, site=1), WorkerKill(cycle=3, site=1))
        )
        engine = ParulelEngine(
            prog,
            EngineConfig(matcher="process:2", respawn_limit=1, fault_plan=plan),
        )
        for i in range(8):
            engine.make("edge", src=f"n{i}", dst=f"n{i + 1}")
        try:
            result = engine.run()
        finally:
            engine.matcher.detach()
        assert result.cycles == ref_result.cycles
        assert result.firings == ref_result.firings
        assert sorted(repr(w) for w in engine.wm.snapshot()) == reference
        # The engine surfaced the backend's fault events, per cycle.
        kinds = [e.kind for e in engine.fault_events]
        assert "kill" in kinds
        assert "respawn" in kinds
        assert "degrade" in kinds
        per_cycle = [e.kind for r in engine.reports for e in r.fault_events]
        assert per_cycle == kinds
