"""Tests for fault plans, injectors, and event records."""

import pytest

from repro.faults import (
    FaultEvent,
    FaultPlan,
    SiteCrash,
    Straggler,
    WorkerKill,
    WorkerWedge,
    summarize_faults,
)

pytestmark = pytest.mark.faults


class TestPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(dup_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(delay_rate=2.0)

    def test_max_retries_positive(self):
        with pytest.raises(ValueError):
            FaultPlan(max_retries=0)

    def test_crash_cycles_one_based(self):
        with pytest.raises(ValueError):
            FaultPlan(crashes=(SiteCrash(cycle=0, site=1),))

    def test_rejoin_must_follow_crash(self):
        with pytest.raises(ValueError):
            FaultPlan(crashes=(SiteCrash(cycle=5, site=1, rejoin_cycle=5),))

    def test_master_cannot_crash(self):
        plan = FaultPlan(crashes=(SiteCrash(cycle=2, site=0),))
        with pytest.raises(ValueError, match="master"):
            plan.validate_sites(4)

    def test_crash_site_in_range(self):
        plan = FaultPlan(crashes=(SiteCrash(cycle=2, site=7),))
        with pytest.raises(ValueError, match="out of range"):
            plan.validate_sites(4)

    def test_straggler_site_in_range(self):
        plan = FaultPlan(stragglers=(Straggler(site=9),))
        with pytest.raises(ValueError):
            plan.validate_sites(4)

    def test_empty_property(self):
        assert FaultPlan().empty
        assert not FaultPlan(drop_rate=0.1).empty
        assert not FaultPlan(kills=(WorkerKill(cycle=1, site=1),)).empty


class TestInjectorDeterminism:
    def test_same_seed_same_message_fates(self):
        plan = FaultPlan(seed=7, drop_rate=0.3, dup_rate=0.2, delay_rate=0.1)
        a = [plan.injector().message_fate() for _ in range(1)]  # fresh each
        first = [plan.injector() for _ in range(2)]
        fates = [[inj.message_fate() for _ in range(200)] for inj in first]
        assert fates[0] == fates[1]

    def test_different_seed_differs(self):
        fates = []
        for seed in (1, 2):
            inj = FaultPlan(seed=seed, drop_rate=0.4).injector()
            fates.append([inj.message_fate() for _ in range(100)])
        assert fates[0] != fates[1]

    def test_drops_bounded_by_max_retries(self):
        inj = FaultPlan(seed=0, drop_rate=0.99, max_retries=3).injector()
        for _ in range(100):
            drops, _dup, _delay = inj.message_fate()
            assert drops <= 3

    def test_retry_counter_accumulates(self):
        inj = FaultPlan(seed=0, drop_rate=0.5).injector()
        total = sum(inj.message_fate()[0] for _ in range(50))
        assert inj.retries == total > 0

    def test_schedules(self):
        plan = FaultPlan(
            crashes=(SiteCrash(cycle=3, site=2, rejoin_cycle=6),),
            kills=(WorkerKill(cycle=2, site=1),),
            wedges=(WorkerWedge(cycle=4, site=1),),
            stragglers=(Straggler(site=3, factor=2.5),),
        )
        inj = plan.injector()
        assert [c.site for c in inj.crashes_at(3)] == [2]
        assert inj.crashes_at(4) == []
        assert [c.site for c in inj.rejoins_at(6)] == [2]
        assert [k.site for k in inj.kills_at(2)] == [1]
        assert [w.site for w in inj.wedges_at(4)] == [1]
        assert inj.straggle_factor(3) == 2.5
        assert inj.straggle_factor(0) == 1.0


class TestSeededPlans:
    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(11, 4, crashes=2, drop_rate=0.1)
        b = FaultPlan.seeded(11, 4, crashes=2, drop_rate=0.1)
        assert a == b
        assert len(a.crashes) == 2

    def test_seeded_never_crashes_master(self):
        for seed in range(20):
            plan = FaultPlan.seeded(seed, 4, crashes=3)
            assert all(c.site != 0 for c in plan.crashes)
            plan.validate_sites(4)

    def test_seeded_rejoin_cycles(self):
        plan = FaultPlan.seeded(3, 4, crashes=2, rejoin=True, within_cycles=5)
        for crash in plan.crashes:
            assert crash.rejoin_cycle == crash.cycle + 5

    def test_cannot_crash_more_sites_than_exist(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, 3, crashes=3)


class TestEvents:
    def test_record_and_drain(self):
        inj = FaultPlan().injector()
        inj.record(2, "crash", site=1)
        inj.record(2, "detect", site=1, detail="missed gather")
        drained = inj.drain_events()
        assert [e.kind for e in drained] == ["crash", "detect"]
        assert inj.drain_events() == []

    def test_summarize(self):
        events = [
            FaultEvent(cycle=1, kind="respawn", site=1),
            FaultEvent(cycle=2, kind="respawn", site=1),
            FaultEvent(cycle=2, kind="degrade", site=1),
        ]
        counts = summarize_faults(events)
        assert counts["respawn"] == 2
        assert counts["degrade"] == 1

    def test_str_is_readable(self):
        ev = FaultEvent(cycle=3, kind="rejoin", site=2, detail="replayed 44")
        text = str(ev)
        assert "rejoin" in text and "2" in text
