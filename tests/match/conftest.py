"""Shared fixtures: every behavioral match test runs on all three engines."""

import pytest

from repro.lang.parser import parse_program
from repro.match.interface import create_matcher
from repro.wm.memory import WorkingMemory
from repro.wm.template import TemplateRegistry


@pytest.fixture(params=["rete", "rete-shared", "treat", "naive"])
def engine_name(request):
    return request.param


@pytest.fixture
def setup(engine_name):
    """Returns (wm, matcher) for a program source string."""

    def _setup(src):
        prog = parse_program(src)
        wm = WorkingMemory(TemplateRegistry.from_program(prog))
        matcher = create_matcher(engine_name, prog.rules, wm)
        return wm, matcher

    return _setup


def keys(matcher):
    """Sorted instantiation keys — engine-independent conflict-set image."""
    return sorted(i.key for i in matcher.instantiations())
