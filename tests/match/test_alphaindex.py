"""Unit tests for the indexed alpha-memory layer."""

import pytest

from repro.lang.builder import ProgramBuilder, v
from repro.match.alphaindex import AlphaCache, IndexedMemory, MemoryTable
from repro.match.compile import compile_rule
from repro.match.stats import MatchStats
from repro.wm.memory import WorkingMemory
from repro.wm.wme import WME


def _wmes(*attrs_list):
    return [
        WME("item", attrs, ts + 1) for ts, attrs in enumerate(attrs_list)
    ]


class TestIndexedMemory:
    def test_insertion_order_preserved(self):
        mem = IndexedMemory()
        wmes = _wmes({"k": 1}, {"k": 2}, {"k": 1})
        for w in wmes:
            mem.add(w)
        assert list(mem) == wmes
        assert len(mem) == 3

    def test_probe_returns_ordered_bucket(self):
        mem = IndexedMemory()
        wmes = _wmes({"k": 1, "m": 0}, {"k": 2, "m": 0}, {"k": 1, "m": 1})
        for w in wmes:
            mem.add(w)
        bucket = mem.probe(("k",), (1,))
        assert list(bucket) == [wmes[0], wmes[2]]
        assert mem.probe(("k",), (9,)) == ()

    def test_probe_compound_key(self):
        mem = IndexedMemory()
        wmes = _wmes({"k": 1, "m": 0}, {"k": 1, "m": 1}, {"k": 1, "m": 0})
        for w in wmes:
            mem.add(w)
        assert list(mem.probe(("k", "m"), (1, 0))) == [wmes[0], wmes[2]]

    def test_index_maintained_after_build(self):
        mem = IndexedMemory()
        first, second, third = _wmes({"k": 1}, {"k": 1}, {"k": 1})
        mem.add(first)
        assert list(mem.probe(("k",), (1,))) == [first]  # builds the index
        mem.add(second)
        mem.add(third)
        assert mem.remove(second)
        assert list(mem.probe(("k",), (1,))) == [first, third]
        assert mem.index_count == 1

    def test_remove_unknown_is_noop(self):
        mem = IndexedMemory()
        (only,) = _wmes({"k": 1})
        assert not mem.remove(only)
        mem.add(only)
        assert only in mem
        assert mem.remove(only)
        assert only not in mem
        assert mem.probe(("k",), (1,)) == ()


def _one_ce_rule():
    pb = ProgramBuilder()
    pb.rule("r").ce("item", k=v("x")).halt()
    return compile_rule(pb.build(analyze=False).rules[0], plan=False)


class TestAlphaCache:
    def test_lazy_prime_in_timestamp_order(self):
        wm = WorkingMemory()
        wmes = [wm.make("item", {"k": i % 2}) for i in range(4)]
        cache = AlphaCache(wm)
        ce = _one_ce_rule().ces[0]
        mem = cache.memory(ce)
        assert list(mem) == wmes
        assert cache.memory(ce) is mem  # cached, not re-primed

    def test_listener_keeps_memory_current(self):
        wm = WorkingMemory()
        cache = AlphaCache(wm)
        ce = _one_ce_rule().ces[0]
        mem = cache.memory(ce)
        assert len(mem) == 0
        a = wm.make("item", {"k": 1})
        b = wm.make("item", {"k": 2})
        cache.attach()
        # Pre-attach WMEs were primed lazily? No — memory was primed while
        # empty, and apply() only runs once attached: feed them explicitly.
        cache.apply(a, True)
        cache.apply(b, True)
        c = wm.make("item", {"k": 3})  # via listener
        assert list(mem) == [a, b, c]
        wm.remove(b)
        assert list(mem) == [a, c]
        cache.detach()
        wm.make("item", {"k": 4})
        assert len(mem) == 2  # detached: no longer maintained

    def test_unprimed_classes_ignored_by_apply(self):
        wm = WorkingMemory()
        cache = AlphaCache(wm)
        other = wm.make("other", {"k": 1})
        cache.apply(other, True)  # no primed memory for 'other': no-op
        ce = _one_ce_rule().ces[0]
        assert len(cache.memory(ce)) == 0

    def test_alpha_tests_counted_globally_only(self):
        wm = WorkingMemory()
        for i in range(3):
            wm.make("item", {"k": i})
        stats = MatchStats()
        cache = AlphaCache(wm, stats)
        cache.memory(_one_ce_rule().ces[0])
        assert stats.totals["alpha_tests"] == 3
        assert all(
            bucket.get("alpha_tests", 0) == 0
            for bucket in stats.per_rule.values()
        )


class TestMemoryTable:
    def test_resolves_by_alpha_key(self):
        ce = _one_ce_rule().ces[0]
        mem = IndexedMemory()
        table = MemoryTable({ce.alpha_key: mem})
        assert table.memory(ce) is mem
        with pytest.raises(KeyError):
            table.memory(
                type(ce)(
                    class_name="missing",
                    negated=False,
                    alpha_conds=(),
                    bindings=(),
                    join_tests=(),
                    index=0,
                )
            )
