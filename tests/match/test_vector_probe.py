"""Unit tests for the column-native vectorized probe kernel.

:class:`~repro.match.alphaindex.ColumnVectorCache` must be observationally
identical to the object path (replica WM + ``AlphaCache``) while building
WME objects only for rows a probe or full scan actually surfaces. The
classes below pin the packed-key canonicalization (the keying note in
``alphaindex.py``), the fallback protocol for values with no faithful key,
the lazy-materialization accounting, and journal-driven maintenance.
The randomized vectorized-vs-object differential lives in
``tests/match/test_indexing_differential.py``; the process-pool and
engine-level identity checks in ``tests/parallel/test_process_columnar.py``.
"""

import contextlib

from repro.lang.parser import parse_program
from repro.match.alphaindex import (
    _KEY_NIL,
    ColumnVectorCache,
    _canon_cell,
    _canon_probe,
    _load_columnar_tags,
)
from repro.match.compile import compile_rules
from repro.wm.columnar import ColumnarReader, ColumnarWorkingMemory


@contextlib.contextmanager
def attached(col):
    """Reader over the store's current snapshot; closes both on exit."""
    reader = ColumnarReader(col.attach_spec())
    try:
        yield reader
    finally:
        reader.close()
        col.close()


def _ce(src, i=0):
    """The ``i``-th CE of the single rule in ``src``, compiled."""
    return compile_rules(parse_program(src).rules)[0].ces[i]


ITEM_CE = "(p r (item ^k <k>) --> (halt))"


class TestProbeCanon:
    """``_canon_probe``: the probe-side half of the packed-key protocol."""

    def test_cross_type_equalities_share_keys(self):
        col = ColumnarWorkingMemory()
        with attached(col) as reader:
            assert _canon_probe(True, reader) == _canon_probe(1, reader)
            assert _canon_probe(False, reader) == _canon_probe(0, reader)
            assert _canon_probe(2.0, reader) == _canon_probe(2, reader)
            assert _canon_probe(-7.0, reader) == _canon_probe(-7, reader)
            assert _canon_probe(-0.0, reader) == _canon_probe(0, reader)
            assert _canon_probe("nil", reader) == _KEY_NIL

    def test_unkeyable_probes_are_definitive_misses(self):
        col = ColumnarWorkingMemory()
        col.make("item", k="seen")
        with attached(col) as reader:
            assert _canon_probe("seen", reader) is not None
            # A symbol the parent never interned cannot equal any stored
            # symbol; same for a bigint with no interned decimal text.
            assert _canon_probe("never-stored", reader) is None
            assert _canon_probe(2**70, reader) is None
            assert _canon_probe(float("nan"), reader) is None
            assert _canon_probe((1, 2), reader) is None

    def test_bigint_and_equal_integral_float_share_a_key(self):
        col = ColumnarWorkingMemory()
        col.make("item", k=10**20)
        with attached(col) as reader:
            key = _canon_probe(10**20, reader)
            assert key is not None
            assert _canon_probe(1e20, reader) == key


class TestCellCanon:
    """Stored-cell keys agree with probe keys exactly when Python ``==``
    unifies the values — the soundness/completeness bar for the packed
    path, with fallback covering every unkeyable case."""

    STORED = [
        0, 1, -7, (1 << 63) - 1, -(1 << 63),  # int64 extremes
        2**70, -(2**70), 10**20,              # bigints (interned text)
        1.5, -1.5, 2.0, -0.0, 0.1, 1e20,      # floats incl. integral ones
        float("inf"), float("-inf"), float("nan"),
        True, False,
        "sym", "", "nil", str(2**70),         # symbols, incl. bigint text
    ]
    PROBES = STORED + ["never-stored", 2**71, 1e21, (1, 2)]

    def test_packed_keys_track_python_equality(self):
        col = ColumnarWorkingMemory()
        for val in self.STORED:
            col.make("item", k=val)
        with attached(col) as reader:
            _load_columnar_tags()  # normally done by ColumnVectorCache
            table = reader.table(reader.cid_of("item"))
            idx = table.col_of("k")
            nil_off = reader.nil_offset()
            for row in range(table.rows_known):
                cell_key = _canon_cell(
                    table.tag_cols[idx][row],
                    table.payload_cols[idx][row],
                    nil_off,
                )
                decoded = table.cell(reader._resolve, row, "k")
                for probe in self.PROBES:
                    probe_key = _canon_probe(probe, reader)
                    equal = decoded == probe
                    if cell_key is not None and probe_key is not None:
                        assert (cell_key == probe_key) == equal, (
                            f"stored {decoded!r} vs probe {probe!r}: "
                            f"packed keys disagree with =="
                        )
                    elif equal:
                        # Any equality involving an unkeyable side must put
                        # the *row* on the fallback list (re-checked by
                        # decoded == on every probe); an unkeyable probe
                        # against a packed row would be a silent miss.
                        assert cell_key is None, (
                            f"stored {decoded!r} == probe {probe!r} but the "
                            f"row is packed and the probe is unkeyable"
                        )


class TestLazyMaterialization:
    def test_probe_materializes_only_surfaced_rows_once(self):
        col = ColumnarWorkingMemory()
        for i in range(10):
            col.make("item", k=i % 2)
        with attached(col) as reader:
            vcache = ColumnVectorCache(reader)
            mem = vcache.memory(_ce(ITEM_CE))
            assert len(mem) == 10
            assert vcache.materialized == 0  # priming decodes nothing
            hits = mem.probe(("k",), (1,))
            assert [w.get("k") for w in hits] == [1] * 5
            assert vcache.materialized == 5
            assert mem.probe(("k",), (1,)) == hits
            assert vcache.materialized == 5  # memoized per row

    def test_probe_exists_decodes_nothing(self):
        col = ColumnarWorkingMemory()
        for i in range(6):
            col.make("item", k=i)
        with attached(col) as reader:
            vcache = ColumnVectorCache(reader)
            mem = vcache.memory(_ce(ITEM_CE))
            assert mem.probe_exists(("k",), (3,))
            assert not mem.probe_exists(("k",), (99,))
            assert vcache.materialized == 0

    def test_alpha_conditions_filter_on_cells_not_wmes(self):
        col = ColumnarWorkingMemory()
        for i in range(6):
            col.make("item", k=i % 3, m=i)
        with attached(col) as reader:
            vcache = ColumnVectorCache(reader)
            mem = vcache.memory(_ce("(p r (item ^k 1 ^m <m>) --> (halt))"))
            assert len(mem) == 2
            assert vcache.materialized == 0
            assert sorted(w.get("m") for w in mem) == [1, 4]

    def test_iteration_yields_timestamp_order(self):
        col = ColumnarWorkingMemory()
        wmes = [col.make("item", k=i) for i in range(5)]
        col.remove(wmes[2])
        with attached(col) as reader:
            vcache = ColumnVectorCache(reader)
            mem = vcache.memory(_ce(ITEM_CE))
            got = [w.timestamp for w in mem]
            want = [w.timestamp for w in wmes if w is not wmes[2]]
            assert got == want


class TestFallbackProtocol:
    def test_packed_and_fallback_hits_merge_in_row_order(self):
        col = ColumnarWorkingMemory()
        a = col.make("item", k=10**20)   # bigint row: packed
        col.make("item", k="noise")
        b = col.make("item", k=1e20)     # integral float > int64: fallback
        c = col.make("item", k=10**20)   # packed again
        with attached(col) as reader:
            vcache = ColumnVectorCache(reader)
            mem = vcache.memory(_ce(ITEM_CE))
            for probe in (10**20, 1e20):
                hits = mem.probe(("k",), (probe,))
                assert [w.timestamp for w in hits] == [
                    a.timestamp, b.timestamp, c.timestamp
                ]
            assert vcache.fallback_probes >= 2

    def test_unkeyable_probe_scans_only_the_fallback_rows(self):
        col = ColumnarWorkingMemory()
        col.make("item", k=1)
        col.make("item", k=float("nan"))  # fallback row; == nothing
        with attached(col) as reader:
            vcache = ColumnVectorCache(reader)
            mem = vcache.memory(_ce(ITEM_CE))
            before = vcache.fallback_probes
            assert mem.probe(("k",), ("never-stored",)) == ()
            assert mem.probe(("k",), (float("nan"),)) == ()
            assert vcache.fallback_probes == before + 2
            assert vcache.materialized == 0

    def test_absent_and_nil_symbol_share_a_bucket(self):
        col = ColumnarWorkingMemory()
        col.make("item", m=1)            # k absent
        col.make("item", k="nil", m=2)   # k explicitly nil
        col.make("item", k=5, m=3)
        with attached(col) as reader:
            vcache = ColumnVectorCache(reader)
            mem = vcache.memory(_ce(ITEM_CE))
            hits = mem.probe(("k",), ("nil",))
            assert [w.get("m") for w in hits] == [1, 2]


class TestMaintenance:
    def test_refresh_maintains_rows_indexes_and_memo(self):
        col = ColumnarWorkingMemory()
        w1 = col.make("item", k=1)
        with attached(col) as reader:
            vcache = ColumnVectorCache(reader)
            mem = vcache.memory(_ce(ITEM_CE))
            assert [w.timestamp for w in mem.probe(("k",), (1,))] == [
                w1.timestamp
            ]
            col.remove(w1)
            w2 = col.make("item", k=1)
            col.make("item", k=2)
            vcache.refresh(col.cycle_info())
            assert [w.timestamp for w in mem.probe(("k",), (1,))] == [
                w2.timestamp
            ]
            assert len(mem) == 2

    def test_unknown_class_is_empty_until_refresh_mounts_it(self):
        col = ColumnarWorkingMemory()
        col.make("item", k=1)
        with attached(col) as reader:
            vcache = ColumnVectorCache(reader)
            late_ce = _ce("(p r (late ^k <k>) --> (halt))")
            empty = vcache.memory(late_ce)
            assert len(empty) == 0
            assert not empty.probe_exists(("k",), (9,))
            assert empty.probe(("k",), (9,)) == ()
            col.make("late", k=9)
            vcache.refresh(col.cycle_info())
            real = vcache.memory(late_ce)
            assert len(real) == 1
            assert real.probe_exists(("k",), (9,))

    def test_growth_remount_keeps_indexes_valid(self):
        # Tiny capacity: adds force row/journal growth, re-mounting the
        # shared columns under the live index (nothing may cache a
        # memoryview across refreshes).
        col = ColumnarWorkingMemory(initial_capacity=2)
        seed = col.make("item", k=0)
        with attached(col) as reader:
            vcache = ColumnVectorCache(reader)
            ce = _ce(ITEM_CE)
            mem = vcache.memory(ce)
            mem.probe(("k",), (0,))  # force the index to exist early
            live = [seed]
            for cycle in range(5):
                for i in range(8):
                    live.append(col.make("item", k=i % 3))
                for w in live[::4]:
                    col.remove(w)
                live = [w for i, w in enumerate(live) if i % 4]
                vcache.refresh(col.cycle_info())
                assert vcache.memory(ce) is mem  # cached, not rebuilt
                want = sorted(
                    w.timestamp for w in live if w.get("k") == 1
                )
                got = [w.timestamp for w in mem.probe(("k",), (1,))]
                assert got == want
