"""Property-based differential testing: RETE ≡ TREAT ≡ naive.

Hypothesis generates random rule programs (joins, predicates, negation) and
random add/remove scripts; after every step all three engines must report
identical conflict sets. This is the strongest correctness evidence for the
incremental engines — any divergence in alpha sharing, hash-join indexing,
negative-node counting, or TREAT's seeded re-enumeration shows up here.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.lang.builder import ProgramBuilder, conj, gt, lt, ne, v
from repro.match.interface import MATCHER_NAMES, create_matcher
from repro.programs import REGISTRY
from repro.wm.columnar import ColumnarWorkingMemory
from repro.wm.memory import WorkingMemory

CLASSES = ["a", "b", "c"]
ATTRS = ["k", "m"]
VALUES = [0, 1, 2]


@st.composite
def rule_programs(draw):
    """1-3 rules, each 1-3 CEs over shared classes, optional negation."""
    pb = ProgramBuilder()
    n_rules = draw(st.integers(1, 3))
    for r in range(n_rules):
        rb = pb.rule(f"r{r}")
        n_ces = draw(st.integers(1, 3))
        bound = []
        for i in range(n_ces):
            cls = draw(st.sampled_from(CLASSES))
            # bool() matters: "i > 0 and bound and ..." would alias the
            # (mutable) bound list when it is empty, becoming truthy later.
            negated = bool(i > 0 and bound and draw(st.booleans()))
            tests = {}
            for attr in ATTRS:
                choice = draw(st.integers(0, 4))
                if choice == 0:
                    continue  # no test on this attribute
                if choice == 1:
                    tests[attr] = draw(st.sampled_from(VALUES))
                elif choice == 2 and bound:
                    tests[attr] = v(draw(st.sampled_from(bound)))
                elif choice == 3 and bound:
                    op = draw(st.sampled_from([ne, lt, gt]))
                    tests[attr] = op(v(draw(st.sampled_from(bound))))
                elif not negated:
                    var = f"v{r}_{i}_{attr}"
                    if draw(st.booleans()):
                        tests[attr] = v(var)
                    else:
                        tests[attr] = conj(v(var), gt(-1))
                    bound.append(var)
                else:
                    tests[attr] = draw(st.sampled_from(VALUES))
            if negated and not tests:
                tests["k"] = draw(st.sampled_from(VALUES))
            if negated:
                rb.neg(cls, **tests)
            else:
                rb.ce(cls, **tests)
        rb.halt()
    return pb.build(analyze=False)


#: Script steps: ("add", class, k, m) or ("remove", index-into-live).
script_steps = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.sampled_from(CLASSES),
            st.sampled_from(VALUES),
            st.sampled_from(VALUES),
        ),
        st.tuples(st.just("remove"), st.integers(0, 10_000)),
    ),
    min_size=1,
    max_size=25,
)


def conflict_image(matcher):
    return sorted(i.key for i in matcher.instantiations())


class TestDifferential:
    @settings(
        max_examples=120,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(program=rule_programs(), script=script_steps)
    def test_engines_agree_at_every_step(self, program, script):
        wm = WorkingMemory()
        matchers = [
            create_matcher(name, program.rules, wm)
            for name in ("rete", "rete-shared", "treat", "naive")
        ]
        live = []
        for step in script:
            if step[0] == "add":
                _tag, cls, k, mval = step
                live.append(wm.make(cls, k=k, m=mval))
            else:
                if not live:
                    continue
                wme = live.pop(step[1] % len(live))
                wm.remove(wme)
            images = [conflict_image(m) for m in matchers]
            assert all(img == images[0] for img in images), (
                f"divergence after {step}: {images}"
            )

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(program=rule_programs(), script=script_steps)
    def test_incremental_equals_batch_rebuild(self, program, script):
        """After the whole script, an incrementally maintained RETE must
        equal a RETE freshly built over the final memory."""
        wm = WorkingMemory()
        incremental = create_matcher("rete", program.rules, wm)
        live = []
        for step in script:
            if step[0] == "add":
                _tag, cls, k, mval = step
                live.append(wm.make(cls, k=k, m=mval))
            elif live:
                wm.remove(live.pop(step[1] % len(live)))
        fresh_wm = WorkingMemory()
        for wme in wm.snapshot():
            fresh_wm.add(wme)
        fresh = create_matcher("rete", program.rules, fresh_wm)
        assert conflict_image(incremental) == conflict_image(fresh)

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(program=rule_programs(), script=script_steps)
    def test_columnar_store_agrees_with_dict_store(self, program, script):
        """The whole differential script run over the columnar store must
        land every serial matcher on the same conflict set as over the
        dict store — the ``--wm-backend columnar`` guarantee."""
        col_wm = ColumnarWorkingMemory()
        dict_wm = WorkingMemory()
        try:
            col_matchers = [
                create_matcher(name, program.rules, col_wm)
                for name in ("rete", "rete-shared", "treat", "naive")
            ]
            dict_rete = create_matcher("rete", program.rules, dict_wm)
            live_col, live_dict = [], []
            for step in script:
                if step[0] == "add":
                    _tag, cls, k, mval = step
                    live_col.append(col_wm.make(cls, k=k, m=mval))
                    live_dict.append(dict_wm.make(cls, k=k, m=mval))
                else:
                    if not live_col:
                        continue
                    idx = step[1] % len(live_col)
                    col_wm.remove(live_col.pop(idx))
                    dict_wm.remove(live_dict.pop(idx))
                expected = conflict_image(dict_rete)
                for matcher in col_matchers:
                    assert conflict_image(matcher) == expected, (
                        f"columnar divergence after {step}"
                    )
        finally:
            col_wm.close()


class TestAllBackendsOnRealPrograms:
    """Every registered backend — including the multiprocessing one — must
    produce the identical instantiation set on the bundled benchmark
    programs' initial working memories."""

    @pytest.mark.parametrize("name", ["monkey", "waltz", "tc"])
    def test_backends_agree_on_workload(self, name):
        workload = REGISTRY[name]()
        wm = WorkingMemory()
        matchers = [
            create_matcher(backend, workload.program.rules, wm)
            for backend in MATCHER_NAMES
        ]
        try:
            workload.setup(wm)
            images = [conflict_image(m) for m in matchers]
            assert images[0], f"{name}: initial conflict set unexpectedly empty"
            for backend, image in zip(MATCHER_NAMES, images):
                assert image == images[0], (
                    f"{name}: backend {backend!r} diverges from "
                    f"{MATCHER_NAMES[0]!r}"
                )
        finally:
            for matcher in matchers:
                if hasattr(matcher, "close"):
                    matcher.close()

    @pytest.mark.parametrize("name", ["monkey", "waltz", "tc"])
    def test_backends_agree_after_retractions(self, name):
        """Still identical after retracting part of the initial memory —
        exercises every backend's remove path on real rule shapes."""
        workload = REGISTRY[name]()
        wm = WorkingMemory()
        matchers = [
            create_matcher(backend, workload.program.rules, wm)
            for backend in MATCHER_NAMES
        ]
        try:
            workload.setup(wm)
            victims = wm.snapshot()[::3]
            for wme in victims:
                wm.remove(wme)
            images = [conflict_image(m) for m in matchers]
            for backend, image in zip(MATCHER_NAMES, images):
                assert image == images[0], (
                    f"{name}: backend {backend!r} diverges after retractions"
                )
        finally:
            for matcher in matchers:
                if hasattr(matcher, "close"):
                    matcher.close()
