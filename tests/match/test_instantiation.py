"""Unit tests for Instantiation and ConflictSet."""

import pytest

from repro.lang.parser import parse_program
from repro.match.instantiation import ConflictSet, Instantiation
from repro.wm.wme import WME

RULE = parse_program("(p r (a ^x <x>) (b ^x <x>) --> (halt))").rules[0]
NEG_RULE = parse_program("(p n (a ^x <x>) -(b ^x <x>) --> (halt))").rules[0]


def inst(ts_a=1, ts_b=2, rule=RULE, x=0):
    wa = WME("a", {"x": x}, ts_a)
    wb = WME("b", {"x": x}, ts_b)
    return Instantiation(rule, (wa, wb), {"x": x})


class TestInstantiation:
    def test_key(self):
        i = inst(3, 7)
        assert i.key == ("r", (3, 7))

    def test_wme_count_must_match_ces(self):
        w = WME("a", {"x": 1}, 1)
        with pytest.raises(ValueError):
            Instantiation(RULE, (w,), {})

    def test_negated_slot_is_none(self):
        w = WME("a", {"x": 1}, 4)
        i = Instantiation(NEG_RULE, (w, None), {"x": 1})
        assert i.key == ("n", (4, 0))
        assert i.timestamps == (4,)

    def test_timestamps_sorted_descending(self):
        assert inst(3, 9).timestamps == (9, 3)

    def test_recency(self):
        assert inst(3, 9).recency == 9

    def test_salience_and_specificity_delegate_to_rule(self):
        i = inst()
        assert i.salience == RULE.salience
        assert i.specificity == RULE.specificity

    def test_binding(self):
        i = inst(x=42)
        assert i.binding("x") == 42
        with pytest.raises(KeyError):
            i.binding("nope")

    def test_uses(self):
        i = inst(1, 2)
        assert i.uses(WME("a", {"x": 0}, 1))
        assert not i.uses(WME("a", {"x": 0}, 99))

    def test_equality_by_key(self):
        assert inst(1, 2) == inst(1, 2)
        assert inst(1, 2) != inst(1, 3)
        assert hash(inst(1, 2)) == hash(inst(1, 2))


class TestConflictSet:
    def test_add_dedupes_by_key(self):
        cs = ConflictSet()
        assert cs.add(inst(1, 2)) is True
        assert cs.add(inst(1, 2)) is False
        assert len(cs) == 1

    def test_insertion_order_preserved(self):
        cs = ConflictSet()
        a, b, c = inst(1, 2), inst(3, 4), inst(5, 6)
        for i in (b, a, c):
            cs.add(i)
        assert cs.instantiations() == [b, a, c]

    def test_remove_and_discard(self):
        cs = ConflictSet()
        i = inst(1, 2)
        cs.add(i)
        assert cs.discard_key(i.key) == i
        assert cs.discard_key(i.key) is None
        cs.add(i)
        cs.remove(i)
        assert len(cs) == 0

    def test_contains_and_get(self):
        cs = ConflictSet()
        i = inst(1, 2)
        cs.add(i)
        assert i in cs
        assert cs.get(i.key) == i
        assert cs.get(("r", (9, 9))) is None

    def test_remove_with_wme(self):
        cs = ConflictSet()
        i1, i2 = inst(1, 2), inst(1, 3)
        cs.add(i1)
        cs.add(i2)
        victims = cs.remove_with_wme(WME("a", {"x": 0}, 1))
        assert set(victims) == {i1, i2}
        assert len(cs) == 0

    def test_remove_with_wme_ignores_unrelated(self):
        cs = ConflictSet()
        i = inst(1, 2)
        cs.add(i)
        assert cs.remove_with_wme(WME("a", {"x": 0}, 77)) == []
        assert len(cs) == 1

    def test_of_rule(self):
        cs = ConflictSet()
        i1 = inst(1, 2)
        i2 = Instantiation(NEG_RULE, (WME("a", {"x": 1}, 5), None), {"x": 1})
        cs.add(i1)
        cs.add(i2)
        assert cs.of_rule("r") == [i1]
        assert cs.of_rule("n") == [i2]

    def test_clear(self):
        cs = ConflictSet()
        cs.add(inst(1, 2))
        cs.clear()
        assert len(cs) == 0
