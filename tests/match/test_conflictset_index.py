"""ConflictSet secondary indexes: remove_with_wme / of_rule stay exactly
equivalent to brute-force scans of the retained set, in insertion order."""

import random

from repro.lang.builder import ProgramBuilder, v
from repro.match.instantiation import ConflictSet, Instantiation
from repro.wm.wme import WME


def _rules(n):
    pb = ProgramBuilder()
    for i in range(n):
        pb.rule(f"r{i}").ce("a", k=v("x")).ce("b", k=v("x")).halt()
    return pb.build(analyze=False).rules


def _inst(rule, wme_a, wme_b):
    return Instantiation(rule, (wme_a, wme_b), {"x": wme_a.get("k")})


class TestConflictSetIndexes:
    def _populate(self, rng, n_rules=3, n_wmes=8, n_insts=40):
        rules = _rules(n_rules)
        wmes_a = [WME("a", {"k": i % 3}, i + 1) for i in range(n_wmes)]
        wmes_b = [WME("b", {"k": i % 3}, n_wmes + i + 1) for i in range(n_wmes)]
        cs = ConflictSet()
        for _ in range(n_insts):
            cs.add(_inst(rng.choice(rules), rng.choice(wmes_a), rng.choice(wmes_b)))
        return cs, rules, wmes_a + wmes_b

    def test_remove_with_wme_matches_brute_force(self):
        rng = random.Random(7)
        for trial in range(20):
            cs, _rules_, wmes = self._populate(rng)
            victim = rng.choice(wmes)
            expected = [i for i in cs.instantiations() if i.uses(victim)]
            survivors = [i for i in cs.instantiations() if not i.uses(victim)]
            removed = cs.remove_with_wme(victim)
            assert [i.key for i in removed] == [i.key for i in expected]
            assert [i.key for i in cs.instantiations()] == [
                i.key for i in survivors
            ]

    def test_of_rule_matches_brute_force(self):
        rng = random.Random(11)
        cs, rules, _wmes = self._populate(rng)
        for rule in rules:
            expected = [i for i in cs.instantiations() if i.rule.name == rule.name]
            assert [i.key for i in cs.of_rule(rule.name)] == [
                i.key for i in expected
            ]
        assert cs.of_rule("no-such-rule") == []

    def test_indexes_survive_churn(self):
        """Random add/remove/discard interleaving: indexed queries always
        agree with scans of the live set."""
        rng = random.Random(23)
        rules = _rules(2)
        wmes = [WME("a", {"k": i % 2}, i + 1) for i in range(6)] + [
            WME("b", {"k": i % 2}, i + 7) for i in range(6)
        ]
        cs = ConflictSet()
        live = []
        for step in range(200):
            op = rng.random()
            if op < 0.5 or not live:
                inst = _inst(
                    rng.choice(rules),
                    rng.choice(wmes[:6]),
                    rng.choice(wmes[6:]),
                )
                if cs.add(inst):
                    live.append(inst)
            elif op < 0.7:
                inst = live.pop(rng.randrange(len(live)))
                cs.remove(inst)
            elif op < 0.85:
                inst = rng.choice(live)
                cs.discard_key(inst.key)
                live.remove(inst)
            else:
                victim = rng.choice(wmes)
                removed = cs.remove_with_wme(victim)
                expected = [i for i in live if i.uses(victim)]
                assert [i.key for i in removed] == [i.key for i in expected]
                live = [i for i in live if not i.uses(victim)]
            # Invariants after every step.
            assert [i.key for i in cs.instantiations()] == [i.key for i in live]
            for rule in rules:
                assert [i.key for i in cs.of_rule(rule.name)] == [
                    i.key for i in live if i.rule.name == rule.name
                ]

    def test_discard_key_unknown_returns_none(self):
        cs = ConflictSet()
        assert cs.discard_key(("r0", (1, 2))) is None

    def test_clear_resets_indexes(self):
        rng = random.Random(3)
        cs, rules, wmes = self._populate(rng)
        assert len(cs) > 0
        cs.clear()
        assert len(cs) == 0
        assert cs.of_rule(rules[0].name) == []
        assert cs.remove_with_wme(wmes[0]) == []

    def test_duplicate_add_rejected_and_unindexed_once(self):
        rules = _rules(1)
        a = WME("a", {"k": 1}, 1)
        b = WME("b", {"k": 1}, 2)
        cs = ConflictSet()
        assert cs.add(_inst(rules[0], a, b))
        assert not cs.add(_inst(rules[0], a, b))
        assert len(cs.remove_with_wme(a)) == 1
        assert len(cs) == 0

    def test_negated_none_slots_are_skipped(self):
        pb = ProgramBuilder()
        pb.rule("rn").ce("a", k=v("x")).neg("b", k=v("x")).halt()
        rule = pb.build(analyze=False).rules[0]
        a = WME("a", {"k": 1}, 1)
        cs = ConflictSet()
        cs.add(Instantiation(rule, (a, None), {"x": 1}))
        assert len(cs.remove_with_wme(a)) == 1
