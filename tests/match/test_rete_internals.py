"""RETE-specific structural tests: alpha sharing, token bookkeeping."""

import pytest

from repro.lang.parser import parse_program
from repro.match.rete import ReteMatcher
from repro.wm.memory import WorkingMemory


def build(src):
    wm = WorkingMemory()
    return wm, ReteMatcher(parse_program(src).rules, wm)


class TestAlphaSharing:
    def test_identical_patterns_share_memory(self):
        wm, m = build(
            "(p r1 (c ^a 1) (d ^b <x>) --> (halt))"
            "(p r2 (c ^a 1) (e ^b <x>) --> (halt))"
        )
        # c^a=1 shared; d^b var and e^b var are distinct classes.
        assert m.alpha_memory_count == 3

    def test_different_constants_not_shared(self):
        wm, m = build("(p r1 (c ^a 1) --> (halt))(p r2 (c ^a 2) --> (halt))")
        assert m.alpha_memory_count == 2

    def test_attribute_order_does_not_split_alpha(self):
        wm, m = build(
            "(p r1 (c ^a 1 ^b 2) --> (halt))(p r2 (c ^b 2 ^a 1) --> (halt))"
        )
        assert m.alpha_memory_count == 1

    def test_variable_tests_do_not_contribute_to_alpha_key(self):
        # Different variable names, same alpha shape.
        wm, m = build(
            "(p r1 (c ^a <x>) --> (halt))(p r2 (c ^a <y>) --> (halt))"
        )
        assert m.alpha_memory_count == 1


class TestTokenBookkeeping:
    def test_token_count_grows_and_shrinks(self):
        wm, m = build("(p r (a ^k <k>) (b ^k <k>) --> (halt))")
        assert m.token_count() == 0
        wa = wm.make("a", k=1)
        assert m.token_count() == 1  # the (a) token
        wb = wm.make("b", k=1)
        assert m.token_count() == 2  # (a) and (a,b)
        wm.remove(wb)
        assert m.token_count() == 1
        wm.remove(wa)
        assert m.token_count() == 0

    def test_removal_cascades_through_chain(self):
        wm, m = build("(p r (a ^k <k>) (b ^k <k>) (c ^k <k>) --> (halt))")
        wa = wm.make("a", k=1)
        wm.make("b", k=1)
        wm.make("c", k=1)
        assert len(m.instantiations()) == 1
        wm.remove(wa)  # head removal must cascade to the production
        assert m.instantiations() == []
        assert m.token_count() == 0

    def test_rebuild_on_populated_memory(self):
        # Attaching a matcher to a pre-loaded WM replays history.
        wm = WorkingMemory()
        wm.make("a", k=1)
        wm.make("b", k=1)
        prog = parse_program("(p r (a ^k <k>) (b ^k <k>) --> (halt))")
        m = ReteMatcher(prog.rules, wm)
        assert len(m.instantiations()) == 1

    def test_detach_stops_updates(self):
        wm, m = build("(p r (a ^k <k>) --> (halt))")
        wm.make("a", k=1)
        m.detach()
        wm.make("a", k=2)
        assert len(m.instantiations()) == 1  # stale by design after detach


class TestStatsAttribution:
    def test_per_rule_counters(self):
        wm, m = build(
            "(p busy (a ^k <k>) (b ^k <k>) --> (halt))"
            "(p idle (never ^x 1) --> (halt))"
        )
        for i in range(5):
            wm.make("a", k=i)
            wm.make("b", k=i)
        assert m.stats.per_rule["busy"]["instantiations"] == 5
        assert m.stats.rule_total("idle") == 0
        assert m.stats.totals["instantiations"] == 5

    def test_retraction_counted(self):
        wm, m = build("(p r (a ^k <k>) --> (halt))")
        w = wm.make("a", k=1)
        wm.remove(w)
        assert m.stats.totals["retractions"] >= 1
