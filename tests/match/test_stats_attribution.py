"""Counter attribution consistency across match engines.

``alpha_tests`` is bumped globally only — never per rule — because alpha
memories (and the shared alpha cache) serve every rule at once. This was
inconsistent between matchers before the join-kernel work; these tests pin
the contract for all of them, indexed and not.
"""

import pytest

from repro.lang.builder import ProgramBuilder, v
from repro.match.interface import create_matcher
from repro.wm.memory import WorkingMemory

SERIAL_MATCHERS = ["rete", "rete-shared", "treat", "naive"]


def _program():
    pb = ProgramBuilder()
    pb.rule("join").ce("a", k=v("x")).ce("b", k=v("x")).halt()
    pb.rule("blocked").ce("a", k=v("x")).neg("c", k=v("x")).halt()
    return pb.build(analyze=False)


def _churn(wm):
    live = []
    for i in range(6):
        live.append(wm.make("a", k=i % 2))
        live.append(wm.make("b", k=i % 3))
    wm.make("c", k=0)
    for wme in live[:6:2]:  # churn some (not all) of the "a" WMEs
        wm.remove(wme)


class TestAlphaTestAttribution:
    @pytest.mark.parametrize("name", SERIAL_MATCHERS)
    @pytest.mark.parametrize("indexed", [True, False])
    def test_alpha_tests_never_rule_attributed(self, name, indexed):
        program = _program()
        wm = WorkingMemory()
        matcher = create_matcher(name, program.rules, wm, indexed=indexed)
        _churn(wm)
        matcher.instantiations()  # force lazy matchers to do the work
        stats = matcher.stats
        assert stats.totals["alpha_tests"] > 0, (
            f"{name}: expected alpha work to be counted at all"
        )
        offenders = {
            rule: bucket["alpha_tests"]
            for rule, bucket in stats.per_rule.items()
            if bucket.get("alpha_tests")
        }
        assert not offenders, (
            f"{name} (indexed={indexed}): alpha_tests attributed per-rule: "
            f"{offenders}"
        )

    @pytest.mark.parametrize("name", SERIAL_MATCHERS)
    def test_join_work_is_rule_attributed(self, name):
        """The per-rule channel itself still works: join-level counters do
        land in per-rule buckets."""
        program = _program()
        wm = WorkingMemory()
        matcher = create_matcher(name, program.rules, wm)
        _churn(wm)
        matcher.instantiations()
        per_rule_join = sum(
            bucket.get("join_probes", 0)
            + bucket.get("join_checks", 0)
            + bucket.get("tokens", 0)
            + bucket.get("instantiations", 0)
            for bucket in matcher.stats.per_rule.values()
        )
        assert per_rule_join > 0, f"{name}: no join work attributed to any rule"
