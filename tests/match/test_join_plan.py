"""The join planner: determinism, alpha-key stability, order equivalence."""

from repro.lang.builder import ProgramBuilder, v
from repro.match.compile import compile_rule, compile_rules
from repro.match.join import enumerate_matches
from repro.wm.memory import WorkingMemory


def _rule(build):
    pb = ProgramBuilder()
    build(pb)
    return pb.build(analyze=False).rules[0]


class TestPlanShape:
    def test_single_ce_has_no_plan(self):
        rule = _rule(lambda pb: pb.rule("r").ce("a", k=v("x")).halt())
        cr = compile_rule(rule)
        assert cr.plan is None
        assert cr.seeded_plans == (None,)

    def test_identity_optimal_order_has_no_plan(self):
        # Two equally-unselective CEs: ties resolve to the identity order.
        rule = _rule(
            lambda pb: pb.rule("r")
            .ce("a", k=v("x"))
            .ce("b", k=v("x"))
            .halt()
        )
        assert compile_rule(rule).plan is None

    def test_selective_ce_moves_first(self):
        # CE 1 carries a constant test (selectivity proxy): planned first.
        rule = _rule(
            lambda pb: pb.rule("r")
            .ce("a", k=v("x"))
            .ce("b", k=v("x"), m=1)
            .halt()
        )
        cr = compile_rule(rule)
        assert cr.plan is not None
        assert cr.plan.order == (1, 0)
        # Re-classified for the new order: CE1 now binds x, CE0 joins on it.
        first, second = cr.plan.ces
        assert first.index == 1 and ("k", "x") in first.bindings
        assert second.index == 0 and ("k", "=", "x") in second.join_tests

    def test_plan_is_deterministic(self):
        rule = _rule(
            lambda pb: pb.rule("r")
            .ce("a", k=v("x"))
            .ce("b", k=v("x"), m=1)
            .ce("c", k=v("x"), m=2)
            .halt()
        )
        plans = [compile_rule(rule).plan.order for _ in range(3)]
        assert plans[0] == plans[1] == plans[2]

    def test_negated_ce_floats_to_binder(self):
        # Negation placed as soon as its variables are bound, even when a
        # later positive CE is reordered ahead.
        rule = _rule(
            lambda pb: pb.rule("r")
            .ce("a", k=v("x"))
            .neg("n", k=v("x"))
            .ce("b", k=v("x"), m=1)
            .halt()
        )
        cr = compile_rule(rule)
        assert cr.plan is not None
        order = cr.plan.order
        # The negated CE (original index 1) comes after some binder of x.
        assert order.index(1) > order.index(order[0])
        assert sorted(order) == [0, 1, 2]


class TestAlphaKeyStability:
    def test_local_conds_pin_the_identity_alpha_key(self):
        # x occurs twice in CE 1; identity classifies both as join tests.
        # Pinned-first re-classification turns the second occurrence into
        # an intra-CE cond — which must NOT leak into the alpha key.
        rule = _rule(
            lambda pb: pb.rule("r")
            .ce("c1", a=v("x"))
            .ce("c2", a=v("x"), b=v("x"))
            .halt()
        )
        cr = compile_rule(rule)
        identity_ce = cr.ces[1]
        seeded = cr.seeded_plan(1)
        assert seeded is not None and seeded.order[0] == 1
        planned_ce = seeded.ces[0]
        assert planned_ce.alpha_key == identity_ce.alpha_key
        assert ("intra", "b", "=", "a") in planned_ce.local_conds

    def test_identity_ces_never_carry_local_conds(self):
        rule = _rule(
            lambda pb: pb.rule("r")
            .ce("c1", a=v("x"))
            .ce("c2", a=v("x"), b=v("x"))
            .halt()
        )
        for ce in compile_rule(rule).ces:
            assert ce.local_conds == ()


class TestSeededPlans:
    def test_pinned_ce_visits_first(self):
        rule = _rule(
            lambda pb: pb.rule("r")
            .ce("a", k=v("x"))
            .ce("b", k=v("x"))
            .halt()
        )
        cr = compile_rule(rule)
        seeded = cr.seeded_plan(1)
        assert seeded is not None and seeded.order == (1, 0)
        assert cr.seeded_plan(0) is None  # identity already pins CE 0 first

    def test_out_of_range_is_none(self):
        rule = _rule(lambda pb: pb.rule("r").ce("a", k=v("x")).halt())
        assert compile_rule(rule).seeded_plan(7) is None


class TestPlanEquivalence:
    def _load(self, wm):
        for i in range(4):
            wm.make("a", {"k": i % 2})
        for i in range(4):
            wm.make("b", {"k": i % 2, "m": 1 if i < 2 else 2})

    def test_same_instantiations_same_order_as_noindex(self):
        rule = _rule(
            lambda pb: pb.rule("r")
            .ce("a", k=v("x"))
            .ce("b", k=v("x"), m=1)
            .halt()
        )
        cr = compile_rules([rule])[0]
        assert cr.plan is not None  # the reorder actually happens
        wm = WorkingMemory()
        self._load(wm)
        indexed = [i.key for i in enumerate_matches(cr, wm, indexed=True)]
        legacy = [i.key for i in enumerate_matches(cr, wm, indexed=False)]
        assert indexed == legacy
        assert indexed  # non-vacuous

    def test_wmes_restored_to_original_positions(self):
        rule = _rule(
            lambda pb: pb.rule("r")
            .ce("a", k=v("x"))
            .ce("b", k=v("x"), m=1)
            .halt()
        )
        cr = compile_rules([rule])[0]
        wm = WorkingMemory()
        self._load(wm)
        for inst in enumerate_matches(cr, wm, indexed=True):
            assert inst.wmes[0].class_name == "a"
            assert inst.wmes[1].class_name == "b"

    def test_seeded_enumeration_matches_legacy(self):
        rule = _rule(
            lambda pb: pb.rule("r")
            .ce("a", k=v("x"))
            .ce("b", k=v("x"))
            .halt()
        )
        cr = compile_rules([rule])[0]
        wm = WorkingMemory()
        self._load(wm)
        pin = next(iter(wm.by_class("b")))
        indexed = [
            i.key
            for i in enumerate_matches(cr, wm, fixed=(1, pin), indexed=True)
        ]
        legacy = [
            i.key
            for i in enumerate_matches(cr, wm, fixed=(1, pin), indexed=False)
        ]
        assert indexed == legacy and indexed
