"""Tests for LHS compilation (alpha/binding/join classification)."""

import pytest

from repro.errors import MatchError
from repro.lang.parser import parse_program
from repro.match.compile import compile_rule, compile_rules, value_predicate
from repro.wm.wme import WME


def compiled(src):
    return compile_rule(parse_program(src).rules[0])


class TestAlphaConditions:
    def test_constant_test_is_alpha(self):
        cr = compiled("(p r (c ^a 1) --> (halt))")
        assert cr.ces[0].alpha_conds == (("const", "a", "=", 1),)
        assert cr.ces[0].bindings == ()
        assert cr.ces[0].join_tests == ()

    def test_predicate_against_constant_is_alpha(self):
        cr = compiled("(p r (c ^a > 4) --> (halt))")
        assert cr.ces[0].alpha_conds == (("const", "a", ">", 4),)

    def test_disjunction_is_alpha(self):
        cr = compiled("(p r (c ^a << x y >>) --> (halt))")
        assert cr.ces[0].alpha_conds == (("in", "a", ("x", "y")),)

    def test_intra_ce_variable_repeat_is_alpha(self):
        cr = compiled("(p r (c ^a <x> ^b <x>) --> (halt))")
        ce = cr.ces[0]
        assert ("intra", "b", "=", "a") in ce.alpha_conds
        assert ce.bindings == (("a", "x"),)

    def test_intra_ce_predicate(self):
        cr = compiled("(p r (c ^a <x> ^b > <x>) --> (halt))")
        assert ("intra", "b", ">", "a") in cr.ces[0].alpha_conds

    def test_alpha_key_shared_for_identical_patterns(self):
        prog = parse_program(
            "(p r1 (c ^a 1 ^b <x>) --> (halt))"
            "(p r2 (c ^b <y> ^a 1) --> (halt))"
        )
        crs = compile_rules(prog.rules)
        assert crs[0].ces[0].alpha_key == crs[1].ces[0].alpha_key

    def test_alpha_key_distinguishes_constants(self):
        prog = parse_program(
            "(p r1 (c ^a 1) --> (halt))(p r2 (c ^a 2) --> (halt))"
        )
        crs = compile_rules(prog.rules)
        assert crs[0].ces[0].alpha_key != crs[1].ces[0].alpha_key


class TestBindingsAndJoins:
    def test_cross_ce_variable_is_join(self):
        cr = compiled("(p r (c ^a <x>) (d ^b <x>) --> (halt))")
        assert cr.ces[0].bindings == (("a", "x"),)
        assert cr.ces[1].join_tests == (("b", "=", "x"),)
        assert cr.ces[1].bindings == ()

    def test_predicate_join(self):
        cr = compiled("(p r (c ^a <x>) (d ^b > <x>) --> (halt))")
        assert cr.ces[1].join_tests == (("b", ">", "x"),)
        assert cr.ces[1].eq_join_tests == ()
        assert cr.ces[1].other_join_tests == (("b", ">", "x"),)

    def test_eq_join_tests_extracted(self):
        cr = compiled("(p r (c ^a <x> ^b <y>) (d ^p <x> ^q <> <y>) --> (halt))")
        ce = cr.ces[1]
        assert ce.eq_join_tests == (("p", "x"),)
        assert ce.other_join_tests == (("q", "<>", "y"),)

    def test_conjunctive_binding_and_constraint(self):
        cr = compiled("(p r (c ^a { <x> > 4 }) --> (halt))")
        ce = cr.ces[0]
        assert ce.bindings == (("a", "x"),)
        assert ("const", "a", ">", 4) in ce.alpha_conds

    def test_variables_property(self):
        cr = compiled("(p r (c ^a <x> ^b <y>) (d ^e <z>) --> (halt))")
        assert cr.variables == ("x", "y", "z")

    def test_positive_and_negative_partition(self):
        cr = compiled("(p r (c ^a <x>) -(d ^b <x>) (e) --> (halt))")
        assert len(cr.positive_ces) == 2
        assert len(cr.negative_ces) == 1
        assert cr.negative_ces[0].index == 1


class TestOrderingRestrictions:
    def test_forward_reference_in_predicate_rejected(self):
        with pytest.raises(MatchError, match="before being bound"):
            compiled("(p r (c ^a > <x>) (d ^b <x>) --> (halt))")

    def test_binding_inside_negated_ce_rejected(self):
        with pytest.raises(MatchError, match="negated"):
            compiled("(p r (c ^a 1) -(d ^b <x>) --> (halt))")

    def test_negated_ce_with_bound_vars_ok(self):
        cr = compiled("(p r (c ^a <x>) -(d ^b <x>) --> (halt))")
        assert cr.ces[1].join_tests == (("b", "=", "x"),)


class TestValuePredicate:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("=", 1, 1, True),
            ("=", 1, 2, False),
            ("=", "x", "x", True),
            ("<>", 1, 2, True),
            ("<>", "a", "a", False),
            ("<", 1, 2, True),
            ("<", 2, 1, False),
            ("<=", 2, 2, True),
            (">", 3, 2, True),
            (">=", 2, 3, False),
            ("<", "apple", "banana", True),
            (">", "zebra", "ant", True),
        ],
    )
    def test_basic(self, op, a, b, expected):
        assert value_predicate(op, a, b) is expected

    def test_int_float_equality(self):
        assert value_predicate("=", 1, 1.0) is True

    def test_mixed_ordering_is_false(self):
        assert value_predicate("<", 1, "banana") is False
        assert value_predicate(">", "a", 0) is False

    def test_same_type(self):
        assert value_predicate("<=>", 1, 2.5) is True
        assert value_predicate("<=>", "a", "b") is True
        assert value_predicate("<=>", 1, "a") is False

    def test_unknown_predicate_raises(self):
        with pytest.raises(MatchError):
            value_predicate("~=", 1, 1)
