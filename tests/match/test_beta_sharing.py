"""Structural tests for RETE beta-prefix sharing (the rete-shared variant)."""

import pytest

from repro.lang.parser import parse_program
from repro.match.rete import ReteMatcher, SharedReteMatcher
from repro.wm.memory import WorkingMemory

# Three rules sharing a two-CE prefix (context + item), diverging after.
SHARED_PREFIX = """
(p r-close (ctx ^phase go) (item ^k <k>) (d ^k <k>) --> (halt))
(p r-tag   (ctx ^phase go) (item ^k <k>) (e ^k <k>) --> (halt))
(p r-solo  (ctx ^phase go) (item ^k <k>) --> (halt))
"""


def build(source, shared):
    wm = WorkingMemory()
    cls = SharedReteMatcher if shared else ReteMatcher
    return wm, cls(parse_program(source).rules, wm)


class TestSharing:
    def test_shared_nodes_counted(self):
        _wm, plain = build(SHARED_PREFIX, shared=False)
        _wm2, shared = build(SHARED_PREFIX, shared=True)
        assert plain.shared_nodes == 0
        # r-tag and r-solo each reuse the 2-node prefix built for r-close:
        # (ctx) reused twice, (ctx,item) reused twice.
        assert shared.shared_nodes == 4

    def test_token_state_smaller_when_shared(self):
        wm_p, plain = build(SHARED_PREFIX, shared=False)
        wm_s, shared = build(SHARED_PREFIX, shared=True)
        for wm in (wm_p, wm_s):
            wm.make("ctx", phase="go")
            for k in range(5):
                wm.make("item", k=k)
        assert shared.token_count() < plain.token_count()

    def test_identical_conflict_sets(self):
        wm_p, plain = build(SHARED_PREFIX, shared=False)
        wm_s, shared = build(SHARED_PREFIX, shared=True)
        for wm in (wm_p, wm_s):
            wm.make("ctx", phase="go")
            for k in range(4):
                wm.make("item", k=k)
                if k % 2 == 0:
                    wm.make("d", k=k)
                else:
                    wm.make("e", k=k)
        assert sorted(i.key for i in plain.instantiations()) == sorted(
            i.key for i in shared.instantiations()
        )

    def test_alpha_work_unchanged(self):
        # Sharing is a beta-layer optimization; alpha memories already share.
        _wm, plain = build(SHARED_PREFIX, shared=False)
        _wm2, shared = build(SHARED_PREFIX, shared=True)
        assert plain.alpha_memory_count == shared.alpha_memory_count

    def test_divergent_prefixes_not_shared(self):
        src = """
        (p a (ctx ^phase go) --> (halt))
        (p b (ctx ^phase stop) --> (halt))
        """
        _wm, shared = build(src, shared=True)
        assert shared.shared_nodes == 0

    def test_different_join_tests_not_shared(self):
        src = """
        (p a (x ^k <k>) (y ^k <k>) --> (halt))
        (p b (x ^k <k>) (y ^k <> <k>) --> (halt))
        """
        _wm, shared = build(src, shared=True)
        # Heads share (same pattern, same parent); second nodes must not.
        assert shared.shared_nodes == 1

    def test_removal_cascades_through_shared_fanout(self):
        wm, shared = build(SHARED_PREFIX, shared=True)
        ctx = wm.make("ctx", phase="go")
        wm.make("item", k=1)
        wm.make("d", k=1)
        wm.make("e", k=1)
        assert len(shared.instantiations()) == 3  # one per rule
        wm.remove(ctx)
        assert shared.instantiations() == []
        assert shared.token_count() == 0

    def test_negated_prefix_sharing(self):
        src = """
        (p a (x ^k <k>) -(block ^k <k>) (y ^k <k>) --> (halt))
        (p b (x ^k <k>) -(block ^k <k>) (z ^k <k>) --> (halt))
        """
        wm, shared = build(src, shared=True)
        assert shared.shared_nodes == 2  # head + negative node reused
        wm.make("x", k=1)
        wm.make("y", k=1)
        wm.make("z", k=1)
        assert len(shared.instantiations()) == 2
        blocker = wm.make("block", k=1)
        assert shared.instantiations() == []
        wm.remove(blocker)
        assert len(shared.instantiations()) == 2


class TestEngineIntegration:
    def test_parulel_runs_on_shared_matcher(self):
        from repro.core import EngineConfig, ParulelEngine
        from repro.programs import REGISTRY

        for name in ("manners", "routing", "tc"):
            wl = REGISTRY[name]()
            engine = ParulelEngine(
                wl.program,
                EngineConfig(matcher="rete-shared", meta_matcher="rete-shared"),
            )
            wl.setup(engine)
            engine.run(max_cycles=5000)
            assert wl.failed_checks(engine.wm) == [], name
