"""Behavioural tests run identically against RETE, TREAT and naive.

These pin the *semantics* of matching: what instantiations exist after any
sequence of adds/removes. The conftest fixture parameterizes every test
over all three engines.
"""

import pytest

from tests.match.conftest import keys


class TestSingleCE:
    SRC = "(p r (c ^a <x>) --> (halt))"

    def test_empty_wm_no_matches(self, setup):
        _wm, m = setup(self.SRC)
        assert m.instantiations() == []

    def test_one_wme_one_instantiation(self, setup):
        wm, m = setup(self.SRC)
        wm.make("c", a=1)
        insts = m.instantiations()
        assert len(insts) == 1
        assert insts[0].rule.name == "r"
        assert insts[0].env == {"x": 1}

    def test_wrong_class_ignored(self, setup):
        wm, m = setup(self.SRC)
        wm.make("d", a=1)
        assert m.instantiations() == []

    def test_each_wme_its_own_instantiation(self, setup):
        wm, m = setup(self.SRC)
        wm.make("c", a=1)
        wm.make("c", a=2)
        assert len(m.instantiations()) == 2

    def test_remove_retracts(self, setup):
        wm, m = setup(self.SRC)
        w = wm.make("c", a=1)
        assert len(m.instantiations()) == 1
        wm.remove(w)
        assert m.instantiations() == []

    def test_missing_attribute_matches_nil(self, setup):
        wm, m = setup("(p r (c ^a nil) --> (halt))")
        wm.make("c", b=1)  # a unassigned -> nil
        assert len(m.instantiations()) == 1


class TestConstantAndPredicateTests:
    def test_constant_filter(self, setup):
        wm, m = setup("(p r (c ^color red) --> (halt))")
        wm.make("c", color="red")
        wm.make("c", color="blue")
        assert len(m.instantiations()) == 1

    def test_numeric_predicate(self, setup):
        wm, m = setup("(p r (c ^size > 4) --> (halt))")
        wm.make("c", size=3)
        wm.make("c", size=5)
        wm.make("c", size=4)
        assert len(m.instantiations()) == 1

    def test_disjunction(self, setup):
        wm, m = setup("(p r (c ^color << red green >>) --> (halt))")
        wm.make("c", color="red")
        wm.make("c", color="green")
        wm.make("c", color="blue")
        assert len(m.instantiations()) == 2

    def test_conjunction(self, setup):
        wm, m = setup("(p r (c ^size { <s> > 2 < 6 }) --> (halt))")
        for s in (1, 3, 5, 7):
            wm.make("c", size=s)
        envs = sorted(i.env["s"] for i in m.instantiations())
        assert envs == [3, 5]

    def test_intra_ce_equality(self, setup):
        wm, m = setup("(p r (c ^a <x> ^b <x>) --> (halt))")
        wm.make("c", a=1, b=1)
        wm.make("c", a=1, b=2)
        assert len(m.instantiations()) == 1

    def test_intra_ce_inequality(self, setup):
        wm, m = setup("(p r (c ^a <x> ^b <> <x>) --> (halt))")
        wm.make("c", a=1, b=1)
        wm.make("c", a=1, b=2)
        assert len(m.instantiations()) == 1


class TestJoins:
    JOIN = "(p r (a ^k <k>) (b ^k <k>) --> (halt))"

    def test_equijoin_pairs(self, setup):
        wm, m = setup(self.JOIN)
        wm.make("a", k=1)
        wm.make("a", k=2)
        wm.make("b", k=1)
        wm.make("b", k=1)
        # a(k=1) joins both b(k=1)s -> 2 instantiations
        assert len(m.instantiations()) == 2

    def test_join_order_of_arrival_irrelevant(self, setup):
        wm, m = setup(self.JOIN)
        wm.make("b", k=1)
        wm.make("a", k=1)
        assert len(m.instantiations()) == 1

    def test_join_with_inequality(self, setup):
        wm, m = setup("(p r (a ^k <k>) (b ^k > <k>) --> (halt))")
        wm.make("a", k=5)
        wm.make("b", k=4)
        wm.make("b", k=6)
        insts = m.instantiations()
        assert len(insts) == 1
        assert insts[0].wmes[1].get("k") == 6

    def test_three_way_join(self, setup):
        wm, m = setup("(p r (a ^k <k>) (b ^k <k> ^v <v>) (c ^v <v>) --> (halt))")
        wm.make("a", k=1)
        wm.make("b", k=1, v="x")
        wm.make("b", k=1, v="y")
        wm.make("c", v="x")
        insts = m.instantiations()
        assert len(insts) == 1
        assert insts[0].env == {"k": 1, "v": "x"}

    def test_removing_join_partner_retracts(self, setup):
        wm, m = setup(self.JOIN)
        wa = wm.make("a", k=1)
        wb = wm.make("b", k=1)
        assert len(m.instantiations()) == 1
        wm.remove(wb)
        assert m.instantiations() == []
        wm.make("b", k=1)
        assert len(m.instantiations()) == 1
        wm.remove(wa)
        assert m.instantiations() == []

    def test_self_join_same_class(self, setup):
        wm, m = setup("(p r (n ^v <a>) (n ^v > <a>) --> (halt))")
        wm.make("n", v=1)
        wm.make("n", v=2)
        wm.make("n", v=3)
        # ordered pairs with second > first: (1,2),(1,3),(2,3)
        assert len(m.instantiations()) == 3

    def test_join_on_multiple_attributes(self, setup):
        wm, m = setup("(p r (a ^x <x> ^y <y>) (b ^x <x> ^y <y>) --> (halt))")
        wm.make("a", x=1, y=1)
        wm.make("b", x=1, y=1)
        wm.make("b", x=1, y=2)
        assert len(m.instantiations()) == 1


class TestNegation:
    NEG = "(p r (a ^k <k>) -(b ^k <k>) --> (halt))"

    def test_negation_blocks(self, setup):
        wm, m = setup(self.NEG)
        wm.make("a", k=1)
        wm.make("b", k=1)
        assert m.instantiations() == []

    def test_negation_passes_when_absent(self, setup):
        wm, m = setup(self.NEG)
        wm.make("a", k=1)
        wm.make("b", k=2)
        assert len(m.instantiations()) == 1

    def test_adding_blocker_retracts(self, setup):
        wm, m = setup(self.NEG)
        wm.make("a", k=1)
        assert len(m.instantiations()) == 1
        wm.make("b", k=1)
        assert m.instantiations() == []

    def test_removing_blocker_reinstates(self, setup):
        wm, m = setup(self.NEG)
        wm.make("a", k=1)
        blocker = wm.make("b", k=1)
        assert m.instantiations() == []
        wm.remove(blocker)
        assert len(m.instantiations()) == 1

    def test_two_blockers_both_must_go(self, setup):
        wm, m = setup(self.NEG)
        wm.make("a", k=1)
        b1 = wm.make("b", k=1)
        b2 = wm.make("b", k=1)
        wm.remove(b1)
        assert m.instantiations() == []
        wm.remove(b2)
        assert len(m.instantiations()) == 1

    def test_pure_alpha_negation(self, setup):
        wm, m = setup("(p r (a ^k <k>) -(stop) --> (halt))")
        wm.make("a", k=1)
        assert len(m.instantiations()) == 1
        s = wm.make("stop")
        assert m.instantiations() == []
        wm.remove(s)
        assert len(m.instantiations()) == 1

    def test_negation_with_inequality_join(self, setup):
        wm, m = setup("(p r (a ^k <k>) -(b ^k > <k>) --> (halt))")
        wm.make("a", k=5)
        assert len(m.instantiations()) == 1
        hi = wm.make("b", k=9)
        assert m.instantiations() == []
        wm.make("b", k=1)  # not a blocker (1 < 5)
        assert m.instantiations() == []
        wm.remove(hi)
        assert len(m.instantiations()) == 1

    def test_negation_with_constant_alpha(self, setup):
        wm, m = setup("(p r (a ^k <k>) -(b ^k <k> ^tag done) --> (halt))")
        wm.make("a", k=1)
        wm.make("b", k=1, tag="pending")  # alpha-filtered out, not a blocker
        assert len(m.instantiations()) == 1
        done = wm.make("b", k=1, tag="done")
        assert m.instantiations() == []
        wm.remove(done)
        assert len(m.instantiations()) == 1

    def test_two_negations(self, setup):
        wm, m = setup("(p r (a ^k <k>) -(b ^k <k>) -(c ^k <k>) --> (halt))")
        wm.make("a", k=1)
        wb = wm.make("b", k=1)
        wc = wm.make("c", k=1)
        assert m.instantiations() == []
        wm.remove(wb)
        assert m.instantiations() == []
        wm.remove(wc)
        assert len(m.instantiations()) == 1

    def test_negation_between_positives(self, setup):
        wm, m = setup("(p r (a ^k <k>) -(b ^k <k>) (c ^k <k>) --> (halt))")
        wm.make("a", k=1)
        wm.make("c", k=1)
        assert len(m.instantiations()) == 1
        wm.make("b", k=1)
        assert m.instantiations() == []


class TestMultipleRules:
    def test_rules_fire_independently(self, setup):
        wm, m = setup(
            "(p r1 (c ^a <x>) --> (halt))"
            "(p r2 (c ^a > 5) --> (halt))"
        )
        wm.make("c", a=3)
        wm.make("c", a=7)
        names = sorted(i.rule.name for i in m.instantiations())
        assert names == ["r1", "r1", "r2"]

    def test_shared_alpha_pattern(self, setup):
        # Identical first CE in both rules (alpha sharing path in RETE).
        wm, m = setup(
            "(p r1 (c ^a 1) (d ^b <y>) --> (halt))"
            "(p r2 (c ^a 1) (e ^b <y>) --> (halt))"
        )
        wm.make("c", a=1)
        wm.make("d", b=2)
        wm.make("e", b=3)
        names = sorted(i.rule.name for i in m.instantiations())
        assert names == ["r1", "r2"]


class TestEnvironmentContents:
    def test_env_covers_all_bound_variables(self, setup):
        wm, m = setup("(p r (a ^x <x>) (b ^y <y> ^x <x>) --> (halt))")
        wm.make("a", x=1)
        wm.make("b", x=1, y="payload")
        (inst,) = m.instantiations()
        assert inst.env == {"x": 1, "y": "payload"}

    def test_wmes_aligned_with_ces(self, setup):
        wm, m = setup("(p r (a ^x <x>) -(c ^x <x>) (b ^x <x>) --> (halt))")
        wa = wm.make("a", x=1)
        wb = wm.make("b", x=1)
        (inst,) = m.instantiations()
        assert inst.wmes == (wa, None, wb)
        assert inst.wme_for_ce(1) == wa
        assert inst.wme_for_ce(3) == wb
        with pytest.raises(LookupError):
            inst.wme_for_ce(2)

    def test_key_is_rule_and_timestamps(self, setup):
        wm, m = setup("(p r (a ^x <x>) --> (halt))")
        w = wm.make("a", x=1)
        (inst,) = m.instantiations()
        assert inst.key == ("r", (w.timestamp,))


class TestChurnStability:
    def test_add_remove_interleaving(self, setup):
        """A randomized-ish but deterministic interleaving must leave the
        conflict set consistent at every step (verified against a freshly
        built naive matcher at the end)."""
        src = "(p r (a ^k <k>) (b ^k <k>) -(c ^k <k>) --> (halt))"
        wm, m = setup(src)
        live = []
        script = [
            ("a", 1), ("b", 1), ("c", 1), ("a", 2), ("b", 2),
            ("-", 2), ("a", 1), ("-", 0), ("b", 3), ("a", 3),
            ("c", 3), ("-", 10), ("-", 8),
        ]
        for cls, k in script:
            if cls == "-":
                wm.remove(live.pop(k % len(live)))
            else:
                live.append(wm.make(cls, k=k))
        # Compare against fresh recomputation.
        from repro.lang.parser import parse_program
        from repro.match.interface import create_matcher
        from repro.wm.memory import WorkingMemory

        fresh_wm = WorkingMemory()
        for wme in wm.snapshot():
            fresh_wm.add(wme)
        oracle = create_matcher("naive", parse_program(src).rules, fresh_wm)
        assert sorted(i.key for i in m.instantiations()) == sorted(
            i.key for i in oracle.instantiations()
        )
