"""Direct unit tests for the seedable join enumerator (repro.match.join) —
the shared semantic core under the naive and TREAT engines."""

import pytest

from repro.lang.parser import parse_program
from repro.match.compile import compile_rule
from repro.match.join import default_alpha_source, enumerate_matches, join_tests_pass
from repro.match.stats import MatchStats
from repro.wm.memory import WorkingMemory

RULE = compile_rule(
    parse_program("(p r (a ^k <k>) (b ^k <k> ^v <v>) -(c ^k <k>) --> (halt))").rules[0]
)


@pytest.fixture
def wm():
    wm = WorkingMemory()
    wm.make("a", k=1)
    wm.make("a", k=2)
    wm.make("b", k=1, v="x")
    wm.make("b", k=2, v="y")
    wm.make("b", k=2, v="z")
    return wm


class TestFullEnumeration:
    def test_all_matches(self, wm):
        insts = list(enumerate_matches(RULE, wm))
        assert len(insts) == 3
        envs = sorted((i.env["k"], i.env["v"]) for i in insts)
        assert envs == [(1, "x"), (2, "y"), (2, "z")]

    def test_negation_respected(self, wm):
        wm.make("c", k=2)
        insts = list(enumerate_matches(RULE, wm))
        assert sorted(i.env["k"] for i in insts) == [1]

    def test_wme_tuple_alignment(self, wm):
        inst = next(enumerate_matches(RULE, wm))
        assert inst.wmes[0].class_name == "a"
        assert inst.wmes[1].class_name == "b"
        assert inst.wmes[2] is None  # negated slot

    def test_stats_counted(self, wm):
        stats = MatchStats()
        list(enumerate_matches(RULE, wm, stats))
        assert stats.totals["instantiations"] == 3
        assert stats.totals["join_probes"] > 0
        assert stats.per_rule["r"]["tokens"] > 0


class TestFixedSeeding:
    def test_pinned_positive_ce(self, wm):
        target = wm.find("a", k=2)[0]
        insts = list(enumerate_matches(RULE, wm, fixed=(0, target)))
        assert len(insts) == 2
        assert all(i.wmes[0] == target for i in insts)

    def test_pinned_wme_must_pass_alpha(self, wm):
        wrong_class = wm.find("b", k=1)[0]
        assert list(enumerate_matches(RULE, wm, fixed=(0, wrong_class))) == []

    def test_pinned_second_ce(self, wm):
        target = wm.find("b", v="y")[0]
        insts = list(enumerate_matches(RULE, wm, fixed=(1, target)))
        assert len(insts) == 1
        assert insts[0].env == {"k": 2, "v": "y"}


class TestSeedEnv:
    def test_seed_constrains_bindings(self, wm):
        insts = list(enumerate_matches(RULE, wm, seed_env={"k": 2}))
        assert sorted(i.env["v"] for i in insts) == ["y", "z"]

    def test_seed_with_impossible_value(self, wm):
        assert list(enumerate_matches(RULE, wm, seed_env={"k": 99})) == []

    def test_seed_env_is_not_mutated(self, wm):
        seed = {"k": 1}
        list(enumerate_matches(RULE, wm, seed_env=seed))
        assert seed == {"k": 1}


class TestAlphaSource:
    def test_custom_source_used(self, wm):
        # Supply a source that hides all 'b' WMEs: no matches possible.
        base = default_alpha_source(wm)

        def hiding_source(ce):
            if ce.class_name == "b":
                return iter(())
            return base(ce)

        assert list(enumerate_matches(RULE, wm, alpha_source=hiding_source)) == []

    def test_join_tests_pass_helper(self, wm):
        ce = RULE.ces[1]  # (b ^k <k> ^v <v>) — join test on k
        b1 = wm.find("b", k=1)[0]
        assert join_tests_pass(ce, b1, {"k": 1})
        assert not join_tests_pass(ce, b1, {"k": 2})
