"""Randomized differential tests for the hash-indexed join kernel.

Seeded ``random.Random`` program generation (modeled on the hypothesis
strategies in ``test_differential.py``, but with a fixed example count so the
coverage floor is explicit): across ≥50 random programs with churn-heavy
add/remove scripts, the indexed path must produce the *identical ordered*
conflict set as the ``indexed=False`` nested-loop path for the incremental
matchers, and the identical set as RETE. A second class checks whole-run
equivalence at the engine level: final working memory is byte-identical
with and without indexing.
"""

import random

import pytest

from repro.core import EngineConfig, ParulelEngine
from repro.lang.builder import ProgramBuilder, conj, gt, lt, ne, v
from repro.match.interface import create_matcher
from repro.programs import REGISTRY
from repro.wm.memory import WorkingMemory

CLASSES = ["a", "b", "c"]
ATTRS = ["k", "m"]
VALUES = [0, 1, 2]

N_PROGRAMS = 60  # ≥50 seeds: the coverage floor promised in the PR


def _random_program(rng, values=VALUES):
    """1-3 rules, 1-3 CEs each: joins, constants, predicates, negation."""
    pb = ProgramBuilder()
    for r in range(rng.randint(1, 3)):
        rb = pb.rule(f"r{r}")
        bound = []
        for i in range(rng.randint(1, 3)):
            cls = rng.choice(CLASSES)
            negated = bool(i > 0 and bound and rng.random() < 0.3)
            tests = {}
            for attr in ATTRS:
                choice = rng.randint(0, 4)
                if choice == 0:
                    continue
                if choice == 1:
                    tests[attr] = rng.choice(values)
                elif choice == 2 and bound:
                    tests[attr] = v(rng.choice(bound))
                elif choice == 3 and bound:
                    tests[attr] = rng.choice([ne, lt, gt])(v(rng.choice(bound)))
                elif not negated:
                    var = f"v{r}_{i}_{attr}"
                    if rng.random() < 0.5:
                        tests[attr] = v(var)
                    else:
                        tests[attr] = conj(v(var), gt(-1))
                    bound.append(var)
                else:
                    tests[attr] = rng.choice(values)
            if negated and not tests:
                tests["k"] = rng.choice(values)
            if negated:
                rb.neg(cls, **tests)
            else:
                rb.ce(cls, **tests)
        rb.halt()
    return pb.build(analyze=False)


def _random_script(rng, n_steps=30, values=VALUES):
    """Churn-heavy: removals as likely as additions once memory is warm."""
    return [
        ("add", rng.choice(CLASSES), rng.choice(values), rng.choice(values))
        if rng.random() < 0.55
        else ("remove", rng.randrange(10_000))
        for _ in range(n_steps)
    ]


def _ordered_keys(matcher):
    return [i.key for i in matcher.instantiations()]


class TestIndexedVersusNestedLoop:
    @pytest.mark.parametrize("seed", range(N_PROGRAMS))
    def test_identical_ordered_conflict_sets(self, seed):
        rng = random.Random(1000 + seed)
        program = _random_program(rng)
        script = _random_script(rng)
        wm = WorkingMemory()
        pairs = {
            name: (
                create_matcher(name, program.rules, wm, indexed=True),
                create_matcher(name, program.rules, wm, indexed=False),
            )
            for name in ("treat", "naive")
        }
        rete = create_matcher("rete", program.rules, wm)
        live = []
        for step in script:
            if step[0] == "add":
                _tag, cls, k, mval = step
                live.append(wm.make(cls, k=k, m=mval))
            else:
                if not live:
                    continue
                wm.remove(live.pop(step[1] % len(live)))
            rete_image = sorted(_ordered_keys(rete))
            for name, (indexed, noindex) in pairs.items():
                got = _ordered_keys(indexed)
                want = _ordered_keys(noindex)
                assert got == want, (
                    f"seed {seed}, {name}: indexed order diverges from "
                    f"nested-loop after {step}:\n{got}\n!=\n{want}"
                )
                assert sorted(got) == rete_image, (
                    f"seed {seed}, {name}: diverges from rete after {step}"
                )


#: Value pool for the vectorized axis: symbols, bigints, negative ints,
#: floats (integral and not), bools and nil — spanning the packed-key
#: kinds and both fallback triggers (see ``alphaindex.py``'s keying note).
VEC_VALUES = [0, 1, -7, 2**70, 2.0, 1.5, "sym", "oth-er", "nil", True]


class TestVectorizedVersusObjectPath:
    """The column-native probe kernel against the object path, same seed
    discipline as above: after every step of a churn-heavy script over a
    columnar store, every rule's ordered conflict set under
    ``ColumnVectorCache`` (lazy, packed-key probes over shared columns)
    must equal the set under ``AlphaCache`` (eager WME objects)."""

    @pytest.mark.parametrize("seed", range(N_PROGRAMS))
    def test_identical_ordered_conflict_sets(self, seed):
        from repro.match.alphaindex import AlphaCache, ColumnVectorCache
        from repro.match.compile import compile_rules
        from repro.match.join import enumerate_matches
        from repro.wm.columnar import ColumnarReader, ColumnarWorkingMemory

        rng = random.Random(7000 + seed)
        program = _random_program(rng, VEC_VALUES)
        script = _random_script(rng, 24, VEC_VALUES)
        compiled = compile_rules(program.rules)
        col = ColumnarWorkingMemory()
        reader = None
        try:
            reader = ColumnarReader(col.attach_spec())
            vcache = ColumnVectorCache(reader)
            cache = AlphaCache(col)
            cache.attach()
            live = []
            for step in script:
                if step[0] == "add":
                    _tag, cls, k, mval = step
                    live.append(col.make(cls, k=k, m=mval))
                else:
                    if not live:
                        continue
                    col.remove(live.pop(step[1] % len(live)))
                vcache.refresh(col.cycle_info())
                for cr in compiled:
                    obj = [
                        (i.key, sorted(i.env.items()))
                        for i in enumerate_matches(cr, col, alpha_source=cache)
                    ]
                    vec = [
                        (i.key, sorted(i.env.items()))
                        for i in enumerate_matches(
                            cr, col, alpha_source=vcache
                        )
                    ]
                    assert vec == obj, (
                        f"seed {seed}, rule {cr.name}: vector kernel "
                        f"diverges from object path after {step}"
                    )
        finally:
            if reader is not None:
                reader.close()
            col.close()


class TestWholeRunEquivalence:
    """Full engine runs: indexing must not change a single fired rule or
    final WME — ``dump_records`` output is compared byte-for-byte."""

    @pytest.mark.parametrize("workload", ["tc", "monkey", "waltz"])
    @pytest.mark.parametrize("matcher", ["treat", "naive"])
    def test_final_wm_identical(self, workload, matcher):
        def run(indexed):
            wl = REGISTRY[workload]()
            engine = ParulelEngine(
                wl.program,
                EngineConfig(matcher=matcher, indexed_match=indexed),
            )
            wl.setup(engine)
            result = engine.run(max_cycles=5000)
            return result, engine.wm.dump_records(), wl.verify(engine.wm)

        res_i, wm_i, ok_i = run(True)
        res_n, wm_n, ok_n = run(False)
        assert ok_i and ok_n
        assert res_i.cycles == res_n.cycles
        assert res_i.firings == res_n.firings
        assert wm_i == wm_n
