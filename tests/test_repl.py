"""Tests for the interactive REPL session layer."""

import pytest

from repro.lang.parser import parse_program
from repro.repl import ReplSession, run_repl

TC = """
(literalize edge src dst)
(literalize path src dst)
(p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
 --> (make path ^src <a> ^dst <b>))
(p tc-extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)
 -(path ^src <a> ^dst <c>) --> (make path ^src <a> ^dst <c>))
"""


@pytest.fixture
def session():
    return ReplSession(parse_program(TC))


class TestCommands:
    def test_assert_and_wm(self, session):
        out = session.execute("(edge ^src a ^dst b)")
        assert "asserted" in out
        out = session.execute(":wm edge")
        assert "(edge" in out

    def test_multiple_facts_one_line(self, session):
        out = session.execute("(edge ^src a ^dst b)(edge ^src b ^dst c)")
        assert out.count("asserted") == 2

    def test_cs_lists_instantiations(self, session):
        session.execute("(edge ^src a ^dst b)")
        out = session.execute(":cs")
        assert "tc-init" in out

    def test_cs_empty(self, session):
        assert session.execute(":cs") == "conflict set empty"

    def test_step_and_run(self, session):
        session.execute("(edge ^src a ^dst b)(edge ^src b ^dst c)")
        out = session.execute(":step")
        assert "cycle 1: fired 2" in out
        out = session.execute(":run")
        assert "quiescent" in out
        assert "(path" in session.execute(":wm path")

    def test_run_with_limit(self, session):
        session.execute("(edge ^src a ^dst b)(edge ^src b ^dst c)")
        out = session.execute(":run 1")
        assert "stopped after 1 cycles" in out

    def test_explain(self, session):
        session.execute("(edge ^src a ^dst b)(edge ^src b ^dst c)")
        session.execute(":run")
        out = session.execute(":explain (path ^src a ^dst c)")
        assert "tc-extend" in out and "asserted initially" in out

    def test_explain_no_match(self, session):
        assert "no live WME" in session.execute(":explain (path ^src z)")

    def test_retract(self, session):
        session.execute("(edge ^src a ^dst b)")
        out = session.execute(":retract 1")
        assert "retracted" in out
        assert session.execute(":wm") == "(empty)"
        assert "no WME with timestamp" in session.execute(":retract 99")

    def test_lint(self, session):
        assert "clean" in session.execute(":lint")

    def test_help_and_unknown(self, session):
        assert ":run" in session.execute(":help")
        assert "unknown command" in session.execute(":frobnicate")
        assert "unrecognized input" in session.execute("hello")

    def test_errors_reported_not_raised(self, session):
        out = session.execute("(edge ^src <var>)")
        assert out.startswith("error:")

    def test_blank_and_comment_lines(self, session):
        assert session.execute("") == ""
        assert session.execute("; a comment") == ""

    def test_quit_returns_none(self, session):
        assert session.execute(":quit") is None


class TestRunReplDriver:
    def test_scripted_session(self):
        outputs = []
        rc = run_repl(
            parse_program(TC),
            input_lines=[
                "(edge ^src a ^dst b)",
                ":run",
                ":wm path",
                ":quit",
                ":never-reached",
            ],
            write=outputs.append,
        )
        assert rc == 0
        text = "\n".join(outputs)
        assert "PARULEL repl" in text
        assert "quiescent" in text
        assert "(path" in text
        assert "never-reached" not in text

    def test_eof_without_quit(self):
        outputs = []
        rc = run_repl(
            parse_program(TC), input_lines=["(edge ^src a ^dst b)"], write=outputs.append
        )
        assert rc == 0
