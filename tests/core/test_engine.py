"""Integration-level tests of the PARULEL engine's cycle semantics."""

import pytest

from repro.errors import CycleLimitExceeded, InterferenceError
from repro.core import EngineConfig, ParulelEngine
from repro.lang.parser import parse_program


def engine_for(src, **config):
    return ParulelEngine(parse_program(src), EngineConfig(**config))


COUNTER = """
(literalize count value)
(p bump
    (count ^value {<v> < 3})
    -->
    (modify 1 ^value (compute <v> + 1)))
"""


class TestBasicCycle:
    def test_quiescence(self):
        e = engine_for(COUNTER)
        e.make("count", value=0)
        result = e.run()
        assert result.reason == "quiescence"
        assert result.cycles == 3
        assert e.wm.find("count", value=3)

    def test_empty_wm_is_immediately_quiescent(self):
        e = engine_for(COUNTER)
        result = e.run()
        assert result.cycles == 0
        assert result.reason == "quiescence"

    def test_step_returns_none_at_quiescence(self):
        e = engine_for(COUNTER)
        e.make("count", value=2)
        assert e.step() is not None
        assert e.step() is None
        assert e.step() is None

    def test_halt_stops_the_run(self):
        src = """
        (literalize tick n)
        (p forever (tick ^n <n>) --> (modify 1 ^n (compute <n> + 1)))
        (p stop (salience 10) (tick ^n 5) --> (halt))
        """
        e = engine_for(src)
        e.make("tick", n=0)
        result = e.run()
        assert result.reason == "halt"
        assert e.wm.find("tick", n=5) or e.wm.find("tick", n=6)

    def test_cycle_limit_raises(self):
        src = """
        (literalize tick n)
        (p forever (tick ^n <n>) --> (modify 1 ^n (compute <n> + 1)))
        """
        e = engine_for(src)
        e.make("tick", n=0)
        with pytest.raises(CycleLimitExceeded):
            e.run(max_cycles=10)

    def test_refraction_prevents_refiring(self):
        # A rule whose RHS does not change its own match would loop without
        # refraction; with it, the instantiation fires exactly once.
        src = """
        (literalize fact name)
        (literalize note text)
        (p observe (fact ^name <n>) --> (make note ^text <n>))
        """
        e = engine_for(src)
        e.make("fact", name="a")
        result = e.run()
        assert result.cycles == 1
        assert e.wm.count_class("note") == 1


class TestSetOrientedSemantics:
    def test_all_instantiations_fire_in_one_cycle(self):
        src = """
        (literalize fact n)
        (literalize double n)
        (p dbl (fact ^n <n>) --> (make double ^n (compute <n> * 2)))
        """
        e = engine_for(src)
        for i in range(10):
            e.make("fact", n=i)
        result = e.run()
        assert result.cycles == 1
        assert result.firings == 10
        assert e.wm.count_class("double") == 10

    def test_firings_see_snapshot_not_each_other(self):
        # Both swap directions read the pre-firing values: a<->b swap works
        # only because RHS evaluation happens against the snapshot.
        src = """
        (literalize cell name val)
        (p order-ab
            (cell ^name a ^val <x>)
            (cell ^name b ^val {<y> < <x>})
            -->
            (modify 1 ^val <y>)
            (modify 2 ^val <x>))
        """
        e = engine_for(src)
        e.make("cell", name="a", val=2)
        e.make("cell", name="b", val=1)
        result = e.run(max_cycles=5)
        assert result.cycles == 1  # one swap, then ordered -> quiescent
        assert e.wm.find("cell", name="a")[0].get("val") == 1
        assert e.wm.find("cell", name="b")[0].get("val") == 2

    def test_interference_error_is_default(self):
        src = """
        (literalize req n)
        (literalize slot owner)
        (p claim (req ^n <n>) (slot ^owner nil) --> (modify 2 ^owner <n>))
        """
        e = engine_for(src)
        e.make("req", n="a")
        e.make("req", n="b")
        e.make("slot", owner="nil")
        with pytest.raises(InterferenceError, match="meta-rule"):
            e.run()

    def test_interference_first_policy_resolves(self):
        src = """
        (literalize req n)
        (literalize slot owner)
        (p claim (req ^n <n>) (slot ^owner nil) --> (modify 2 ^owner <n>))
        """
        e = engine_for(src, interference="first")
        e.make("req", n="a")
        e.make("req", n="b")
        e.make("slot", owner="nil")
        result = e.run()
        assert result.reports[0].conflicts_resolved == 1
        owner = e.wm.by_class("slot")[0].get("owner")
        assert owner == "a"  # conflict-set order is deterministic

    def test_dedupe_makes_in_cycle(self):
        src = """
        (literalize pair a b)
        (literalize mark x)
        (p tag (pair ^a <a>) --> (make mark ^x done))
        """
        e = engine_for(src, dedupe_makes=True)
        e.make("pair", a=1)
        e.make("pair", a=2)
        result = e.run()
        assert e.wm.count_class("mark") == 1
        assert result.reports[0].makes_deduped == 1

    def test_dedupe_off_duplicates(self):
        src = """
        (literalize pair a b)
        (literalize mark x)
        (p tag (pair ^a <a>) --> (make mark ^x done))
        """
        e = engine_for(src, dedupe_makes=False)
        e.make("pair", a=1)
        e.make("pair", a=2)
        e.run()
        assert e.wm.count_class("mark") == 2


class TestReportsAndOutput:
    def test_cycle_reports_recorded(self):
        e = engine_for(COUNTER)
        e.make("count", value=0)
        result = e.run()
        assert len(result.reports) == 3
        assert [r.cycle for r in result.reports] == [1, 2, 3]
        assert all(r.fired == 1 for r in result.reports)

    def test_writes_collected_in_output(self):
        src = """
        (literalize f n)
        (p w (f ^n <n>) --> (write saw <n>))
        """
        e = engine_for(src)
        e.make("f", n=1)
        e.make("f", n=2)
        result = e.run()
        assert sorted(result.output) == ["saw 1", "saw 2"]

    def test_trace_callback_invoked(self):
        seen = []
        e = ParulelEngine(parse_program(COUNTER), trace=seen.append)
        e.make("count", value=1)
        e.run()
        assert [r.cycle for r in seen] == [1, 2]

    def test_mean_firing_set(self):
        src = """
        (literalize f n)
        (literalize g n)
        (p w (f ^n <n>) --> (make g ^n <n>))
        """
        e = engine_for(src)
        for i in range(4):
            e.make("f", n=i)
        result = e.run()
        assert result.mean_firing_set == 4.0
        assert result.firing_set_sizes == [4]

    def test_phase_times_accumulate(self):
        e = engine_for(COUNTER)
        e.make("count", value=0)
        result = e.run()
        for phase in ("collect", "redact", "evaluate", "apply"):
            assert phase in result.phase_times

    def test_run_twice_counts_separately(self):
        e = engine_for(COUNTER)
        e.make("count", value=0)
        first = e.run()
        assert first.cycles == 3
        # Re-arm with a fresh counter; previous refraction must not block.
        e.make("count", value=1)
        second = e.run()
        assert second.cycles == 2
        assert second.firings == 2


class TestHostFunctions:
    def test_call_via_engine(self):
        seen = []
        src = """
        (literalize f n)
        (p c (f ^n <n>) --> (call collect <n>))
        """
        e = ParulelEngine(
            parse_program(src), host_functions={"collect": lambda n: seen.append(n)}
        )
        e.make("f", n=7)
        e.run()
        assert seen == [7]

    def test_register_function(self):
        seen = []
        src = """
        (literalize f n)
        (p c (f ^n <n>) --> (call collect <n>))
        """
        e = ParulelEngine(parse_program(src))
        e.register_function("collect", seen.append)
        e.make("f", n=1)
        e.run()
        assert seen == [1]


class TestRemoveSemantics:
    def test_remove_action(self):
        src = """
        (literalize junk n)
        (p clean (junk ^n <n>) --> (remove 1))
        """
        e = engine_for(src)
        for i in range(5):
            e.make("junk", n=i)
        result = e.run()
        assert result.cycles == 1
        assert e.wm.count_class("junk") == 0

    def test_conflict_set_view(self):
        e = engine_for(COUNTER)
        e.make("count", value=0)
        assert len(e.conflict_set()) == 1
        e.run()
        assert e.conflict_set() == []


WRITER = """
(literalize count value)
(p bump
    (count ^value {<v> < 2})
    -->
    (write bump <v>)
    (modify 1 ^value (compute <v> + 1)))
"""


class TestRepeatedRunOutput:
    def test_second_run_reports_only_its_own_output(self):
        # Regression: RunResult.output used to be the engine's cumulative
        # output, while reports/cycles/firings were sliced per run.
        e = engine_for(WRITER)
        e.make("count", value=0)
        first = e.run()
        assert first.output == ["bump 0", "bump 1"]

        e.make("count", value=0)
        second = e.run()
        assert second.output == ["bump 0", "bump 1"]
        assert second.cycles == len(second.reports) == 2
        # The engine-level log stays cumulative.
        assert e.output == ["bump 0", "bump 1"] * 2

    def test_idle_rerun_has_empty_output(self):
        e = engine_for(WRITER)
        e.make("count", value=0)
        e.run()
        again = e.run()
        assert again.cycles == 0
        assert again.output == []


class TestMetaWritesInReports:
    def test_meta_writes_appear_in_cycle_report(self):
        # Regression: meta-level (write ...) went straight to engine.output,
        # bypassing CycleReport.writes, so RunTracer timelines dropped it.
        src = """
        (literalize item n)
        (literalize log n)
        (p touch (item ^n <n>) --> (make log ^n <n>))
        (mp watch (instantiation ^rule touch ^id <i>)
            --> (write meta-saw <i>))
        """
        e = engine_for(src)
        e.make("item", n=1)
        report = e.step()
        assert report.fired == 1
        assert any(w.startswith("meta-saw") for w in report.writes)
        # Report writes and engine output agree on the meta lines.
        for line in report.writes:
            assert line in e.output

    def test_meta_writes_reported_on_redaction_quiescence(self):
        src = """
        (literalize item n)
        (p touch (item ^n <n>) --> (remove 1))
        (mp veto (instantiation ^rule touch ^id <i>)
            --> (write vetoed <i>) (redact <i>))
        """
        e = engine_for(src)
        e.make("item", n=1)
        result = e.run()
        assert result.reason == "redaction-quiescence"
        assert len(result.reports) == 1
        report = result.reports[0]
        assert report.fired == 0
        assert any(w.startswith("vetoed") for w in report.writes)
        assert report.writes == result.output
