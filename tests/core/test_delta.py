"""Unit tests for cycle-delta merging and interference policies."""

import pytest

from repro.errors import InterferenceError
from repro.core.actions import InstantiationDelta
from repro.core.delta import InterferencePolicy, merge_deltas
from repro.lang.parser import parse_program
from repro.match.instantiation import Instantiation
from repro.wm.wme import WME

RULE_A = parse_program("(p ra (c ^a <x>) --> (halt))").rules[0]
RULE_B = parse_program("(p rb (c ^a <x>) --> (halt))").rules[0]


def delta_for(rule, ts=1, **effects):
    w = WME("c", {"a": 0}, ts)
    inst = Instantiation(rule, (w,), {"x": 0})
    d = InstantiationDelta(inst=inst)
    for key, value in effects.items():
        setattr(d, key, value)
    return d


W = WME("t", {"v": 1}, 100)


class TestBasicMerging:
    def test_empty(self):
        out = merge_deltas([])
        assert out.removes == [] and out.makes == []
        assert not out.halt

    def test_makes_concatenate(self):
        d1 = delta_for(RULE_A, 1, makes=[("x", {"a": 1})])
        d2 = delta_for(RULE_B, 2, makes=[("y", {"b": 2})])
        out = merge_deltas([d1, d2])
        assert out.makes == [("x", {"a": 1}), ("y", {"b": 2})]

    def test_writes_in_firing_order(self):
        d1 = delta_for(RULE_A, 1, writes=["first"])
        d2 = delta_for(RULE_B, 2, writes=["second"])
        assert merge_deltas([d1, d2]).writes == ["first", "second"]

    def test_halt_propagates(self):
        d = delta_for(RULE_A, 1)
        d.halt = True
        assert merge_deltas([d]).halt

    def test_modify_becomes_remove_plus_make(self):
        d = delta_for(RULE_A, 1, modifies=[(W, {"v": 2})])
        out = merge_deltas([d])
        assert out.removes == [W]
        assert out.makes == [("t", {"v": 2})]

    def test_double_remove_is_idempotent(self):
        d1 = delta_for(RULE_A, 1, removes=[W])
        d2 = delta_for(RULE_B, 2, removes=[W])
        out = merge_deltas([d1, d2])
        assert out.removes == [W]
        assert out.conflicts_resolved == 0

    def test_identical_modifies_compatible(self):
        d1 = delta_for(RULE_A, 1, modifies=[(W, {"v": 2})])
        d2 = delta_for(RULE_B, 2, modifies=[(W, {"v": 2})])
        out = merge_deltas([d1, d2])
        assert out.removes == [W]
        assert out.makes == [("t", {"v": 2})]
        assert out.conflicts_resolved == 0

    def test_disjoint_attribute_modifies_merge(self):
        w = WME("t", {"v": 1, "u": 1}, 100)
        d1 = delta_for(RULE_A, 1, modifies=[(w, {"v": 2})])
        d2 = delta_for(RULE_B, 2, modifies=[(w, {"u": 3})])
        out = merge_deltas([d1, d2])
        assert out.makes == [("t", {"v": 2, "u": 3})]


class TestDedupeMakes:
    def test_identical_makes_collapse(self):
        d1 = delta_for(RULE_A, 1, makes=[("x", {"a": 1})])
        d2 = delta_for(RULE_B, 2, makes=[("x", {"a": 1})])
        out = merge_deltas([d1, d2], dedupe_makes=True)
        assert out.makes == [("x", {"a": 1})]
        assert out.makes_deduped == 1

    def test_dedupe_off_keeps_duplicates(self):
        d1 = delta_for(RULE_A, 1, makes=[("x", {"a": 1})])
        d2 = delta_for(RULE_B, 2, makes=[("x", {"a": 1})])
        out = merge_deltas([d1, d2], dedupe_makes=False)
        assert len(out.makes) == 2

    def test_different_content_not_deduped(self):
        d1 = delta_for(RULE_A, 1, makes=[("x", {"a": 1})])
        d2 = delta_for(RULE_B, 2, makes=[("x", {"a": 2})])
        out = merge_deltas([d1, d2], dedupe_makes=True)
        assert len(out.makes) == 2


class TestInterferenceError:
    def test_conflicting_modifies_raise(self):
        d1 = delta_for(RULE_A, 1, modifies=[(W, {"v": 2})])
        d2 = delta_for(RULE_B, 2, modifies=[(W, {"v": 3})])
        with pytest.raises(InterferenceError, match="both modify"):
            merge_deltas([d1, d2], InterferencePolicy.ERROR)

    def test_modify_then_remove_raises(self):
        d1 = delta_for(RULE_A, 1, modifies=[(W, {"v": 2})])
        d2 = delta_for(RULE_B, 2, removes=[W])
        with pytest.raises(InterferenceError, match="modified by rule"):
            merge_deltas([d1, d2], InterferencePolicy.ERROR)

    def test_remove_then_modify_raises(self):
        d1 = delta_for(RULE_A, 1, removes=[W])
        d2 = delta_for(RULE_B, 2, modifies=[(W, {"v": 2})])
        with pytest.raises(InterferenceError, match="removed by rule"):
            merge_deltas([d1, d2], InterferencePolicy.ERROR)

    def test_error_names_both_rules(self):
        d1 = delta_for(RULE_A, 1, modifies=[(W, {"v": 2})])
        d2 = delta_for(RULE_B, 2, modifies=[(W, {"v": 3})])
        with pytest.raises(InterferenceError, match="'ra'.*'rb'"):
            merge_deltas([d1, d2])


class TestFirstPolicy:
    def test_first_modify_wins(self):
        d1 = delta_for(RULE_A, 1, modifies=[(W, {"v": 2})])
        d2 = delta_for(RULE_B, 2, modifies=[(W, {"v": 3})])
        out = merge_deltas([d1, d2], InterferencePolicy.FIRST)
        assert out.makes == [("t", {"v": 2})]
        assert out.conflicts_resolved == 1

    def test_first_keeps_nonclashing_novelties(self):
        w = WME("t", {"v": 1, "u": 1}, 100)
        d1 = delta_for(RULE_A, 1, modifies=[(w, {"v": 2})])
        d2 = delta_for(RULE_B, 2, modifies=[(w, {"v": 9, "u": 5})])
        out = merge_deltas([d1, d2], InterferencePolicy.FIRST)
        assert out.makes == [("t", {"v": 2, "u": 5})]

    def test_modify_beats_later_remove(self):
        d1 = delta_for(RULE_A, 1, modifies=[(W, {"v": 2})])
        d2 = delta_for(RULE_B, 2, removes=[W])
        out = merge_deltas([d1, d2], InterferencePolicy.FIRST)
        assert out.removes == [W]  # the modify's retraction
        assert out.makes == [("t", {"v": 2})]
        assert out.conflicts_resolved == 1

    def test_remove_beats_later_modify(self):
        d1 = delta_for(RULE_A, 1, removes=[W])
        d2 = delta_for(RULE_B, 2, modifies=[(W, {"v": 2})])
        out = merge_deltas([d1, d2], InterferencePolicy.FIRST)
        assert out.removes == [W]
        assert out.makes == []


class TestMergePolicy:
    def test_last_write_wins_per_attribute(self):
        d1 = delta_for(RULE_A, 1, modifies=[(W, {"v": 2})])
        d2 = delta_for(RULE_B, 2, modifies=[(W, {"v": 3})])
        out = merge_deltas([d1, d2], InterferencePolicy.MERGE)
        assert out.makes == [("t", {"v": 3})]
        assert out.conflicts_resolved == 1

    def test_remove_dominates_modify(self):
        d1 = delta_for(RULE_A, 1, modifies=[(W, {"v": 2})])
        d2 = delta_for(RULE_B, 2, removes=[W])
        out = merge_deltas([d1, d2], InterferencePolicy.MERGE)
        assert out.removes == [W]
        assert out.makes == []


class TestPolicyParsing:
    def test_of_accepts_strings(self):
        assert InterferencePolicy.of("error") is InterferencePolicy.ERROR
        assert InterferencePolicy.of("FIRST") is InterferencePolicy.FIRST
        assert InterferencePolicy.of(InterferencePolicy.MERGE) is InterferencePolicy.MERGE

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            InterferencePolicy.of("never")
