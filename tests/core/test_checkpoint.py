"""Engine checkpoint/resume: byte-identical continuation of a run."""

import json

import pytest

from repro.core import EngineConfig, ParulelEngine
from repro.core.engine import CHECKPOINT_VERSION
from repro.errors import CycleLimitExceeded, ExecutionError, WorkingMemoryError
from repro.lang.parser import parse_program

COUNTER = """
(literalize count value)
(literalize audit value)
(p bump
    (count ^value {<v> < 10})
    -->
    (modify 1 ^value (compute <v> + 1))
    (make audit ^value <v>))
"""

META = """
(literalize job id size)
(literalize done id)
(p finish (job ^id <i> ^size <s>) --> (remove 1) (make done ^id <i>))
(mp largest-first
    (instantiation ^rule finish ^id <a> ^s <s1>)
    (instantiation ^rule finish ^id {<b> <> <a>} ^s < <s1>)
    -->
    (redact <b>))
"""


def wm_bytes(engine):
    return [repr(w) for w in engine.wm.snapshot()]


def fresh(src=COUNTER, **facts_kw):
    engine = ParulelEngine(parse_program(src))
    return engine


class TestCheckpointDict:
    def test_round_trips_through_json(self):
        e = fresh()
        e.make("count", value=0)
        e.step()
        state = e.checkpoint()
        assert state == json.loads(json.dumps(state))
        assert state["version"] == CHECKPOINT_VERSION
        assert state["cycle"] == 1

    def test_captures_wm_timestamps_exactly(self):
        e = fresh()
        e.make("count", value=0)
        for _ in range(2):
            e.step()
        state = e.checkpoint()
        stored = {
            (c, tuple(sorted(a.items())), t)
            for c, a, t in state["wm"]["records"]
        }
        live = {
            (w.class_name, tuple(sorted(w.attributes.items())), w.timestamp)
            for w in e.wm.snapshot()
        }
        assert stored == live

    def test_delta_log_matches_cycles(self):
        e = fresh()
        e.make("count", value=0)
        for _ in range(3):
            e.step()
        state = e.checkpoint()
        assert len(state["delta_log"]) == 3
        # Every cycle: one remove (the modify) and two makes.
        for removed, made in state["delta_log"]:
            assert len(removed) == 1
            assert len(made) == 2


class TestResume:
    def test_resumed_run_is_byte_identical(self):
        ref = fresh()
        ref.make("count", value=0)
        ref_result = ref.run()

        e = fresh()
        e.make("count", value=0)
        for _ in range(4):
            e.step()
        state = json.loads(json.dumps(e.checkpoint()))
        del e

        resumed = ParulelEngine.restore(parse_program(COUNTER), state)
        result = resumed.run()
        assert resumed.cycle == ref.cycle
        assert result.cycles == ref_result.cycles - 4
        assert wm_bytes(resumed) == wm_bytes(ref)
        assert resumed.output == ref.output
        assert resumed.fired == ref.fired
        assert len(resumed.delta_log) == len(ref.delta_log)

    def test_refraction_survives_restore(self):
        # A restored engine must not re-fire instantiations the original
        # already fired: at quiescence, restore + run = zero cycles.
        e = fresh()
        e.make("count", value=0)
        e.run()
        state = e.checkpoint()
        resumed = ParulelEngine.restore(parse_program(COUNTER), state)
        assert resumed.run().cycles == 0

    def test_resume_with_meta_rules(self):
        prog = parse_program(META)
        ref = ParulelEngine(prog)
        for i, size in enumerate([3, 9, 5, 7]):
            ref.make("job", id=f"j{i}", size=size)
        ref_result = ref.run()

        e = ParulelEngine(prog)
        for i, size in enumerate([3, 9, 5, 7]):
            e.make("job", id=f"j{i}", size=size)
        e.step()
        e.step()
        state = json.loads(json.dumps(e.checkpoint()))
        resumed = ParulelEngine.restore(prog, state)
        resumed.run()
        assert resumed.cycle == ref.cycle
        assert wm_bytes(resumed) == wm_bytes(ref)
        assert ref_result.cycles == 4  # meta forces one firing per cycle

    def test_halted_flag_restored(self):
        src = """
        (literalize tick n)
        (p stop (tick ^n 1) --> (halt))
        """
        e = ParulelEngine(parse_program(src))
        e.make("tick", n=1)
        e.run()
        assert e.halted
        resumed = ParulelEngine.restore(parse_program(src), e.checkpoint())
        assert resumed.halted
        assert resumed.step() is None

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        e = fresh()
        e.make("count", value=0)
        e.step()
        e.checkpoint(path)
        resumed = ParulelEngine.restore(parse_program(COUNTER), path)
        resumed.run()
        ref = fresh()
        ref.make("count", value=0)
        ref.run()
        assert wm_bytes(resumed) == wm_bytes(ref)

    def test_version_mismatch_rejected(self):
        e = fresh()
        state = e.checkpoint()
        state["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ExecutionError, match="version"):
            ParulelEngine.restore(parse_program(COUNTER), state)

    def test_restore_accepts_config(self):
        e = fresh()
        e.make("count", value=0)
        e.step()
        resumed = ParulelEngine.restore(
            parse_program(COUNTER),
            e.checkpoint(),
            EngineConfig(matcher="treat"),
        )
        assert resumed.matcher.name == "treat"
        resumed.run()
        ref = fresh()
        ref.make("count", value=0)
        ref.run()
        assert wm_bytes(resumed) == wm_bytes(ref)


class TestCycleLimitPartialState:
    def test_partial_state_attached(self):
        src = """
        (literalize tick n)
        (p forever (tick ^n <n>) --> (modify 1 ^n (compute <n> + 1)))
        """
        e = ParulelEngine(parse_program(src))
        e.make("tick", n=0)
        with pytest.raises(CycleLimitExceeded) as excinfo:
            e.run(max_cycles=5)
        exc = excinfo.value
        assert exc.cycles_completed == 5
        assert exc.firings == 5
        assert exc.last_report is not None
        assert exc.last_report.cycle == 5
        assert exc.partial is not None
        assert exc.partial.reason == "cycle-limit"
        assert exc.partial.cycles == 5
        assert len(exc.partial.reports) == 5
        # The work is preserved: the engine can checkpoint and continue.
        assert e.wm.find("tick", n=5)
        state = e.checkpoint()
        resumed = ParulelEngine.restore(parse_program(src), state)
        with pytest.raises(CycleLimitExceeded) as again:
            resumed.run(max_cycles=3)
        assert again.value.cycles_completed == 3
        assert resumed.wm.find("tick", n=8)


class TestWorkingMemoryRecords:
    def test_load_records_requires_empty_store(self):
        e = fresh()
        e.make("count", value=0)
        records, next_ts = e.wm.dump_records()
        with pytest.raises(WorkingMemoryError):
            e.wm.load_records(records, next_ts)

    def test_bad_next_timestamp_rejected(self):
        e = fresh()
        e.make("count", value=0)
        records, _ = e.wm.dump_records()
        fresh_engine = fresh()
        with pytest.raises(WorkingMemoryError):
            fresh_engine.wm.load_records(records, next_timestamp=1)
