"""Error-path and edge-case tests for the execution core."""

import pytest

from repro.errors import CycleLimitExceeded, ExecutionError
from repro.core import EngineConfig, ParulelEngine
from repro.core.redaction import MetaLevel
from repro.lang.parser import parse_program
from repro.parallel import DistributedMachine, SimMachine


class TestMetaLevelLimits:
    def test_meta_cycle_limit(self):
        # A meta program that keeps matching fresh pairs forever cannot be
        # built easily (reifications are fixed per phase), so exercise the
        # limit with max_meta_cycles=0: any meta activity then overflows.
        src = """
        (literalize req name)
        (p grant (req ^name <n>) --> (remove 1))
        (mp noisy (instantiation ^rule grant ^id <i>) --> (write seen <i>))
        """
        engine = ParulelEngine(
            parse_program(src), EngineConfig(max_meta_cycles=0)
        )
        engine.make("req", name="a")
        with pytest.raises(ExecutionError, match="redaction\\s+cycles"):
            engine.run()

    def test_meta_rules_with_writes_only_terminate(self):
        # Refraction alone must end the phase when nothing is redacted.
        src = """
        (literalize req name)
        (p grant (req ^name <n>) --> (remove 1))
        (mp noisy (instantiation ^rule grant ^id <i>) --> (write meta <i>))
        """
        engine = ParulelEngine(parse_program(src))
        engine.make("req", name="a")
        engine.make("req", name="b")
        result = engine.run()
        assert result.cycles == 1
        assert sorted(result.output) == ["meta 1", "meta 2"]

    def test_meta_halt_stops_engine(self):
        src = """
        (literalize req name)
        (p grant (req ^name <n>) --> (remove 1))
        (mp panic (instantiation ^rule grant ^id <i> ^n stop) --> (halt) (redact <i>))
        """
        engine = ParulelEngine(parse_program(src))
        engine.make("req", name="ok")
        engine.make("req", name="stop")
        result = engine.run()
        assert result.reason == "halt"
        # The 'stop' request was redacted, 'ok' fired in the same cycle.
        names = sorted(w.get("name") for w in engine.wm.by_class("req"))
        assert names == ["stop"]


class TestEngineEdges:
    def test_redaction_quiescence_reported(self):
        src = """
        (literalize req name)
        (p grant (req ^name <n>) --> (remove 1))
        (mp veto (instantiation ^rule grant ^id <i>) --> (redact <i>))
        """
        engine = ParulelEngine(parse_program(src))
        engine.make("req", name="a")
        result = engine.run()
        assert result.reason == "redaction-quiescence"
        assert engine.wm.count_class("req") == 1  # nothing fired
        # Further steps are no-ops.
        assert engine.step() is None

    def test_run_after_halt_is_noop(self):
        src = """
        (literalize f n)
        (p stop (f ^n <n>) --> (halt))
        """
        engine = ParulelEngine(parse_program(src))
        engine.make("f", n=1)
        first = engine.run()
        assert first.reason == "halt"
        second = engine.run()
        assert second.cycles == 0

    def test_unknown_matcher_rejected(self):
        from repro.match.interface import create_matcher
        from repro.wm.memory import WorkingMemory

        with pytest.raises(ValueError, match="unknown match engine"):
            create_matcher("magic", [], WorkingMemory())

    def test_bad_interference_policy_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(interference="panic")


class TestSubstrateLimits:
    LOOP = """
    (literalize tick n)
    (p forever (tick ^n <n>) --> (modify 1 ^n (compute <n> + 1)))
    """

    def test_simmachine_cycle_limit(self):
        sm = SimMachine(parse_program(self.LOOP), 2)
        sm.make("tick", n=0)
        with pytest.raises(CycleLimitExceeded):
            sm.run(max_cycles=5)

    def test_distributed_cycle_limit(self):
        dm = DistributedMachine(parse_program(self.LOOP), 2)
        dm.make("tick", n=0)
        with pytest.raises(CycleLimitExceeded):
            dm.run(max_cycles=5)

    def test_distributed_halt(self):
        src = """
        (literalize f n)
        (p stop (f ^n <n>) --> (write stopping) (halt))
        """
        dm = DistributedMachine(parse_program(src), 3)
        dm.make("f", n=1)
        res = dm.run()
        assert res.reason == "halt"
        assert res.output == ["stopping"]
        assert dm.replicas_consistent()

    def test_distributed_redaction_quiescence(self):
        src = """
        (literalize req name)
        (p grant (req ^name <n>) --> (remove 1))
        (mp veto (instantiation ^rule grant ^id <i>) --> (redact <i>))
        """
        dm = DistributedMachine(parse_program(src), 2)
        dm.make("req", name="a")
        res = dm.run()
        assert res.reason == "redaction-quiescence"
        assert dm.replicas_consistent()
