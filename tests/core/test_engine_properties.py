"""Property-based tests of whole-engine semantics.

The key invariants, checked over randomized workloads:

- **Confluence**: on monotone guarded-derivation programs (transitive
  closure over arbitrary graphs), PARULEL's set-oriented firing and OPS5's
  sequential firing reach the same final working memory;
- **Simulation transparency**: SimMachine at any site count computes
  exactly what a single ParulelEngine computes;
- **Copy-and-constrain**: any disjoint covering partition of the domain
  preserves the derived set;
- **Determinism**: identical inputs give identical runs.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.baseline import OPS5Engine
from repro.core import EngineConfig, ParulelEngine
from repro.parallel import SimMachine, copy_and_constrain_program
from repro.programs.tc import tc_program

TC = tc_program()

edge_lists = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)),
    min_size=1,
    max_size=16,
    unique=True,
)


def run_parulel(edges, **cfg):
    engine = ParulelEngine(TC, EngineConfig(**cfg))
    for a, b in edges:
        engine.make("edge", src=f"n{a}", dst=f"n{b}")
    engine.run(max_cycles=500)
    return frozenset(
        (w.get("src"), w.get("dst")) for w in engine.wm.by_class("path")
    )


def run_ops5(edges, strategy="lex"):
    engine = OPS5Engine(TC, strategy=strategy)
    for a, b in edges:
        engine.make("edge", src=f"n{a}", dst=f"n{b}")
    engine.run(max_cycles=50_000)
    return frozenset(
        (w.get("src"), w.get("dst")) for w in engine.wm.by_class("path")
    )


class TestConfluence:
    @settings(max_examples=60, deadline=None)
    @given(edges=edge_lists)
    def test_parulel_equals_ops5(self, edges):
        assert run_parulel(edges) == run_ops5(edges)

    @settings(max_examples=30, deadline=None)
    @given(edges=edge_lists, strategy=st.sampled_from(["lex", "mea"]))
    def test_ops5_strategy_irrelevant_for_confluent_program(self, edges, strategy):
        assert run_ops5(edges, strategy) == run_ops5(edges, "lex")

    @settings(max_examples=30, deadline=None)
    @given(edges=edge_lists, matcher=st.sampled_from(["rete", "treat", "naive"]))
    def test_matcher_choice_irrelevant(self, edges, matcher):
        assert run_parulel(edges, matcher=matcher) == run_parulel(edges)


class TestSimulationTransparency:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(edges=edge_lists, n_sites=st.integers(1, 6))
    def test_simmachine_matches_engine(self, edges, n_sites):
        machine = SimMachine(TC, n_sites)
        for a, b in edges:
            machine.make("edge", src=f"n{a}", dst=f"n{b}")
        machine.run(max_cycles=500)
        simulated = frozenset(
            (w.get("src"), w.get("dst")) for w in machine.wm.by_class("path")
        )
        assert simulated == run_parulel(edges)


class TestCopyAndConstrain:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        edges=edge_lists,
        cut=st.integers(0, 8),
    )
    def test_any_covering_partition_preserves_semantics(self, edges, cut):
        domain = [f"n{i}" for i in range(8)]
        partition = [tuple(domain[:cut]), tuple(domain[cut:])]
        partition = [p for p in partition if p]  # drop an empty side
        program = copy_and_constrain_program(TC, "tc-extend", 1, "src", partition)
        engine = ParulelEngine(program)
        for a, b in edges:
            engine.make("edge", src=f"n{a}", dst=f"n{b}")
        engine.run(max_cycles=500)
        derived = frozenset(
            (w.get("src"), w.get("dst")) for w in engine.wm.by_class("path")
        )
        assert derived == run_parulel(edges)


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(edges=edge_lists)
    def test_identical_runs(self, edges):
        def trace(edges):
            engine = ParulelEngine(TC)
            for a, b in edges:
                engine.make("edge", src=f"n{a}", dst=f"n{b}")
            result = engine.run(max_cycles=500)
            return (
                result.cycles,
                result.firings,
                tuple(sorted(str(w) for w in engine.wm)),
            )

        assert trace(edges) == trace(edges)

    @settings(max_examples=25, deadline=None)
    @given(edges=edge_lists)
    def test_dedupe_flag_does_not_change_final_content(self, edges):
        # tc's negation guard prevents cross-cycle duplicates; within-cycle
        # duplicates either collapse (dedupe on) or coexist as same-content
        # WMEs (off). The *set* of derived contents must agree.
        assert run_parulel(edges, dedupe_makes=True) == run_parulel(
            edges, dedupe_makes=False
        )
