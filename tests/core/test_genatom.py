"""Tests for ``(genatom)`` — unique symbol generation on the RHS."""

import pytest

from repro.errors import ExecutionError
from repro.core import ParulelEngine
from repro.core.actions import ActionEvaluator, evaluate_expr
from repro.lang.ast import GenatomExpr
from repro.lang.builder import ProgramBuilder, genatom, v
from repro.lang.parser import parse_program


class TestExpression:
    def test_requires_gensym_source(self):
        with pytest.raises(ExecutionError, match="genatom"):
            evaluate_expr(GenatomExpr(), {})

    def test_evaluator_counts_per_prefix(self):
        ev = ActionEvaluator()
        assert ev.gensym("g") == "g1"
        assert ev.gensym("g") == "g2"
        assert ev.gensym("tkt") == "tkt1"
        assert ev.gensym("g") == "g3"

    def test_parse_forms(self):
        prog = parse_program(
            "(p r (c ^a <x>) --> (make d ^id (genatom)) (make e ^id (genatom tkt)))"
        )
        a0 = prog.rules[0].actions[0].assignments[0][1]
        a1 = prog.rules[0].actions[1].assignments[0][1]
        assert a0 == GenatomExpr()
        assert a1 == GenatomExpr(prefix="tkt")

    def test_builder_form(self):
        assert genatom() == GenatomExpr()
        assert genatom("job") == GenatomExpr(prefix="job")


class TestInEngine:
    SRC = """
    (literalize req kind)
    (literalize ticket id kind)
    (p issue (req ^kind <k>) --> (make ticket ^id (genatom tkt) ^kind <k>) (remove 1))
    """

    def test_distinct_symbols_within_one_cycle(self):
        engine = ParulelEngine(parse_program(self.SRC))
        for kind in ("a", "b", "c"):
            engine.make("req", kind=kind)
        result = engine.run()
        assert result.cycles == 1  # all three issued in parallel
        ids = sorted(w.get("id") for w in engine.wm.by_class("ticket"))
        assert ids == ["tkt1", "tkt2", "tkt3"]

    def test_deterministic_across_runs(self):
        def run():
            engine = ParulelEngine(parse_program(self.SRC))
            for kind in ("a", "b"):
                engine.make("req", kind=kind)
            engine.run()
            return sorted(
                (w.get("id"), w.get("kind")) for w in engine.wm.by_class("ticket")
            )

        assert run() == run()

    def test_genatom_in_bind(self):
        src = """
        (literalize req kind)
        (literalize pair first second)
        (p two (req ^kind <k>)
         --> (bind <id> (genatom s)) (make pair ^first <id> ^second <id>)
             (remove 1))
        """
        engine = ParulelEngine(parse_program(src))
        engine.make("req", kind="x")
        engine.run()
        (pair,) = engine.wm.by_class("pair")
        # bind evaluates genatom once; both uses see the same symbol.
        assert pair.get("first") == pair.get("second") == "s1"

    def test_make_dedupe_not_triggered_by_genatom(self):
        # Each firing gets a distinct symbol, so identical-looking makes
        # never collapse spuriously.
        engine = ParulelEngine(parse_program(self.SRC))
        for i in range(4):
            engine.make("req", kind="same")
        engine.run()
        assert engine.wm.count_class("ticket") == 4
