"""Property-based tests of the meta level (redaction semantics).

The central property: a "prefer minimum attribute" meta-rule must leave
exactly the minimum-valued candidates as survivors, for any candidate
multiset — i.e. redaction implements the declarative aggregate the rules
claim, across the fixpoint machinery, reification, and refraction.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import ParulelEngine
from repro.lang.builder import ProgramBuilder, conj, gt, ne, v
from repro.lang.parser import parse_program


def min_selection_program():
    """Grant the (one) request with the minimal rank; one grant per cycle."""
    pb = ProgramBuilder()
    pb.literalize("req", "name", "rank")
    pb.literalize("grant", "name")
    (
        pb.rule("grant")
        .ce("req", name=v("n"), rank=v("r"))
        .make("grant", name=v("n"))
        .remove(1)
    )
    (
        pb.meta_rule("prefer-min-rank")
        .ce("instantiation", rule="grant", id=v("i"), r=v("r1"))
        .ce(
            "instantiation",
            rule="grant",
            id=conj(v("j"), ne(v("i"))),
            r=gt(v("r1")),
        )
        .redact(v("j"))
    )
    (
        pb.meta_rule("tie-break-by-name")
        .ce("instantiation", rule="grant", id=v("i"), r=v("r1"), n=v("n1"))
        .ce(
            "instantiation",
            rule="grant",
            id=conj(v("j"), ne(v("i"))),
            r=v("r1"),
            n=gt(v("n1")),
        )
        .redact(v("j"))
    )
    return pb.build()


PROGRAM = min_selection_program()

rank_lists = st.lists(st.integers(0, 9), min_size=1, max_size=10)


class TestMinSelectionProperty:
    @settings(max_examples=80, deadline=None)
    @given(ranks=rank_lists)
    def test_grants_issued_in_rank_order(self, ranks):
        engine = ParulelEngine(PROGRAM)
        for i, rank in enumerate(ranks):
            engine.make("req", name=f"q{i:02d}", rank=rank)
        result = engine.run(max_cycles=len(ranks) * 4 + 4)

        # One grant per cycle, and grant order is sorted by (rank, name).
        assert result.cycles == len(ranks)
        assert all(r.fired == 1 for r in result.reports)
        expected_order = [
            f"q{i:02d}"
            for i, _rank in sorted(enumerate(ranks), key=lambda p: (p[1], p[0]))
        ]
        # grants are made cycle by cycle; WM timestamps give the order.
        granted = [
            w.get("name")
            for w in sorted(engine.wm.by_class("grant"), key=lambda w: w.timestamp)
        ]
        assert granted == expected_order

    @settings(max_examples=50, deadline=None)
    @given(ranks=rank_lists)
    def test_redaction_counts_add_up(self, ranks):
        engine = ParulelEngine(PROGRAM)
        for i, rank in enumerate(ranks):
            engine.make("req", name=f"q{i:02d}", rank=rank)
        result = engine.run(max_cycles=len(ranks) * 4 + 4)
        for report in result.reports:
            assert report.fired + report.redaction.redacted == report.candidates

    @settings(max_examples=50, deadline=None)
    @given(ranks=rank_lists, matcher=st.sampled_from(["rete", "treat", "naive"]))
    def test_meta_level_matcher_independent(self, ranks, matcher):
        from repro.core import EngineConfig

        def granted_with(meta_matcher):
            engine = ParulelEngine(
                PROGRAM, EngineConfig(meta_matcher=meta_matcher)
            )
            for i, rank in enumerate(ranks):
                engine.make("req", name=f"q{i:02d}", rank=rank)
            engine.run(max_cycles=len(ranks) * 4 + 4)
            return [
                w.get("name")
                for w in sorted(
                    engine.wm.by_class("grant"), key=lambda w: w.timestamp
                )
            ]

        assert granted_with(matcher) == granted_with("rete")


class TestChainedRedactionProperty:
    """kill-above-threshold: meta-rules reading ordinary WM facts."""

    SRC = """
    (literalize req name cost)
    (literalize budget limit)
    (p grant (req ^name <n> ^cost <c>) --> (remove 1))
    (mp too-expensive
        (instantiation ^rule grant ^id <i> ^c <cost>)
        (budget ^limit < <cost>)
        -->
        (redact <i>))
    """

    @settings(max_examples=60, deadline=None)
    @given(
        costs=st.lists(st.integers(0, 20), min_size=1, max_size=8),
        limit=st.integers(0, 20),
    )
    def test_only_affordable_requests_granted(self, costs, limit):
        engine = ParulelEngine(parse_program(self.SRC))
        for i, cost in enumerate(costs):
            engine.make("req", name=f"q{i}", cost=cost)
        engine.make("budget", limit=limit)
        engine.run(max_cycles=50)
        remaining = sorted(w.get("cost") for w in engine.wm.by_class("req"))
        expected_remaining = sorted(c for c in costs if c > limit)
        assert remaining == expected_remaining
