"""Tests for derivation (provenance) tracking."""

import pytest

from repro.errors import ExecutionError
from repro.core import EngineConfig, ParulelEngine
from repro.lang.parser import parse_program

TC = """
(literalize edge src dst)
(literalize path src dst)
(p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
 --> (make path ^src <a> ^dst <b>))
(p tc-extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)
 -(path ^src <a> ^dst <c>) --> (make path ^src <a> ^dst <c>))
"""

COUNTER = """
(literalize count value)
(p bump (count ^value {<v> < 3}) --> (modify 1 ^value (compute <v> + 1)))
"""


def tc_engine():
    e = ParulelEngine(parse_program(TC), EngineConfig(track_provenance=True))
    for a, b in [("a", "b"), ("b", "c"), ("c", "d")]:
        e.make("edge", src=a, dst=b)
    e.run()
    return e


class TestRecording:
    def test_initial_wmes_tracked(self):
        e = tc_engine()
        edge = e.wm.find("edge", src="a")[0]
        record = e.provenance.derivation(edge)
        assert record.kind == "initial"
        assert record.cycle == 0
        assert record.parents == ()

    def test_make_tracked_with_rule_and_cycle(self):
        e = tc_engine()
        p_ab = e.wm.find("path", src="a", dst="b")[0]
        record = e.provenance.derivation(p_ab)
        assert record.kind == "make"
        assert record.rule == "tc-init"
        assert record.cycle == 1
        assert len(record.parents) == 1  # the edge (negated CE excluded)

    def test_modify_tracked_with_replaced_chain(self):
        e = ParulelEngine(
            parse_program(COUNTER), EngineConfig(track_provenance=True)
        )
        e.make("count", value=0)
        e.run()
        final = e.wm.find("count", value=3)[0]
        record = e.provenance.derivation(final)
        assert record.kind == "modify"
        assert record.rule == "bump"
        assert record.replaced is not None
        # Chain of three modifies back to the initial assertion.
        chain = list(e.provenance.lineage(final))
        kinds = [d.kind for d in chain]
        assert kinds.count("modify") == 3
        assert kinds[-1] == "initial"

    def test_retraction_recorded(self):
        e = ParulelEngine(
            parse_program(COUNTER), EngineConfig(track_provenance=True)
        )
        e.make("count", value=2)
        e.run()
        # The original WME was displaced by the modify in cycle 1.
        retired = [w for w in e.provenance._records if e.provenance.is_retired(w)]
        assert retired
        assert e.provenance.retired_in_cycle(retired[0]) == 1

    def test_derived_by_rule(self):
        e = tc_engine()
        inits = e.provenance.derived_by_rule("tc-init")
        extends = e.provenance.derived_by_rule("tc-extend")
        assert len(inits) == 3
        assert len(extends) == 3  # a->c, b->d, a->d


class TestExplain:
    def test_tree_reaches_initial_facts(self):
        e = tc_engine()
        target = e.wm.find("path", src="a", dst="d")[0]
        text = e.explain(target)
        assert "tc-extend" in text
        assert "tc-init" in text
        assert text.count("asserted initially") == 3  # edges ab, bc, cd

    def test_depth_limit_truncates(self):
        e = tc_engine()
        target = e.wm.find("path", src="a", dst="d")[0]
        text = e.explain(target, max_depth=1)
        assert "..." in text

    def test_untracked_wme_labeled(self):
        e = tc_engine()
        from repro.wm.wme import WME

        stranger = WME("edge", {"src": "x", "dst": "y"}, 999)
        assert "untracked" in e.provenance.explain(stranger)

    def test_explain_requires_flag(self):
        e = ParulelEngine(parse_program(TC))
        e.make("edge", src="a", dst="b")
        e.run()
        wme = e.wm.by_class("path")[0]
        with pytest.raises(ExecutionError, match="track_provenance"):
            e.explain(wme)


class TestDedupeAttribution:
    def test_first_deriver_wins_attribution(self):
        # Two rules make the identical WME in one cycle; dedupe keeps one
        # assertion, attributed to the first firing in conflict-set order.
        src = """
        (literalize seed n)
        (literalize out tag)
        (p maker-one (seed ^n <n>) --> (make out ^tag done))
        (p maker-two (seed ^n <n>) --> (make out ^tag done))
        """
        e = ParulelEngine(parse_program(src), EngineConfig(track_provenance=True))
        e.make("seed", n=1)
        e.run()
        (out,) = e.wm.by_class("out")
        record = e.provenance.derivation(out)
        assert record.rule in ("maker-one", "maker-two")
        assert record.kind == "make"
