"""Unit tests for the meta level: reification and redaction fixpoints."""

import pytest

from repro.errors import ExecutionError
from repro.core import EngineConfig, ParulelEngine
from repro.core.redaction import reify_instantiation
from repro.lang.parser import parse_program
from repro.match.instantiation import Instantiation
from repro.wm.wme import WME


class TestReification:
    def test_builtin_attributes(self):
        rule = parse_program("(p r (c ^a <x>) (d ^b <y>) --> (halt))").rules[0]
        inst = Instantiation(
            rule,
            (WME("c", {"a": 1}, 3), WME("d", {"b": 2}, 8)),
            {"x": 1, "y": 2},
        )
        attrs = reify_instantiation(inst, 42)
        assert attrs["rule"] == "r"
        assert attrs["id"] == 42
        assert attrs["salience"] == 0
        assert attrs["specificity"] == 2
        assert attrs["recency"] == 8
        assert attrs["x"] == 1
        assert attrs["y"] == 2

    def test_variable_colliding_with_builtin_rejected(self):
        rule = parse_program("(p r (c ^a <rule>) --> (halt))").rules[0]
        inst = Instantiation(rule, (WME("c", {"a": 1}, 1),), {"rule": 1})
        with pytest.raises(ExecutionError, match="collides"):
            reify_instantiation(inst, 1)


def run_engine(src, facts, **config):
    engine = ParulelEngine(parse_program(src), EngineConfig(**config))
    for cls, attrs in facts:
        engine.make(cls, attrs)
    result = engine.run(max_cycles=100)
    return engine, result


class TestRedactionSemantics:
    PICK_ONE = """
    (literalize req name)
    (literalize grant name)
    (p grant (req ^name <n>) --> (make grant ^name <n>) (remove 1))
    (mp keep-first
        (instantiation ^rule grant ^id <i> ^n <a>)
        (instantiation ^rule grant ^id {<j> <> <i>} ^n > <a>)
        -->
        (redact <j>))
    """

    def test_only_minimum_survives_each_cycle(self):
        engine, result = run_engine(
            self.PICK_ONE,
            [("req", {"name": f"r{i}"}) for i in range(4)],
        )
        # One grant per cycle, smallest name first.
        assert result.cycles == 4
        assert [r.fired for r in result.reports] == [1, 1, 1, 1]
        assert [r.redaction.redacted for r in result.reports] == [3, 2, 1, 0]
        granted = sorted(w.get("name") for w in engine.wm.by_class("grant"))
        assert granted == ["r0", "r1", "r2", "r3"]

    def test_redacted_instantiations_not_refracted(self):
        # The same instantiation (same WMEs) must be allowed to fire in a
        # later cycle after being redacted earlier — deferral, not deletion.
        engine, result = run_engine(
            self.PICK_ONE, [("req", {"name": "a"}), ("req", {"name": "b"})]
        )
        assert result.cycles == 2
        assert engine.wm.count_class("grant") == 2

    def test_symmetric_redaction_empties_pair(self):
        src = """
        (literalize req name)
        (p grant (req ^name <n>) --> (remove 1))
        (mp kill-both
            (instantiation ^rule grant ^id <i> ^n <a>)
            (instantiation ^rule grant ^id {<j> <> <i>} ^n <> <a>)
            -->
            (redact <j>))
        """
        engine, result = run_engine(
            src, [("req", {"name": "a"}), ("req", {"name": "b"})]
        )
        # Both redact each other -> empty firing set -> redaction quiescence.
        assert result.reason == "redaction-quiescence"
        assert engine.wm.count_class("req") == 2

    def test_meta_writes_reach_output(self):
        src = """
        (literalize req name)
        (p grant (req ^name <n>) --> (remove 1))
        (mp narrate
            (instantiation ^rule grant ^id <i> ^n <a>)
            (instantiation ^rule grant ^id {<j> <> <i>} ^n > <a>)
            -->
            (write redacting <j>)
            (redact <j>))
        """
        engine, result = run_engine(
            src, [("req", {"name": "a"}), ("req", {"name": "b"})]
        )
        assert any(line.startswith("redacting") for line in result.output)

    def test_redact_of_non_integer_raises(self):
        src = """
        (literalize req name)
        (p grant (req ^name <n>) --> (remove 1))
        (mp bad (instantiation ^rule grant ^n <a>) --> (redact <a>))
        """
        with pytest.raises(ExecutionError, match="integer"):
            run_engine(src, [("req", {"name": "a"})])

    def test_redact_unknown_id_raises(self):
        src = """
        (literalize req name)
        (p grant (req ^name <n>) --> (remove 1))
        (mp bad (instantiation ^rule grant ^id <i>) --> (redact 999))
        """
        with pytest.raises(ExecutionError, match="no instantiation"):
            run_engine(src, [("req", {"name": "a"})])

    def test_reifications_cleaned_up_after_cycle(self):
        engine, _result = run_engine(
            self.PICK_ONE, [("req", {"name": "a"}), ("req", {"name": "b"})]
        )
        assert engine.wm.count_class("instantiation") == 0

    def test_meta_rule_reading_object_wm(self):
        # Meta rules may join ordinary WMEs: redact grants above a quota.
        src = """
        (literalize req name cost)
        (literalize budget limit)
        (p grant (req ^name <n> ^cost <c>) --> (remove 1))
        (mp too-expensive
            (instantiation ^rule grant ^id <i> ^c <cost>)
            (budget ^limit < <cost>)
            -->
            (redact <i>))
        """
        engine, result = run_engine(
            src,
            [
                ("req", {"name": "cheap", "cost": 1}),
                ("req", {"name": "pricey", "cost": 10}),
                ("budget", {"limit": 5}),
            ],
        )
        names = sorted(w.get("name") for w in engine.wm.by_class("req"))
        assert names == ["pricey"]  # cheap got granted/removed, pricey vetoed

    def test_chained_redaction_fixpoint(self):
        # kill-successor redacts j where j = i+1, but only if i survives;
        # after redacting 2 (because of 1), 3 must survive (its redactor
        # is gone). Exercises the multi-cycle meta fixpoint.
        src = """
        (literalize req name rank)
        (p grant (req ^name <n> ^rank <r>) --> (remove 1))
        (mp kill-successor
            (instantiation ^rule grant ^id <i> ^r <a>)
            (instantiation ^rule grant ^id <j> ^r {<b> > <a>})
            -->
            (redact <j>))
        """
        engine, result = run_engine(
            src,
            [
                ("req", {"name": "x", "rank": 1}),
                ("req", {"name": "y", "rank": 2}),
                ("req", {"name": "z", "rank": 3}),
            ],
        )
        first = result.reports[0]
        assert first.fired == 1  # only rank 1 survives cycle 1
        assert first.redaction.redacted == 2


class TestNoMetaRules:
    def test_everything_survives(self):
        src = """
        (literalize req name)
        (p grant (req ^name <n>) --> (remove 1))
        """
        engine, result = run_engine(
            src, [("req", {"name": f"r{i}"}) for i in range(5)]
        )
        assert result.cycles == 1
        assert result.reports[0].fired == 5
