"""The certified redaction fast path and the runtime race sanitizer.

Acceptance, from the PR: ``certified_commute=True`` must be byte-identical
to the plain engine — same cycles, firings, output and final working
memory (timestamps included) — while skipping a measurable number of
candidate reifications on tc and waltz; every statically-COMMUTES verdict
must survive the dynamic sanitizer; and a deliberately wrong
certification must be caught as :class:`CommuteViolationError`.
"""

import pytest

from repro.core import EngineConfig, ParulelEngine
from repro.errors import CommuteViolationError
from repro.lang import parse_program
from repro.obs import MetricsRegistry
from repro.obs.profile import REDACTION_SKIPPED, SANITIZER_REPLAYS
from repro.programs import REGISTRY


def _run(workload, metrics=None, **config):
    wl = REGISTRY[workload]()
    engine = ParulelEngine(wl.program, EngineConfig(**config), metrics=metrics)
    wl.setup(engine)
    result = engine.run(max_cycles=5000)
    return engine, result, wl


def _fingerprint(engine, result):
    return (
        result.cycles,
        result.firings,
        tuple(result.output),
        engine.wm.dump_records(),
    )


class TestByteIdentity:
    @pytest.mark.parametrize(
        "workload",
        ["tc", "waltz", "manners", "routing", "circuit", "sort", "monkey"],
    )
    def test_certified_commute_is_byte_identical(self, workload):
        base_engine, base_result, wl = _run(workload)
        metrics = MetricsRegistry()
        fast_engine, fast_result, _ = _run(
            workload,
            metrics=metrics,
            certified_commute=True,
            sanitize_races=True,
        )
        assert _fingerprint(fast_engine, fast_result) == _fingerprint(
            base_engine, base_result
        )
        assert wl.verify(fast_engine.wm)

    @pytest.mark.parametrize("workload,min_skips", [("tc", 100), ("waltz", 50)])
    def test_measurably_fewer_redaction_checks(self, workload, min_skips):
        metrics = MetricsRegistry()
        _run(workload, metrics=metrics, certified_commute=True)
        skipped = metrics.counter_value(REDACTION_SKIPPED)
        assert skipped >= min_skips, (
            f"{workload}: expected ≥{min_skips} skipped reifications, "
            f"got {skipped}"
        )


class TestSanitizer:
    @pytest.mark.parametrize("workload", ["tc", "waltz", "manners", "sort"])
    def test_clean_run_with_sanitizer(self, workload):
        metrics = MetricsRegistry()
        engine, result, wl = _run(
            workload, metrics=metrics, sanitize_races=True
        )
        assert wl.verify(engine.wm)
        if result.firings > result.cycles:
            # At least one multi-firing cycle existed, so pairs replayed.
            assert metrics.counter_value(SANITIZER_REPLAYS) > 0

    def test_wrong_certification_raises(self):
        """Force a bogus COMMUTES claim onto a racing pair: the sanitizer
        must catch the divergence and name the rules."""
        src = """
        (literalize slot owner)
        (literalize req n)
        (p claim (slot ^owner nil) (req ^n <n>) --> (modify 1 ^owner <n>))
        """
        program = parse_program(src)
        engine = ParulelEngine(
            program, EngineConfig(sanitize_races=True, interference="merge")
        )
        engine.make("slot", owner="nil")
        engine.make("req", n=1)
        engine.make("req", n=2)
        # Sanity: without the bogus claim the divergence is tolerated
        # (detected as a plain non-commuting pair, not a violation).
        engine_ok = ParulelEngine(
            program, EngineConfig(sanitize_races=True, interference="merge")
        )
        engine_ok.make("slot", owner="nil")
        engine_ok.make("req", n=1)
        engine_ok.make("req", n=2)
        engine_ok.run(max_cycles=10)

        class _LyingIndex:
            def statically_commutes(self, a, b):
                return True

            def invisible(self, name):
                return False

        engine._commute_index = _LyingIndex()
        with pytest.raises(CommuteViolationError) as exc:
            engine.run(max_cycles=10)
        assert "claim" in str(exc.value)
        assert exc.value.rules == ("claim", "claim")
        assert exc.value.cycle >= 1

    def test_config_requires_dedupe_makes(self):
        with pytest.raises(ValueError, match="dedupe_makes"):
            EngineConfig(certified_commute=True, dedupe_makes=False)
