"""Unit tests for RHS evaluation (expressions, actions, host calls)."""

import pytest

from repro.errors import ExecutionError
from repro.core.actions import ActionEvaluator, evaluate_expr
from repro.lang.ast import ComputeExpr, ConstantExpr, VariableExpr
from repro.lang.parser import parse_program
from repro.match.instantiation import Instantiation
from repro.wm.wme import WME


def make_inst(src, wmes, env):
    rule = parse_program(src).rules[0] if "(p " in src else parse_program(src).meta_rules[0]
    return Instantiation(rule, wmes, env)


class TestEvaluateExpr:
    def test_constant(self):
        assert evaluate_expr(ConstantExpr(42), {}) == 42

    def test_variable(self):
        assert evaluate_expr(VariableExpr("x"), {"x": "val"}) == "val"

    def test_unbound_variable_raises(self):
        with pytest.raises(ExecutionError, match="unbound"):
            evaluate_expr(VariableExpr("x"), {})

    def test_compute_left_to_right_no_precedence(self):
        # 2 + 3 * 4 evaluates as (2+3)*4 = 20, OPS5 style.
        expr = ComputeExpr(
            (ConstantExpr(2), "+", ConstantExpr(3), "*", ConstantExpr(4))
        )
        assert evaluate_expr(expr, {}) == 20

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("+", 2, 3, 5),
            ("-", 2, 3, -1),
            ("*", 2, 3, 6),
            ("/", 6, 3, 2),
            ("/", 7, 2, 3.5),
            ("//", 7, 2, 3),
            ("mod", 7, 2, 1),
        ],
    )
    def test_operators(self, op, a, b, expected):
        expr = ComputeExpr((ConstantExpr(a), op, ConstantExpr(b)))
        result = evaluate_expr(expr, {})
        assert result == expected
        assert type(result) is type(expected)

    def test_exact_int_division_stays_int(self):
        expr = ComputeExpr((ConstantExpr(6), "/", ConstantExpr(3)))
        assert type(evaluate_expr(expr, {})) is int

    @pytest.mark.parametrize("op", ["/", "//", "mod"])
    def test_division_by_zero_raises(self, op):
        expr = ComputeExpr((ConstantExpr(1), op, ConstantExpr(0)))
        with pytest.raises(ExecutionError, match="zero"):
            evaluate_expr(expr, {})

    def test_arith_on_symbols_raises(self):
        expr = ComputeExpr((ConstantExpr("a"), "+", ConstantExpr(1)))
        with pytest.raises(ExecutionError, match="non-numbers"):
            evaluate_expr(expr, {})


class TestActionEvaluation:
    def test_make_collects_attrs(self):
        inst = make_inst(
            "(p r (c ^a <x>) --> (make d ^b <x> ^c (compute <x> + 1)))",
            (WME("c", {"a": 5}, 1),),
            {"x": 5},
        )
        delta = ActionEvaluator().evaluate(inst)
        assert delta.makes == [("d", {"b": 5, "c": 6})]
        assert delta.touches_wm

    def test_modify_pairs_wme_and_updates(self):
        w = WME("c", {"a": 5}, 1)
        inst = make_inst(
            "(p r (c ^a <x>) --> (modify 1 ^a 9))", (w,), {"x": 5}
        )
        delta = ActionEvaluator().evaluate(inst)
        assert delta.modifies == [(w, {"a": 9})]

    def test_remove_lists_targets(self):
        w1 = WME("c", {"a": 1}, 1)
        w2 = WME("d", {"a": 1}, 2)
        inst = make_inst(
            "(p r (c ^a <x>) (d ^a <x>) --> (remove 1 2))", (w1, w2), {"x": 1}
        )
        delta = ActionEvaluator().evaluate(inst)
        assert delta.removes == [w1, w2]

    def test_write_renders_values(self):
        inst = make_inst(
            "(p r (c ^a <x>) --> (write value is <x>))",
            (WME("c", {"a": 7}, 1),),
            {"x": 7},
        )
        delta = ActionEvaluator().evaluate(inst)
        assert delta.writes == ["value is 7"]

    def test_bind_scopes_to_later_actions(self):
        inst = make_inst(
            "(p r (c ^a <x>) --> (bind <y> (compute <x> * 2)) (make d ^b <y>))",
            (WME("c", {"a": 3}, 1),),
            {"x": 3},
        )
        delta = ActionEvaluator().evaluate(inst)
        assert delta.makes == [("d", {"b": 6})]

    def test_bind_does_not_leak_into_inst_env(self):
        inst = make_inst(
            "(p r (c ^a <x>) --> (bind <y> 1))",
            (WME("c", {"a": 3}, 1),),
            {"x": 3},
        )
        ActionEvaluator().evaluate(inst)
        assert "y" not in inst.env

    def test_halt_flag(self):
        inst = make_inst("(p r (c ^a 1) --> (halt))", (WME("c", {"a": 1}, 1),), {})
        assert ActionEvaluator().evaluate(inst).halt

    def test_modify_of_negated_ce_raises_at_runtime(self):
        # Analysis would reject this, but the evaluator double-checks.
        rule = parse_program(
            "(p r (c ^a <x>) -(d ^a <x>) --> (halt))"
        ).rules[0]
        object.__setattr__(rule, "actions", rule.actions)  # unchanged
        inst = Instantiation(rule, (WME("c", {"a": 1}, 1), None), {"x": 1})
        from repro.lang.ast import ModifyAction, ConstantExpr as CE_

        bad = ModifyAction(ce_index=2, assignments=(("a", CE_(1)),))
        ev = ActionEvaluator()
        with pytest.raises(ExecutionError, match="bad condition-element index"):
            ev._one(bad, inst, dict(inst.env), ev.evaluate(inst))


class TestHostCalls:
    def test_call_collected_then_run(self):
        seen = []
        ev = ActionEvaluator({"notify": lambda *a: seen.append(a)})
        inst = make_inst(
            "(p r (c ^a <x>) --> (call notify <x> done))",
            (WME("c", {"a": 7}, 1),),
            {"x": 7},
        )
        delta = ev.evaluate(inst)
        assert delta.calls == [("notify", (7, "done"))]
        assert seen == []  # evaluation does not invoke
        ev.run_calls(delta)
        assert seen == [(7, "done")]

    def test_unregistered_function_raises_at_apply(self):
        ev = ActionEvaluator()
        inst = make_inst(
            "(p r (c ^a 1) --> (call ghost))", (WME("c", {"a": 1}, 1),), {}
        )
        delta = ev.evaluate(inst)
        with pytest.raises(ExecutionError, match="unregistered"):
            ev.run_calls(delta)

    def test_register_after_construction(self):
        ev = ActionEvaluator()
        ev.register("f", lambda: None)
        assert "f" in ev.host_functions
