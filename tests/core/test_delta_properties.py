"""Property-based tests of delta merging (interference resolution)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import InterferenceError
from repro.core.actions import InstantiationDelta
from repro.core.delta import InterferencePolicy, merge_deltas
from repro.lang.parser import parse_program
from repro.match.instantiation import Instantiation
from repro.wm.wme import WME

RULES = {
    name: parse_program(f"(p {name} (c ^a <x>) --> (halt))").rules[0]
    for name in ("r0", "r1", "r2")
}

#: A small pool of target WMEs the generated deltas contend over.
TARGETS = [WME("t", {"slot": i, "v": 0}, 100 + i) for i in range(3)]


@st.composite
def delta_lists(draw):
    n = draw(st.integers(1, 5))
    deltas = []
    for i in range(n):
        rule = RULES[draw(st.sampled_from(sorted(RULES)))]
        trigger = WME("c", {"a": i}, i + 1)
        inst = Instantiation(rule, (trigger,), {"x": i})
        d = InstantiationDelta(inst=inst)
        for _ in range(draw(st.integers(0, 2))):
            kind = draw(st.sampled_from(["make", "modify", "remove"]))
            target = draw(st.sampled_from(TARGETS))
            if kind == "make":
                d.makes.append(("out", {"n": draw(st.integers(0, 2))}))
            elif kind == "modify":
                d.modifies.append((target, {"v": draw(st.integers(0, 2))}))
            else:
                d.removes.append(target)
        deltas.append(d)
    return deltas


class TestMergeProperties:
    @settings(max_examples=150, deadline=None)
    @given(deltas=delta_lists(), policy=st.sampled_from(["first", "merge"]))
    def test_non_error_policies_never_raise(self, deltas, policy):
        out = merge_deltas(deltas, InterferencePolicy.of(policy))
        # A WME never appears twice in removes, and never both removed
        # and re-made unchanged... removes are unique:
        assert len(out.removes) == len(set(out.removes))

    @settings(max_examples=150, deadline=None)
    @given(deltas=delta_lists(), policy=st.sampled_from(["first", "merge"]))
    def test_makes_and_origins_stay_parallel(self, deltas, policy):
        out = merge_deltas(deltas, InterferencePolicy.of(policy))
        assert len(out.makes) == len(out.make_origins)
        for (cls, _attrs), (inst, kind, replaced) in zip(
            out.makes, out.make_origins
        ):
            assert kind in ("make", "modify")
            assert (replaced is not None) == (kind == "modify")
            assert inst.rule.name in RULES

    @settings(max_examples=150, deadline=None)
    @given(deltas=delta_lists())
    def test_error_policy_raises_or_agrees_with_merge(self, deltas):
        """If ERROR does not raise, the firing set was conflict-free, and
        then all three policies must produce the identical delta."""
        try:
            strict = merge_deltas(deltas, InterferencePolicy.ERROR)
        except InterferenceError:
            return
        relaxed_first = merge_deltas(deltas, InterferencePolicy.FIRST)
        relaxed_merge = merge_deltas(deltas, InterferencePolicy.MERGE)
        for other in (relaxed_first, relaxed_merge):
            assert other.removes == strict.removes
            assert other.makes == strict.makes
            assert other.conflicts_resolved == 0

    @settings(max_examples=150, deadline=None)
    @given(deltas=delta_lists(), policy=st.sampled_from(["error", "first", "merge"]))
    def test_dedupe_only_removes_duplicates(self, deltas, policy):
        try:
            with_dedupe = merge_deltas(
                deltas, InterferencePolicy.of(policy), dedupe_makes=True
            )
            without = merge_deltas(
                deltas, InterferencePolicy.of(policy), dedupe_makes=False
            )
        except InterferenceError:
            return
        assert len(with_dedupe.makes) + with_dedupe.makes_deduped == len(
            without.makes
        )
        # Deduped output is a sub-multiset of the raw output.
        raw = [tuple(sorted(a.items())) + (c,) for c, a in without.makes]
        kept = [tuple(sorted(a.items())) + (c,) for c, a in with_dedupe.makes]
        for item in kept:
            assert item in raw

    @settings(max_examples=100, deadline=None)
    @given(deltas=delta_lists(), policy=st.sampled_from(["first", "merge"]))
    def test_deterministic(self, deltas, policy):
        a = merge_deltas(deltas, InterferencePolicy.of(policy))
        b = merge_deltas(deltas, InterferencePolicy.of(policy))
        assert a.removes == b.removes
        assert a.makes == b.makes
        assert a.conflicts_resolved == b.conflicts_resolved
