"""The repository's central integration matrix.

Every bundled workload must produce the *correct answer* under:

- PARULEL × {rete, treat, naive},
- OPS5 × {lex, mea},
- SimMachine with several site counts,

and the engines must agree on cycle/firings counts across matchers.
These are the tests that make Table 1/2 trustworthy.
"""

import pytest

from repro.baseline import OPS5Engine
from repro.core import EngineConfig, ParulelEngine
from repro.parallel import SimMachine
from repro.programs import REGISTRY

WORKLOADS = sorted(REGISTRY)


@pytest.fixture(scope="module")
def built():
    return {name: REGISTRY[name]() for name in WORKLOADS}


class TestParulelCorrectness:
    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("matcher", ["rete", "treat", "naive"])
    def test_workload_verifies(self, built, name, matcher):
        wl = built[name]
        engine = ParulelEngine(
            wl.program, EngineConfig(matcher=matcher, meta_matcher=matcher)
        )
        wl.setup(engine)
        engine.run(max_cycles=5000)
        assert wl.failed_checks(engine.wm) == []


class TestOPS5Correctness:
    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("strategy", ["lex", "mea"])
    def test_workload_verifies(self, built, name, strategy):
        wl = built[name]
        engine = OPS5Engine(wl.program, strategy=strategy)
        wl.setup(engine)
        engine.run(max_cycles=200_000)
        assert wl.failed_checks(engine.wm) == []


class TestCrossMatcherAgreement:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_cycles_and_firings_identical(self, name):
        results = {}
        for matcher in ("rete", "treat", "naive"):
            wl = REGISTRY[name]()
            engine = ParulelEngine(
                wl.program, EngineConfig(matcher=matcher, meta_matcher=matcher)
            )
            wl.setup(engine)
            res = engine.run(max_cycles=5000)
            results[matcher] = (res.cycles, res.firings, res.reason)
        assert results["rete"] == results["treat"] == results["naive"]


class TestSetOrientedAdvantage:
    """The Table 2 headline: PARULEL needs far fewer cycles than OPS5 on
    parallel-friendly workloads, and exactly as many firings."""

    @pytest.mark.parametrize("name", ["tc", "waltz", "sort", "sieve"])
    def test_cycle_reduction(self, built, name):
        wl = REGISTRY[name]()
        par = ParulelEngine(wl.program)
        wl.setup(par)
        pres = par.run(max_cycles=5000)

        wl2 = REGISTRY[name]()
        ops = OPS5Engine(wl2.program)
        wl2.setup(ops)
        ores = ops.run(max_cycles=200_000)

        assert pres.cycles < ores.cycles
        assert pres.cycles <= ores.cycles / 2  # at least 2x fewer cycles

    def test_monkey_is_sequential_either_way(self, built):
        wl = REGISTRY["monkey"]()
        par = ParulelEngine(wl.program)
        wl.setup(par)
        pres = par.run()
        wl2 = REGISTRY["monkey"]()
        ops = OPS5Engine(wl2.program)
        wl2.setup(ops)
        ores = ops.run()
        assert pres.cycles == ores.cycles  # no parallelism to exploit


class TestSimMachineMatrix:
    @pytest.mark.parametrize("name", ["tc", "waltz", "manners", "sort"])
    @pytest.mark.parametrize("n_sites", [2, 4])
    def test_simulated_runs_verify(self, name, n_sites):
        wl = REGISTRY[name]()
        sm = SimMachine(wl.program, n_sites)
        wl.setup(sm)
        sm.run(max_cycles=5000)
        assert wl.failed_checks(sm.wm) == []


class TestDeterminism:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_two_runs_identical(self, name):
        outputs = []
        for _ in range(2):
            wl = REGISTRY[name]()
            engine = ParulelEngine(wl.program)
            wl.setup(engine)
            res = engine.run(max_cycles=5000)
            outputs.append(
                (
                    res.cycles,
                    res.firings,
                    tuple(res.output),
                    tuple(sorted(str(w) for w in engine.wm)),
                )
            )
        assert outputs[0] == outputs[1]
