"""Unit tests for the transitive-closure workload."""

import networkx as nx
import pytest

from repro.core import ParulelEngine
from repro.programs.tc import build_tc, generate_graph


class TestGraphGeneration:
    def test_chain(self):
        assert generate_graph(4, "chain") == [(0, 1), (1, 2), (2, 3)]

    def test_cycle(self):
        edges = generate_graph(3, "cycle")
        assert (2, 0) in edges and len(edges) == 3

    def test_tree_is_binary(self):
        edges = generate_graph(7, "tree")
        graph = nx.DiGraph(edges)
        assert all(graph.out_degree(n) <= 2 for n in graph.nodes)

    def test_random_deterministic_by_seed(self):
        assert generate_graph(10, "random", seed=1) == generate_graph(
            10, "random", seed=1
        )
        assert generate_graph(10, "random", seed=1) != generate_graph(
            10, "random", seed=2
        )

    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            generate_graph(5, "torus")


class TestClosureCorrectness:
    @pytest.mark.parametrize("shape", ["chain", "cycle", "tree", "random"])
    def test_matches_networkx(self, shape):
        wl = build_tc(n_nodes=10, shape=shape)
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        engine.run(max_cycles=1000)
        assert wl.failed_checks(engine.wm) == []

    def test_chain_path_count(self):
        n = 8
        wl = build_tc(n_nodes=n, shape="chain")
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        engine.run()
        assert engine.wm.count_class("path") == (n - 1) * n // 2

    def test_cycle_reaches_everything(self):
        n = 5
        wl = build_tc(n_nodes=n, shape="cycle")
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        engine.run()
        # On a directed cycle every node reaches every node (incl. itself).
        assert engine.wm.count_class("path") == n * n

    def test_cycles_bounded_by_diameter_plus_one(self):
        wl = build_tc(n_nodes=12, shape="chain")
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        res = engine.run()
        # init cycle + one frontier advance per additional hop.
        assert res.cycles <= 12

    def test_domain_hints_cover_nodes(self):
        wl = build_tc(n_nodes=5, shape="chain")
        assert ("path", "src") in wl.domains
        assert len(wl.domains[("path", "src")]) == 5
        assert wl.cc_hint == ("tc-extend", 1, "src")
