"""Unit tests for the shortest-path (Bellman–Ford) workload — the
min-by-redaction showcase."""

import networkx as nx
import pytest

from repro.errors import InterferenceError
from repro.core import EngineConfig, ParulelEngine
from repro.programs.routing import (
    build_routing,
    generate_weighted_graph,
    routing_program,
)


class TestGraphGeneration:
    def test_connected_from_source(self):
        edges = generate_weighted_graph(12, 10, seed=3)
        g = nx.DiGraph()
        g.add_nodes_from(range(12))
        g.add_weighted_edges_from(edges)
        reachable = nx.descendants(g, 0) | {0}
        assert reachable == set(range(12))

    def test_deterministic(self):
        assert generate_weighted_graph(10, 5, seed=1) == generate_weighted_graph(
            10, 5, seed=1
        )

    def test_no_duplicate_edges(self):
        edges = generate_weighted_graph(10, 20, seed=2)
        pairs = [(a, b) for a, b, _w in edges]
        assert len(pairs) == len(set(pairs))

    def test_positive_weights(self):
        assert all(w >= 1 for _a, _b, w in generate_weighted_graph(10, 10, 4))


class TestShortestPaths:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_matches_dijkstra(self, seed):
        wl = build_routing(n_nodes=10, extra_edges=10, seed=seed)
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        engine.run(max_cycles=2000)
        assert wl.failed_checks(engine.wm) == []

    def test_one_dist_per_node_invariant_every_cycle(self):
        wl = build_routing(n_nodes=8, extra_edges=8, seed=5)
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        while True:
            report = engine.step()
            nodes = [w.get("node") for w in engine.wm.by_class("dist")]
            assert len(nodes) == len(set(nodes)), "duplicate dist for a node"
            if report is None:
                break

    def test_parallel_relaxation_waves(self):
        wl = build_routing(n_nodes=14, extra_edges=14)
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        result = engine.run(max_cycles=2000)
        assert max(result.firing_set_sizes) >= 4

    def test_redaction_performed_minimum_selection(self):
        wl = build_routing(n_nodes=14, extra_edges=20, seed=2)
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        result = engine.run(max_cycles=2000)
        assert wl.failed_checks(engine.wm) == []
        assert sum(r.redaction.redacted for r in result.reports) > 0


class TestWithoutMetaRules:
    """Stripping the meta-rules demonstrates *why* redaction exists: the
    parallel firing set is no longer safe. Two distinct failure modes:

    - two ``seed-dist`` firings for one node in the same cycle silently
      create duplicate ``dist`` WMEs (makes of different content never
      "interfere" mechanically — they are just both wrong), breaking the
      one-dist-per-node invariant and hence the final distances;
    - two ``improve`` firings on one ``dist`` WME with different costs DO
      interfere mechanically (conflicting modifies), which the ``error``
      policy turns into an InterferenceError.
    """

    def test_unarbitrated_run_is_wrong_or_aborts(self):
        program = routing_program(with_meta_rules=False)
        failures = 0
        for seed in (2, 5, 23, 31):
            wl = build_routing(n_nodes=10, extra_edges=16, seed=seed)
            engine = ParulelEngine(program, EngineConfig(interference="first"))
            wl.setup(engine)
            try:
                engine.run(max_cycles=2000)
            except InterferenceError:
                failures += 1
                continue
            if wl.failed_checks(engine.wm):
                failures += 1
        assert failures > 0, (
            "without meta-rules at least some graphs must break — "
            "otherwise the redaction rules are dead code"
        )

    def test_duplicate_seeds_are_the_observable_symptom(self):
        program = routing_program(with_meta_rules=False)
        wl = build_routing(n_nodes=10, extra_edges=16, seed=23)
        engine = ParulelEngine(program, EngineConfig(interference="first"))
        wl.setup(engine)
        engine.run(max_cycles=2000)
        nodes = [w.get("node") for w in engine.wm.by_class("dist")]
        assert len(nodes) != len(set(nodes)) or wl.failed_checks(engine.wm)

    def test_meta_rules_restore_correctness_on_same_graphs(self):
        for seed in (2, 5, 23, 31):
            wl = build_routing(n_nodes=10, extra_edges=16, seed=seed)
            engine = ParulelEngine(wl.program)  # meta-rules included
            wl.setup(engine)
            engine.run(max_cycles=2000)
            assert wl.failed_checks(engine.wm) == [], seed
