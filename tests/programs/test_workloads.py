"""Unit tests for the remaining workload generators (waltz, manners, sort,
sieve, monkey, synthetic)."""

import pytest

from repro.core import EngineConfig, ParulelEngine
from repro.match.interface import create_matcher
from repro.programs.manners import build_manners
from repro.programs.monkey import build_monkey
from repro.programs.sieve import build_sieve, primes_below
from repro.programs.sort import build_sort, build_sort_meta
from repro.programs.synthetic import build_churn_workload, build_join_workload
from repro.programs.waltz import LDICT, build_waltz


def run(wl, max_cycles=5000, **cfg):
    engine = ParulelEngine(wl.program, EngineConfig(**cfg))
    wl.setup(engine)
    result = engine.run(max_cycles=max_cycles)
    return engine, result


class TestWaltz:
    def test_dictionary_is_functional(self):
        # Unique v-out per (type, v-in): propagation is deterministic.
        assert len(LDICT) == len({k for k in LDICT})

    def test_cycles_track_chain_length_not_drawings(self):
        _e1, r1 = run(build_waltz(n_drawings=2, chain_length=8))
        _e2, r2 = run(build_waltz(n_drawings=8, chain_length=8))
        assert r1.cycles == r2.cycles == 8

    def test_firings_scale_with_drawings(self):
        _e, r = run(build_waltz(n_drawings=5, chain_length=6))
        assert r.firings == 5 * 6

    def test_verify_rejects_tampered_labels(self):
        wl = build_waltz(n_drawings=1, chain_length=3)
        engine, _ = run(wl)
        # Corrupt one label.
        victim = engine.wm.by_class("labeled")[1]
        engine.wm.remove(victim)
        engine.wm.make(
            "labeled", line=victim.get("line"), value="bogus"
        )
        assert "labels-match-dictionary" in wl.failed_checks(engine.wm)


class TestManners:
    def test_odd_guest_count_rejected(self):
        with pytest.raises(ValueError):
            build_manners(n_guests=7)

    def test_seating_valid_small(self):
        wl = build_manners(n_guests=6)
        engine, _ = run(wl)
        assert wl.failed_checks(engine.wm) == []

    def test_redactions_happen(self):
        wl = build_manners(n_guests=8)
        _engine, result = run(wl)
        assert sum(r.redaction.redacted for r in result.reports) > 0

    def test_every_guest_seated_exactly_once(self):
        wl = build_manners(n_guests=10)
        engine, _ = run(wl)
        occupants = [w.get("occupant") for w in engine.wm.by_class("seat")]
        assert sorted(occupants) == sorted({w.get("name") for w in engine.wm.by_class("guest")})


class TestSort:
    def test_sorted_result(self):
        wl = build_sort(n_items=10)
        engine, _ = run(wl)
        assert wl.failed_checks(engine.wm) == []

    def test_parallel_swaps_per_cycle(self):
        _e, result = run(build_sort(n_items=16))
        # At least one cycle must fire several swaps simultaneously.
        assert max(r.fired for r in result.reports) >= 3

    def test_meta_variant_sorted(self):
        wl = build_sort_meta(n_items=9)
        engine, result = run(wl)
        assert wl.failed_checks(engine.wm) == []
        # The meta rule must actually have redacted overlapping swaps.
        assert sum(r.redaction.redacted for r in result.reports) > 0

    def test_reverse_order_worst_case(self):
        wl = build_sort(n_items=8, seed=1)
        # Force worst case by overriding setup values directly.
        engine = ParulelEngine(wl.program)
        engine.make("phase", parity="even", round=0)
        for i in range(7):
            engine.make(
                "pair", left=i, right=i + 1, parity="even" if i % 2 == 0 else "odd"
            )
        for i, val in enumerate(reversed(range(8))):
            engine.make("item", pos=i, val=val)
        engine.run(max_cycles=100)
        vals = [
            w.get("val")
            for w in sorted(engine.wm.by_class("item"), key=lambda w: w.get("pos"))
        ]
        assert vals == list(range(8))


class TestSieve:
    def test_primes_below_reference(self):
        assert primes_below(30) == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]
        assert primes_below(2) == [2]
        assert primes_below(1) == []

    @pytest.mark.parametrize("limit", [10, 31, 60])
    def test_sieve_exact(self, limit):
        wl = build_sieve(limit=limit)
        engine, _ = run(wl)
        assert wl.failed_checks(engine.wm) == []

    def test_markers_run_concurrently(self):
        _e, result = run(build_sieve(limit=60))
        # Multiple markers plus the cursor active in one cycle.
        assert max(r.fired for r in result.reports) >= 3


class TestMonkey:
    def test_plan_executes(self):
        wl = build_monkey()
        engine, result = run(wl)
        assert wl.failed_checks(engine.wm) == []
        assert result.reason == "halt"
        assert result.cycles == 4

    def test_narration_written(self):
        wl = build_monkey()
        _engine, result = run(wl)
        assert any("grabs the bananas" in line for line in result.output)


class TestSynthetic:
    def test_join_workload_output_size(self):
        jw = build_join_workload(n_rules=2, n_keys=4, seed=1)
        wm = jw.fresh_wm()
        matcher = create_matcher("rete", jw.program.rules, wm)
        jw.load(wm, 20)
        insts = matcher.instantiations()
        assert len(insts) > 0
        # every instantiation joins matching keys
        for inst in insts:
            assert inst.wmes[0].get("key") == inst.wmes[1].get("key")

    def test_churn_workload_roundtrip(self):
        cw = build_churn_workload(chain_length=3, n_entities=5)
        wm = cw.fresh_wm()
        matcher = create_matcher("rete", cw.program.rules, wm)
        block = cw.load(wm)
        before = len(matcher.instantiations())
        assert before == 5  # one chain instantiation per entity
        block = cw.churn(wm, block, step=1)
        assert len(matcher.instantiations()) == 5
        assert len(block) == 5

    def test_churn_preserves_wm_size(self):
        cw = build_churn_workload(chain_length=2, n_entities=4)
        wm = cw.fresh_wm()
        block = cw.load(wm)
        n = len(wm)
        cw.churn(wm, block, step=3)
        assert len(wm) == n
