"""Unit tests for the logic-circuit workload."""

import pytest

from repro.core import EngineConfig, ParulelEngine
from repro.programs.circuit import (
    GATE_FUNCS,
    build_circuit,
    generate_circuit,
)


class TestGeneration:
    def test_layered_structure(self):
        inputs, gates = generate_circuit(4, 3, 5, seed=1)
        assert len(inputs) == 4
        assert len(gates) == 15
        # Every gate's inputs come from earlier wires (dependency order).
        known = set(inputs)
        for _gid, gtype, in1, in2, out in gates:
            assert in1 in known
            if gtype != "not":
                assert in2 in known
            known.add(out)

    def test_deterministic(self):
        assert generate_circuit(4, 3, 5, seed=9) == generate_circuit(4, 3, 5, seed=9)

    def test_gate_functions(self):
        assert GATE_FUNCS["and"](1, 1) == 1
        assert GATE_FUNCS["or"](0, 0) == 0
        assert GATE_FUNCS["xor"](1, 0) == 1
        assert GATE_FUNCS["nand"](1, 1) == 0


class TestSimulation:
    @pytest.mark.parametrize("seed", [1, 19, 77])
    def test_matches_reference_evaluation(self, seed):
        wl = build_circuit(n_inputs=5, n_levels=5, gates_per_level=5, seed=seed)
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        engine.run(max_cycles=200)
        assert wl.failed_checks(engine.wm) == []

    def test_levels_bound_cycles(self):
        wl = build_circuit(n_inputs=4, n_levels=6, gates_per_level=4, seed=3)
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        result = engine.run(max_cycles=200)
        # Dependency depth <= number of levels; some gates settle earlier.
        assert result.cycles <= 6
        assert wl.failed_checks(engine.wm) == []

    def test_wide_levels_fire_together(self):
        wl = build_circuit(n_inputs=6, n_levels=4, gates_per_level=10, seed=5)
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        result = engine.run(max_cycles=200)
        assert max(result.firing_set_sizes) >= 8

    def test_firings_equal_gate_count(self):
        wl = build_circuit(n_inputs=4, n_levels=5, gates_per_level=6, seed=7)
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        result = engine.run(max_cycles=200)
        assert result.firings == 5 * 6  # every gate evaluated exactly once

    @pytest.mark.parametrize("matcher", ["rete", "treat", "naive"])
    def test_all_matchers_agree(self, matcher):
        wl = build_circuit(n_inputs=4, n_levels=4, gates_per_level=4, seed=11)
        engine = ParulelEngine(wl.program, EngineConfig(matcher=matcher))
        wl.setup(engine)
        result = engine.run(max_cycles=200)
        assert wl.failed_checks(engine.wm) == []
        assert result.firings == 16
