"""Randomized differential audit of the commute detector's verdicts.

Seeded ``random.Random`` program generation (same idiom as
``tests/match/test_indexing_differential.py``, fixed example count so the
coverage floor is explicit): across 60 random rule programs with
write-heavy actions,

1. the race sanitizer replays every fired pair in both orders — a
   statically-COMMUTES pair whose firings diverge raises
   ``CommuteViolationError``, so a clean run *is* the proof audit; and
2. the certified fast path must leave the run byte-identical — same
   cycles, firings and final working memory records — to the plain
   engine.
"""

import random

import pytest

from repro.analysis.commute import Verdict, commute_matrix
from repro.core import EngineConfig, ParulelEngine
from repro.errors import CycleLimitExceeded
from repro.lang.builder import ProgramBuilder, v

CLASSES = ["a", "b", "c"]
ATTRS = ["k", "m"]
VALUES = [0, 1, 2]

N_PROGRAMS = 60  # ≥60 seeds: the coverage floor promised in the PR


def _random_program(rng):
    """1-3 rules, 1-2 positive CEs (+ optional guard negation), and a
    write-heavy RHS: make / modify / remove over the matched CEs."""
    pb = ProgramBuilder()
    for r in range(rng.randint(1, 3)):
        rb = pb.rule(f"r{r}")
        bound = []
        n_pos = rng.randint(1, 2)
        for i in range(n_pos):
            cls = rng.choice(CLASSES)
            tests = {}
            for attr in ATTRS:
                choice = rng.randint(0, 3)
                if choice == 0:
                    continue
                if choice == 1:
                    tests[attr] = rng.choice(VALUES)
                elif choice == 2 and bound:
                    tests[attr] = v(rng.choice(bound))
                else:
                    var = f"v{r}_{i}_{attr}"
                    tests[attr] = v(var)
                    bound.append(var)
            rb.ce(cls, **tests)
        action = rng.randint(0, 2)
        if action == 0:
            make_attrs = {
                attr: (v(rng.choice(bound)) if bound and rng.random() < 0.5
                       else rng.choice(VALUES))
                for attr in ATTRS
            }
            made_cls = rng.choice(CLASSES)
            # Guard the make so quiescence is reachable for most seeds.
            rb.neg(made_cls, **make_attrs)
            rb.make(made_cls, **make_attrs)
        elif action == 1:
            target = rng.randint(1, n_pos)
            rb.modify(target, **{rng.choice(ATTRS): rng.choice(VALUES)})
        else:
            rb.remove(rng.randint(1, n_pos))
    return pb.build(analyze=False)


def _seed_facts(rng, engine):
    for _ in range(rng.randint(3, 8)):
        engine.make(
            rng.choice(CLASSES),
            k=rng.choice(VALUES),
            m=rng.choice(VALUES),
        )


def _run(program, rng_seed, **config):
    engine = ParulelEngine(
        program, EngineConfig(interference="merge", **config)
    )
    _seed_facts(random.Random(rng_seed), engine)
    try:
        result = engine.run(max_cycles=40)
    except CycleLimitExceeded as exc:
        # Non-terminating seeds are fine: a truncated run still detects
        # any divergence between the plain and certified engines.
        result = exc.partial
    return (
        result.cycles,
        result.firings,
        tuple(result.output),
        engine.wm.dump_records(),
    )


class TestCommutesVerdictsSurviveSanitizer:
    @pytest.mark.parametrize("seed", range(N_PROGRAMS))
    def test_differential(self, seed):
        rng = random.Random(7000 + seed)
        program = _random_program(rng)
        # The static verdicts must at least compute without crashing.
        summary = commute_matrix(program, name=f"seed{seed}")
        assert len(summary.pairs) > 0

        # A clean sanitized run audits every COMMUTES claim dynamically:
        # a diverging certified pair would raise CommuteViolationError.
        base = _run(program, rng_seed=seed)
        sanitized = _run(
            program,
            rng_seed=seed,
            certified_commute=True,
            sanitize_races=True,
        )
        assert sanitized == base, (
            f"seed {seed}: certified fast path diverged "
            f"(verdicts: {summary.counts})"
        )

    def test_some_seeds_actually_commute(self):
        """Guard against the generator drifting into all-UNKNOWN land:
        a healthy fraction of seeds must produce COMMUTES pairs, or the
        differential above audits nothing."""
        commuting_seeds = 0
        for seed in range(N_PROGRAMS):
            rng = random.Random(7000 + seed)
            summary = commute_matrix(_random_program(rng))
            if summary.of_verdict(Verdict.COMMUTES):
                commuting_seeds += 1
        assert commuting_seeds >= 10, commuting_seeds
