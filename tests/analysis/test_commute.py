"""Tests for the critical-pair commutativity race detector.

The acceptance bar from the PR: zero UNKNOWN verdicts on tc (all three
pairs proven COMMUTES), a witness-backed RACES verdict on the waltz-style
propagate self-pair, and each discharge pattern (identical self-guarded
makes, pure removes, identical constant modifies) proving COMMUTES on a
minimal program while a one-token perturbation of the same program drops
the proof.
"""

import pytest

from repro.analysis.commute import (
    CommuteIndex,
    Verdict,
    classify_rule_pair,
    commute_matrix,
)
from repro.lang import parse_program
from repro.programs import REGISTRY


def _pair(src, a=0, b=None):
    program = parse_program(src)
    rule_a = program.rules[a]
    rule_b = program.rules[b] if b is not None else rule_a
    return classify_rule_pair(rule_a, rule_b)


class TestWorkloadVerdicts:
    def test_tc_has_zero_unknown_all_commute(self):
        """The paper's flagship example: both rules are self-guarded
        make-only, so every pair (two self-pairs + the cross pair) is
        proven COMMUTES — no UNKNOWN escape hatch used."""
        program = REGISTRY["tc"]().program
        summary = commute_matrix(program, name="tc")
        assert summary.counts == {"commutes": 3, "races": 0, "unknown": 0}

    def test_waltz_propagate_self_pair_races_with_witness(self):
        program = REGISTRY["waltz"]().program
        summary = commute_matrix(program, name="waltz")
        (pair,) = summary.pairs
        assert pair.verdict == Verdict.RACES
        assert pair.rule_a == pair.rule_b == "propagate"
        # The verdict is witness-backed: a concrete WM the renderer shows.
        assert pair.witness, "RACES verdicts must carry a witness WM"
        assert any("(" in line for line in pair.witness)

    def test_races_pairs_have_diagnostics_with_witness_hint(self):
        program = REGISTRY["waltz"]().program
        summary = commute_matrix(program, name="waltz")
        diags = summary.diagnostics()
        races = [d for d in diags if d.code in ("PA007", "PA008")]
        assert races
        assert all("witness working memory:" in (d.hint or "") for d in races)

    def test_every_bundled_workload_classifies_without_crashing(self):
        for name in sorted(REGISTRY):
            program = REGISTRY[name]().program
            summary = commute_matrix(program, name=name)
            n = len(program.rules)
            assert len(summary.pairs) == n * (n + 1) // 2


class TestDischargeIdenticalMake:
    SRC = """
    (literalize edge src dst)
    (literalize path src dst)
    (p init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
     --> (make path ^src <a> ^dst <b>))
    """

    def test_self_guarded_make_commutes(self):
        assert _pair(self.SRC).verdict == Verdict.COMMUTES

    def test_unguarded_make_is_not_discharged(self):
        # Without the negated CE the make is no longer self-guarded; the
        # detector must not claim COMMUTES via the identical-make pattern.
        src = """
        (literalize edge src dst)
        (literalize path src dst)
        (p init (edge ^src <a> ^dst <b>)
         --> (make path ^src <a> ^dst <b>))
        """
        # Still commutes *concretely* under set-insertion, but the static
        # discharge requires the guard; accept anything except RACES.
        assert _pair(src).verdict != Verdict.RACES


class TestDischargePureRemove:
    SRC = """
    (literalize done n)
    (p sweep (done ^n <n>) --> (remove 1))
    """

    def test_pure_remove_self_pair_commutes(self):
        assert _pair(self.SRC).verdict == Verdict.COMMUTES

    def test_remove_hitting_another_ce_not_discharged(self):
        # One instantiation's removal can destroy the WME the other
        # matched through a *different* CE — that is not the idempotent
        # double-delete shape, so the pure-remove discharge must not fire.
        src = """
        (literalize done n)
        (p sweep (done ^n <n>) (done ^n <m>) --> (remove 1))
        """
        assert _pair(src).verdict != Verdict.COMMUTES


class TestDischargeIdenticalModify:
    SRC = """
    (literalize flag v)
    (literalize seen w)
    (p mark (flag ^v <x>) (seen ^w <x>) --> (modify 1 ^v done))
    """

    def test_identical_constant_modify_commutes(self):
        assert _pair(self.SRC).verdict == Verdict.COMMUTES

    def test_divergent_constant_modifies_race(self):
        src = """
        (literalize flag v)
        (literalize req n)
        (p grab-a (flag ^v free) (req ^n <n>) --> (modify 1 ^v <n>))
        """
        # Two instantiations write different values into the same WME.
        assert _pair(src).verdict == Verdict.RACES


class TestRacesAndUnknown:
    def test_retract_vs_reader_races(self):
        src = """
        (literalize slot owner)
        (literalize req n)
        (p claim (slot ^owner nil) (req ^n <n>) --> (modify 1 ^owner <n>))
        (p audit (slot ^owner nil) (req ^n <n>) --> (remove 2))
        """
        verdict = _pair(src, 0, 1)
        assert verdict.verdict == Verdict.RACES
        assert verdict.code in ("PA007", "PA008")
        assert verdict.witness

    def test_disjoint_constants_commute(self):
        src = """
        (literalize box color n)
        (p red (box ^color red ^n <n>) --> (modify 1 ^n 0))
        (p blue (box ^color blue ^n <n>) --> (modify 1 ^n 1))
        """
        assert _pair(src, 0, 1).verdict == Verdict.COMMUTES

    def test_disjoint_membership_sets_commute(self):
        src = """
        (literalize box owner n)
        (p low (box ^owner << a b >> ^n <n>) --> (modify 1 ^n 0))
        (p high (box ^owner << c d >> ^n <n>) --> (modify 1 ^n 1))
        """
        assert _pair(src, 0, 1).verdict == Verdict.COMMUTES

    def test_genatom_is_unknown(self):
        src = """
        (literalize req n)
        (literalize tok id)
        (p mint (req ^n <n>) --> (make tok ^id (genatom)))
        """
        verdict = _pair(src)
        assert verdict.verdict == Verdict.UNKNOWN
        assert verdict.code == "PA009"

    def test_call_is_unknown(self):
        src = """
        (literalize req n)
        (p shout (req ^n <n>) --> (call write <n>))
        """
        assert _pair(src).verdict == Verdict.UNKNOWN


class TestCommuteIndex:
    def test_statically_commutes_symmetric(self):
        program = REGISTRY["tc"]().program
        index = CommuteIndex(program)
        a, b = (r.name for r in program.rules[:2])
        assert index.statically_commutes(a, b)
        assert index.statically_commutes(b, a)
        assert index.statically_commutes(a, a)

    def test_all_rules_invisible_without_meta_level(self):
        program = REGISTRY["tc"]().program
        index = CommuteIndex(program)
        assert all(index.invisible(r.name) for r in program.rules)

    def test_meta_matched_rules_are_visible(self):
        program = REGISTRY["manners"]().program
        assert program.meta_rules
        index = CommuteIndex(program)
        # The meta level arbitrates the seating rules by name: those rules
        # must not be invisible.
        visible = {r.name for r in program.rules if not index.invisible(r.name)}
        assert visible, "a program with matching meta-rules has visible rules"


class TestGoldenFile:
    def test_golden_file_matches_live_verdicts(self, capsys):
        from repro.analysis.commute import main

        assert main(["--check"]) == 0, capsys.readouterr().out
