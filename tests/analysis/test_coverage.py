"""Tests for the redaction-coverage checker (PA002) and meta-rule
applicability (PA006)."""

from repro.analysis.coverage import (
    check_meta_rules,
    check_redaction_coverage,
    victim_image,
)
from repro.lang.parser import parse_program
from repro.programs import REGISTRY

CONTENDED = """
(literalize req n)
(literalize slot owner)
(p claim (req ^n <n>) (slot ^owner nil) --> (modify 2 ^owner <n>))
"""

ARBITER = """
(mp arbitrate-claim
    (instantiation ^rule claim ^id <i>)
    (instantiation ^rule claim ^id {<j> > <i>})
    -->
    (redact <j>))
"""


class TestVictimImage:
    def test_builtins_pinned_variables_unknown(self):
        rule = parse_program(CONTENDED).rules[0]
        image = victim_image(rule)
        cmap = image.constraint_map
        assert cmap["rule"] == (("eq", "claim"),)
        assert cmap["salience"] == (("eq", rule.salience),)
        assert cmap["specificity"] == (("eq", rule.specificity),)
        assert cmap["id"] == (("unknown",),)
        assert cmap["n"] == (("unknown",),)  # the rule's bound variable
        assert image.closed
        assert image.class_name == "instantiation"


class TestCoverage:
    def test_covered_candidate_no_diagnostics(self):
        program = parse_program(CONTENDED + ARBITER)
        diags, summary = check_redaction_coverage(program)
        assert diags == []
        assert summary.checked == summary.covered == 1
        assert summary.uncovered == 0
        assert summary.applicable

    def test_wrong_target_uncovered_with_skeleton_hint(self):
        # The meta-rule arbitrates a *different* rule by constant ^rule.
        other = """
        (p other (req ^n <n>) (slot ^owner full) --> (modify 2 ^owner nil))
        """
        meta = """
        (mp arbitrate-other
            (instantiation ^rule other ^id <i>)
            (instantiation ^rule other ^id {<j> > <i>})
            -->
            (redact <j>))
        """
        program = parse_program(CONTENDED + other + meta)
        diags, summary = check_redaction_coverage(program)
        uncovered_rules = {d.rule for d in diags}
        assert "claim" in uncovered_rules
        assert all(d.code == "PA002" for d in diags)
        assert all(d.hint and "(mp " in d.hint for d in diags)
        assert summary.uncovered == len(diags) > 0

    def test_no_meta_rules_not_applicable(self):
        diags, summary = check_redaction_coverage(parse_program(CONTENDED))
        assert diags == []
        assert not summary.applicable
        assert summary.candidates == 1
        assert summary.checked == 0

    def test_remove_remove_pairs_skipped(self):
        # Double removes are idempotent in the delta merge — benign.
        src = """
        (literalize job n)
        (literalize tick n)
        (p reap-a (tick ^n 1) (job ^n <n>) --> (remove 2))
        (p reap-b (tick ^n 2) (job ^n <n>) --> (remove 2))
        (mp noop
            (instantiation ^rule reap-a ^id <i>)
            (instantiation ^rule reap-a ^id {<j> > <i>})
            -->
            (redact <j>))
        """
        diags, summary = check_redaction_coverage(parse_program(src))
        assert summary.skipped_remove_remove >= 1
        # remove/remove pairs produce no PA002 even though no meta-rule
        # covers (reap-a, reap-b).
        assert not any("reap-b" in (d.message or "") for d in diags)

    def test_untraceable_redact_counts_as_wildcard(self):
        # The redacted id is rebound on the RHS — untraceable, so the
        # meta-rule is assumed able to reach any candidate.
        src = CONTENDED + """
        (mp opaque
            (instantiation ^rule claim ^id <i>)
            -->
            (bind <k> (compute <i> + 0))
            (redact <k>))
        """
        diags, summary = check_redaction_coverage(parse_program(src))
        assert diags == []
        assert summary.covered == summary.checked == 1

    def test_shipped_workloads_have_zero_uncovered(self):
        """Acceptance: no false 'uncovered' warnings on bundled programs."""
        for name in sorted(REGISTRY):
            program = REGISTRY[name]().program
            diags, summary = check_redaction_coverage(program)
            assert diags == [], (name, [d.message for d in diags])
            assert summary.uncovered == 0, name


class TestMetaRuleApplicability:
    def test_unknown_rule_name_pa006(self):
        src = CONTENDED + """
        (mp ghost
            (instantiation ^rule no-such-rule ^id <i>)
            -->
            (redact <i>))
        """
        diags = check_meta_rules(parse_program(src))
        assert [d.code for d in diags] == ["PA006"]
        assert "no-such-rule" in diags[0].message
        assert diags[0].rule == "ghost"

    def test_impossible_attribute_test_pa006(self):
        # 'claim' binds only <n>; testing ^salience against the wrong
        # constant contradicts every reification.
        src = CONTENDED + """
        (mp picky
            (instantiation ^rule claim ^salience 99 ^id <i>)
            -->
            (redact <i>))
        """
        diags = check_meta_rules(parse_program(src))
        assert [d.code for d in diags] == ["PA006"]
        assert "picky" in diags[0].rule

    def test_valid_meta_rule_clean(self):
        assert check_meta_rules(parse_program(CONTENDED + ARBITER)) == []

    def test_shipped_meta_rules_all_applicable(self):
        for name in sorted(REGISTRY):
            program = REGISTRY[name]().program
            assert check_meta_rules(program) == [], name
