"""Tests for the shared PAxxx diagnostics layer."""

import json

import pytest

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    diag,
    render_sarif,
    render_text,
    worst_severity,
)


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO.rank < Severity.WARNING.rank < Severity.ERROR.rank

    def test_sarif_levels(self):
        assert Severity.INFO.sarif_level == "note"
        assert Severity.WARNING.sarif_level == "warning"
        assert Severity.ERROR.sarif_level == "error"


class TestDiagFactory:
    def test_default_severity_from_code_table(self):
        d = diag("PA004", "boom", rule="r")
        assert d.severity is Severity.ERROR
        assert diag("PA001", "x").severity is Severity.WARNING
        assert diag("PA005", "x").severity is Severity.INFO

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="PA999"):
            diag("PA999", "nope")

    def test_span(self):
        assert diag("PA001", "m").span == "<program>"
        assert diag("PA001", "m", rule="r").span == "r"
        assert diag("PA001", "m", rule="r", ce=2).span == "r/CE 2"

    def test_every_code_has_severity_and_description(self):
        for code, (sev, desc) in CODES.items():
            assert isinstance(sev, Severity)
            assert desc

    def test_frozen(self):
        d = diag("PA001", "m")
        with pytest.raises(Exception):
            d.message = "other"


class TestWorstSeverity:
    def test_empty(self):
        assert worst_severity([]) is None

    def test_picks_most_severe(self):
        ds = [diag("PA005", "i"), diag("PA004", "e"), diag("PA001", "w")]
        assert worst_severity(ds) is Severity.ERROR
        assert worst_severity(ds[:1]) is Severity.INFO


class TestRenderText:
    def test_orders_most_severe_first_stably(self):
        ds = [
            diag("PA001", "w1"),
            diag("PA004", "e1"),
            diag("PA005", "i1"),
            diag("PA001", "w2"),
        ]
        lines = render_text(ds).splitlines()
        assert [l.split()[0] for l in lines] == ["PA004", "PA001", "PA001", "PA005"]
        assert "w1" in lines[1] and "w2" in lines[2]  # emission order kept

    def test_hints_indented_and_suppressible(self):
        ds = [diag("PA001", "m", hint="line1\nline2")]
        with_hints = render_text(ds)
        assert "    line1" in with_hints and "    line2" in with_hints
        assert "line1" not in render_text(ds, show_hints=False)


class TestRenderSarif:
    def test_document_shape(self):
        ds = [diag("PA002", "uncovered", rule="r", ce=1, hint="(mp ...)")]
        doc = render_sarif([("prog.pl", ds, {"k": 1})])
        # Round-trips through JSON (no exotic objects).
        doc = json.loads(json.dumps(doc))
        assert doc["version"] == "2.1.0"
        assert "sarif" in doc["$schema"]
        (run,) = doc["runs"]
        assert run["artifacts"][0]["location"]["uri"] == "prog.pl"
        assert run["properties"] == {"k": 1}
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rules == set(CODES)
        (res,) = run["results"]
        assert res["ruleId"] == "PA002"
        assert res["level"] == "warning"
        assert res["message"]["text"] == "uncovered"
        assert (
            res["locations"][0]["logicalLocations"][0]["name"] == "r"
        )
        assert res["properties"]["conditionElement"] == 1
        assert res["properties"]["hint"] == "(mp ...)"

    def test_multiple_runs(self):
        doc = render_sarif(
            [("a", [diag("PA001", "x")], None), ("b", [], {"n": 0})]
        )
        assert len(doc["runs"]) == 2
        assert "properties" not in doc["runs"][0]
        assert doc["runs"][1]["results"] == []
