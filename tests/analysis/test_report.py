"""Tests for the top-level :func:`repro.analysis.analyze` report.

The centerpiece is a deliberately broken fixture that trips every
diagnostic code the analyzer knows, proving each check actually reaches
the report.
"""

import json

from repro.analysis import Severity, analyze, render_sarif
from repro.lang.parser import parse_program
from repro.programs import REGISTRY

# One program, ten pathologies:
#   PA001 — 'claim' can fire twice into the same slot (modify/modify);
#   PA002 — a meta level exists but covers none of claim's candidates;
#   PA003 — 'stranded' reads a class no seed or make ever produces;
#   PA004 — 'never' demands ^n 1 and ^n 2 at once;
#   PA005 — 'ab' makes the very class it negates, inside the ab/ba cycle;
#   PA006 — 'arbitrate-ghost' pins ^rule to a rule that does not exist;
#   PA007 — two 'claim' firings modify the same slot (witnessed race);
#   PA008 — one 'block' firing's make disables the other's negated CE;
#   PA009 — 'mint' uses genatom, so its pairs cannot be classified;
#   PA010 — the hand-rolled 'split@cc*' copies both accept ^n 2.
EVERYTHING_WRONG = """
(literalize req n)
(literalize slot owner)
(literalize a v)
(literalize b v)
(literalize c v)
(literalize tok id)
(literalize orphan v)
(literalize broken n)

(p claim (req ^n <n>) (slot ^owner nil) --> (modify 2 ^owner <n>))
(p stranded (orphan ^v <x>) --> (halt))
(p never (broken ^n 1 ^n 2) --> (halt))
(p ab (a ^v go) - (b ^v stop) --> (make b ^v stop))
(p ba (b ^v stop) --> (make a ^v go))
(p block (a ^v <x>) - (b ^v 1) --> (make b ^v 1) (make c ^v <x>))
(p mint (req ^n <n>) --> (make tok ^id (genatom)))
(p split@cc0 (req ^n << 1 2 >>) --> (remove 1))
(p split@cc1 (req ^n << 2 3 >>) --> (remove 1))

(mp arbitrate-ghost
    (instantiation ^rule no-such ^id <i>)
    -->
    (redact <i>))
"""

SEEDS = ["a", "b", "broken", "req", "slot"]

ALL_CODES = {
    "PA001", "PA002", "PA003", "PA004", "PA005",
    "PA006", "PA007", "PA008", "PA009", "PA010",
}


def everything_wrong_report():
    return analyze(
        parse_program(EVERYTHING_WRONG),
        seed_classes=SEEDS,
        name="everything-wrong",
    )


class TestEveryCodeFires:
    def test_all_ten_codes_triggered(self):
        report = everything_wrong_report()
        assert {d.code for d in report.diagnostics} == ALL_CODES

    def test_each_code_names_the_offending_rule(self):
        report = everything_wrong_report()
        by_code = {}
        for d in report.diagnostics:
            by_code.setdefault(d.code, set()).add(d.rule)
        assert "claim" in by_code["PA001"]
        assert "claim" in by_code["PA002"]
        assert by_code["PA003"] == {"stranded"}
        assert by_code["PA004"] == {"never"}
        assert "ab" in by_code["PA005"]
        assert by_code["PA006"] == {"arbitrate-ghost"}
        assert "claim" in by_code["PA007"]
        assert "block" in by_code["PA008"]
        assert any("mint" in (r or "") for r in by_code["PA009"])
        assert "split@cc0" in by_code["PA010"]

    def test_severities_and_worst(self):
        report = everything_wrong_report()
        assert report.has_errors  # PA004 and PA006 are errors
        assert report.worst is Severity.ERROR
        assert report.dead_rules_checked

    def test_render_text_mentions_every_code(self):
        text = everything_wrong_report().render_text()
        for code in sorted(ALL_CODES):
            assert code in text
        assert "== everything-wrong" in text
        assert "commutativity:" in text

    def test_sarif_round_trips_with_all_codes(self):
        report = everything_wrong_report()
        doc = render_sarif(
            [(report.name, report.diagnostics, report.properties())]
        )
        doc = json.loads(json.dumps(doc))  # must be JSON-serializable
        run = doc["runs"][0]
        seen = {r["ruleId"] for r in run["results"]}
        assert seen == ALL_CODES
        assert run["properties"]["program"] == "everything-wrong"
        assert "commute" in run["properties"]


class TestCleanPrograms:
    def test_registry_reports_have_no_errors(self):
        for name in sorted(REGISTRY):
            report = analyze(REGISTRY[name]().program, name=name)
            assert not report.has_errors, (
                name,
                [d.message for d in report.diagnostics],
            )

    def test_include_lint_false_drops_pa001(self):
        program = parse_program(EVERYTHING_WRONG)
        report = analyze(program, include_lint=False)
        assert not any(d.code == "PA001" for d in report.diagnostics)
        # The other checks are unaffected.
        assert any(d.code == "PA004" for d in report.diagnostics)

    def test_no_seeds_skips_dead_rules(self):
        report = analyze(parse_program(EVERYTHING_WRONG))
        assert not report.dead_rules_checked
        assert not any(d.code == "PA003" for d in report.diagnostics)
