"""Tests for the analysis-driven partition advisor."""

import pytest

from repro.analysis.advisor import (
    analysis_assignment,
    class_weights,
    connectivity_cost,
)
from repro.lang.parser import parse_program
from repro.parallel.partition import (
    Assignment,
    resolve_assignment,
    round_robin_assignment,
)
from repro.programs import REGISTRY

# Two independent clusters of rules; a good 2-way partition separates them.
CLUSTERED = """
(literalize a v)
(literalize b v)
(literalize x v)
(literalize y v)
(p a1 (a ^v <i>) --> (make b ^v <i>))
(p x1 (x ^v <i>) --> (make y ^v <i>))
(p a2 (b ^v <i>) --> (modify 1 ^v done))
(p x2 (y ^v <i>) --> (modify 1 ^v done))
"""


class TestClassWeights:
    def test_writers_raise_weight(self):
        rules = parse_program(CLUSTERED).rules
        w = class_weights(rules)
        # 'b' is written by a1 and a2 (modify) -> 1 + 2.
        assert w["b"] == 3.0
        # 'a' is only read -> base weight.
        assert w["a"] == 1.0


class TestAnalysisAssignment:
    def test_separates_independent_clusters(self):
        rules = parse_program(CLUSTERED).rules
        a = analysis_assignment(rules, 2)
        assert a.site_of["a1"] == a.site_of["a2"]
        assert a.site_of["x1"] == a.site_of["x2"]
        assert a.site_of["a1"] != a.site_of["x1"]
        # Perfect separation: zero cross-site class sharing.
        assert connectivity_cost(a, rules) == 0.0

    def test_beats_or_ties_round_robin_on_registry(self):
        for name in sorted(REGISTRY):
            rules = REGISTRY[name]().program.rules
            for k in (2, 4):
                adv = analysis_assignment(rules, k)
                rr = round_robin_assignment(rules, k)
                assert connectivity_cost(adv, rules) <= connectivity_cost(
                    rr, rules
                ), (name, k)

    def test_deterministic(self):
        rules = REGISTRY["sieve"]().program.rules
        a1 = analysis_assignment(rules, 4)
        a2 = analysis_assignment(rules, 4)
        assert dict(a1.site_of) == dict(a2.site_of)

    def test_validates_and_covers_all_rules(self):
        for name in sorted(REGISTRY):
            rules = REGISTRY[name]().program.rules
            a = analysis_assignment(rules, 3)
            a.validate(rules)  # raises on a missing/out-of-range site
            assert set(a.site_of) == {r.name for r in rules}

    def test_balance_cap_respected_with_unit_weights(self):
        rules = parse_program(CLUSTERED).rules
        a = analysis_assignment(rules, 2)
        loads = [0] * 2
        for site in a.site_of.values():
            loads[site] += 1
        # 4 rules, 2 sites, slack 0.25 -> cap 2.5, so 2/2 split.
        assert sorted(loads) == [2, 2]

    def test_explicit_rule_weights_shift_balance(self):
        rules = parse_program(CLUSTERED).rules
        heavy = {"a1": 10.0, "a2": 1.0, "x1": 1.0, "x2": 1.0}
        a = analysis_assignment(rules, 2, weights=heavy)
        a.validate(rules)
        # The heavy rule cannot share a site with everything else under
        # the cap (total 13, cap ~8.1), so at least two sites are used.
        assert len(set(a.site_of.values())) == 2

    def test_single_site(self):
        rules = parse_program(CLUSTERED).rules
        a = analysis_assignment(rules, 1)
        assert set(a.site_of.values()) == {0}

    def test_no_rules(self):
        a = analysis_assignment([], 3)
        assert a.n_sites == 3
        assert dict(a.site_of) == {}

    def test_bad_site_count(self):
        with pytest.raises(ValueError):
            analysis_assignment([], 0)


class TestResolveAssignment:
    def test_policy_names(self):
        rules = parse_program(CLUSTERED).rules
        rr = resolve_assignment("round-robin", rules, 2)
        assert dict(rr.site_of) == dict(round_robin_assignment(rules, 2).site_of)
        assert dict(resolve_assignment(None, rules, 2).site_of) == dict(
            rr.site_of
        )
        adv = resolve_assignment("analysis", rules, 2)
        assert dict(adv.site_of) == dict(analysis_assignment(rules, 2).site_of)

    def test_concrete_assignment_passthrough(self):
        rules = parse_program(CLUSTERED).rules
        explicit = Assignment(
            n_sites=2, site_of={r.name: 0 for r in rules}
        )
        assert resolve_assignment(explicit, rules, 2) is explicit

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="analysis"):
            resolve_assignment("bogus", [], 2)
