"""Tests for the rule dependency graph, SCCs and stratification."""

from repro.analysis.depgraph import build_dependency_graph
from repro.lang.parser import parse_program
from repro.programs import REGISTRY


def _graph(src: str):
    return build_dependency_graph(parse_program(src))


class TestEdgeDerivation:
    def test_make_feeding_positive_ce_enables(self):
        g = _graph(
            """
            (literalize seed v)
            (literalize out v)
            (p producer (seed ^v <x>) --> (make out ^v <x>))
            (p consumer (out ^v <x>) --> (halt))
            """
        )
        kinds = {(e.src, e.dst, e.kind) for e in g.edges}
        assert ("producer", "consumer", "enables") in kinds
        assert ("consumer", "producer", "enables") not in kinds

    def test_make_feeding_negated_ce_inhibits(self):
        g = _graph(
            """
            (literalize seed v)
            (literalize flag v)
            (p raiser (seed ^v <x>) --> (make flag ^v up))
            (p guarded (seed ^v <x>) - (flag ^v up) --> (halt))
            """
        )
        kinds = {(e.src, e.dst, e.kind) for e in g.edges}
        assert ("raiser", "guarded", "inhibits") in kinds

    def test_remove_unblocking_negated_ce_enables(self):
        g = _graph(
            """
            (literalize flag v)
            (literalize seed v)
            (p clearer (flag ^v up) --> (remove 1))
            (p guarded (seed ^v <x>) - (flag ^v up) --> (halt))
            """
        )
        kinds = {(e.src, e.dst, e.kind) for e in g.edges}
        assert ("clearer", "guarded", "enables") in kinds
        # The remove also destroys matches of clearer itself (positive CE).
        assert ("clearer", "clearer", "inhibits") in kinds

    def test_disjoint_constants_no_edge(self):
        g = _graph(
            """
            (literalize item kind v)
            (p writer (item ^kind a ^v <x>) --> (modify 1 ^v done))
            (p reader (item ^kind b ^v done) --> (halt))
            """
        )
        # writer's modify keeps ^kind a; reader demands ^kind b.
        assert not [
            e for e in g.edges if e.src == "writer" and e.dst == "reader"
        ]

    def test_closed_make_cannot_feed_demanding_ce(self):
        g = _graph(
            """
            (literalize item phase v)
            (p maker (item ^phase boot ^v <x>) --> (make item ^v 1))
            (p reader (item ^phase run) --> (halt))
            """
        )
        # maker's make never assigns ^phase => reads back nil, not 'run'.
        assert not [
            e
            for e in g.edges
            if e.src == "maker" and e.dst == "reader" and e.kind == "enables"
        ]

    def test_conflicts_from_lint_candidates(self):
        g = _graph(
            """
            (literalize req n)
            (literalize slot owner)
            (p claim (req ^n <n>) (slot ^owner nil) --> (modify 2 ^owner <n>))
            """
        )
        conflicts = g.edges_of_kind("conflicts")
        assert len(conflicts) == 1
        assert conflicts[0].src == conflicts[0].dst == "claim"
        assert conflicts[0].class_name == "slot"


class TestSccAndStrata:
    CHAIN = """
    (literalize a v)
    (literalize b v)
    (literalize c v)
    (p first (a ^v <x>) --> (make b ^v <x>))
    (p second (b ^v <x>) --> (make c ^v <x>))
    (p third (c ^v <x>) --> (halt))
    """

    def test_acyclic_chain_strata(self):
        g = _graph(self.CHAIN)
        assert g.stratum_of["first"] == 0
        assert g.stratum_of["second"] == 1
        assert g.stratum_of["third"] == 2
        assert g.strata() == [["first"], ["second"], ["third"]]
        assert g.cyclic_sccs() == []
        assert g.is_stratified

    def test_mutual_recursion_one_scc(self):
        g = _graph(
            """
            (literalize a v)
            (literalize b v)
            (p ab (a ^v <x>) --> (make b ^v <x>))
            (p ba (b ^v <x>) --> (make a ^v <x>))
            """
        )
        assert g.scc_of["ab"] == g.scc_of["ba"]
        assert len(g.cyclic_sccs()) == 1
        assert g.n_strata == 1

    def test_self_loop_is_cyclic(self):
        g = _graph(
            """
            (literalize path v)
            (p grow (path ^v <x>) --> (make path ^v <x>))
            """
        )
        assert g.cyclic_sccs() == [("grow",)]

    def test_inhibits_inside_scc_breaks_stratification(self):
        g = _graph(
            """
            (literalize a v)
            (literalize b v)
            (p ab (a ^v go) - (b ^v stop) --> (make b ^v stop))
            (p ba (b ^v stop) --> (make a ^v go))
            """
        )
        assert g.scc_of["ab"] == g.scc_of["ba"]
        bad = g.unstratified_inhibits()
        assert any(e.src == "ab" and e.dst == "ab" or e.dst == "ab" for e in bad)
        assert not g.is_stratified

    def test_stats_keys(self):
        stats = _graph(self.CHAIN).stats()
        assert stats["rules"] == 3
        assert stats["strata"] == 3
        assert stats["stratified"] is True
        for key in ("edges", "enables", "inhibits", "conflicts", "sccs",
                    "largestScc", "cyclicSccs"):
            assert key in stats


class TestRegistry:
    def test_every_workload_builds(self):
        for name in sorted(REGISTRY):
            wl = REGISTRY[name]()
            g = build_dependency_graph(wl.program)
            assert set(g.rules) == {r.name for r in wl.program.rules}
            assert set(g.stratum_of) == set(g.rules)
            # Every rule is in exactly one SCC.
            members = [n for scc in g.sccs for n in scc]
            assert sorted(members) == sorted(g.rules)

    def test_tc_is_cyclic(self):
        g = build_dependency_graph(REGISTRY["tc"]().program)
        assert g.cyclic_sccs()  # tc-extend feeds itself
