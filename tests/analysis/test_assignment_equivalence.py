"""Acceptance: ``assignment="analysis"`` changes *where* rules run, never
*what* the run computes.

On every bundled workload the distributed machine must produce a
byte-identical final working memory under the analysis partition and
under round-robin; the process match backend must do the same through
the full engine, and still pass the workload's own verifier.
"""

import pytest

from repro.parallel.distributed import DistributedMachine
from repro.programs import REGISTRY
from repro.wm.io import dumps


def _final_wm(workload, policy: str) -> str:
    machine = DistributedMachine(
        workload.program, 4, assignment=policy, multicast=True
    )
    workload.setup(machine)
    machine.run()
    return dumps(machine.replicas[0])


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_distributed_final_wm_identical(name):
    workload = REGISTRY[name]()
    assert _final_wm(workload, "analysis") == _final_wm(
        workload, "round-robin"
    )


def test_analysis_never_costlier_in_messages():
    # The advisor's whole point: multicast scatter ships fewer deltas.
    from repro.parallel.distributed import DistResult  # noqa: F401

    improved = 0
    for name in sorted(REGISTRY):
        workload = REGISTRY[name]()
        messages = {}
        for policy in ("round-robin", "analysis"):
            machine = DistributedMachine(
                workload.program, 4, assignment=policy, multicast=True
            )
            workload.setup(machine)
            messages[policy] = machine.run().messages
        assert messages["analysis"] <= messages["round-robin"], name
        if messages["analysis"] < messages["round-robin"]:
            improved += 1
    # The acceptance floor: a real reduction on at least two workloads.
    assert improved >= 2


def test_process_backend_verifies_under_analysis_assignment():
    from repro.core.engine import EngineConfig, ParulelEngine

    workload = REGISTRY["tc"]()
    dumps_by_policy = {}
    for policy in ("round-robin", "analysis"):
        engine = ParulelEngine(
            workload.program,
            EngineConfig(matcher="process:2", assignment=policy),
        )
        workload.setup(engine)
        engine.run()
        assert all(workload.verify(engine.wm).values())
        dumps_by_policy[policy] = dumps(engine.wm)
    assert dumps_by_policy["analysis"] == dumps_by_policy["round-robin"]
