"""Tests for the ``parulel analyze`` command-line entry point."""

import json

import pytest

from repro.cli import main

CLEAN = """
(literalize edge src dst)
(literalize path src dst)
(p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
 --> (make path ^src <a> ^dst <b>))
"""

# 'never' carries a PA004 (error severity): exit code must be 1.
BROKEN = CLEAN + """
(p never (edge ^src a ^src b) --> (halt))
"""

# A candidate (warning severity) but no errors: exit code stays 0.
CONTENDED = """
(literalize req n)
(literalize slot owner)
(p claim (req ^n <n>) (slot ^owner nil) --> (modify 2 ^owner <n>))
"""


def _write(tmp_path, name, src):
    path = tmp_path / name
    path.write_text(src)
    return str(path)


class TestFileMode:
    def test_clean_program_exit_zero(self, tmp_path, capsys):
        rc = main(["analyze", _write(tmp_path, "tc.pl", CLEAN)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dependency graph:" in out
        assert "stratification:" in out

    def test_warnings_only_exit_zero(self, tmp_path, capsys):
        rc = main(["analyze", _write(tmp_path, "c.pl", CONTENDED)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PA001" in out
        assert "(mp " in out  # the skeleton hint is shown by default

    def test_no_hints_suppresses_skeletons(self, tmp_path, capsys):
        rc = main(
            ["analyze", "--no-hints", _write(tmp_path, "c.pl", CONTENDED)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "PA001" in out
        assert "(mp " not in out

    def test_error_severity_exit_one(self, tmp_path, capsys):
        rc = main(["analyze", _write(tmp_path, "b.pl", BROKEN)])
        assert rc == 1
        assert "PA004" in capsys.readouterr().out

    def test_parse_error_exit_two(self, tmp_path, capsys):
        rc = main(["analyze", _write(tmp_path, "bad.pl", "(p broken")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_exit_two(self, capsys):
        rc = main(["analyze", "/nonexistent/prog.pl"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_facts_enable_dead_rule_check(self, tmp_path, capsys):
        program = _write(
            tmp_path,
            "dead.pl",
            CLEAN + "(literalize orphan v)\n"
            "(p stranded (orphan ^v <x>) --> (halt))\n",
        )
        facts = _write(tmp_path, "facts.pl", "(edge ^src a ^dst b)")
        rc = main(["analyze", program, "--facts", facts])
        assert rc == 0  # PA003 is a warning
        out = capsys.readouterr().out
        assert "PA003" in out
        assert "stranded" in out

    def test_facts_without_program_exit_two(self, tmp_path, capsys):
        facts = _write(tmp_path, "facts.pl", "(edge ^src a ^dst b)")
        rc = main(["analyze", "--facts", facts])
        assert rc == 2
        assert "--facts requires" in capsys.readouterr().err


class TestRegistryMode:
    def test_analyzes_every_bundled_workload(self, capsys):
        rc = main(["analyze", "--no-hints"])
        assert rc == 0  # acceptance: no error-severity findings shipped
        out = capsys.readouterr().out
        from repro.programs import REGISTRY

        for name in sorted(REGISTRY):
            assert f"== {name}" in out


class TestSarifMode:
    def test_sarif_shape(self, tmp_path, capsys):
        rc = main(["analyze", "--sarif", _write(tmp_path, "c.pl", CONTENDED)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert "sarif" in doc["$schema"]
        (run,) = doc["runs"]
        assert run["results"], "expected at least the PA001 result"
        result = run["results"][0]
        assert result["ruleId"] == "PA001"
        assert result["level"] == "warning"
        # Per-run properties carry the graph/coverage summary bags.
        assert "graph" in run["properties"]
        assert "coverage" in run["properties"]

    def test_sarif_exit_code_still_reflects_errors(self, tmp_path, capsys):
        rc = main(["analyze", "--sarif", _write(tmp_path, "b.pl", BROKEN)])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert any(
            r["ruleId"] == "PA004" and r["level"] == "error"
            for r in doc["runs"][0]["results"]
        )

    def test_registry_sarif_one_run_per_workload(self, capsys):
        rc = main(["analyze", "--sarif"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        from repro.programs import REGISTRY

        assert len(doc["runs"]) == len(REGISTRY)


class TestJsonMode:
    def test_machine_json_shape(self, tmp_path, capsys):
        rc = main(["analyze", "--json", _write(tmp_path, "c.pl", CONTENDED)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        (prog,) = doc["programs"]
        assert prog["worst"] == "warning"
        assert prog["hasErrors"] is False
        assert "graph" in prog["properties"]
        assert "commute" in prog["properties"]
        codes = {d["code"] for d in prog["diagnostics"]}
        assert "PA001" in codes
        first = prog["diagnostics"][0]
        assert set(first) == {"code", "severity", "rule", "ce", "message", "hint"}

    def test_json_exit_code_still_reflects_errors(self, tmp_path, capsys):
        rc = main(["analyze", "--json", _write(tmp_path, "b.pl", BROKEN)])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        (prog,) = doc["programs"]
        assert prog["hasErrors"] is True
        assert any(
            d["code"] == "PA004" and d["severity"] == "error"
            for d in prog["diagnostics"]
        )

    def test_registry_json_one_entry_per_workload(self, capsys):
        rc = main(["analyze", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        from repro.programs import REGISTRY

        assert len(doc["programs"]) == len(REGISTRY)

    def test_json_and_sarif_are_mutually_exclusive(self, tmp_path, capsys):
        rc = main(
            ["analyze", "--json", "--sarif", _write(tmp_path, "c.pl", CONTENDED)]
        )
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err
