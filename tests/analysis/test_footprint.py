"""Tests for read/write footprints and the conservative overlap test."""

from repro.analysis.footprint import (
    WriteImage,
    ce_constraints,
    constraints_satisfiable,
    footprint_classes,
    may_overlap,
    rule_footprint,
)
from repro.lang.parser import parse_program
from repro.match.compile import compile_rule
from repro.wm.wme import NIL


def _rule(src: str, name: str = None):
    program = parse_program(src)
    return program.rules[0] if name is None else program.rule(name)


class TestCeConstraints:
    def test_constants_memberships_and_predicates(self):
        rule = _rule(
            """
            (literalize item state n tag)
            (p r (item ^state open ^n {<x> > 3} ^tag << a b >>) --> (halt))
            """
        )
        conds = ce_constraints(compile_rule(rule).ces[0])
        assert ("eq", "open") in conds["state"]
        assert ("pred", ">", 3) in conds["n"]
        assert ("in", ("a", "b")) in conds["tag"]

    def test_plain_variable_unconstrained(self):
        rule = _rule(
            """
            (literalize item n)
            (p r (item ^n <x>) --> (halt))
            """
        )
        assert ce_constraints(compile_rule(rule).ces[0]) == {}


class TestRuleFootprint:
    SRC = """
    (literalize src a)
    (literalize dst a b)
    (p r
        (src ^a <x>)
        (dst ^a <x> ^b old)
        -->
        (make dst ^a 1)
        (modify 2 ^b new)
        (remove 1))
    """

    def test_write_kinds_and_classes(self):
        fp = rule_footprint(_rule(self.SRC))
        kinds = [(w.kind, w.class_name) for w in fp.writes]
        assert kinds == [("make", "dst"), ("modify", "dst"), ("remove", "src")]
        assert fp.classes_read == {"src", "dst"}
        assert fp.classes_written == {"src", "dst"}

    def test_make_image_closed_with_constant(self):
        make = rule_footprint(_rule(self.SRC)).writes[0]
        assert make.closed
        assert make.constraint_map["a"] == (("eq", 1),)
        assert "b" not in make.constraint_map  # absent => nil

    def test_modify_overrides_target_constraints(self):
        mod = rule_footprint(_rule(self.SRC)).writes[1]
        assert not mod.closed
        # ^b was 'old' in the CE but the modify sets it to 'new'.
        assert mod.constraint_map["b"] == (("eq", "new"),)

    def test_computed_assignment_is_unknown(self):
        fp = rule_footprint(
            _rule(
                """
                (literalize c v)
                (p r (c ^v <x>) --> (modify 1 ^v (compute <x> + 1)))
                """
            )
        )
        assert fp.writes[0].constraint_map["v"] == (("unknown",),)


class TestSatisfiability:
    def test_eq_eq_conflict(self):
        assert not constraints_satisfiable([("eq", 1), ("eq", 2)])
        assert constraints_satisfiable([("eq", 1), ("eq", 1)])

    def test_eq_vs_pred(self):
        assert constraints_satisfiable([("eq", 5), ("pred", ">", 3)])
        assert not constraints_satisfiable([("eq", 2), ("pred", ">", 3)])
        assert constraints_satisfiable([("eq", "sym"), ("pred", "<>", "x")])

    def test_eq_vs_membership(self):
        assert constraints_satisfiable([("eq", "a"), ("in", ("a", "b"))])
        assert not constraints_satisfiable([("eq", "c"), ("in", ("a", "b"))])

    def test_disjoint_memberships(self):
        assert not constraints_satisfiable([("in", ("a",)), ("in", ("b", "c"))])
        assert constraints_satisfiable([("in", ("a", "b")), ("in", ("b",))])

    def test_empty_numeric_range(self):
        assert not constraints_satisfiable([("pred", ">", 5), ("pred", "<", 3)])
        assert constraints_satisfiable([("pred", ">", 3), ("pred", "<", 5)])
        assert not constraints_satisfiable([("pred", ">", 3), ("pred", "<", 3)])
        assert constraints_satisfiable([("pred", ">=", 3), ("pred", "<=", 3)])

    def test_not_equal_never_disproves(self):
        assert constraints_satisfiable([("pred", "<>", 1), ("pred", "<>", 2)])

    def test_unknown_always_satisfiable(self):
        assert constraints_satisfiable([("unknown",), ("eq", 1), ("eq", 1)])

    def test_absent_reads_back_as_nil(self):
        assert constraints_satisfiable([("absent",), ("eq", NIL)])
        assert not constraints_satisfiable([("absent",), ("eq", "x")])


class TestMayOverlap:
    def _image(self, cls="item", closed=False, **attrs):
        return WriteImage(
            rule="w",
            kind="make",
            class_name=cls,
            constraints=tuple(
                sorted((a, (("eq", v),)) for a, v in attrs.items())
            ),
            closed=closed,
        )

    def test_class_mismatch_disjoint(self):
        assert not may_overlap(self._image(cls="other"), {}, "item")

    def test_constant_contradiction_disjoint(self):
        image = self._image(state="open")
        assert not may_overlap(image, {"state": (("eq", "closed"),)}, "item")
        assert may_overlap(image, {"state": (("eq", "open"),)}, "item")

    def test_closed_image_absent_attr_vs_required_constant(self):
        # A make that never assigns ^tag cannot feed a CE demanding ^tag x.
        image = self._image(closed=True, state="open")
        assert not may_overlap(image, {"tag": (("eq", "x"),)}, "item")
        # ... but satisfies a CE demanding ^tag nil.
        assert may_overlap(image, {"tag": (("eq", NIL),)}, "item")

    def test_open_image_unlisted_attr_is_unknown(self):
        image = self._image(closed=False, state="open")
        assert may_overlap(image, {"tag": (("eq", "x"),)}, "item")


class TestFootprintClasses:
    def test_union_of_reads_and_writes(self):
        program = parse_program(
            """
            (literalize a v)
            (literalize b v)
            (p r (a ^v <x>) --> (make b ^v <x>))
            """
        )
        assert footprint_classes(program.rules) == {"r": frozenset({"a", "b"})}


class TestNegatedCes:
    SRC = """
    (literalize edge src dst)
    (literalize path src dst)
    (p init
        (edge ^src <a> ^dst <b>)
        -(path ^src <a> ^dst <b>)
        -->
        (make path ^src <a> ^dst <b>))
    """

    def test_negated_ce_constraints_still_computed(self):
        # The guard's alpha constraints are analyzable exactly like a
        # positive CE's — may_overlap against the rule's own make image
        # is what PA005/inhibits edges and the commute channels consume.
        rule = _rule(self.SRC)
        compiled = compile_rule(rule)
        neg = compiled.ces[1]
        assert neg.negated
        # All tests on the guard are variable joins — no static constants.
        assert ce_constraints(neg) == {}

    def test_negated_class_counted_as_read(self):
        fp = rule_footprint(_rule(self.SRC))
        assert "path" in fp.classes_read

    def test_make_image_overlaps_own_guard(self):
        # Self-inhibition: the make's post-image may alias the negated CE
        # (same class, variable-valued attrs are 'var' constraints which
        # never disprove overlap).
        fp = rule_footprint(_rule(self.SRC))
        (make_image,) = [w for w in fp.writes if w.kind == "make"]
        guard = compile_rule(fp.rule).ces[1]
        assert may_overlap(make_image, ce_constraints(guard), "path")

    def test_constant_guard_vs_disjoint_make(self):
        rule = _rule(
            """
            (literalize tok color)
            (p r (tok ^color red) -(tok ^color blue)
             --> (make tok ^color red))
            """
        )
        fp = rule_footprint(rule)
        (make_image,) = fp.writes
        guard = compile_rule(rule).ces[1]
        # ^color red can never satisfy the guard's ^color blue.
        assert not may_overlap(make_image, ce_constraints(guard), "tok")


class TestMetaRuleFootprints:
    SRC = """
    (literalize slot owner)
    (literalize req n)
    (p claim (slot ^owner nil) (req ^n <n>) --> (modify 1 ^owner <n>))
    (mp arbitrate
        (instantiation ^rule claim ^id <i>)
        (instantiation ^rule claim ^id {<j> > <i>})
        -->
        (redact <j>))
    """

    def test_meta_rule_reads_instantiation_class(self):
        program = parse_program(self.SRC)
        (meta,) = program.meta_rules
        fp = rule_footprint(meta)
        assert fp.classes_read == frozenset({"instantiation"})

    def test_redact_contributes_no_write_image(self):
        # Redaction deletes a *reification*, not an ordinary WME: the
        # footprint's write side must stay empty so the dependency graph
        # never derives object-level edges from meta arbitration.
        program = parse_program(self.SRC)
        (meta,) = program.meta_rules
        fp = rule_footprint(meta)
        assert fp.writes == ()
        assert fp.classes_written == frozenset()

    def test_meta_reading_and_redacting_same_class(self):
        # Both CEs read the class the redact targets — the read-side
        # constraint maps must keep the two CEs' distinct ^id constraints
        # apart (one 'eq'-free binding, one predicate join).
        program = parse_program(self.SRC)
        (meta,) = program.meta_rules
        compiled = compile_rule(meta)
        c0 = ce_constraints(compiled.ces[0])
        c1 = ce_constraints(compiled.ces[1])
        assert c0["rule"] == (("eq", "claim"),)
        assert c1["rule"] == (("eq", "claim"),)
        # <i>/<j> are bindings/joins, not alpha constraints.
        assert "id" not in c0
        assert "id" not in c1


class TestModifyReadWriteSameWme:
    SRC = """
    (literalize slot owner state)
    (literalize req n)
    (p claim
        (slot ^owner nil ^state open)
        (req ^n <n>)
        -->
        (modify 1 ^owner <n>))
    """

    def test_modify_image_inherits_unwritten_reads(self):
        # The modify target is read and written by the same action: the
        # post-image must keep the *unassigned* attributes' constraints
        # (^state open survives) while the assigned one is overridden.
        fp = rule_footprint(_rule(self.SRC))
        (image,) = fp.writes
        assert image.kind == "modify" and image.ce_index == 1
        cmap = image.constraint_map
        assert cmap["state"] == (("pred", "=", "open"),) or cmap["state"] == (
            ("eq", "open"),
        )

    def test_assigned_attr_overridden_with_var_kind(self):
        # ^owner nil is overwritten by the bound variable <n>: the image
        # must NOT claim the post-WME still has ^owner nil, and the 'var'
        # kind records where the value comes from.
        fp = rule_footprint(_rule(self.SRC))
        (image,) = fp.writes
        assert image.constraint_map["owner"] == (("var", "n"),)

    def test_post_image_no_longer_feeds_own_pattern(self):
        # After the modify, ^owner is <n> (a req number) — but 'var' is
        # conservative, so overlap with ^owner nil must still be assumed
        # (refinement only on proof).
        fp = rule_footprint(_rule(self.SRC))
        (image,) = fp.writes
        assert may_overlap(image, {"owner": (("eq", NIL),)}, "slot")

    def test_constant_overwrite_is_proof(self):
        rule = _rule(
            """
            (literalize slot owner)
            (p close (slot ^owner nil) --> (modify 1 ^owner taken))
            """
        )
        (image,) = rule_footprint(rule).writes
        # The post-image provably has ^owner taken: reads demanding nil
        # are disjoint — this is what breaks false self-enablement edges.
        assert not may_overlap(image, {"owner": (("eq", NIL),)}, "slot")
        assert may_overlap(image, {"owner": (("eq", "taken"),)}, "slot")
