"""Tests for read/write footprints and the conservative overlap test."""

from repro.analysis.footprint import (
    WriteImage,
    ce_constraints,
    constraints_satisfiable,
    footprint_classes,
    may_overlap,
    rule_footprint,
)
from repro.lang.parser import parse_program
from repro.match.compile import compile_rule
from repro.wm.wme import NIL


def _rule(src: str, name: str = None):
    program = parse_program(src)
    return program.rules[0] if name is None else program.rule(name)


class TestCeConstraints:
    def test_constants_memberships_and_predicates(self):
        rule = _rule(
            """
            (literalize item state n tag)
            (p r (item ^state open ^n {<x> > 3} ^tag << a b >>) --> (halt))
            """
        )
        conds = ce_constraints(compile_rule(rule).ces[0])
        assert ("eq", "open") in conds["state"]
        assert ("pred", ">", 3) in conds["n"]
        assert ("in", ("a", "b")) in conds["tag"]

    def test_plain_variable_unconstrained(self):
        rule = _rule(
            """
            (literalize item n)
            (p r (item ^n <x>) --> (halt))
            """
        )
        assert ce_constraints(compile_rule(rule).ces[0]) == {}


class TestRuleFootprint:
    SRC = """
    (literalize src a)
    (literalize dst a b)
    (p r
        (src ^a <x>)
        (dst ^a <x> ^b old)
        -->
        (make dst ^a 1)
        (modify 2 ^b new)
        (remove 1))
    """

    def test_write_kinds_and_classes(self):
        fp = rule_footprint(_rule(self.SRC))
        kinds = [(w.kind, w.class_name) for w in fp.writes]
        assert kinds == [("make", "dst"), ("modify", "dst"), ("remove", "src")]
        assert fp.classes_read == {"src", "dst"}
        assert fp.classes_written == {"src", "dst"}

    def test_make_image_closed_with_constant(self):
        make = rule_footprint(_rule(self.SRC)).writes[0]
        assert make.closed
        assert make.constraint_map["a"] == (("eq", 1),)
        assert "b" not in make.constraint_map  # absent => nil

    def test_modify_overrides_target_constraints(self):
        mod = rule_footprint(_rule(self.SRC)).writes[1]
        assert not mod.closed
        # ^b was 'old' in the CE but the modify sets it to 'new'.
        assert mod.constraint_map["b"] == (("eq", "new"),)

    def test_computed_assignment_is_unknown(self):
        fp = rule_footprint(
            _rule(
                """
                (literalize c v)
                (p r (c ^v <x>) --> (modify 1 ^v (compute <x> + 1)))
                """
            )
        )
        assert fp.writes[0].constraint_map["v"] == (("unknown",),)


class TestSatisfiability:
    def test_eq_eq_conflict(self):
        assert not constraints_satisfiable([("eq", 1), ("eq", 2)])
        assert constraints_satisfiable([("eq", 1), ("eq", 1)])

    def test_eq_vs_pred(self):
        assert constraints_satisfiable([("eq", 5), ("pred", ">", 3)])
        assert not constraints_satisfiable([("eq", 2), ("pred", ">", 3)])
        assert constraints_satisfiable([("eq", "sym"), ("pred", "<>", "x")])

    def test_eq_vs_membership(self):
        assert constraints_satisfiable([("eq", "a"), ("in", ("a", "b"))])
        assert not constraints_satisfiable([("eq", "c"), ("in", ("a", "b"))])

    def test_disjoint_memberships(self):
        assert not constraints_satisfiable([("in", ("a",)), ("in", ("b", "c"))])
        assert constraints_satisfiable([("in", ("a", "b")), ("in", ("b",))])

    def test_empty_numeric_range(self):
        assert not constraints_satisfiable([("pred", ">", 5), ("pred", "<", 3)])
        assert constraints_satisfiable([("pred", ">", 3), ("pred", "<", 5)])
        assert not constraints_satisfiable([("pred", ">", 3), ("pred", "<", 3)])
        assert constraints_satisfiable([("pred", ">=", 3), ("pred", "<=", 3)])

    def test_not_equal_never_disproves(self):
        assert constraints_satisfiable([("pred", "<>", 1), ("pred", "<>", 2)])

    def test_unknown_always_satisfiable(self):
        assert constraints_satisfiable([("unknown",), ("eq", 1), ("eq", 1)])

    def test_absent_reads_back_as_nil(self):
        assert constraints_satisfiable([("absent",), ("eq", NIL)])
        assert not constraints_satisfiable([("absent",), ("eq", "x")])


class TestMayOverlap:
    def _image(self, cls="item", closed=False, **attrs):
        return WriteImage(
            rule="w",
            kind="make",
            class_name=cls,
            constraints=tuple(
                sorted((a, (("eq", v),)) for a, v in attrs.items())
            ),
            closed=closed,
        )

    def test_class_mismatch_disjoint(self):
        assert not may_overlap(self._image(cls="other"), {}, "item")

    def test_constant_contradiction_disjoint(self):
        image = self._image(state="open")
        assert not may_overlap(image, {"state": (("eq", "closed"),)}, "item")
        assert may_overlap(image, {"state": (("eq", "open"),)}, "item")

    def test_closed_image_absent_attr_vs_required_constant(self):
        # A make that never assigns ^tag cannot feed a CE demanding ^tag x.
        image = self._image(closed=True, state="open")
        assert not may_overlap(image, {"tag": (("eq", "x"),)}, "item")
        # ... but satisfies a CE demanding ^tag nil.
        assert may_overlap(image, {"tag": (("eq", NIL),)}, "item")

    def test_open_image_unlisted_attr_is_unknown(self):
        image = self._image(closed=False, state="open")
        assert may_overlap(image, {"tag": (("eq", "x"),)}, "item")


class TestFootprintClasses:
    def test_union_of_reads_and_writes(self):
        program = parse_program(
            """
            (literalize a v)
            (literalize b v)
            (p r (a ^v <x>) --> (make b ^v <x>))
            """
        )
        assert footprint_classes(program.rules) == {"r": frozenset({"a", "b"})}
