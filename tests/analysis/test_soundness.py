"""Lint soundness: every *runtime* interference is a *static* candidate.

The lint (PA001) is allowed to over-approximate — flagging pairs that
never actually clash — but it must never under-approximate: if the merge
step raises :class:`InterferenceError` for a pair of rules, that pair
must be among the statically reported candidates. We strip each bundled
workload's meta-rules (they exist precisely to prevent interference) and
run under the ERROR policy to provoke the clashes.
"""

import pytest

from repro.core.engine import ParulelEngine
from repro.errors import CycleLimitExceeded, InterferenceError
from repro.lang.ast import Program
from repro.programs import REGISTRY
from repro.tools.lint import find_interference_candidates


def _stripped(program: Program) -> Program:
    return Program(
        literalizes=program.literalizes,
        rules=program.rules,
        meta_rules=(),
    )


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_runtime_interference_is_statically_predicted(name):
    workload = REGISTRY[name]()
    program = _stripped(workload.program)
    static_pairs = {
        frozenset((c.rule_a, c.rule_b))
        for c in find_interference_candidates(program)
    }

    engine = ParulelEngine(program)
    workload.setup(engine)
    try:
        engine.run(max_cycles=50)
    except CycleLimitExceeded:
        pass  # didn't clash within the budget — vacuously sound
    except InterferenceError as exc:
        # The error must carry the clashing pair, and the pair must be
        # a subset of what the static analysis promised to warn about.
        assert exc.rules, "InterferenceError lost its rule attribution"
        assert frozenset(exc.rules) in static_pairs, (name, exc.rules)


def test_interference_error_carries_rules():
    # Directly provoke a modify/modify clash and check the attribution.
    src = """
    (literalize req n)
    (literalize slot owner)
    (p claim (req ^n <n>) (slot ^owner nil) --> (modify 2 ^owner <n>))
    """
    from repro.lang.parser import parse_program

    engine = ParulelEngine(parse_program(src))
    engine.make("req", n=1)
    engine.make("req", n=2)
    engine.make("slot", owner="nil")
    with pytest.raises(InterferenceError) as excinfo:
        engine.run(max_cycles=5)
    assert excinfo.value.rules == ("claim", "claim")
