"""Tests for dead-rule (PA003) and unsatisfiable-CE (PA004) detection."""

from repro.analysis.deadcode import check_dead_rules, check_unsatisfiable_ces
from repro.lang.parser import parse_program
from repro.programs import REGISTRY


class TestUnsatisfiableCes:
    def test_contradictory_constants(self):
        program = parse_program(
            """
            (literalize item n)
            (p never (item ^n 1 ^n 2) --> (halt))
            """
        )
        diags = check_unsatisfiable_ces(program)
        assert [d.code for d in diags] == ["PA004"]
        assert diags[0].rule == "never"
        assert diags[0].ce == 1
        assert "^n" in diags[0].message

    def test_empty_numeric_range(self):
        program = parse_program(
            """
            (literalize item n)
            (p never (item ^n {<x> > 5 < 3}) --> (halt))
            """
        )
        assert [d.code for d in check_unsatisfiable_ces(program)] == ["PA004"]

    def test_irreflexive_self_comparison(self):
        program = parse_program(
            """
            (literalize item n)
            (p never (item ^n {<x> <> <x>}) --> (halt))
            """
        )
        assert [d.code for d in check_unsatisfiable_ces(program)] == ["PA004"]

    def test_meta_rules_also_checked(self):
        program = parse_program(
            """
            (literalize item n)
            (p ok (item ^n <x>) --> (modify 1 ^n 1))
            (mp never
                (instantiation ^rule ok ^rule other ^id <i>)
                -->
                (redact <i>))
            """
        )
        diags = check_unsatisfiable_ces(program)
        assert any(d.rule == "never" for d in diags)

    def test_satisfiable_program_clean(self):
        program = parse_program(
            """
            (literalize item n)
            (p fine (item ^n {<x> > 3 < 10}) --> (halt))
            """
        )
        assert check_unsatisfiable_ces(program) == []

    def test_shipped_workloads_clean(self):
        for name in sorted(REGISTRY):
            assert check_unsatisfiable_ces(REGISTRY[name]().program) == [], name


class TestDeadRules:
    CHAIN = """
    (literalize seed v)
    (literalize mid v)
    (literalize orphan v)
    (p step (seed ^v <x>) --> (make mid ^v <x>))
    (p use (mid ^v <x>) --> (halt))
    (p stranded (orphan ^v <x>) --> (halt))
    """

    def test_no_seeds_skips_check(self):
        assert check_dead_rules(parse_program(self.CHAIN), None) == []

    def test_fixpoint_reaches_through_makes(self):
        diags = check_dead_rules(parse_program(self.CHAIN), ["seed"])
        assert [d.code for d in diags] == ["PA003"]
        assert diags[0].rule == "stranded"
        assert "orphan" in diags[0].message

    def test_modify_does_not_bootstrap_a_class(self):
        program = parse_program(
            """
            (literalize seed v)
            (literalize ghost v)
            (p toucher (seed ^v <x>) (ghost ^v old) --> (modify 2 ^v new))
            (p reader (ghost ^v new) --> (halt))
            """
        )
        dead = {d.rule for d in check_dead_rules(program, ["seed"])}
        # Neither rule can fire: nothing ever *makes* a ghost.
        assert dead == {"toucher", "reader"}

    def test_negated_ces_do_not_kill(self):
        program = parse_program(
            """
            (literalize seed v)
            (literalize never v)
            (p guarded (seed ^v <x>) - (never ^v y) --> (halt))
            """
        )
        assert check_dead_rules(program, ["seed"]) == []

    def test_instantiation_class_implicitly_available(self):
        # Rules reading the reified conflict set are never dead for it.
        program = parse_program(
            """
            (literalize seed v)
            (p fine (seed ^v <x>) --> (modify 1 ^v done))
            """
        )
        assert check_dead_rules(program, ["seed"]) == []

    def test_shipped_workloads_have_no_dead_rules(self):
        from repro.wm.memory import WorkingMemory
        from repro.wm.template import TemplateRegistry

        for name in sorted(REGISTRY):
            wl = REGISTRY[name]()

            class Collector:
                def __init__(self, program):
                    self.wm = WorkingMemory(TemplateRegistry.from_program(program))

                def make(self, cls, attrs=None, **kw):
                    self.wm.make(cls, attrs, **kw)

            c = Collector(wl.program)
            wl.setup(c)
            seeds = {w.class_name for w in c.wm}
            assert check_dead_rules(wl.program, seeds) == [], name
