"""Tests for the tooling package (DOT export, WM diff)."""

import pytest

from repro.core import EngineConfig, ParulelEngine
from repro.lang.parser import parse_program
from repro.match.rete import ReteMatcher
from repro.tools import diff_wm, provenance_to_dot, rete_to_dot
from repro.wm.memory import WorkingMemory

TC = """
(literalize edge src dst)
(literalize path src dst)
(p tc-init (edge ^src <a> ^dst <b>) -(path ^src <a> ^dst <b>)
 --> (make path ^src <a> ^dst <b>))
(p tc-extend (path ^src <a> ^dst <b>) (edge ^src <b> ^dst <c>)
 -(path ^src <a> ^dst <c>) --> (make path ^src <a> ^dst <c>))
"""


class TestReteDot:
    def test_structure_present(self):
        wm = WorkingMemory()
        matcher = ReteMatcher(parse_program(TC).rules, wm)
        dot = rete_to_dot(matcher)
        assert dot.startswith("digraph rete {")
        assert dot.rstrip().endswith("}")
        assert "tc-init" in dot and "tc-extend" in dot
        assert "NOT" in dot  # negative nodes rendered
        assert dot.count("doubleoctagon") == 2  # one production per rule

    def test_sizes_reflect_memory(self):
        wm = WorkingMemory()
        matcher = ReteMatcher(parse_program(TC).rules, wm)
        wm.make("edge", src="a", dst="b")
        dot = rete_to_dot(matcher)
        assert "[1 wmes]" in dot

    def test_sizes_can_be_omitted(self):
        wm = WorkingMemory()
        matcher = ReteMatcher(parse_program(TC).rules, wm)
        dot = rete_to_dot(matcher, include_sizes=False)
        assert "wmes]" not in dot

    def test_every_edge_references_defined_nodes(self):
        wm = WorkingMemory()
        matcher = ReteMatcher(parse_program(TC).rules, wm)
        dot = rete_to_dot(matcher)
        defined = set()
        for line in dot.splitlines():
            line = line.strip()
            if line.startswith(("alpha", "beta")) and "[" in line and "->" not in line:
                defined.add(line.split(" ")[0])
        for line in dot.splitlines():
            if "->" in line:
                src, rest = line.strip().split(" -> ")
                dst = rest.split(" ")[0].rstrip(";")
                assert src in defined, src
                assert dst in defined, dst


class TestProvenanceDot:
    def test_derivation_dag(self):
        engine = ParulelEngine(parse_program(TC), EngineConfig(track_provenance=True))
        for a, b in [("a", "b"), ("b", "c")]:
            engine.make("edge", src=a, dst=b)
        engine.run()
        target = engine.wm.find("path", src="a", dst="c")[0]
        dot = provenance_to_dot(engine.provenance, target)
        assert dot.startswith("digraph provenance {")
        assert "tc-extend" in dot
        assert "tc-init" in dot
        assert dot.count("->") >= 3

    def test_retired_wmes_greyed(self):
        src = """
        (literalize count value)
        (p bump (count ^value {<v> < 2}) --> (modify 1 ^value (compute <v> + 1)))
        """
        engine = ParulelEngine(parse_program(src), EngineConfig(track_provenance=True))
        engine.make("count", value=0)
        engine.run()
        final = engine.wm.find("count", value=2)[0]
        dot = provenance_to_dot(engine.provenance, final)
        assert "lightgrey" in dot  # the displaced WMEs


class TestDiff:
    def test_identical(self):
        a, b = WorkingMemory(), WorkingMemory()
        a.make("c", x=1)
        b.make("c", x=1)
        diff = diff_wm(a, b)
        assert diff.unchanged
        assert "identical" in diff.summary()

    def test_timestamps_ignored(self):
        a, b = WorkingMemory(), WorkingMemory()
        a.make("pad", y=0)  # shift b's timestamps
        a.make("c", x=1)
        b.make("c", x=1)
        b.make("pad", y=0)
        assert diff_wm(a, b).unchanged

    def test_added_and_removed(self):
        a, b = WorkingMemory(), WorkingMemory()
        a.make("c", x=1)
        b.make("c", x=2)
        diff = diff_wm(a, b)
        assert len(diff.added) == 1
        assert len(diff.removed) == 1
        assert "+ (c ^x 2)" in diff.summary()
        assert "- (c ^x 1)" in diff.summary()

    def test_multiplicity(self):
        a, b = WorkingMemory(), WorkingMemory()
        a.make("c", x=1)
        b.make("c", x=1)
        b.make("c", x=1)  # same content twice
        diff = diff_wm(a, b)
        assert len(diff.added) == 1
        assert diff.added[0][0] == "c"

    def test_engine_cycle_diffing(self):
        # Snapshot before/after a run and diff: adds = derived paths.
        prog = parse_program(TC)
        before = WorkingMemory()
        engine = ParulelEngine(prog)
        for a_, b_ in [("a", "b"), ("b", "c")]:
            before.make("edge", src=a_, dst=b_)
            engine.make("edge", src=a_, dst=b_)
        engine.run()
        diff = diff_wm(before, engine.wm)
        assert len(diff.added) == 3  # ab, bc, ac paths
        assert diff.removed == []
