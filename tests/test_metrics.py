"""Tests for reporting tables and cycle summaries."""

import pytest

from repro.core import ParulelEngine
from repro.lang.parser import parse_program
from repro.metrics import PhaseTimer, Table, format_table, summarize_cycles


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(
            ["name", "n"], [["alpha", 1], ["b", 22]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        assert lines[3].endswith("1")
        assert lines[4].endswith("22")

    def test_float_precision(self):
        out = format_table(["x"], [[3.14159]], precision=3)
        assert "3.142" in out

    def test_none_renders_dash(self):
        out = format_table(["x"], [[None]])
        assert out.splitlines()[-1].strip() == "-"


class TestTable:
    def test_add_and_str(self):
        t = Table("demo", ["a", "b"])
        t.add(1, 2)
        assert "demo" in str(t)
        assert "1" in str(t)

    def test_wrong_arity_rejected(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_csv(self):
        t = Table("demo", ["a", "b"])
        t.add(1, "x")
        assert t.to_csv().splitlines() == ["a,b", "1,x"]

    def test_save_csv(self, tmp_path):
        t = Table("demo", ["a"])
        t.add(5)
        path = tmp_path / "out.csv"
        t.save_csv(str(path))
        assert path.read_text().splitlines() == ["a", "5"]


class TestPhaseTimer:
    def test_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            pass
        with timer.phase("work"):
            pass
        assert timer.entries["work"] == 2
        assert timer.seconds["work"] >= 0

    def test_fraction(self):
        timer = PhaseTimer()
        assert timer.fraction("none") == 0.0
        with timer.phase("a"):
            sum(range(1000))
        assert 0 < timer.fraction("a") <= 1.0

    def test_reset(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        timer.reset()
        assert timer.entries == {}


class TestSummarizeCycles:
    def test_empty(self):
        s = summarize_cycles([])
        assert s["cycles"] == 0
        assert s["mean_firing_set"] == 0.0

    def test_real_run(self):
        src = """
        (literalize f n)
        (literalize g n)
        (p copy (f ^n <n>) --> (make g ^n <n>))
        """
        e = ParulelEngine(parse_program(src))
        for i in range(6):
            e.make("f", n=i)
        result = e.run()
        s = summarize_cycles(result.reports)
        assert s["cycles"] == 1
        assert s["firings"] == 6
        assert s["mean_firing_set"] == 6.0
        assert s["max_firing_set"] == 6
        assert s["wm_changes"] == 6
