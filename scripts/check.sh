#!/usr/bin/env bash
# The one gate CI and humans both run: tier-1 tests + the porting lint.
#
#   scripts/check.sh            # fast gate (tier-1 tests minus slow
#                               # process-killing tests, lint smoke)
#   scripts/check.sh --faults   # additionally run the full fault-injection
#                               # and recovery suite (kills/SIGSTOPs real
#                               # workers; per-test SIGALRM timeouts keep a
#                               # recovery bug from hanging the gate)
#   scripts/check.sh --bench    # additionally regenerate the experiment
#                               # tables/figures under benchmarks/results/
#   scripts/check.sh --resilience  # additionally run the live-recovery
#                               # chaos differential (seeded SIGKILLs +
#                               # checkpoint truncation + segment unlinks
#                               # must recover byte-identically) for both
#                               # WM backends, plus the shm-leak check
#   scripts/check.sh --obs      # additionally run the full observability
#                               # suite (flight recorder, blackbox decode,
#                               # metrics HTTP) and the recorder-overhead
#                               # benchmark gate vs BENCH_obs.json
#   scripts/check.sh --analysis # additionally gate the commutativity
#                               # detector: per-pair verdicts over every
#                               # bundled workload must match the golden
#                               # file, and the certified fast path +
#                               # race sanitizer must run clean on tc
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests (fast gate: slow worker-kill tests excluded)"
python -m pytest -x -q -m "not slow"

echo "== porting lint (bundled workloads)"
python -m repro.tools.lint

echo "== static analysis (bundled workloads)"
# 'parulel analyze' exits 1 when any error-severity PAxxx diagnostic fires;
# on failure re-run with --json (flat machine JSON) so the log shows the
# exact regressing code.
python -m repro.cli analyze --no-hints || {
    echo "static analysis found error-severity diagnostics; JSON follows:"
    python -m repro.cli analyze --json
    exit 1
}

echo "== observability gate (trace + metrics artifacts validate)"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
python -m repro.cli run examples/tc.pl --facts examples/tc.facts \
    --matcher process --workers 2 \
    --trace-out "$OBS_TMP/tc.trace.json" \
    --metrics-out "$OBS_TMP/tc.metrics.json" >/dev/null
python - "$OBS_TMP" <<'PYEOF'
import json, sys
from repro.obs import validate_chrome_trace

tmp = sys.argv[1]
doc = json.load(open(f"{tmp}/tc.trace.json"))
validate_chrome_trace(doc)
lanes = {e["args"]["name"] for e in doc["traceEvents"] if e["name"] == "thread_name"}
assert "engine" in lanes and any(l.startswith("worker-") for l in lanes), lanes
metrics = json.load(open(f"{tmp}/tc.metrics.json"))
assert metrics["counters"]["parulel_cycles_total"] > 0, metrics["counters"]
assert metrics["counters"]["parulel_firings_total"] > 0, metrics["counters"]
print(f"trace OK ({len(doc['traceEvents'])} events, lanes: {sorted(lanes)}); "
      f"metrics OK ({len(metrics['counters'])} counters)")
PYEOF

echo "== observability overhead benchmark (enabled tracing within 5%)"
python -m pytest tests/obs/test_overhead.py -q

echo "== match-kernel perf gate (deterministic join counters vs baseline)"
# Gates on the byte-stable join_probes/join_checks counters recorded in
# benchmarks/results/BENCH_match.json; wall-clock is advisory. After an
# intentional match-kernel change, refresh with:
#   python -m benchmarks.match_microbench --write
python -m benchmarks.match_microbench --check

echo "== working-memory store gate (columnar vs dict: bytes + identity)"
# Gates on the columnar store's IPC byte advantage, the vectorized
# column-scan probe kernel (>=5x fewer WME materializations per cycle, a
# recorded refresh+match latency win over the object path, per-cycle
# match summaries byte-identical), and engine identity across dict /
# columnar / --no-vector-probe plus the full 9-workload sweep — all
# recorded in benchmarks/results/BENCH_wm.json; wall-clock is advisory.
# After an intentional WM/IPC/probe-kernel change, refresh with:
#   python -m benchmarks.wm_microbench --write           (gate tier)
#   python -m benchmarks.wm_microbench --write --full    (+ million tier
#                                                         + workload sweep)
python -m benchmarks.wm_microbench --check
# Shared-memory segments are unlinked by ColumnarWorkingMemory.close(),
# a pid-guarded finalizer, and the stdlib resource tracker — but a
# SIGKILLed *parent* can still strand named segments. The janitor sweeps
# any left by this gate's own runs so repeated CI runs cannot fill
# /dev/shm; it is safe by construction (segments whose embedded owner pid
# is alive, or that any live process has mapped, are kept).
python -m repro.cli janitor

if [[ "${1:-}" == "--faults" ]]; then
    echo "== fault-injection/recovery suite (slow tests included)"
    python -m pytest tests/faults tests/core/test_checkpoint.py tests/resilience -q
fi

if [[ "${1:-}" == "--resilience" ]]; then
    echo "== resilience suite (checkpoints, supervision, janitor)"
    python -m pytest tests/resilience -q
    echo "== chaos differential (crash + corruption -> byte-identical recovery)"
    for seed in 0 1; do
        python -m repro.resilience.chaos --workload tc --backend dict --seed "$seed"
        python -m repro.resilience.chaos --workload tc --backend columnar --seed "$seed"
    done
    # The chaos runs above include the janitor leg (orphaned-segment
    # reclamation after a SIGKILLed columnar owner); fail loudly if
    # anything pwm* is still both present and unowned afterwards.
    LEFT="$(python -m repro.cli janitor)"
    if [[ -n "$LEFT" ]]; then
        echo "chaos runs leaked shared-memory segments:"; echo "$LEFT"; exit 1
    fi
fi

if [[ "${1:-}" == "--obs" ]]; then
    echo "== observability suite (flight recorder, blackbox, metrics HTTP)"
    python -m pytest tests/obs -q
    echo "== flight-recorder overhead gate (recorder-on within budget)"
    # Gates fresh on-vs-off wall time for tc/manners against the budget
    # recorded in benchmarks/results/BENCH_obs.json; after an intentional
    # recorder change, refresh with:
    #   python -m benchmarks.obs_microbench --write
    python -m benchmarks.obs_microbench --check
fi

if [[ "${1:-}" == "--analysis" ]]; then
    echo "== commutativity verdicts (bundled workloads vs golden file)"
    # Per-pair COMMUTES/RACES/UNKNOWN verdicts recorded in
    # benchmarks/results/COMMUTE_verdicts.json; after an intentional
    # detector or workload change, refresh with:
    #   python -m repro.analysis.commute --write
    # (-c import avoids runpy's found-in-sys.modules warning: the package
    # __init__ imports the module eagerly)
    python -c "from repro.analysis.commute import main; raise SystemExit(main(['--check']))"
    echo "== certified fast path + race sanitizer smoke (tc, waltz demos)"
    python -m repro.cli run examples/tc.pl --facts examples/tc.facts \
        --certified-commute --sanitize-races >/dev/null
    python -m pytest tests/core/test_certified_commute.py -q
fi

if [[ "${1:-}" == "--bench" ]]; then
    echo "== experiment suite (regenerates benchmarks/results/)"
    python -m pytest benchmarks/ -q --benchmark-only
fi

echo "check.sh: all gates passed"
