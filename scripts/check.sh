#!/usr/bin/env bash
# The one gate CI and humans both run: tier-1 tests + the porting lint.
#
#   scripts/check.sh            # fast gate (tier-1 tests, lint smoke)
#   scripts/check.sh --bench    # additionally regenerate the experiment
#                               # tables/figures under benchmarks/results/
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests"
python -m pytest -x -q

echo "== porting lint (bundled workloads)"
python -m repro.tools.lint

if [[ "${1:-}" == "--bench" ]]; then
    echo "== experiment suite (regenerates benchmarks/results/)"
    python -m pytest benchmarks/ -q --benchmark-only
fi

echo "check.sh: all gates passed"
