"""Ablation A5 — RETE beta-prefix sharing: state and work saved.

Classic OPS5 programs keep a *context/goal element* as the first CE of
every rule (the MEA idiom), which makes their beta prefixes highly
shareable. This ablation builds such a program — one context element,
``n_groups`` rule families of ``n_variants`` rules each sharing a
two-CE prefix — loads it, and compares plain RETE against ``rete-shared``
on retained tokens, match operations, and conflict-set equality.

Expected shape: sharing removes the duplicated prefix tokens and their
maintenance work (savings grow with the number of variants per family)
while producing the identical conflict set.
"""

import pytest

from repro.lang.builder import ProgramBuilder, v
from repro.match.rete import ReteMatcher, SharedReteMatcher
from repro.match.stats import COUNTER_NAMES
from repro.metrics import Table
from repro.wm.memory import WorkingMemory

from .conftest import emit

N_GROUPS = 4
N_VARIANTS = 5
N_ITEMS = 30


def mea_style_program():
    pb = ProgramBuilder()
    for g in range(N_GROUPS):
        for variant in range(N_VARIANTS):
            (
                pb.rule(f"g{g}-v{variant}")
                .ce("context", phase=f"phase{g}")
                .ce(f"item{g}", key=v("k"), size=v("s"))
                .ce(f"detail{g}", key=v("k"), tag=variant)
                .halt()
            )
    return pb.build(analyze=False)


def load(wm: WorkingMemory) -> None:
    for g in range(N_GROUPS):
        wm.make("context", phase=f"phase{g}")
        for i in range(N_ITEMS):
            wm.make(f"item{g}", key=i, size=i % 7)
            wm.make(f"detail{g}", key=i, tag=i % N_VARIANTS)


def measure(shared: bool):
    program = mea_style_program()
    wm = WorkingMemory()
    cls = SharedReteMatcher if shared else ReteMatcher
    matcher = cls(program.rules, wm)
    load(wm)
    insts = sorted(i.key for i in matcher.instantiations())
    ops = sum(matcher.stats.totals[c] for c in COUNTER_NAMES)
    return {
        "tokens": matcher.token_count(),
        "ops": ops,
        "shared_nodes": matcher.shared_nodes,
        "conflict_set": insts,
    }


@pytest.fixture(scope="module")
def ablation5():
    data = {"plain": measure(False), "shared": measure(True)}
    table = Table(
        f"Ablation A5: beta-prefix sharing ({N_GROUPS}x{N_VARIANTS} "
        f"MEA-style rules, {N_ITEMS} items/group)",
        ["variant", "retained tokens", "match ops", "nodes reused"],
    )
    for kind, d in data.items():
        table.add(kind, d["tokens"], d["ops"], d["shared_nodes"])
    emit(table, "ablation5_beta_sharing")
    return data


def test_a5_identical_conflict_sets(benchmark, ablation5):
    assert ablation5["plain"]["conflict_set"] == ablation5["shared"]["conflict_set"]
    benchmark(lambda: measure(True))


def test_a5_sharing_saves_state_and_work(benchmark, ablation5):
    plain, shared = ablation5["plain"], ablation5["shared"]
    # Each family's two-CE prefix is built once instead of N_VARIANTS times.
    assert shared["shared_nodes"] == N_GROUPS * (N_VARIANTS - 1) * 2
    assert shared["tokens"] < plain["tokens"] * 0.6
    assert shared["ops"] < plain["ops"]
    benchmark(lambda: measure(False))
