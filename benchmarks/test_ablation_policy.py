"""Ablation A3 — conflict arbitration: meta-rules vs mechanical policies.

PARULEL's claim is that *declarative* conflict resolution (meta-rules) is
the right way to make a parallel firing set safe. This ablation strips the
shortest-path program's meta-rules and lets the engine's mechanical
interference policies arbitrate instead:

| variant | arbitration | expected |
|---|---|---|
| meta-rules + error | redaction picks each node's min | correct, parallel |
| none + error | abort on first conflicting modify | InterferenceError or silent corruption |
| none + first | earliest firing wins | wrong distances (duplicate seeds) |
| none + merge | last write wins | wrong distances (duplicate seeds) |
| OPS5 sequential | one firing per cycle | correct, slow |

Only redaction (or full serialization) yields correct results: mechanical
policies resolve *update* collisions but cannot express "only the minimum
may fire" — which is the paper's argument in one table.
"""

import pytest

from repro.errors import InterferenceError
from repro.baseline import OPS5Engine
from repro.core import EngineConfig, ParulelEngine
from repro.metrics import Table
from repro.programs.routing import build_routing, routing_program

from .conftest import emit

SEEDS = (2, 5, 23, 31)


def run_variant(variant, seed):
    wl = build_routing(n_nodes=12, extra_edges=16, seed=seed)
    if variant == "ops5":
        engine = OPS5Engine(wl.program)
        wl.setup(engine)
        result = engine.run(max_cycles=100_000)
        return {
            "cycles": result.cycles,
            "correct": wl.verify_ok(engine.wm),
            "aborted": False,
        }
    if variant == "meta+error":
        program, cfg = wl.program, EngineConfig()
    else:
        policy = variant.split("+")[1]
        program = routing_program(with_meta_rules=False)
        cfg = EngineConfig(interference=policy)
    engine = ParulelEngine(program, cfg)
    wl.setup(engine)
    try:
        result = engine.run(max_cycles=2000)
    except InterferenceError:
        return {"cycles": None, "correct": False, "aborted": True}
    return {
        "cycles": result.cycles,
        "correct": wl.verify_ok(engine.wm),
        "aborted": False,
    }


VARIANTS = ("meta+error", "none+error", "none+first", "none+merge", "ops5")


@pytest.fixture(scope="module")
def ablation3():
    data = {
        variant: [run_variant(variant, seed) for seed in SEEDS]
        for variant in VARIANTS
    }
    table = Table(
        "Ablation A3: arbitration strategy on shortest paths (4 graph seeds)",
        ["variant", "correct runs", "aborted runs", "mean cycles (correct only)"],
    )
    for variant in VARIANTS:
        runs = data[variant]
        correct = [r for r in runs if r["correct"]]
        aborted = sum(1 for r in runs if r["aborted"])
        mean_cycles = (
            sum(r["cycles"] for r in correct) / len(correct) if correct else None
        )
        table.add(variant, len(correct), aborted, mean_cycles)
    emit(table, "ablation3_policy")
    return data


def test_a3_meta_rules_always_correct(benchmark, ablation3):
    assert all(r["correct"] for r in ablation3["meta+error"])
    benchmark(lambda: run_variant("meta+error", SEEDS[0]))


def test_a3_ops5_always_correct_but_sequential(benchmark, ablation3):
    assert all(r["correct"] for r in ablation3["ops5"])
    meta_cycles = [r["cycles"] for r in ablation3["meta+error"]]
    ops5_cycles = [r["cycles"] for r in ablation3["ops5"]]
    assert sum(ops5_cycles) > sum(meta_cycles) * 2
    benchmark(lambda: run_variant("ops5", SEEDS[0]))


def test_a3_mechanical_policies_fail_somewhere(benchmark, ablation3):
    """At least one graph must defeat each meta-rule-free variant —
    otherwise the redaction rules would be unnecessary decoration."""
    for variant in ("none+error", "none+first", "none+merge"):
        runs = ablation3[variant]
        assert any((not r["correct"]) or r["aborted"] for r in runs), variant
    benchmark(lambda: run_variant("none+first", SEEDS[0]))
