"""Ablation A2 — TREAT vs RETE under working-memory churn.

The churn workload repeatedly retracts and re-asserts a block of chain-head
WMEs. RETE pays to tear down and rebuild beta tokens on every delete/add
pair; TREAT retains no beta state — it re-derives seeded joins instead.
Measured quantities per engine: wall-clock over the churn phase, total
match operations, and retained beta tokens (RETE's state, TREAT's zero).

Expected shape (Miranker's trade): TREAT's retained state is zero while
RETE's grows with the join; their operation counts stay within a modest
factor of each other, with TREAT's retraction cost lower (conflict-set
scan) and its re-add cost higher (join re-derivation). Both always agree
on the conflict set.
"""

import time

import pytest

from repro.match.interface import create_matcher
from repro.match.stats import COUNTER_NAMES
from repro.metrics import Table
from repro.programs import build_churn_workload

from .conftest import emit

CHURN_STEPS = 25


def run_churn(engine_name, chain_length=4, n_entities=24):
    cw = build_churn_workload(chain_length=chain_length, n_entities=n_entities)
    wm = cw.fresh_wm()
    matcher = create_matcher(engine_name, cw.program.rules, wm)
    block = cw.load(wm)
    matcher.instantiations()
    matcher.stats.reset()

    start = time.perf_counter()
    for step in range(CHURN_STEPS):
        block = cw.churn(wm, block, step)
        matcher.instantiations()
    wall = time.perf_counter() - start

    ops = sum(matcher.stats.totals[c] for c in COUNTER_NAMES)
    tokens = matcher.token_count() if hasattr(matcher, "token_count") else 0
    keys = sorted(i.key for i in matcher.instantiations())
    return wall, ops, tokens, keys


@pytest.fixture(scope="module")
def ablation2():
    data = {name: run_churn(name) for name in ("rete", "treat")}
    table = Table(
        f"Ablation A2: {CHURN_STEPS} churn steps, 4-way chain join, 24 entities",
        ["engine", "wall ms", "match ops", "retained beta tokens"],
    )
    for name, (wall, ops, tokens, _keys) in data.items():
        table.add(name, wall * 1000, ops, tokens)
    emit(table, "ablation2_treat_churn")
    return data


def test_a2_equivalence(benchmark, ablation2):
    assert ablation2["rete"][3] == ablation2["treat"][3]
    benchmark(lambda: run_churn("treat"))


def test_a2_state_footprint(benchmark, ablation2):
    """TREAT retains no beta state; RETE's token store is live join state
    that churn forces it to maintain."""
    assert ablation2["treat"][2] == 0
    assert ablation2["rete"][2] > 0
    benchmark(lambda: run_churn("rete"))


def test_a2_work_within_factor(ablation2):
    """Neither engine may blow up under churn: their match-op totals stay
    within an order of magnitude (the trade is state vs recomputation, not
    asymptotics, on this workload)."""
    rete_ops = ablation2["rete"][1]
    treat_ops = ablation2["treat"][1]
    assert treat_ops < rete_ops * 10
    assert rete_ops < treat_ops * 10
