"""Table 2 — cycles-to-completion: PARULEL vs sequential OPS5.

The paper's headline: set-oriented firing removes the one-instantiation-
per-cycle bottleneck, cutting the cycle count by roughly the mean firing-
set size while executing exactly the same rule firings. Expected shape:

- parallel-friendly programs (tc, waltz, sort, sieve, manners): PARULEL
  cycles ≤ OPS5 cycles / 2, and the reduction factor tracks the mean
  firing-set size;
- inherently sequential programs (monkey): no reduction — honesty row.
"""

import pytest

from repro.baseline import OPS5Engine
from repro.core import ParulelEngine
from repro.metrics import Table
from repro.programs import REGISTRY

from .conftest import emit

WORKLOADS = sorted(REGISTRY)
PARALLEL_FRIENDLY = ["circuit", "routing", "sieve", "sort", "sort-meta", "tc", "waltz"]
#: manners' frontier is one seat wide (hobby exposure is its only fan-out),
#: so its reduction is real but modest.
MODEST = {"manners": 1.5}


def run_both(name):
    wl = REGISTRY[name]()
    par = ParulelEngine(wl.program)
    wl.setup(par)
    pres = par.run(max_cycles=10_000)
    assert wl.failed_checks(par.wm) == []

    wl2 = REGISTRY[name]()
    ops = OPS5Engine(wl2.program)
    wl2.setup(ops)
    ores = ops.run(max_cycles=500_000)
    assert wl2.failed_checks(ops.wm) == []
    return pres, ores


@pytest.fixture(scope="module")
def table2():
    data = {name: run_both(name) for name in WORKLOADS}
    table = Table(
        "Table 2: cycles to completion (PARULEL set-oriented vs OPS5/LEX)",
        [
            "program",
            "parulel cycles",
            "ops5 cycles",
            "reduction",
            "mean firing set",
            "firings par/seq",
        ],
    )
    for name in WORKLOADS:
        pres, ores = data[name]
        firings = (
            str(pres.firings)
            if pres.firings == ores.firings
            else f"{pres.firings}/{ores.firings}"
        )
        table.add(
            name,
            pres.cycles,
            ores.cycles,
            ores.cycles / pres.cycles,
            pres.mean_firing_set,
            firings,
        )
    emit(table, "table2_cycles")
    return data


@pytest.mark.parametrize("name", WORKLOADS)
def test_table2_shape(benchmark, table2, name):
    pres, ores = table2[name]

    def parulel_run():
        wl = REGISTRY[name]()
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        return engine.run(max_cycles=10_000)

    benchmark(parulel_run)

    if name in PARALLEL_FRIENDLY:
        assert pres.cycles * 2 <= ores.cycles, (
            f"{name}: expected >=2x cycle reduction, got "
            f"{ores.cycles}/{pres.cycles}"
        )
        # Reduction factor is explained by the mean firing-set size
        # (PARULEL packs ~mean-firing-set sequential cycles into one).
        reduction = ores.cycles / pres.cycles
        assert reduction <= pres.mean_firing_set * 2.5 + 2
    elif name in MODEST:
        assert ores.cycles / pres.cycles >= MODEST[name]
    elif name == "monkey":
        assert pres.cycles == ores.cycles


def test_table2_firings_identical(table2):
    """Both engines execute the same logical work on confluent programs."""
    for name in ("tc", "waltz", "sieve", "sort", "circuit"):
        pres, ores = table2[name]
        assert pres.firings == ores.firings, name
