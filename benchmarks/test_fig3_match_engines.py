"""Figure 3 — match-engine comparison: RETE vs TREAT vs naive.

Loads the synthetic equijoin workload at growing working-memory sizes and
measures, per engine, (a) wall-clock to incorporate the load and read the
conflict set, and (b) abstract match operations. Expected shape:

- naive's cost explodes with WM size (it recomputes full joins — the
  classic result motivating incremental match);
- RETE and TREAT stay within a small factor of each other here (append-
  only load, no churn — churn is Ablation A2's job);
- all engines produce identical conflict sets (asserted).

The classic comparison runs with ``indexed=False``: hash-indexed alpha
memories rescue naive's recompute enough to blunt the figure's point (that
is the *new* result, shown by the ``figure3_indexing`` continuation table
and Ablation A7 — here we reproduce the historical motivation).
"""

import time

import pytest

from repro.match.interface import create_matcher
from repro.match.stats import COUNTER_NAMES
from repro.metrics import Table
from repro.programs import build_join_workload

from .conftest import emit
from .match_microbench import run_workload

SIZES = (50, 100, 200, 400)
ENGINES = ("rete", "treat", "naive")
INDEX_WORKLOADS = ("tc", "manners", "waltz")


def measure(engine_name, n_wmes):
    jw = build_join_workload(n_rules=3, n_keys=40, seed=9)
    wm = jw.fresh_wm()
    matcher = create_matcher(engine_name, jw.program.rules, wm, indexed=False)
    start = time.perf_counter()
    jw.load(wm, n_wmes)
    insts = matcher.instantiations()
    wall = time.perf_counter() - start
    ops = sum(matcher.stats.totals[c] for c in COUNTER_NAMES)
    keys = sorted(i.key for i in insts)
    return wall, ops, keys


@pytest.fixture(scope="module")
def figure3():
    data = {}
    for engine in ENGINES:
        for n in SIZES:
            data[(engine, n)] = measure(engine, n)
    table = Table(
        "Figure 3: match cost vs WM size (3 equijoin rules, 40 keys)",
        ["engine", "WMEs/class", "wall ms", "match ops", "instantiations"],
    )
    for engine in ENGINES:
        for n in SIZES:
            wall, ops, keys = data[(engine, n)]
            table.add(engine, n, wall * 1000, ops, len(keys))
    emit(table, "fig3_match_engines")
    return data


@pytest.mark.parametrize("engine", ENGINES)
def test_fig3_benchmark_each_engine(benchmark, figure3, engine):
    benchmark(lambda: measure(engine, 200))
    # All engines agree on the conflict set at every size.
    for n in SIZES:
        assert figure3[(engine, n)][2] == figure3[("rete", n)][2]


def test_fig3_shape(benchmark, figure3):
    # Naive must do dramatically more work than RETE at the largest size.
    naive_ops = figure3[("naive", SIZES[-1])][1]
    rete_ops = figure3[("rete", SIZES[-1])][1]
    assert naive_ops > rete_ops * 3, (naive_ops, rete_ops)

    # Incremental engines' op counts grow roughly with output size, naive's
    # superlinearly with input: compare growth factors across sizes.
    def growth(engine):
        return figure3[(engine, SIZES[-1])][1] / max(
            figure3[(engine, SIZES[0])][1], 1
        )

    assert growth("naive") > growth("rete")

    benchmark(lambda: measure("rete", SIZES[-1]))


def test_fig3_naive_recompute_dominates(benchmark, figure3):
    """Repeated conflict-set reads after single-WME updates: the regime
    where incremental match wins by orders of magnitude."""

    def naive_reread():
        jw = build_join_workload(n_rules=2, n_keys=20, seed=9)
        wm = jw.fresh_wm()
        matcher = create_matcher("naive", jw.program.rules, wm)
        jw.load(wm, 100)
        matcher.instantiations()
        for i in range(10):
            wm.make("left0", key=i % 20, payload=1000 + i)
            matcher.instantiations()
        return matcher.stats.totals["join_probes"]

    def rete_reread():
        jw = build_join_workload(n_rules=2, n_keys=20, seed=9)
        wm = jw.fresh_wm()
        matcher = create_matcher("rete", jw.program.rules, wm)
        jw.load(wm, 100)
        matcher.instantiations()
        for i in range(10):
            wm.make("left0", key=i % 20, payload=1000 + i)
            matcher.instantiations()
        return matcher.stats.totals["join_probes"]

    naive_probes = naive_reread()
    rete_probes = rete_reread()
    assert naive_probes > rete_probes * 5
    benchmark(rete_reread)


@pytest.fixture(scope="module")
def figure3_indexing():
    """Hash-indexed vs nested-loop joins, full engine runs on the
    registry workloads (TREAT, the paper's engine)."""
    data = {
        name: (run_workload(name, "treat", True), run_workload(name, "treat", False))
        for name in INDEX_WORKLOADS
    }
    table = Table(
        "Figure 3 (cont.): hash-indexed vs nested-loop joins (treat)",
        ["workload", "indexed ops", "nested-loop ops", "reduction", "indexed ms", "nested-loop ms"],
    )
    for name, (idx, scan) in data.items():
        table.add(
            name,
            idx["ops"],
            scan["ops"],
            f"{scan['ops'] / max(idx['ops'], 1):.1f}x",
            idx["wall_ms"],
            scan["wall_ms"],
        )
    emit(table, "fig3_join_indexing")
    return data


def test_fig3_indexing_win(benchmark, figure3_indexing):
    """Indexing cuts join work on every workload without changing a single
    cycle or firing; on manners the contract is a >=5x reduction."""
    for name, (idx, scan) in figure3_indexing.items():
        assert (idx["cycles"], idx["firings"]) == (scan["cycles"], scan["firings"]), name
        assert idx["ops"] < scan["ops"], name
    manners_idx, manners_scan = figure3_indexing["manners"]
    assert manners_scan["ops"] >= 5 * manners_idx["ops"], (
        manners_scan["ops"],
        manners_idx["ops"],
    )
    benchmark(lambda: run_workload("waltz", "treat", True))
