"""Table 3 — the cost of programmable conflict resolution.

For every meta-rule-bearing workload: redactions per cycle, meta-level
match cycles and firings, and the fraction of engine wall time spent in
the redaction phase. Expected shape: redaction is a visible but modest
fraction of the cycle (the paper's argument that declarative conflict
resolution is affordable) — asserted as < 85% of wall time, > 0 work.
"""

import pytest

from repro.core import ParulelEngine
from repro.metrics import Table, summarize_cycles
from repro.programs import REGISTRY

from .conftest import emit

META_WORKLOADS = ["manners", "routing", "sort-meta"]


def run_with_meta(name):
    wl = REGISTRY[name]()
    engine = ParulelEngine(wl.program)
    wl.setup(engine)
    result = engine.run(max_cycles=10_000)
    assert wl.failed_checks(engine.wm) == []
    total = sum(result.phase_times.values())
    redact_frac = result.phase_times["redact"] / total if total else 0.0
    summary = summarize_cycles(result.reports)
    return {
        "cycles": result.cycles,
        "candidates": sum(r.candidates for r in result.reports),
        "redacted": summary["total_redacted"],
        "redacted_per_cycle": summary["redacted_per_cycle"],
        "meta_cycles": summary["meta_cycles"],
        "redact_fraction": redact_frac,
    }


@pytest.fixture(scope="module")
def table3():
    data = {name: run_with_meta(name) for name in META_WORKLOADS}
    table = Table(
        "Table 3: meta-rule redaction overhead",
        [
            "program",
            "cycles",
            "candidates",
            "redacted",
            "redacted/cycle",
            "meta cycles",
            "redact time frac",
        ],
        precision=3,
    )
    for name in META_WORKLOADS:
        d = data[name]
        table.add(
            name,
            d["cycles"],
            d["candidates"],
            d["redacted"],
            d["redacted_per_cycle"],
            d["meta_cycles"],
            d["redact_fraction"],
        )
    emit(table, "table3_redaction")
    return data


@pytest.mark.parametrize("name", META_WORKLOADS)
def test_table3_shape(benchmark, table3, name):
    def run():
        wl = REGISTRY[name]()
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        return engine.run(max_cycles=10_000)

    benchmark(run)
    d = table3[name]
    assert d["redacted"] > 0, "meta rules must actually redact"
    assert d["meta_cycles"] >= 1, "meta level must have run"
    # Redaction only fires on contended cycles; the survivors must still
    # account for every candidate (fired + redacted = candidates).
    assert d["redacted"] < d["candidates"]
    assert d["redact_fraction"] < 0.85, (
        "redaction should not dominate the cycle"
    )


def test_table3_redaction_scales_with_contention(benchmark):
    """More contenders ⇒ more redactions, still one survivor per seat.

    (Scaling behaviour of the meta level, benchmarked on the biggest size.)
    """
    from repro.programs import build_manners

    redactions = {}
    for n in (8, 16):
        wl = build_manners(n_guests=n)
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        result = engine.run(max_cycles=10_000)
        redactions[n] = sum(r.redaction.redacted for r in result.reports)
    assert redactions[16] > redactions[8]

    def biggest():
        wl = build_manners(n_guests=16)
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        return engine.run(max_cycles=10_000)

    benchmark(biggest)
