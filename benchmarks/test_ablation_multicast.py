"""Ablation A4 — update distribution: broadcast vs interest multicast.

The SimMachine's default charges every WM change to every site (full
replication, as on the paper's shared-memory hardware). The PARADISER-era
refinement delivers a change only to sites whose rules *read* the changed
class. On a fused multi-application rule base (tc + waltz + sieve, whose
class sets are disjoint) most updates interest only a fraction of the
sites, so multicast cuts both message count and simulated time, without
changing any result.
"""

import pytest

from repro.lang.ast import Program
from repro.metrics import Table
from repro.parallel import SimMachine
from repro.programs import build_sieve, build_tc, build_waltz

from .conftest import emit

N_SITES = 6


def fused():
    tc = build_tc(n_nodes=16, shape="chain")
    waltz = build_waltz(n_drawings=6, chain_length=8)
    sieve = build_sieve(limit=40)
    parts = [tc, waltz, sieve]
    program = Program(
        literalizes=tuple(l for wl in parts for l in wl.program.literalizes),
        rules=tuple(r for wl in parts for r in wl.program.rules),
    )
    return program, parts


def run(multicast):
    program, parts = fused()
    machine = SimMachine(program, N_SITES, multicast=multicast)
    for wl in parts:
        wl.setup(machine)
    result = machine.run(max_cycles=10_000)
    for wl in parts:
        assert wl.failed_checks(machine.wm) == []
    return result


@pytest.fixture(scope="module")
def ablation4():
    data = {"broadcast": run(False), "multicast": run(True)}
    table = Table(
        f"Ablation A4: update delivery on {N_SITES} sites (fused tc+waltz+sieve)",
        ["delivery", "messages", "total ticks", "parallel ticks"],
    )
    for kind, res in data.items():
        table.add(kind, res.messages, res.total_ticks, res.parallel_ticks)
    emit(table, "ablation4_multicast")
    return data


def test_a4_multicast_reduces_messages(benchmark, ablation4):
    bc, mc = ablation4["broadcast"], ablation4["multicast"]
    assert mc.messages < bc.messages * 0.8, (mc.messages, bc.messages)
    benchmark(lambda: run(True))


def test_a4_results_identical(benchmark, ablation4):
    bc, mc = ablation4["broadcast"], ablation4["multicast"]
    assert bc.cycles == mc.cycles
    assert bc.firings == mc.firings
    assert mc.total_ticks <= bc.total_ticks
    benchmark(lambda: run(False))
