"""Flight-recorder overhead microbenchmark and CI gate.

The flight recorder is **on by default**, so its fixed cost is a standing
tax on every run — this gate keeps that tax inside the tentpole's budget.
Per workload (``tc`` and ``manners``) it measures min-of-N wall time for
the engine run with the recorder off (``flight_recorder=False``) and on
(the default), plus the recorder's raw ring-append throughput, and:

- ``--write`` records the numbers into ``results/BENCH_obs.json``;
- ``--check`` (the default; ``scripts/check.sh --obs`` runs it)
  re-measures *fresh* on the current machine and fails when the
  recorder-on best run exceeds ``off * (1 + RELATIVE_BUDGET) +
  ABSOLUTE_SLACK`` — the same min-of-N + absolute-floor discipline as
  ``tests/obs/test_overhead.py`` (sub-100ms runs would otherwise fail on
  a single page fault). The baseline file is the recorded evidence; the
  gate itself never compares wall-clock across machines.

``--check`` also verifies the recorded baseline still exists, covers
every gated workload, and passed its own budget when written — so a
regression snuck in via ``--write`` fails loudly too.

Usage (from the repo root, ``PYTHONPATH=src``)::

    python -m benchmarks.obs_microbench --write   # refresh the baseline
    python -m benchmarks.obs_microbench --check   # CI gate (default)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict

from repro.core import EngineConfig, ParulelEngine
from repro.programs import REGISTRY

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_obs.json"
)

#: The acceptance criterion: recorder-on wall time within 5% of
#: recorder-off, plus an absolute floor for scheduler noise on runs whose
#: total wall time is tens of milliseconds.
RELATIVE_BUDGET = 0.05
ABSOLUTE_SLACK = 0.050  # seconds

#: Min-of-N repetitions. These workloads finish in tens of milliseconds,
#: so a generous N is cheap and keeps the recorded ratio honest (at N=5
#: a single noisy "off" rep can inflate the ratio well past the real
#: sub-1% cost).
REPS = 15
WORKLOADS = ("tc", "manners")

#: Ring appends for the throughput probe (fixed-cost claim, advisory).
APPEND_PROBE = 100_000


def _run_once(workload_name: str, recorder: bool) -> float:
    workload = REGISTRY[workload_name]()
    engine = ParulelEngine(
        workload.program, EngineConfig(flight_recorder=recorder)
    )
    try:
        workload.setup(engine)
        t0 = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - t0
        assert workload.verify_ok(engine.wm)
    finally:
        engine.close()
    return elapsed


def _best(workload_name: str, recorder: bool) -> float:
    return min(_run_once(workload_name, recorder) for _ in range(REPS))


def _append_throughput() -> Dict:
    """Raw ring-append cost: ns per record, shared ring then local."""
    from repro.obs.flightrec import FlightRing

    out: Dict = {}
    for shared, label in ((True, "shared"), (False, "local")):
        ring = FlightRing(capacity=4096, shared=shared)
        try:
            t0 = time.perf_counter_ns()
            for i in range(APPEND_PROBE):
                ring.append(3, i, code=1, a=i)
            out[f"{label}_ns_per_append"] = round(
                (time.perf_counter_ns() - t0) / APPEND_PROBE, 1
            )
        finally:
            ring.close()
    return out


def measure() -> Dict:
    out: Dict = {"workloads": {}}
    for name in WORKLOADS:
        off = _best(name, recorder=False)
        on = _best(name, recorder=True)
        budget = off * (1 + RELATIVE_BUDGET) + ABSOLUTE_SLACK
        out["workloads"][name] = {
            "off_s": round(off, 4),
            "on_s": round(on, 4),
            "ratio": round(on / off, 3) if off > 0 else 1.0,
            "within_budget": on <= budget,
        }
    out["append"] = _append_throughput()
    return out


def report(current: Dict) -> None:
    header = f"{'workload':<10} {'off s':>8} {'on s':>8} {'ratio':>7} {'gate':>6}"
    print(header)
    print("-" * len(header))
    for name, row in current["workloads"].items():
        verdict = "ok" if row["within_budget"] else "FAIL"
        print(
            f"{name:<10} {row['off_s']:>8.4f} {row['on_s']:>8.4f} "
            f"{row['ratio']:>6.3f}x {verdict:>6}"
        )
    append = current["append"]
    print(
        f"ring append: {append['shared_ns_per_append']}ns/record shared, "
        f"{append['local_ns_per_append']}ns/record local"
    )


def check(current: Dict, baseline: Dict) -> int:
    failures = []
    for name, row in current["workloads"].items():
        if not row["within_budget"]:
            failures.append(
                f"{name}: recorder-on best {row['on_s']}s exceeds "
                f"recorder-off {row['off_s']}s + {RELATIVE_BUDGET:.0%} "
                f"budget (+{ABSOLUTE_SLACK}s slack)"
            )
    base_wl = baseline.get("workloads", {})
    for name in WORKLOADS:
        base_row = base_wl.get(name)
        if base_row is None:
            failures.append(
                f"{name}: missing from baseline (re-run --write)"
            )
        elif not base_row.get("within_budget"):
            failures.append(
                f"{name}: recorded baseline itself failed the budget "
                f"(ratio {base_row.get('ratio')}x) — fix, then --write"
            )
    if failures:
        print("\nOBS GATE FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("\nobs gate OK: flight-recorder overhead within budget")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--write", action="store_true", help="refresh the baseline JSON"
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="gate against the budget (default)",
    )
    args = parser.parse_args(argv)

    current = measure()
    report(current)

    if args.write:
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        with open(BASELINE_PATH, "w") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {BASELINE_PATH}")
        return 0 if all(
            row["within_budget"] for row in current["workloads"].values()
        ) else 1

    if not os.path.exists(BASELINE_PATH):
        print(f"no baseline at {BASELINE_PATH}; run with --write first")
        return 1
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    return check(current, baseline)


if __name__ == "__main__":
    sys.exit(main())
