"""Shared helpers for the experiment benches.

Every bench both *benchmarks* a representative callable (pytest-benchmark)
and *regenerates its table/figure data* deterministically, printing it and
persisting it under ``benchmarks/results/`` so EXPERIMENTS.md can quote it.
Shape assertions live inside the benchmark tests so they still run under
``--benchmark-only``.
"""

from __future__ import annotations

import os

import pytest

from repro.metrics import Table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(table: Table, filename: str) -> None:
    """Print a result table and persist it as text + CSV."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = str(table)
    print()
    print(text)
    base = os.path.join(RESULTS_DIR, filename)
    with open(base + ".txt", "w") as fh:
        fh.write(text + "\n")
    table.save_csv(base + ".csv")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
