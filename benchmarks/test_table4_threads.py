"""Table 4 — real concurrency: the GIL ceiling, and the escape from it.

The reproduction notes for this paper flag that CPython's GIL hides the
data-parallel benefits PARULEL showed on real multiprocessors. This bench
*measures* that instead of hand-waving, in two halves:

- ``threads`` rows — the ThreadedMatchPool fans per-site pure-Python
  matching (read-only) out to 1..8 threads. Expected shape: conflict sets
  identical at every count; wall-clock speedup far below linear (the GIL
  serializes pure-Python match work).
- ``process`` rows — the ProcessMatchPool runs the same partitioned match
  in persistent worker *processes* (one GIL each), kept current by WM
  delta shipping. On a multi-core host this is where real wall-clock
  speedup finally appears (>1.5x at 4 workers is asserted when >= 4 cores
  are actually usable; on fewer cores the shape is reported but cannot
  physically manifest, so the assertion is skipped).
"""

import os
import time

import pytest

from repro.metrics import Table
from repro.parallel.process import ProcessMatchPool
from repro.parallel.threaded import ThreadedMatchPool
from repro.programs import build_join_workload

from .conftest import emit

WORKERS = (1, 2, 4, 8)
N_WMES = 120
BACKENDS = {"threads": ThreadedMatchPool, "process": ProcessMatchPool}


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def measure(backend, n_workers, repeats=3):
    jw = build_join_workload(n_rules=8, n_keys=30, seed=21)
    wm = jw.fresh_wm()
    jw.load(wm, N_WMES)
    with BACKENDS[backend](jw.program.rules, wm, n_workers) as pool:
        pool.conflict_set()  # warm-up (for process: ships the initial WM)
        best = float("inf")
        keys = None
        for _ in range(repeats):
            start = time.perf_counter()
            insts = pool.conflict_set()
            best = min(best, time.perf_counter() - start)
            keys = sorted(i.key for i in insts)
    return best, keys


@pytest.fixture(scope="module")
def table4():
    data = {
        (backend, w): measure(backend, w)
        for backend in BACKENDS
        for w in WORKERS
    }
    table = Table(
        f"Table 4: real-concurrency match fan-out, wall-clock "
        f"({usable_cores()} usable core(s))",
        ["backend", "workers", "best wall ms", "speedup", "efficiency"],
        precision=3,
    )
    for backend in BACKENDS:
        base = data[(backend, 1)][0]
        for w in WORKERS:
            wall, _keys = data[(backend, w)]
            table.add(backend, w, wall * 1000, base / wall, base / wall / w)
    emit(table, "table4_threads")
    return data


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("n_workers", WORKERS)
def test_table4_correctness(benchmark, table4, backend, n_workers):
    """Whatever the timing says, the answers must be identical — across
    worker counts AND across backends."""
    assert table4[(backend, n_workers)][1] == table4[("threads", 1)][1]
    benchmark(lambda: measure(backend, n_workers, repeats=1))


def test_table4_gil_ceiling(table4):
    """Pure-Python match cannot scale linearly under the GIL: by 8 threads
    the efficiency must have collapsed well below the ~0.9+ a real
    multiprocessor shows for this embarrassingly parallel workload."""
    base = table4[("threads", 1)][0]
    speedup8 = base / table4[("threads", 8)][0]
    assert speedup8 < 5.0, (
        f"unexpectedly linear threading speedup ({speedup8:.2f}x) — "
        f"free-threaded Python? Update EXPERIMENTS.md if so."
    )


def test_table4_process_escapes_gil(table4):
    """With >= 4 usable cores, 4 worker processes must deliver real
    wall-clock speedup (>1.5x) on the same workload the threads cannot
    accelerate. On fewer cores the speedup physically cannot appear, so
    only the correctness rows apply."""
    cores = usable_cores()
    if cores < 4:
        pytest.skip(
            f"only {cores} usable core(s): process-parallel speedup cannot "
            f"manifest; correctness asserted elsewhere"
        )
    base = table4[("process", 1)][0]
    speedup4 = base / table4[("process", 4)][0]
    assert speedup4 > 1.5, (
        f"process pool shows no real speedup at 4 workers "
        f"({speedup4:.2f}x) on {cores} cores"
    )
