"""Table 4 — real threads vs the GIL (the honest experiment).

The reproduction notes for this paper flag that CPython's GIL hides the
data-parallel benefits PARULEL showed on real multiprocessors. This bench
*measures* that instead of hand-waving: the ThreadedMatchPool fans
per-site naive matching (pure-Python, read-only) out to 1..8 threads and
reports wall-clock. Expected shape: conflict sets identical at every
thread count; wall-clock speedup far below linear (the GIL serializes
pure-Python match work) — which is exactly why the paper-style speedup
figures use the deterministic SimMachine instead.
"""

import time

import pytest

from repro.metrics import Table
from repro.parallel.threaded import ThreadedMatchPool
from repro.programs import build_join_workload

from .conftest import emit

THREADS = (1, 2, 4, 8)
N_WMES = 120


def measure(n_threads, repeats=3):
    jw = build_join_workload(n_rules=8, n_keys=30, seed=21)
    wm = jw.fresh_wm()
    jw.load(wm, N_WMES)
    with ThreadedMatchPool(jw.program.rules, wm, n_threads) as pool:
        pool.conflict_set()  # warm-up
        best = float("inf")
        keys = None
        for _ in range(repeats):
            start = time.perf_counter()
            insts = pool.conflict_set()
            best = min(best, time.perf_counter() - start)
            keys = sorted(i.key for i in insts)
    return best, keys


@pytest.fixture(scope="module")
def table4():
    data = {t: measure(t) for t in THREADS}
    base = data[1][0]
    table = Table(
        "Table 4: real-thread match fan-out (GIL ceiling, wall-clock)",
        ["threads", "best wall ms", "speedup", "efficiency"],
        precision=3,
    )
    for t in THREADS:
        wall, _keys = data[t]
        table.add(t, wall * 1000, base / wall, base / wall / t)
    emit(table, "table4_threads")
    return data


@pytest.mark.parametrize("n_threads", THREADS)
def test_table4_correctness(benchmark, table4, n_threads):
    """Whatever the timing says, the answers must be identical."""
    assert table4[n_threads][1] == table4[1][1]
    benchmark(lambda: measure(n_threads, repeats=1))


def test_table4_gil_ceiling(table4):
    """Pure-Python match cannot scale linearly under the GIL: by 8 threads
    the efficiency must have collapsed well below the ~0.9+ a real
    multiprocessor shows for this embarrassingly parallel workload."""
    base = table4[1][0]
    speedup8 = base / table4[8][0]
    assert speedup8 < 5.0, (
        f"unexpectedly linear threading speedup ({speedup8:.2f}x) — "
        f"free-threaded Python? Update EXPERIMENTS.md if so."
    )
