"""Checkpoint cost microbenchmark: full snapshots vs delta increments.

Advisory only — no CI gate. Quantifies what the rotating
:class:`~repro.resilience.checkpoint.CheckpointStore` buys over writing a
full snapshot every cycle:

- **size**: bytes on disk per full vs per delta checkpoint (a delta
  carries only the delta-log suffix, new output and new refraction keys
  since the previous save — the working memory is not re-serialized);
- **write time**: wall time per ``save_full`` vs ``save_delta``
  (both pay the fsync + rename discipline);
- **restore latency**: ``store.load()`` + ``ParulelEngine.restore`` for a
  store holding one full plus a chain of deltas, versus a full-only store
  — the replay cost a resume actually pays.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.resilience_microbench [--wmes N]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from typing import List

from repro.core import ParulelEngine
from repro.lang.parser import parse_program
from repro.resilience.checkpoint import CheckpointStore, EngineCheckpointer

#: Bulk facts + per-cycle churn: big enough that re-serializing the whole
#: working memory per checkpoint visibly dominates the full-snapshot cost.
SRC = """
(literalize item id gen)
(literalize tick n limit)
(p advance
    (tick ^n <n> ^limit {<limit> > <n>})
    (item ^id <i> ^gen <n>)
    -->
    (modify 2 ^gen (compute <n> + 1))
    (modify 1 ^n (compute <n> + 1)))
"""


def build_engine(wmes: int, cycles: int) -> ParulelEngine:
    engine = ParulelEngine(parse_program(SRC))
    engine.make("tick", n=0, limit=cycles)
    for i in range(wmes):
        # Only item 0 matches per cycle; the rest are checkpoint ballast.
        engine.make("item", id=i, gen=0 if i == 0 else -1)
    return engine


def timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def fmt_bytes(n: float) -> str:
    return f"{n / 1024:.1f} KiB" if n >= 1024 else f"{n:.0f} B"


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--wmes", type=int, default=20_000,
                        help="working-memory size (default: 20000)")
    parser.add_argument("--cycles", type=int, default=10,
                        help="checkpointed cycles to run (default: 10)")
    args = parser.parse_args(argv)

    prog = parse_program(SRC)
    engine = build_engine(args.wmes, args.cycles)

    with tempfile.TemporaryDirectory(prefix="parulel-bench-") as tmp:
        store = CheckpointStore(os.path.join(tmp, "store"), keep=2)
        ck = EngineCheckpointer(engine, store, full_every=args.cycles + 1)
        full_times = [timed(ck.save)]  # first save is always full
        delta_times, paths = [], []
        while engine.step() is not None:
            delta_times.append(timed(ck.save))
        paths = [p for _s, _k, p in store._entries()]
        full_sizes = [os.path.getsize(p) for p in paths if p.endswith(".full")]
        delta_sizes = [os.path.getsize(p) for p in paths if p.endswith(".delta")]
        t0 = time.perf_counter()
        load = store.load()
        restored = ParulelEngine.restore(prog, load.state)
        restore_chain = time.perf_counter() - t0
        n_deltas = len(load.delta_paths)

        # A second full snapshot for the like-for-like write-time sample
        # (written after the chain restore so it does not shadow it).
        full_times.append(timed(lambda: store.save_full(engine.checkpoint())))
        full_sizes.append(os.path.getsize(store._entries()[-1][2]))

        full_only = CheckpointStore(os.path.join(tmp, "full-only"), keep=1)
        full_only.save_full(engine.checkpoint())
        t0 = time.perf_counter()
        ParulelEngine.restore(prog, full_only.load().state)
        restore_full = time.perf_counter() - t0

        assert restored.cycle == engine.cycle

    def avg(xs):
        return sum(xs) / len(xs) if xs else 0.0

    print(f"[resilience] {args.wmes} WMEs, {engine.cycle} checkpointed cycles")
    print(f"  full snapshot : {fmt_bytes(avg(full_sizes)):>10} "
          f"  write {avg(full_times) * 1e3:7.2f} ms   (n={len(full_sizes)})")
    print(f"  delta         : {fmt_bytes(avg(delta_sizes)):>10} "
          f"  write {avg(delta_times) * 1e3:7.2f} ms   (n={len(delta_sizes)})")
    if delta_sizes:
        print(f"  size ratio    : {avg(full_sizes) / avg(delta_sizes):10.1f}x "
              f"smaller per delta")
    print(f"  restore       : full-only {restore_full * 1e3:.2f} ms; "
          f"full + {n_deltas} delta(s) {restore_chain * 1e3:.2f} ms")
    print("  (advisory: numbers vary with machine load; no gate)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
