"""Figure 2 — copy-and-constrain scaling of a match-bound rule.

Fixes the workload (transitive closure on a random graph — one hot join
rule, ``tc-extend``) and the machine size (P = 16 sites), then varies the
number of constrained copies k ∈ {1, 2, 4, 8, 16} of the hot rule.

Expected shape: with k = 1 the hot rule serializes on one site regardless
of P (speedup ≈ 1); as k grows its match work spreads and simulated time
falls, with diminishing returns once per-site match work no longer
dominates broadcast + barrier. This is the data-parallelism half of the
paper's story (rule parallelism alone caps at the number of rules).
"""

import pytest

from repro.metrics import Table
from repro.parallel import (
    SimMachine,
    SpeedupSeries,
    copy_and_constrain_program,
    hash_partitions,
)
from repro.programs import build_tc

from .conftest import emit

COPIES = (1, 2, 4, 8, 16)
N_SITES = 16


def run_with_copies(k):
    wl = build_tc(n_nodes=28, shape="random", seed=5, density=0.10)
    rule_name, ce_index, attr = wl.cc_hint
    domain = list(wl.domains[("path", "src")])
    program = (
        wl.program
        if k == 1
        else copy_and_constrain_program(
            wl.program, rule_name, ce_index, attr, hash_partitions(domain, k)
        )
    )
    machine = SimMachine(program, N_SITES)
    wl.setup(machine)
    result = machine.run(max_cycles=10_000)
    assert wl.failed_checks(machine.wm) == []
    return result


@pytest.fixture(scope="module")
def figure2():
    results = {k: run_with_copies(k) for k in COPIES}
    series = SpeedupSeries("copy-and-constrain")
    for k in COPIES:
        series.add(k, results[k].total_ticks)
    table = Table(
        f"Figure 2: copy-and-constrain of tc-extend on {N_SITES} sites",
        ["copies k", "ticks", "speedup vs k=1", "load imbalance"],
    )
    for k in COPIES:
        table.add(
            k,
            results[k].total_ticks,
            series.speedup(k),
            results[k].load_imbalance,
        )
    emit(table, "fig2_copy_constrain")
    return series, results


@pytest.mark.parametrize("k", COPIES)
def test_fig2_semantics_preserved(benchmark, figure2, k):
    """Every k produces the same closure; benchmark the simulation."""
    _series, results = figure2
    base = results[1]
    assert results[k].firings == base.firings
    assert results[k].cycles == base.cycles
    benchmark(lambda: run_with_copies(k))


def test_fig2_shape(benchmark, figure2):
    series, results = figure2
    # Splitting the hot rule must help substantially by k=8 ...
    assert series.speedup(8) > 1.5
    # ... monotonically (within slack) ...
    assert series.is_monotone_to(16, slack=0.10)
    # ... and reduce load imbalance relative to the unsplit program.
    assert results[8].load_imbalance < results[1].load_imbalance

    benchmark(lambda: run_with_copies(8))
