"""Ablation A1 — rule-to-site assignment: LPT (profiled) vs round-robin.

A multiprogram rule base (tc + waltz + sieve fused — their classes are
disjoint, so the union program runs all three workloads at once) is
distributed over 4 sites either blindly (round-robin) or by LPT bin
packing on weights measured in a 1-site calibration run. Expected shape:
LPT's makespan total is no worse than round-robin's, and its load
imbalance is lower — profiling pays for itself.
"""

import pytest

from repro.lang.ast import Program
from repro.metrics import Table
from repro.parallel import (
    SimMachine,
    lpt_assignment,
    profile_rule_weights,
    round_robin_assignment,
)
from repro.programs import build_sieve, build_tc, build_waltz

from .conftest import emit

N_SITES = 4


def fused_workloads():
    tc = build_tc(n_nodes=16, shape="chain")
    waltz = build_waltz(n_drawings=6, chain_length=8)
    sieve = build_sieve(limit=40)
    parts = [tc, waltz, sieve]
    program = Program(
        literalizes=tuple(l for wl in parts for l in wl.program.literalizes),
        rules=tuple(r for wl in parts for r in wl.program.rules),
        meta_rules=(),
    )

    def setup(machine):
        for wl in parts:
            wl.setup(machine)

    def verify(wm):
        checks = {}
        for wl in parts:
            for key, ok in wl.verify(wm).items():
                checks[f"{wl.name}:{key}"] = ok
        return checks

    return program, setup, verify


def run_assignment(kind):
    program, setup, verify = fused_workloads()
    if kind == "round-robin":
        assignment = round_robin_assignment(program.rules, N_SITES)
    else:
        weights = profile_rule_weights(program, setup)
        assignment = lpt_assignment(program.rules, N_SITES, weights)
    machine = SimMachine(program, N_SITES, assignment=assignment)
    setup(machine)
    result = machine.run(max_cycles=10_000)
    assert all(verify(machine.wm).values())
    return result


@pytest.fixture(scope="module")
def ablation1():
    results = {kind: run_assignment(kind) for kind in ("round-robin", "lpt")}
    table = Table(
        "Ablation A1: site assignment policy (fused tc+waltz+sieve, 4 sites)",
        ["policy", "total ticks", "parallel ticks", "load imbalance"],
    )
    for kind, res in results.items():
        table.add(kind, res.total_ticks, res.parallel_ticks, res.load_imbalance)
    emit(table, "ablation1_partition")
    return results


def test_a1_lpt_no_worse(benchmark, ablation1):
    rr = ablation1["round-robin"]
    lpt = ablation1["lpt"]
    assert lpt.parallel_ticks <= rr.parallel_ticks * 1.02
    assert lpt.load_imbalance <= rr.load_imbalance * 1.05
    benchmark(lambda: run_assignment("lpt"))


def test_a1_same_answers(benchmark, ablation1):
    rr = ablation1["round-robin"]
    lpt = ablation1["lpt"]
    assert rr.cycles == lpt.cycles
    assert rr.firings == lpt.firings
    benchmark(lambda: run_assignment("round-robin"))
