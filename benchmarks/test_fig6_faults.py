"""Figure 6 (extension) — fault tolerance: recovery overhead vs fault rate.

PARADISER, PARULEL's distributed successor, had to keep replicated working
memories convergent on machines whose sites and messages actually fail.
This figure drives the :class:`~repro.parallel.DistributedMachine` through
seeded :class:`~repro.faults.FaultPlan`\\ s at P = 4 on the circuit
workload, sweeping

- **message drop rate** (every drop is retried and charged one latency +
  resend through the :class:`~repro.parallel.NetworkModel`), and
- **site crashes** (permanent — rules redistribute to survivors — and
  crash-with-rejoin, where the returning replica replays the cumulative
  delta log).

The invariant asserted at every point is the whole story: cycles, firings
and the final working memory are *byte-identical* to the fault-free run —
faults cost ticks, never answers. The recovery overhead column is the
headline curve.
"""

import pytest

from repro.faults import FaultPlan, SiteCrash
from repro.metrics import Table
from repro.parallel import DistributedMachine
from repro.programs import build_circuit

from .conftest import emit

DROP_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)
N_SITES = 4
SEED = 17


def run_with_plan(fault_plan=None, n_sites=N_SITES):
    wl = build_circuit(n_inputs=6, n_levels=8, gates_per_level=6)
    machine = DistributedMachine(wl.program, n_sites, fault_plan=fault_plan)
    wl.setup(machine)
    result = machine.run(max_cycles=5000)
    assert machine.replicas_consistent()
    for site, replica in enumerate(machine.replicas):
        if site in machine._dead:
            continue
        assert wl.failed_checks(replica) == []
    return machine, result


def wm_bytes(machine):
    return sorted(repr(w) for w in machine.replicas[0].snapshot())


@pytest.fixture(scope="module")
def figure6():
    clean_machine, clean = run_with_plan()
    reference = wm_bytes(clean_machine)

    rows = {}
    for rate in DROP_RATES:
        plan = FaultPlan(seed=SEED, drop_rate=rate) if rate else None
        machine, res = run_with_plan(plan)
        assert wm_bytes(machine) == reference, f"drop rate {rate} changed results"
        assert res.cycles == clean.cycles and res.firings == clean.firings
        rows[("drop", rate)] = res

    # The circuit run is ~5 cycles and only sites 0/1 host rules at P=4,
    # so every crash targets site 1 and the rejoin lands inside the run.
    crash_plans = {
        "crash@3 (permanent)": FaultPlan(
            seed=SEED, crashes=(SiteCrash(cycle=3, site=1),)
        ),
        "crash@2 rejoin@4": FaultPlan(
            seed=SEED, crashes=(SiteCrash(cycle=2, site=1, rejoin_cycle=4),)
        ),
        "crash + 10% drop": FaultPlan(
            seed=SEED,
            drop_rate=0.1,
            crashes=(SiteCrash(cycle=3, site=1),),
        ),
    }
    for label, plan in crash_plans.items():
        machine, res = run_with_plan(plan)
        assert wm_bytes(machine) == reference, f"{label} changed results"
        assert res.cycles == clean.cycles and res.firings == clean.firings
        rows[("crash", label)] = res

    table = Table(
        f"Figure 6: fault tolerance on the circuit workload (P={N_SITES}, "
        f"seed={SEED}) — results byte-identical at every point",
        [
            "fault plan",
            "total ticks",
            "overhead",
            "retries",
            "messages",
            "recoveries",
            "fault events",
        ],
        precision=3,
    )
    for (kind, key), res in rows.items():
        label = f"drop={key:g}" if kind == "drop" else key
        table.add(
            label,
            res.total_ticks,
            res.total_ticks / clean.total_ticks,
            res.retries,
            res.messages,
            res.recoveries,
            len(res.fault_events),
        )
    emit(table, "fig6_faults")
    return {"clean": clean, "rows": rows}


def test_fig6_drop_overhead_monotone(benchmark, figure6):
    # More drops -> more retries -> more ticks; answers never change
    # (asserted in the fixture at every point).
    rows = figure6["rows"]
    retries = [rows[("drop", r)].retries for r in DROP_RATES]
    assert retries == sorted(retries)
    assert retries[0] == 0 and retries[-1] > 0
    totals = [rows[("drop", r)].total_ticks for r in DROP_RATES]
    assert totals == sorted(totals)
    benchmark(lambda: run_with_plan(FaultPlan(seed=SEED, drop_rate=0.1)))


def test_fig6_crash_recovery_visible_and_charged(figure6):
    rows = figure6["rows"]
    clean = figure6["clean"]
    permanent = rows[("crash", "crash@3 (permanent)")]
    assert permanent.recoveries == 1
    kinds = [e.kind for e in permanent.fault_events]
    assert kinds[:3] == ["crash", "detect", "redistribute"]
    # Survivors absorb the dead site's rules: the makespan rises.
    assert permanent.compute_ticks > clean.compute_ticks

    rejoin = rows[("crash", "crash@2 rejoin@4")]
    assert rejoin.recoveries == 2  # redistribute at crash, rejoin later
    assert any(e.kind == "rejoin" for e in rejoin.fault_events)
    # The rejoin replay ships the whole delta log as messages.
    assert rejoin.messages > permanent.messages


def test_fig6_seeded_plans_reproduce(figure6):
    plan = FaultPlan(seed=SEED, drop_rate=0.2)
    _m1, a = run_with_plan(plan)
    _m2, b = run_with_plan(plan)
    assert a.retries == b.retries
    assert a.total_ticks == b.total_ticks
    assert [(e.cycle, e.kind, e.site) for e in a.fault_events] == [
        (e.cycle, e.kind, e.site) for e in b.fault_events
    ]
