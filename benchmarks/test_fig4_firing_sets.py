"""Figure 4 — firing-set size per cycle: the parallelism PARULEL exposes.

For each workload, the per-cycle firing-set sizes (the number of
instantiations fired simultaneously). This is the quantity that bounds any
parallel implementation's useful speedup — the paper's argument for why
set-oriented semantics matters. Expected shapes:

- tc: a rising-then-falling frontier wave (widest mid-closure);
- waltz: a flat plateau at n_drawings (all chains advance in lock step);
- sort: wide phases narrowing as the permutation sorts;
- monkey: all-ones (the honesty row — no parallelism to expose).
"""

import pytest

from repro.core import ParulelEngine
from repro.metrics import Table
from repro.programs import REGISTRY, build_waltz

from .conftest import emit

WORKLOADS = sorted(REGISTRY)


def firing_profile(name):
    wl = REGISTRY[name]()
    engine = ParulelEngine(wl.program)
    wl.setup(engine)
    result = engine.run(max_cycles=10_000)
    assert wl.failed_checks(engine.wm) == []
    return result.firing_set_sizes


@pytest.fixture(scope="module")
def figure4():
    profiles = {name: firing_profile(name) for name in WORKLOADS}
    table = Table(
        "Figure 4: firing-set size per cycle",
        ["program", "cycles", "min", "mean", "max", "profile (first 12 cycles)"],
    )
    for name in WORKLOADS:
        sizes = profiles[name]
        table.add(
            name,
            len(sizes),
            min(sizes),
            sum(sizes) / len(sizes),
            max(sizes),
            " ".join(str(s) for s in sizes[:12]),
        )
    emit(table, "fig4_firing_sets")
    return profiles


@pytest.mark.parametrize("name", WORKLOADS)
def test_fig4_profiles(benchmark, figure4, name):
    benchmark(lambda: firing_profile(name))
    sizes = figure4[name]
    if name == "monkey":
        assert all(s == 1 for s in sizes)
    elif name == "waltz":
        # All drawings advance together: flat profile at n_drawings.
        assert len(set(sizes)) == 1
    elif name in ("tc", "sort", "sieve", "circuit"):
        assert max(sizes) >= 4, f"{name} should expose real parallelism"


def test_fig4_waltz_plateau_scales_with_drawings(benchmark, figure4):
    """The plateau height is exactly the number of replicated drawings —
    data parallelism in its purest form."""
    for n in (3, 9):
        wl = build_waltz(n_drawings=n, chain_length=5)
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        result = engine.run()
        assert result.firing_set_sizes == [n] * 5

    def biggest():
        wl = build_waltz(n_drawings=16, chain_length=10)
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        return engine.run()

    benchmark(biggest)
