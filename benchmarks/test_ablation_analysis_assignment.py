"""Ablation A6 — analysis-driven rule partition vs round-robin.

The static analyzer's partition advisor (``assignment="analysis"``) cuts
the rule dependency graph so rules sharing working-memory classes land on
the same site. Under a multicast scatter each site only receives deltas
for classes its rules touch, so a lower-connectivity partition ships
fewer messages for the *same* run: identical cycles, firings and final
working memory, measured here per bundled workload at 4 sites.
"""

import pytest

from repro.metrics import Table
from repro.parallel.distributed import DistributedMachine
from repro.programs import REGISTRY
from repro.wm.io import dumps

from .conftest import emit

N_SITES = 4

#: Workloads whose footprint structure the advisor provably exploits —
#: the acceptance floor is a strict message reduction on at least these.
EXPECT_IMPROVED = ("tc", "manners")


def run_workload(name, policy):
    workload = REGISTRY[name]()
    machine = DistributedMachine(
        workload.program, N_SITES, assignment=policy, multicast=True
    )
    workload.setup(machine)
    result = machine.run()
    return result, dumps(machine.replicas[0])


@pytest.fixture(scope="module")
def ablation6():
    results = {}
    table = Table(
        "Ablation A6: analysis partition vs round-robin "
        f"(multicast, {N_SITES} sites)",
        ["workload", "rr msgs", "analysis msgs", "reduction", "same WM"],
    )
    for name in sorted(REGISTRY):
        rr, rr_wm = run_workload(name, "round-robin")
        adv, adv_wm = run_workload(name, "analysis")
        same = rr_wm == adv_wm
        reduction = (
            f"{(1 - adv.messages / rr.messages):.0%}" if rr.messages else "-"
        )
        table.add(name, rr.messages, adv.messages, reduction, same)
        results[name] = (rr, adv, same)
    emit(table, "ablation6_analysis_partition")
    return results


def test_a6_messages_never_worse(benchmark, ablation6):
    for name, (rr, adv, _same) in ablation6.items():
        assert adv.messages <= rr.messages, name
    benchmark(lambda: run_workload("tc", "analysis"))


def test_a6_strict_reduction_where_structure_allows(benchmark, ablation6):
    for name in EXPECT_IMPROVED:
        rr, adv, _same = ablation6[name]
        assert adv.messages < rr.messages, name
    benchmark(lambda: run_workload("manners", "analysis"))


def test_a6_same_answers(benchmark, ablation6):
    for name, (rr, adv, same) in ablation6.items():
        assert same, name
        assert rr.cycles == adv.cycles, name
        assert rr.firings == adv.firings, name
    benchmark(lambda: run_workload("tc", "round-robin"))
