"""Figure 1 — simulated speedup vs number of sites.

Runs tc, waltz, and sieve on the SimMachine at P ∈ {1, 2, 4, 8, 16}. Each
program's hot rule is copy-and-constrained into P covering partitions so
programs with few rules still expose data parallelism (this mirrors the
paper's methodology: copy-and-constrain was how PARULEL programs were
prepared for multiprocessors). Expected shape: speedup grows with P and is
monotone (within slack) before saturating against the serial fraction
(redaction + merge + barrier), Amdahl style.

Ticks come from the deterministic cost model, so this figure is exactly
reproducible.
"""

import pytest

from repro.metrics import Table
from repro.parallel import (
    SimMachine,
    SpeedupSeries,
    copy_and_constrain_program,
    hash_partitions,
)
from repro.programs import REGISTRY

from .conftest import emit

SITES = (1, 2, 4, 8, 16)
PROGRAMS = ["tc", "waltz", "sieve"]


def prepared_program(wl, n_sites):
    """Copy-and-constrain the workload's hot rule into n_sites partitions."""
    if wl.cc_hint is None or n_sites == 1:
        return wl.program
    rule_name, ce_index, attr = wl.cc_hint
    ce = wl.program.rule(rule_name).conditions[ce_index - 1]
    domain = wl.domains.get((ce.class_name, attr))
    if domain is None:
        # fall back to any domain declared for this attribute
        domain = next(
            (vals for (cls, a), vals in wl.domains.items() if a == attr), None
        )
    if not domain:
        return wl.program
    parts = hash_partitions(list(domain), n_sites)
    return copy_and_constrain_program(wl.program, rule_name, ce_index, attr, parts)


def run_series(name):
    series = SpeedupSeries(name)
    for n_sites in SITES:
        wl = REGISTRY[name]()
        program = prepared_program(wl, n_sites)
        machine = SimMachine(program, n_sites)
        wl.setup(machine)
        result = machine.run(max_cycles=10_000)
        assert wl.failed_checks(machine.wm) == [], name
        series.add(n_sites, result.total_ticks)
    return series


@pytest.fixture(scope="module")
def figure1():
    data = {name: run_series(name) for name in PROGRAMS}
    table = Table(
        "Figure 1: simulated speedup vs sites (copy-and-constrained hot rule)",
        ["program"] + [f"S(P={p})" for p in SITES],
    )
    for name in PROGRAMS:
        s = data[name]
        table.add(name, *[s.speedup(p) for p in SITES])
    emit(table, "fig1_speedup")
    return data


@pytest.mark.parametrize("name", PROGRAMS)
def test_fig1_shape(benchmark, figure1, name):
    series = figure1[name]

    def simulate_p8():
        wl = REGISTRY[name]()
        machine = SimMachine(prepared_program(wl, 8), 8)
        wl.setup(machine)
        return machine.run(max_cycles=10_000)

    benchmark(simulate_p8)

    # Shape assertions: real speedup by P=8, monotone growth within slack,
    # and sublinearity (the serial fraction is charged honestly).
    assert series.speedup(8) > 1.2, f"{name}: no parallel speedup at P=8"
    assert series.is_monotone_to(8, slack=0.10), f"{name}: non-monotone speedup"
    assert series.speedup(16) <= 16.0
    assert series.speedup(16) >= series.speedup(8) * 0.8  # graceful saturation


def test_fig1_serial_fraction_bounds_speedup(benchmark, figure1):
    """Amdahl check on tc: measured speedup never exceeds the bound set by
    the measured serial fraction at P=1."""
    wl = REGISTRY["tc"]()
    machine = SimMachine(wl.program, 1)
    wl.setup(machine)
    res = machine.run()
    serial_frac = res.serial_ticks / res.total_ticks
    bound = 1.0 / serial_frac
    series = figure1["tc"]
    for p in SITES:
        assert series.speedup(p) <= bound * 1.05

    def rerun():
        wl2 = REGISTRY["tc"]()
        m = SimMachine(wl2.program, 1)
        wl2.setup(m)
        return m.run()

    benchmark(rerun)
