"""Working-memory-store microbenchmark and CI gate: columnar vs dict.

Measures what the columnar shared-memory store is for — the process
backend's IPC traffic and replica (re)build cost — on the
:func:`~repro.programs.synthetic.build_scale_workload` bulk-plus-churn
workload, at two tiers:

- ``gate`` (20k WMEs): run by ``--check``/``--write`` every time; fast.
- ``million`` (1M WMEs): run only with ``--full`` and recorded into the
  baseline; ``--check`` re-validates the recorded numbers without
  re-running it.

Per tier and store backend it records:

- **pool**: bytes shipped to match workers (exact — the scatter path
  serializes once and counts the blob), split into the priming request
  (delta mode re-pickles the whole memory; columnar mode ships an attach
  spec of a few hundred bytes and workers scan shared segments) and
  steady-state churn cycles; plus wall times for attach-vs-rebuild and
  per-cycle match.
- **threaded**: in-process pool cycle time over both stores (the columnar
  store must not tax the non-IPC backend).
- **vector**: the vectorized column-scan probe kernel vs the object-replica
  path over the *same* columnar store, in process — WME materializations
  per cycle for both paths (gated: the vector path must materialize at
  least ``MAT_RATIO_FLOOR`` (5x) fewer) and per-cycle refresh+match
  latency (gated: the recorded vector path must win — the object path
  pays eager materialization on every refresh), with per-cycle ordered
  match summaries asserted byte-identical.
- **engine**: an end-to-end ``matcher="process:2"`` run across three
  configurations (dict store, columnar store, columnar with
  ``--no-vector-probe``); cycles, firings and the final working-memory
  digest must be byte-identical across all three.

``--full`` additionally runs every registry workload (tc, waltz, manners,
sort, sort-meta, sieve, circuit, routing, monkey) through the same three
engine configurations, asserts identity, and records the digests under
``workloads`` — ``--check`` re-validates the recorded section.

Usage (from the repo root, ``PYTHONPATH=src``)::

    python -m benchmarks.wm_microbench --write          # refresh gate tier
    python -m benchmarks.wm_microbench --write --full   # + the million tier
    python -m benchmarks.wm_microbench --check          # CI gate (default)

``--check`` fails (exit 1) when:

- within the run, the two stores diverge anywhere (conflict images per
  cycle, engine cycles/firings, final WM digests);
- the columnar store's bytes-per-cycle advantage drops below the
  ``RATIO_FLOOR`` (10x) on the gate tier, or the recorded million-tier
  numbers in the baseline fall below the floor / lost their identity bits;
- the vector kernel's materialization advantage drops below
  ``MAT_RATIO_FLOOR`` (5x) — on the run tiers or in the recorded
  million-tier numbers — or its summaries diverged from the object path;
- the recorded ``workloads`` section is missing, incomplete, or lost an
  identity bit;
- columnar bytes-per-cycle regress > 5% against the baseline, or the
  engine's cycles/firings changed.

Wall-clock numbers are printed and recorded but never gate.
"""

from __future__ import annotations

import argparse
import glob
import hashlib
import json
import os
import sys
import time
from typing import Dict, List

from repro.core import EngineConfig, ParulelEngine
from repro.obs.metrics import MetricsRegistry
from repro.parallel.process import ProcessMatchPool
from repro.parallel.threaded import ThreadedMatchPool
from repro.programs.synthetic import build_scale_workload
from repro.wm.columnar import ColumnarWorkingMemory
from repro.wm.memory import WorkingMemory

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_wm.json"
)

#: The columnar store must ship at least this many times fewer bytes per
#: conflict-set cycle than delta pickling (the tentpole's acceptance bar).
RATIO_FLOOR = 10.0

#: Tolerated growth in columnar bytes-per-cycle vs the baseline before the
#: gate fails (byte counts are deterministic; the slack only absorbs
#: intentional protocol tweaks smaller than a real regression).
BYTES_SLACK = 1.05

#: The vectorized probe kernel must materialize at least this many times
#: fewer WME objects per cycle than the object-replica path (ISSUE 10's
#: acceptance bar for the 1M tier; enforced on every tier run or recorded).
MAT_RATIO_FLOOR = 5.0

#: Engine configurations the identity sweeps run: store backend plus the
#: vectorized-probe escape hatch.
ENGINE_CONFIGS = (
    ("dict", True),
    ("columnar", True),
    ("columnar_novector", False),
)

TIERS = {
    "gate": dict(n_facts=20_000, n_keys=100, churn_block=50, churn_steps=5),
    "million": dict(
        n_facts=1_000_000, n_keys=1000, churn_block=200, churn_steps=5
    ),
}


def _wm_digest(wm: WorkingMemory) -> str:
    records, next_ts = wm.dump_records()
    return hashlib.sha256(repr((records, next_ts)).encode()).hexdigest()[:16]


def _conflict_image(insts) -> str:
    return hashlib.sha256(
        repr(sorted(i.key for i in insts)).encode()
    ).hexdigest()[:16]


def _build_stores(tier_cfg: Dict):
    wl = build_scale_workload(
        n_facts=tier_cfg["n_facts"],
        n_keys=tier_cfg["n_keys"],
        churn_block=tier_cfg["churn_block"],
    )
    return wl


def _run_pool(wl, tier_cfg: Dict, backend: str) -> Dict:
    """Pool-level measurement: prime (attach vs rebuild) + churn cycles."""
    wm = (
        ColumnarWorkingMemory(wl.fresh_wm().templates)
        if backend == "columnar"
        else wl.fresh_wm()
    )
    t0 = time.perf_counter()
    block = wl.load(wm)
    load_s = time.perf_counter() - t0
    metrics = MetricsRegistry()
    pool = ProcessMatchPool(
        wl.program.rules, wm, 2, metrics=metrics, timeout=300.0
    )
    images: List[str] = []
    try:
        t0 = time.perf_counter()
        images.append(_conflict_image(pool.conflict_set()))
        prime_s = time.perf_counter() - t0
        prime_bytes = int(sum(metrics.series("parulel_ipc_bytes_total").values()))
        t0 = time.perf_counter()
        for step in range(tier_cfg["churn_steps"]):
            block = wl.churn(wm, block, step + 1)
            images.append(_conflict_image(pool.conflict_set()))
        steady_s = time.perf_counter() - t0
        total_bytes = int(sum(metrics.series("parulel_ipc_bytes_total").values()))
    finally:
        pool.close()
        if backend == "columnar":
            wm.close()
    cycles = 1 + tier_cfg["churn_steps"]
    return {
        "load_s": round(load_s, 3),
        "prime_s": round(prime_s, 3),
        "prime_bytes": prime_bytes,
        "steady_bytes": total_bytes - prime_bytes,
        "bytes_per_cycle": round(total_bytes / cycles, 1),
        "steady_s_per_cycle": round(steady_s / tier_cfg["churn_steps"], 4),
        "images": images,
        "wm_digest": _wm_digest(wm),
    }


def _run_threaded(wl, tier_cfg: Dict, backend: str) -> Dict:
    """In-process pool throughput over the same store (no IPC at all)."""
    wm = (
        ColumnarWorkingMemory(wl.fresh_wm().templates)
        if backend == "columnar"
        else wl.fresh_wm()
    )
    block = wl.load(wm)
    pool = ThreadedMatchPool(wl.program.rules, wm, 2)
    try:
        image = _conflict_image(pool.conflict_set())
        t0 = time.perf_counter()
        for step in range(tier_cfg["churn_steps"]):
            block = wl.churn(wm, block, step + 1)
            pool.conflict_set()
        cycle_s = (time.perf_counter() - t0) / tier_cfg["churn_steps"]
    finally:
        pool.close()
        if backend == "columnar":
            wm.close()
    return {"cycle_s": round(cycle_s, 4), "image": image}


def _run_vector(wl, tier_cfg: Dict) -> Dict:
    """Vector kernel vs object replica over one columnar store, in process.

    Both paths attach their own :class:`ColumnarReader` to the same parent
    store and answer the same per-cycle match enumeration; the object path
    materializes every live row up front (and every journal add after),
    the vector path only the rows probes actually surface. Ordered match
    summaries are asserted identical every cycle — this is the
    materialization-count half of the tentpole's acceptance bar (the IPC
    half is :func:`_run_pool`).
    """
    from repro.match.alphaindex import AlphaCache, ColumnVectorCache
    from repro.match.compile import compile_rules
    from repro.match.join import enumerate_matches
    from repro.wm.columnar import ColumnarReader

    wm = ColumnarWorkingMemory(wl.fresh_wm().templates)
    obj_reader = vec_reader = None
    try:
        block = wl.load(wm)
        compiled = compile_rules(wl.program.rules)
        spec = wm.attach_spec()
        obj_reader = ColumnarReader(spec)
        vec_reader = ColumnarReader(spec)

        replica = WorkingMemory()
        obj_mat = 0

        def bootstrap(_name: str, batch) -> None:
            nonlocal obj_mat
            replica.bulk_load(batch)
            obj_mat += len(batch)

        def on_add(wme) -> None:
            nonlocal obj_mat
            replica.add(wme)
            obj_mat += 1

        def on_remove(wme) -> None:
            replica.remove(wme)

        t0 = time.perf_counter()
        obj_reader.attach_bulk(bootstrap)
        obj_attach_s = time.perf_counter() - t0
        alpha = AlphaCache(replica)
        alpha.attach()

        t0 = time.perf_counter()
        vcache = ColumnVectorCache(vec_reader)
        vec_attach_s = time.perf_counter() - t0
        unused = WorkingMemory()

        def summaries(source, wm_arg):
            out = []
            for cr in compiled:
                for inst in enumerate_matches(cr, wm_arg, alpha_source=source):
                    out.append(
                        (
                            cr.name,
                            tuple(
                                w.timestamp if w is not None else 0
                                for w in inst.wmes
                            ),
                            inst.env,
                        )
                    )
            return out

        # Step 0 is the prime: both paths lazily build their alpha state
        # inside the first enumeration (bulk_add over prebuilt WMEs vs the
        # 1M-row column scan), reported separately. Every later step times
        # what a worker actually does per ("match-shm", info) message —
        # refresh (where the object path eagerly materializes every
        # journal add) plus the full match enumeration.
        obj_s = vec_s = obj_prime_s = vec_prime_s = 0.0
        cycles = 1 + tier_cfg["churn_steps"]
        for step in range(cycles):
            obj_dt = vec_dt = 0.0
            if step:
                block = wl.churn(wm, block, step)
                info = wm.cycle_info()
                t0 = time.perf_counter()
                obj_reader.refresh(info, on_add, on_remove)
                obj_dt += time.perf_counter() - t0
                t0 = time.perf_counter()
                vcache.refresh(info)
                vec_dt += time.perf_counter() - t0
            t0 = time.perf_counter()
            obj_out = summaries(alpha, replica)
            obj_dt += time.perf_counter() - t0
            t0 = time.perf_counter()
            vec_out = summaries(vcache, unused)
            vec_dt += time.perf_counter() - t0
            if step:
                obj_s += obj_dt
                vec_s += vec_dt
            else:
                obj_prime_s, vec_prime_s = obj_dt, vec_dt
            if obj_out != vec_out:
                raise AssertionError(
                    f"vector kernel diverged from object path at cycle "
                    f"{step} ({len(obj_out)} vs {len(vec_out)} summaries)"
                )
        vec_mat = vcache.materialized
        ratio = obj_mat / max(vec_mat, 1)
        steady = max(tier_cfg["churn_steps"], 1)
        return {
            "object": {
                "materialized_total": obj_mat,
                "materialized_per_cycle": round(obj_mat / cycles, 1),
                "attach_s": round(obj_attach_s, 3),
                "prime_match_s": round(obj_prime_s, 4),
                "cycle_s": round(obj_s / steady, 4),
            },
            "vector": {
                "materialized_total": vec_mat,
                "materialized_per_cycle": round(vec_mat / cycles, 1),
                "attach_s": round(vec_attach_s, 3),
                "prime_match_s": round(vec_prime_s, 4),
                "cycle_s": round(vec_s / steady, 4),
                "scanned_rows": vcache.scanned_rows,
                "fallback_probes": vcache.fallback_probes,
                "probes": vcache.probes,
            },
            "mat_ratio": round(ratio, 1),
            "summaries_identical": True,
        }
    finally:
        if obj_reader is not None:
            obj_reader.close()
        if vec_reader is not None:
            vec_reader.close()
        wm.close()


def _run_engine(wl, backend: str, vector: bool = True) -> Dict:
    """End-to-end process-backend run: fire every hit, to quiescence."""
    engine = ParulelEngine(
        wl.program,
        EngineConfig(
            matcher="process:2",
            wm_backend=backend,
            matcher_timeout=300.0,
            vector_probe=vector,
        ),
    )
    try:
        wl.load(engine.wm)
        t0 = time.perf_counter()
        result = engine.run()
        wall = time.perf_counter() - t0
        return {
            "cycles": result.cycles,
            "firings": result.firings,
            "wall_s": round(wall, 3),
            "wm_digest": _wm_digest(engine.wm),
        }
    finally:
        engine.close()


def measure_tier(tier: str) -> Dict:
    tier_cfg = TIERS[tier]
    wl = _build_stores(tier_cfg)
    out: Dict = {"n_facts": tier_cfg["n_facts"]}

    pool_rows = {b: _run_pool(wl, tier_cfg, b) for b in ("dict", "columnar")}
    if pool_rows["dict"]["images"] != pool_rows["columnar"]["images"]:
        raise AssertionError(
            f"{tier}: conflict sets diverge between stores"
        )
    if pool_rows["dict"]["wm_digest"] != pool_rows["columnar"]["wm_digest"]:
        raise AssertionError(f"{tier}: final WM diverges between stores")
    for row in pool_rows.values():
        del row["images"]
    ratio = pool_rows["dict"]["bytes_per_cycle"] / max(
        pool_rows["columnar"]["bytes_per_cycle"], 1
    )
    out["pool"] = {
        "dict": pool_rows["dict"],
        "columnar": pool_rows["columnar"],
        "bytes_ratio": round(ratio, 1),
        "stores_identical": True,
    }

    threaded = {b: _run_threaded(wl, tier_cfg, b) for b in ("dict", "columnar")}
    if threaded["dict"]["image"] != threaded["columnar"]["image"]:
        raise AssertionError(f"{tier}: threaded conflict sets diverge")
    out["threaded"] = {
        b: {"cycle_s": r["cycle_s"]} for b, r in threaded.items()
    }

    out["vector"] = _run_vector(wl, tier_cfg)

    engine = {
        name: _run_engine(wl, "columnar" if name.startswith("columnar") else name,
                          vector=vector)
        for name, vector in ENGINE_CONFIGS
    }
    identity = {
        name: (row["cycles"], row["firings"], row["wm_digest"])
        for name, row in engine.items()
    }
    if len(set(identity.values())) != 1:
        raise AssertionError(
            f"{tier}: engine runs diverge between configs: {engine}"
        )
    out["engine"] = engine

    leaked = glob.glob("/dev/shm/pwm*")
    if leaked:
        raise AssertionError(f"{tier}: leaked shared-memory segments {leaked}")
    return out


def measure_workloads() -> Dict[str, Dict]:
    """Every registry workload through the three engine configurations;
    cycles/firings/final-WM digests must agree across all of them."""
    from repro.programs import REGISTRY

    out: Dict[str, Dict] = {}
    for name in sorted(REGISTRY):
        wl = REGISTRY[name]()
        rows = {}
        for cfg_name, vector in ENGINE_CONFIGS:
            backend = "columnar" if cfg_name.startswith("columnar") else cfg_name
            engine = ParulelEngine(
                wl.program,
                EngineConfig(
                    matcher="process:2",
                    wm_backend=backend,
                    matcher_timeout=300.0,
                    vector_probe=vector,
                ),
            )
            try:
                wl.setup(engine.wm)
                result = engine.run()
                rows[cfg_name] = (
                    result.cycles,
                    result.firings,
                    _wm_digest(engine.wm),
                )
            finally:
                engine.close()
        if len(set(rows.values())) != 1:
            raise AssertionError(f"workload {name}: configs diverge: {rows}")
        cycles, firings, digest = rows["columnar"]
        out[name] = {
            "cycles": cycles,
            "firings": firings,
            "wm_digest": digest,
            "identical": True,
        }
        print(
            f"workload {name:<10} {cycles:>4} cycles {firings:>6} firings "
            f"(3 configs byte-identical)"
        )
    return out


def report(tiers: Dict[str, Dict]) -> None:
    header = (
        f"{'tier':<10} {'store':<9} {'prime s':>8} {'prime B':>12} "
        f"{'B/cycle':>10} {'cycle s':>8} {'ratio':>8}"
    )
    print(header)
    print("-" * len(header))
    for tier, data in tiers.items():
        pool = data["pool"]
        for backend in ("dict", "columnar"):
            row = pool[backend]
            ratio = f"{pool['bytes_ratio']:>7.1f}x" if backend == "columnar" else ""
            print(
                f"{tier:<10} {backend:<9} {row['prime_s']:>8.3f} "
                f"{row['prime_bytes']:>12} {row['bytes_per_cycle']:>10.1f} "
                f"{row['steady_s_per_cycle']:>8.4f} {ratio:>8}"
            )
        vec = data["vector"]
        print(
            f"{tier:<10} vector: {vec['object']['materialized_per_cycle']} -> "
            f"{vec['vector']['materialized_per_cycle']} WMEs/cycle "
            f"({vec['mat_ratio']}x fewer), refresh+match "
            f"{vec['object']['cycle_s']}s -> "
            f"{vec['vector']['cycle_s']}s/cycle"
        )
        eng = data["engine"]["columnar"]
        print(
            f"{tier:<10} engine: {eng['cycles']} cycles, {eng['firings']} "
            f"firings, {eng['wall_s']}s (configs byte-identical)"
        )


def check(current: Dict[str, Dict], baseline: Dict) -> int:
    failures = []
    base_tiers = baseline.get("tiers", {})
    for tier, data in current.items():
        base = base_tiers.get(tier)
        if base is None:
            failures.append(f"{tier}: missing from baseline (re-run --write)")
            continue
        ratio = data["pool"]["bytes_ratio"]
        if ratio < RATIO_FLOOR:
            failures.append(
                f"{tier}: columnar bytes advantage {ratio:.1f}x below the "
                f"{RATIO_FLOOR:.0f}x floor"
            )
        vec = data.get("vector")
        if vec is None:
            failures.append(f"{tier}: vector section missing from the run")
        else:
            if vec["mat_ratio"] < MAT_RATIO_FLOOR:
                failures.append(
                    f"{tier}: vector materialization advantage "
                    f"{vec['mat_ratio']:.1f}x below the "
                    f"{MAT_RATIO_FLOOR:.0f}x floor"
                )
            if not vec.get("summaries_identical"):
                failures.append(
                    f"{tier}: vector kernel summaries diverged"
                )
            # Live latency gate with noise slack; the recorded baseline is
            # held to a strict win below.
            if vec["vector"]["cycle_s"] > vec["object"]["cycle_s"] * 1.10:
                failures.append(
                    f"{tier}: vector refresh+match "
                    f"{vec['vector']['cycle_s']}s/cycle slower than object "
                    f"path {vec['object']['cycle_s']}s/cycle"
                )
        cur_bpc = data["pool"]["columnar"]["bytes_per_cycle"]
        base_bpc = base["pool"]["columnar"]["bytes_per_cycle"]
        if cur_bpc > base_bpc * BYTES_SLACK:
            failures.append(
                f"{tier}: columnar bytes/cycle regressed "
                f"{base_bpc} -> {cur_bpc}"
            )
        for field in ("cycles", "firings"):
            cur_v = data["engine"]["columnar"][field]
            base_v = base["engine"]["columnar"][field]
            if cur_v != base_v:
                failures.append(
                    f"{tier}: engine {field} changed {base_v} -> {cur_v}"
                )
        cur_wall = data["engine"]["columnar"]["wall_s"]
        base_wall = base["engine"]["columnar"]["wall_s"]
        if cur_wall > base_wall * 3:
            print(
                f"note: {tier} engine wall {base_wall}s -> {cur_wall}s "
                f"(advisory, not gating)"
            )
    # Tiers recorded in the baseline but not re-run (the million tier under
    # --check) must still carry a passing ratio and the identity bits.
    for tier, base in base_tiers.items():
        if tier in current:
            continue
        if base["pool"]["bytes_ratio"] < RATIO_FLOOR:
            failures.append(
                f"{tier} (recorded): bytes ratio "
                f"{base['pool']['bytes_ratio']:.1f}x below the floor"
            )
        if not base["pool"].get("stores_identical"):
            failures.append(f"{tier} (recorded): stores_identical is not set")
        base_vec = base.get("vector")
        if base_vec is None:
            failures.append(
                f"{tier} (recorded): vector section missing "
                f"(re-run --write --full)"
            )
        else:
            if base_vec["mat_ratio"] < MAT_RATIO_FLOOR:
                failures.append(
                    f"{tier} (recorded): vector materialization advantage "
                    f"{base_vec['mat_ratio']:.1f}x below the "
                    f"{MAT_RATIO_FLOOR:.0f}x floor"
                )
            if not base_vec.get("summaries_identical"):
                failures.append(
                    f"{tier} (recorded): vector summaries_identical not set"
                )
            if base_vec["vector"]["cycle_s"] > base_vec["object"]["cycle_s"]:
                failures.append(
                    f"{tier} (recorded): no probe-latency win — vector "
                    f"{base_vec['vector']['cycle_s']}s/cycle vs object "
                    f"{base_vec['object']['cycle_s']}s/cycle "
                    f"(re-run --write --full)"
                )
    # The full-sweep workload identity section must exist, cover the whole
    # registry, and carry its identity bits.
    from repro.programs import REGISTRY

    workloads = baseline.get("workloads", {})
    missing = sorted(set(REGISTRY) - set(workloads))
    if missing:
        failures.append(
            f"workloads: {', '.join(missing)} missing from the recorded "
            f"identity sweep (re-run --write --full)"
        )
    for name, row in sorted(workloads.items()):
        if not row.get("identical"):
            failures.append(f"workload {name}: identity bit not set")
    if failures:
        print("\nWM GATE FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(
        "\nwm gate OK: stores identical, byte and materialization "
        "advantages hold, workload sweep recorded"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--write", action="store_true", help="refresh the baseline JSON"
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="gate against the baseline (default)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="also run the million-WME tier (minutes; --write records it)",
    )
    args = parser.parse_args(argv)

    tiers = ["gate"] + (["million"] if args.full else [])
    current = {tier: measure_tier(tier) for tier in tiers}
    workloads = measure_workloads() if args.full else None
    report(current)

    if args.write:
        previous: Dict = {}
        if os.path.exists(BASELINE_PATH):
            with open(BASELINE_PATH) as fh:
                previous = json.load(fh)
        merged_tiers = previous.get("tiers", {})
        merged_tiers.update(current)
        baseline = {"tiers": merged_tiers}
        if workloads is not None:
            baseline["workloads"] = workloads
        elif "workloads" in previous:
            baseline["workloads"] = previous["workloads"]
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        with open(BASELINE_PATH, "w") as fh:
            json.dump(baseline, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {BASELINE_PATH}")
        return 0

    if not os.path.exists(BASELINE_PATH):
        print(f"no baseline at {BASELINE_PATH}; run with --write first")
        return 1
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    return check(current, baseline)


if __name__ == "__main__":
    sys.exit(main())
