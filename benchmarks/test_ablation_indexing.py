"""Ablation A7 — hash-indexed joins vs nested-loop enumeration.

Same engine, same plans, same conflict sets — the only thing ablated is
whether ``enumerate_matches`` probes the indexed alpha memories
(``indexed_match=True``) or scans them with the historical nested loops
(``--no-index``). Run end-to-end on tc and manners with both the TREAT
engine and the naive recompute oracle:

- tc stresses wide equijoin frontiers (the transitive-closure delta joins);
- manners stresses negated-CE blocking checks under meta-rule redaction.

Expected shape: large reductions in ``join_probes + join_checks``
everywhere (the manners floor is 5x), identical cycles/firings/final WM
(asserted here and, byte-for-byte, in the differential tests), wall-clock
advisory.
"""

import pytest

from repro.metrics import Table

from .conftest import emit
from .match_microbench import run_workload

WORKLOADS = ("tc", "manners")
ENGINES = ("treat", "naive")


@pytest.fixture(scope="module")
def ablation7():
    data = {}
    table = Table(
        "Ablation A7: indexed vs nested-loop joins (full engine runs)",
        ["workload", "engine", "indexed ops", "nested-loop ops", "reduction"],
    )
    for workload in WORKLOADS:
        for engine in ENGINES:
            idx = run_workload(workload, engine, True)
            scan = run_workload(workload, engine, False)
            data[(workload, engine)] = (idx, scan)
            table.add(
                workload,
                engine,
                idx["ops"],
                scan["ops"],
                f"{scan['ops'] / max(idx['ops'], 1):.1f}x",
            )
    emit(table, "ablation7_indexing")
    return data


def test_a7_semantics_preserved(benchmark, ablation7):
    for (workload, engine), (idx, scan) in ablation7.items():
        assert (idx["cycles"], idx["firings"]) == (scan["cycles"], scan["firings"]), (
            workload,
            engine,
        )
    benchmark(lambda: run_workload("tc", "treat", True))


def test_a7_work_reduction(benchmark, ablation7):
    for (workload, engine), (idx, scan) in ablation7.items():
        assert scan["ops"] > idx["ops"], (workload, engine)
    # The headline contract: >=5x less join work on manners.
    for engine in ENGINES:
        idx, scan = ablation7[("manners", engine)]
        assert scan["ops"] >= 5 * idx["ops"], (engine, idx["ops"], scan["ops"])
    benchmark(lambda: run_workload("manners", "treat", True))
