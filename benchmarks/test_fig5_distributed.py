"""Figure 5 (extension) — distributed execution: latency sensitivity.

The shared-memory SimMachine charges a flat broadcast per WM change; the
PARADISER-style :class:`~repro.parallel.DistributedMachine` replicates
working memory per site and ships candidate gathers, redaction verdicts,
and delta scatters over a network with per-round **latency**. This figure
sweeps latency at P = 4 on the circuit workload:

- at near-zero latency the distributed machine behaves like the
  shared-memory simulation (communication is a small tax);
- as latency grows, the two rounds per cycle dominate and the
  communication fraction approaches 1 — the classic reason the
  DADO/PARULEL line preferred tightly coupled hardware, reproduced as a
  curve.

Results are deterministic ticks; correctness (replica consistency and
ground-truth verification on *every* replica) is asserted at each point.
"""

import pytest

from repro.metrics import Table
from repro.parallel import DistributedMachine, NetworkModel
from repro.programs import build_circuit

from .conftest import emit

LATENCIES = (0.0, 10.0, 50.0, 250.0, 1000.0)
N_SITES = 4


def run_at_latency(latency, n_sites=N_SITES):
    wl = build_circuit(n_inputs=6, n_levels=8, gates_per_level=6)
    machine = DistributedMachine(
        wl.program, n_sites, network=NetworkModel(latency=latency)
    )
    wl.setup(machine)
    result = machine.run(max_cycles=5000)
    assert machine.replicas_consistent()
    for replica in machine.replicas:
        assert wl.failed_checks(replica) == []
    return result


@pytest.fixture(scope="module")
def figure5():
    data = {lat: run_at_latency(lat) for lat in LATENCIES}
    # The serial baseline exchanges no messages, so it pays no latency at
    # all — it is one run, not one per latency (a regression here once
    # inflated every speedup in this figure).
    serial = run_at_latency(0.0, n_sites=1)
    table = Table(
        f"Figure 5: distributed circuit simulation vs network latency (P={N_SITES})",
        [
            "latency",
            "total ticks",
            "comm ticks",
            "comm fraction",
            "messages",
            "speedup vs P=1",
        ],
        precision=3,
    )
    for lat in LATENCIES:
        res = data[lat]
        table.add(
            lat,
            res.total_ticks,
            res.comm_ticks,
            res.comm_fraction,
            res.messages,
            serial.total_ticks / res.total_ticks,
        )
    emit(table, "fig5_distributed")
    return {**data, "serial": serial}


def test_fig5_latency_shape(benchmark, figure5):
    # Total time strictly increases with latency; results never change.
    totals = [figure5[lat].total_ticks for lat in LATENCIES]
    assert totals == sorted(totals)
    assert len(set(totals)) == len(totals)
    cycles = {figure5[lat].cycles for lat in LATENCIES}
    firings = {figure5[lat].firings for lat in LATENCIES}
    assert len(cycles) == 1 and len(firings) == 1

    benchmark(lambda: run_at_latency(50.0))


def test_fig5_comm_fraction_approaches_one(benchmark, figure5):
    fractions = [figure5[lat].comm_fraction for lat in LATENCIES]
    assert fractions == sorted(fractions)
    assert fractions[-1] > 0.6, "high latency must dominate the run"
    assert fractions[0] < 0.5, "near-zero latency must not dominate"
    benchmark(lambda: run_at_latency(0.0))


def test_fig5_messages_invariant_to_latency(figure5):
    messages = {figure5[lat].messages for lat in LATENCIES}
    assert len(messages) == 1


def test_fig5_serial_baseline_pays_no_latency(figure5):
    # Regression: P=1 used to be charged gather+scatter round latency per
    # cycle despite sending zero messages, inflating apparent speedups.
    serial = figure5["serial"]
    assert serial.messages == 0
    assert serial.comm_ticks == 0.0
    worst_case = run_at_latency(1000.0, n_sites=1)
    assert worst_case.total_ticks == serial.total_ticks
