"""Match-kernel microbenchmark and CI perf gate.

Runs the registry workloads that exercise heavy joins (tc, manners, waltz)
through full engine runs with the hash-indexed join kernel on and off, and
records the *deterministic* match-work counters (``join_probes`` +
``join_checks``). Because the engines are deterministic, these counters are
byte-stable across machines — unlike wall-clock, which is printed for
context but never gates.

Usage (from the repo root, ``PYTHONPATH=src``)::

    python -m benchmarks.match_microbench --write   # refresh the baseline
    python -m benchmarks.match_microbench --check   # CI gate (default)

``--check`` fails (exit 1) when:

- any scenario's indexed counter total exceeds the checked-in baseline in
  ``benchmarks/results/BENCH_match.json`` (a join-kernel perf regression);
- cycles/firings differ from the baseline (a semantics change — fix the
  engine or consciously re-``--write``);
- the manners reduction factor drops below the 5x floor the indexing work
  promised.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict

from repro.core import EngineConfig, ParulelEngine
from repro.programs import REGISTRY

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_match.json"
)

#: (workload, matcher) pairs measured; treat is the paper's engine, naive
#: shows the indexed alpha cache also rescues the recompute-everything path.
SCENARIOS = (
    ("tc", "treat"),
    ("tc", "naive"),
    ("manners", "treat"),
    ("manners", "naive"),
    ("waltz", "treat"),
)

#: Indexing must cut manners join work by at least this factor.
MANNERS_FLOOR = 5.0


def run_workload(workload: str, matcher: str, indexed: bool) -> Dict:
    wl = REGISTRY[workload]()
    engine = ParulelEngine(
        wl.program, EngineConfig(matcher=matcher, indexed_match=indexed)
    )
    wl.setup(engine)
    start = time.perf_counter()
    result = engine.run(max_cycles=5000)
    wall = time.perf_counter() - start
    if not wl.verify(engine.wm):
        raise AssertionError(
            f"{workload}/{matcher} (indexed={indexed}) failed verification: "
            f"{wl.failed_checks(engine.wm)}"
        )
    totals = engine.matcher.stats.totals
    return {
        "ops": int(totals["join_probes"] + totals["join_checks"]),
        "cycles": result.cycles,
        "firings": result.firings,
        "wall_ms": round(wall * 1000, 2),
    }


def measure() -> Dict[str, Dict]:
    out = {}
    for workload, matcher in SCENARIOS:
        key = f"{workload}/{matcher}"
        indexed = run_workload(workload, matcher, True)
        noindex = run_workload(workload, matcher, False)
        out[key] = {
            "indexed_ops": indexed["ops"],
            "noindex_ops": noindex["ops"],
            "cycles": indexed["cycles"],
            "firings": indexed["firings"],
            "indexed_wall_ms": indexed["wall_ms"],
            "noindex_wall_ms": noindex["wall_ms"],
        }
        if indexed["cycles"] != noindex["cycles"] or (
            indexed["firings"] != noindex["firings"]
        ):
            raise AssertionError(
                f"{key}: indexing changed engine semantics "
                f"({indexed['cycles']}/{indexed['firings']} vs "
                f"{noindex['cycles']}/{noindex['firings']})"
            )
    return out


def report(current: Dict[str, Dict]) -> None:
    header = (
        f"{'scenario':<16} {'indexed ops':>12} {'noindex ops':>12} "
        f"{'reduction':>10} {'wall ms':>9}"
    )
    print(header)
    print("-" * len(header))
    for key, row in current.items():
        factor = row["noindex_ops"] / max(row["indexed_ops"], 1)
        print(
            f"{key:<16} {row['indexed_ops']:>12} {row['noindex_ops']:>12} "
            f"{factor:>9.1f}x {row['indexed_wall_ms']:>9.1f}"
        )


def check(current: Dict[str, Dict], baseline: Dict[str, Dict]) -> int:
    failures = []
    for key, row in current.items():
        base = baseline.get(key)
        if base is None:
            failures.append(f"{key}: missing from baseline (re-run --write)")
            continue
        if row["indexed_ops"] > base["indexed_ops"]:
            failures.append(
                f"{key}: indexed join work regressed "
                f"{base['indexed_ops']} -> {row['indexed_ops']}"
            )
        if (row["cycles"], row["firings"]) != (base["cycles"], base["firings"]):
            failures.append(
                f"{key}: cycles/firings changed "
                f"{(base['cycles'], base['firings'])} -> "
                f"{(row['cycles'], row['firings'])}"
            )
        # Wall-clock is advisory only: noisy on shared machines.
        if row["indexed_wall_ms"] > base["indexed_wall_ms"] * 3:
            print(
                f"note: {key} wall-clock {base['indexed_wall_ms']}ms -> "
                f"{row['indexed_wall_ms']}ms (advisory, not gating)"
            )
    for key in ("manners/treat", "manners/naive"):
        row = current[key]
        factor = row["noindex_ops"] / max(row["indexed_ops"], 1)
        if factor < MANNERS_FLOOR:
            failures.append(
                f"{key}: reduction {factor:.1f}x below the "
                f"{MANNERS_FLOOR:.0f}x floor"
            )
    if failures:
        print("\nPERF GATE FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("\nperf gate OK: no counter regressions")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--write", action="store_true", help="refresh the baseline JSON"
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="gate against the baseline (default)",
    )
    args = parser.parse_args(argv)

    current = measure()
    report(current)

    if args.write:
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        with open(BASELINE_PATH, "w") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {BASELINE_PATH}")
        return 0

    if not os.path.exists(BASELINE_PATH):
        print(f"no baseline at {BASELINE_PATH}; run with --write first")
        return 1
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    return check(current, baseline)


if __name__ == "__main__":
    sys.exit(main())
