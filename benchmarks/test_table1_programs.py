"""Table 1 — benchmark program characteristics.

Columns: rules, meta-rules, WME classes, initial WMEs, peak WM size,
PARULEL cycles/firings to completion. (The size/shape table every
production-system paper of the era opens its evaluation with.)
"""

import pytest

from repro.core import ParulelEngine
from repro.metrics import Table
from repro.programs import REGISTRY

from .conftest import emit

WORKLOADS = sorted(REGISTRY)


def characterize(name):
    wl = REGISTRY[name]()
    engine = ParulelEngine(wl.program)
    wl.setup(engine)
    initial = len(engine.wm)
    peak = initial
    result = None

    while True:
        report = engine.step()
        peak = max(peak, len(engine.wm))
        if report is None or report.halted:
            break

    assert wl.failed_checks(engine.wm) == []
    return {
        "rules": wl.n_rules,
        "meta": wl.n_meta_rules,
        "classes": len(wl.program.literalizes),
        "initial_wmes": initial,
        "peak_wm": peak,
        "cycles": engine.cycle,
        "firings": sum(r.fired for r in engine.reports),
    }


@pytest.fixture(scope="module")
def table1():
    rows = {name: characterize(name) for name in WORKLOADS}
    table = Table(
        "Table 1: benchmark program characteristics",
        ["program", "rules", "meta", "classes", "init WM", "peak WM", "cycles", "firings"],
    )
    for name in WORKLOADS:
        c = rows[name]
        table.add(
            name,
            c["rules"],
            c["meta"],
            c["classes"],
            c["initial_wmes"],
            c["peak_wm"],
            c["cycles"],
            c["firings"],
        )
    emit(table, "table1_programs")
    return rows


@pytest.mark.parametrize("name", WORKLOADS)
def test_table1_run_to_completion(benchmark, table1, name):
    """Benchmark: full PARULEL run of each program (engine build + run)."""

    def run():
        wl = REGISTRY[name]()
        engine = ParulelEngine(wl.program)
        wl.setup(engine)
        return engine.run(max_cycles=10_000)

    result = benchmark(run)
    # Shape: the characterization and the benchmarked run agree.
    assert result.cycles == table1[name]["cycles"]
    assert result.firings == table1[name]["firings"]
