(literalize edge src dst)

(literalize path src dst)

(p tc-init
    (edge ^src <a> ^dst <b>)
    -(path ^src <a> ^dst <b>)
    -->
    (make path ^src <a> ^dst <b>))

(p tc-extend
    (path ^src <a> ^dst <b>)
    (edge ^src <b> ^dst <c>)
    -(path ^src <a> ^dst <c>)
    -->
    (make path ^src <a> ^dst <c>))
