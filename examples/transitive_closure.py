#!/usr/bin/env python3
"""The headline experiment in miniature: transitive closure.

Set-oriented firing derives the whole reachability frontier per cycle;
sequential OPS5 needs one cycle per derived fact. The ratio of their cycle
counts is roughly the mean firing-set size — the parallelism PARULEL
exposes to a multiprocessor.

Run:  python examples/transitive_closure.py
"""

from repro import OPS5Engine, ParulelEngine
from repro.programs import build_tc


def main() -> None:
    for shape in ("chain", "tree", "random"):
        workload = build_tc(n_nodes=20, shape=shape)

        parulel = ParulelEngine(workload.program)
        workload.setup(parulel)
        pres = parulel.run()
        assert workload.verify_ok(parulel.wm), workload.failed_checks(parulel.wm)

        ops5 = OPS5Engine(workload.program)
        workload.setup(ops5)
        ores = ops5.run()
        assert workload.verify_ok(ops5.wm)

        paths = parulel.wm.count_class("path")
        print(
            f"{shape:7s}  paths={paths:5d}  parulel={pres.cycles:4d} cycles "
            f"(mean firing set {pres.mean_firing_set:5.1f})  "
            f"ops5={ores.cycles:5d} cycles  reduction={ores.cycles / pres.cycles:5.1f}x"
        )


if __name__ == "__main__":
    main()
