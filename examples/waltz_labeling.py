#!/usr/bin/env python3
"""Waltz-style constraint-label propagation with a live cycle trace.

Shows PARULEL's data parallelism: many replicated drawings propagate their
label waves concurrently, so the cycle count tracks chain *length*, never
the *number* of drawings. The per-cycle trace prints the advancing
frontier.

Run:  python examples/waltz_labeling.py
"""

from repro import EngineConfig, ParulelEngine
from repro.programs import build_waltz


def main() -> None:
    for n_drawings in (1, 4, 16):
        workload = build_waltz(n_drawings=n_drawings, chain_length=8)

        def trace(report):
            print(
                f"  cycle {report.cycle}: frontier of {report.fired} lines "
                f"labeled simultaneously"
            )

        engine = ParulelEngine(
            workload.program, EngineConfig(matcher="rete"), trace=trace
        )
        workload.setup(engine)
        print(f"== {n_drawings} drawing(s), chain length 8")
        result = engine.run()
        assert workload.verify_ok(engine.wm), workload.failed_checks(engine.wm)
        print(
            f"  -> {result.cycles} cycles, {result.firings} labels derived; "
            f"cycles are independent of drawing count\n"
        )

    # The invariant the figure bench asserts:
    cycles = []
    for n in (2, 8):
        wl = build_waltz(n_drawings=n, chain_length=8)
        eng = ParulelEngine(wl.program)
        wl.setup(eng)
        cycles.append(eng.run().cycles)
    assert cycles[0] == cycles[1] == 8


if __name__ == "__main__":
    main()
