#!/usr/bin/env python3
"""Meta-rules in action: declarative conflict resolution by redaction.

A pool of jobs competes for a pool of machines. The object-level rule
proposes EVERY eligible (job, machine) pairing; without arbitration the
parallel firing would assign several jobs to one machine (the engine's
``error`` interference policy would catch that). Three meta-rules implement
the scheduling policy *in the rule language itself* — PARULEL's replacement
for OPS5's hard-wired LEX/MEA:

1. higher-priority jobs win a contested machine,
2. equal-priority ties break toward the lexicographically smaller job,
3. a job offered several machines takes the cheapest.

Run:  python examples/resource_allocation.py
"""

from repro import ParulelEngine, parse_program

SOURCE = """
(literalize job name priority status)
(literalize machine name cost state)

(p assign
    (job ^name <j> ^priority <p> ^status queued)
    (machine ^name <m> ^cost <c> ^state idle)
    -->
    (modify 1 ^status running)
    (modify 2 ^state busy)
    (write assigned <j> to <m>))

; --- scheduling policy, expressed as redaction meta-rules ---------------

(mp priority-wins
    (instantiation ^rule assign ^id <i> ^m <mach> ^p <p1>)
    (instantiation ^rule assign ^id {<k> <> <i>} ^m <mach> ^p < <p1>)
    -->
    (redact <k>))

(mp name-breaks-ties
    (instantiation ^rule assign ^id <i> ^m <mach> ^p <p1> ^j <j1>)
    (instantiation ^rule assign ^id {<k> <> <i>} ^m <mach> ^p <p1> ^j > <j1>)
    -->
    (redact <k>))

(mp take-cheapest
    (instantiation ^rule assign ^id <i> ^j <job> ^c <c1>)
    (instantiation ^rule assign ^id {<k> <> <i>} ^j <job> ^c > <c1>)
    -->
    (redact <k>))
"""


def main() -> None:
    engine = ParulelEngine(parse_program(SOURCE))
    engine.make("job", name="analytics", priority=3, status="queued")
    engine.make("job", name="backup", priority=1, status="queued")
    engine.make("job", name="compile", priority=3, status="queued")
    engine.make("job", name="deploy", priority=9, status="queued")
    engine.make("machine", name="m-small", cost=1, state="idle")
    engine.make("machine", name="m-large", cost=5, state="idle")

    result = engine.run()

    print("assignment log:")
    for line in result.output:
        print(" ", line)
    print("\nper-cycle redaction work:")
    for report in result.reports:
        print(
            f"  cycle {report.cycle}: {report.candidates} candidates, "
            f"{report.redaction.redacted} redacted, {report.fired} fired"
        )

    running = sorted(
        w.get("name") for w in engine.wm.by_class("job") if w.get("status") == "running"
    )
    queued = sorted(
        w.get("name") for w in engine.wm.by_class("job") if w.get("status") == "queued"
    )
    print(f"\nrunning: {running}")
    print(f"still queued: {queued}")

    # Two machines => exactly two jobs run; deploy (priority 9) must be one.
    assert len(running) == 2
    assert "deploy" in running
    # No machine was double-booked (the error policy would have thrown).
    assert result.reason == "quiescence"


if __name__ == "__main__":
    main()
