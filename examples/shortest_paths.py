#!/usr/bin/env python3
"""Shortest paths with meta-rule aggregation, plus derivation tracing.

Two PARULEL ideas in one example:

1. **Minimum-by-redaction** — Bellman-Ford relaxes every edge of the
   frontier in parallel; meta-rules redact dominated improvement
   candidates so only each node's cheapest proposal fires. (Run the same
   program without its meta-rules and the parallel firing set breaks —
   ``tests/programs/test_routing.py`` demonstrates both failure modes.)

2. **Provenance** — with ``track_provenance=True`` the engine records
   which firing created every WME; ``engine.explain`` prints the
   derivation tree of the final distance facts: the actual shortest-path
   tree, recovered from the run itself.

Run:  python examples/shortest_paths.py
"""

from repro import EngineConfig, ParulelEngine
from repro.programs import build_routing


def main() -> None:
    workload = build_routing(n_nodes=10, extra_edges=10, seed=42)
    engine = ParulelEngine(
        workload.program, EngineConfig(track_provenance=True)
    )
    workload.setup(engine)
    result = engine.run()

    assert workload.verify_ok(engine.wm), workload.failed_checks(engine.wm)
    print(
        f"{result.cycles} relaxation cycles, {result.firings} firings, "
        f"{sum(r.redaction.redacted for r in result.reports)} candidates "
        f"redacted by the min-selection meta-rules\n"
    )

    dists = sorted(
        engine.wm.by_class("dist"), key=lambda w: (w.get("cost"), str(w.get("node")))
    )
    print("final distances from n0:")
    for d in dists:
        print(f"  {d.get('node')}: {d.get('cost')}")

    farthest = dists[-1]
    print(f"\nhow did {farthest.get('node')} get cost {farthest.get('cost')}?")
    print(engine.explain(farthest, max_depth=6))


if __name__ == "__main__":
    main()
