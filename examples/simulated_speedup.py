#!/usr/bin/env python3
"""Reproducing the paper's parallel-performance methodology in miniature.

Runs the Waltz-style propagation workload on the simulated multiprocessor
at P = 1..8 sites, twice:

- **rule parallelism only** — the program's single hot rule cannot be
  split, so speedup saturates immediately;
- **copy-and-constrain** — the hot rule is replicated into P constrained
  copies over a partition of its data domain, letting the match work
  spread across sites.

This is exactly the effect Stolfo's copy-and-constrain transformation was
invented for. Ticks are deterministic simulation time (see
repro/parallel/costmodel.py), so the numbers are stable run to run.

Run:  python examples/simulated_speedup.py
"""

from repro.metrics import Table
from repro.parallel import (
    SimMachine,
    SpeedupSeries,
    copy_and_constrain_program,
    hash_partitions,
)
from repro.programs import build_waltz


def run_at(program, workload, n_sites: int) -> float:
    machine = SimMachine(program, n_sites)
    workload.setup(machine)
    result = machine.run()
    assert workload.verify_ok(machine.wm), workload.failed_checks(machine.wm)
    return result.total_ticks


def main() -> None:
    workload = build_waltz(n_drawings=12, chain_length=10)
    rule_name, ce_index, attr = workload.cc_hint
    domain = workload.domains[("labeled", "line")]

    plain = SpeedupSeries("rule-parallel")
    cc = SpeedupSeries("copy-and-constrain")
    table = Table(
        "Simulated speedup, waltz 12x10 (deterministic ticks)",
        ["P", "plain ticks", "plain speedup", "c&c ticks", "c&c speedup"],
    )

    for n_sites in (1, 2, 4, 8):
        plain.add(n_sites, run_at(workload.program, workload, n_sites))
        parts = hash_partitions(domain, n_sites)
        cc_program = copy_and_constrain_program(
            workload.program, rule_name, ce_index, attr, parts
        )
        cc.add(n_sites, run_at(cc_program, workload, n_sites))
        table.add(
            n_sites,
            plain.points[n_sites],
            plain.speedup(n_sites),
            cc.points[n_sites],
            cc.speedup(n_sites),
        )

    table.show()
    assert cc.speedup(8) > plain.speedup(8), (
        "copy-and-constrain must beat rule-level parallelism on a "
        "single-hot-rule program"
    )
    print(
        f"copy-and-constrain wins at P=8: {cc.speedup(8):.2f}x vs "
        f"{plain.speedup(8):.2f}x"
    )


if __name__ == "__main__":
    main()
