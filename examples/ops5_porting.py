#!/usr/bin/env python3
"""Porting an OPS5 program to PARULEL, with the linter in the loop.

The paper's intended workflow: take a sequential OPS5 program, run it
set-oriented, and add redaction meta-rules wherever parallel firings
collide. This example walks that loop mechanically:

1. a little inventory-allocation program runs fine under sequential OPS5;
2. under PARULEL it aborts with an InterferenceError (two order-filling
   firings decrement the same stock WME);
3. ``repro.tools.lint`` predicts exactly that pair statically and drafts a
   meta-rule skeleton;
4. we refine the skeleton (serialize only *colliding* orders — same item)
   and the program runs parallel AND correct: orders for different items
   still fire in the same cycle.

Run:  python examples/ops5_porting.py
"""

from repro import InterferenceError, OPS5Engine, ParulelEngine, parse_program
from repro.tools.lint import lint_program, suggest_meta_rules

OPS5_PROGRAM = """
(literalize order id item qty status)
(literalize stock item units)

(p fill
    (order ^id <o> ^item <i> ^qty <q> ^status open)
    (stock ^item <i> ^units {<u> >= <q>})
    -->
    (modify 2 ^units (compute <u> - <q>))
    (modify 1 ^status filled))
"""

REFINED_META = """
(mp serialize-same-item
    (instantiation ^rule fill ^id <a> ^i <item>)
    (instantiation ^rule fill ^id {<b> > <a>} ^i <item>)
    -->
    (redact <b>))
"""


def load(engine) -> None:
    engine.make("stock", item="widget", units=10)
    engine.make("stock", item="gadget", units=10)
    engine.make("order", id="o1", item="widget", qty=4, status="open")
    engine.make("order", id="o2", item="widget", qty=5, status="open")
    engine.make("order", id="o3", item="gadget", qty=6, status="open")


def main() -> None:
    program = parse_program(OPS5_PROGRAM)

    print("== 1. sequential OPS5: works (one firing per cycle)")
    ops5 = OPS5Engine(program)
    load(ops5)
    res = ops5.run()
    print(f"   {res.cycles} cycles; widget stock:",
          ops5.wm.find("stock", item="widget")[0].get("units"))

    print("\n== 2. naive PARULEL port: parallel firings collide")
    par = ParulelEngine(program)
    load(par)
    try:
        par.run()
        raise AssertionError("expected an InterferenceError")
    except InterferenceError as exc:
        print(f"   InterferenceError: {exc}")

    print("\n== 3. the linter predicted this statically:")
    for line in lint_program(program).splitlines():
        print("   " + line)
    assert suggest_meta_rules(program)  # skeletons drafted

    print("\n== 4. refined meta-rule: serialize only same-item orders")
    patched = parse_program(OPS5_PROGRAM + REFINED_META)
    fixed = ParulelEngine(patched)
    load(fixed)
    res = fixed.run()
    widget = fixed.wm.find("stock", item="widget")[0].get("units")
    gadget = fixed.wm.find("stock", item="gadget")[0].get("units")
    filled = len(fixed.wm.find("order", status="filled"))
    print(
        f"   {res.cycles} cycles, {res.firings} firings; "
        f"widget stock {widget}, gadget stock {gadget}, {filled} orders filled"
    )
    # Cycle 1 fills one widget order AND the gadget order in parallel;
    # cycle 2 fills the second widget order against the updated stock.
    assert res.cycles == 2
    assert res.reports[0].fired == 2
    assert widget == 1 and gadget == 4 and filled == 3


if __name__ == "__main__":
    main()
