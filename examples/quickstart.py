#!/usr/bin/env python3
"""Quickstart: write a PARULEL program, run it, inspect the results.

Run:  python examples/quickstart.py
"""

from repro import EngineConfig, OPS5Engine, ParulelEngine, parse_program

# A PARULEL program is OPS5-flavoured: `literalize` declares WME classes,
# `p` rules match working memory on the left of `-->` and act on the right.
# PARULEL's twist: in each cycle EVERY matching instantiation fires at once.
SOURCE = """
(literalize employee name salary dept raised)
(literalize raise-batch dept pct)

(p apply-raise
    (raise-batch ^dept <d> ^pct <p>)
    (employee ^name <n> ^salary <s> ^dept <d> ^raised no)
    -->
    (modify 2 ^salary (compute <s> + <p>) ^raised yes)
    (write gave <n> a raise))

(p retire-batch
    (raise-batch ^dept <d>)
    -(employee ^dept <d> ^raised no)
    -->
    (remove 1))
"""


def main() -> None:
    program = parse_program(SOURCE)

    engine = ParulelEngine(program, EngineConfig(matcher="rete"))
    engine.make("employee", name="ada", salary=900, dept="eng", raised="no")
    engine.make("employee", name="grace", salary=950, dept="eng", raised="no")
    engine.make("employee", name="edsger", salary=980, dept="eng", raised="no")
    engine.make("raise-batch", dept="eng", pct=100)

    result = engine.run()

    print("== PARULEL (set-oriented firing) ==")
    print(f"cycles: {result.cycles}, firings: {result.firings}")
    for line in result.output:
        print(" ", line)
    for emp in engine.wm.by_class("employee"):
        print(f"  {emp.get('name')}: {emp.get('salary')}")
    # All three raises landed in ONE cycle; the batch retired in the next.
    assert result.cycles == 2

    # The same program under the sequential OPS5 baseline takes one cycle
    # per raise — the conflict-resolution bottleneck PARULEL removes.
    ops5 = OPS5Engine(program)
    ops5.make("employee", name="ada", salary=900, dept="eng", raised="no")
    ops5.make("employee", name="grace", salary=950, dept="eng", raised="no")
    ops5.make("employee", name="edsger", salary=980, dept="eng", raised="no")
    ops5.make("raise-batch", dept="eng", pct=100)
    ops5_result = ops5.run()
    print("\n== OPS5 baseline (one firing per cycle) ==")
    print(f"cycles: {ops5_result.cycles}")
    assert ops5_result.cycles == 4


if __name__ == "__main__":
    main()
