"""OPS5 conflict-resolution strategies: LEX and MEA.

Both consider only instantiations that have not already fired (refraction),
then order by:

**LEX**
  1. recency: the sorted-descending timestamp vectors of the matched WMEs,
     compared lexicographically (more recent wins; a longer vector wins a
     tie on the common prefix);
  2. specificity: number of attribute tests (more specific wins);
  3. as a final deterministic tie-break (OPS5 chose arbitrarily): rule
     name, then timestamp vector.

**MEA**
  1. recency of the WME matching the *first* condition element (the "means"
     in means-ends analysis — OPS5 programs put the goal/context element
     first);
  2. then exactly LEX.

This implementation adds ``salience`` (a PARULEL-era extension kept for
parity with the meta level) as a zeroth key: higher salience wins. Programs
that never set salience are ordered purely by the classic keys.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

from repro.match.instantiation import Instantiation

__all__ = ["Strategy", "LexStrategy", "MeaStrategy", "create_strategy", "STRATEGY_NAMES"]


class Strategy(abc.ABC):
    """Selects the single instantiation to fire from the candidates."""

    name: str = "abstract"

    @abc.abstractmethod
    def sort_key(self, inst: Instantiation) -> Tuple:
        """Key such that the *maximum* is the instantiation to fire."""

    def select(self, candidates: Sequence[Instantiation]) -> Optional[Instantiation]:
        """The winning instantiation, or ``None`` if there are no candidates."""
        if not candidates:
            return None
        return max(candidates, key=self.sort_key)

    def order(self, candidates: Sequence[Instantiation]) -> List[Instantiation]:
        """All candidates, best first (used by traces and tests)."""
        return sorted(candidates, key=self.sort_key, reverse=True)


def _lex_tail(inst: Instantiation) -> Tuple:
    # Deterministic final tie-break: rule name ascending — encoded by
    # sorting on the *negated* comparison via a trick-free approach:
    # max() wants big keys, and we want the lexicographically smallest
    # rule name to win ties, so invert each character's code point.
    inverted_name = tuple(-ord(c) for c in inst.rule.name)
    return (inst.timestamps, inst.specificity, inverted_name, inst.key[1])


class LexStrategy(Strategy):
    """OPS5 LEX: salience, recency vector, specificity."""

    name = "lex"

    def sort_key(self, inst: Instantiation) -> Tuple:
        return (inst.salience,) + _lex_tail(inst)


class MeaStrategy(Strategy):
    """OPS5 MEA: the first condition element's recency dominates."""

    name = "mea"

    def sort_key(self, inst: Instantiation) -> Tuple:
        first = inst.wmes[0]
        first_ts = first.timestamp if first is not None else 0
        return (inst.salience, first_ts) + _lex_tail(inst)


STRATEGY_NAMES = ("lex", "mea")


def create_strategy(name: str) -> Strategy:
    """Instantiate a strategy by name (``lex`` or ``mea``)."""
    table = {"lex": LexStrategy, "mea": MeaStrategy}
    try:
        return table[name]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r} (choose from {STRATEGY_NAMES})"
        ) from None
