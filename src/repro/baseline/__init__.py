"""The OPS5 baseline: sequential recognize-act with built-in conflict
resolution.

PARULEL's headline claim is measured *against* this engine: OPS5 selects
**one** instantiation per cycle using a hard-wired strategy (LEX or MEA) and
fires it immediately, so a run needs roughly one cycle per firing — the
sequential bottleneck PARULEL removes. Both engines share the language
front end, the match engines, and the action evaluator, so measured
differences isolate the firing semantics.
"""

from repro.baseline.ops5 import OPS5Engine, OPS5Result
from repro.baseline.strategy import LexStrategy, MeaStrategy, Strategy, create_strategy

__all__ = [
    "LexStrategy",
    "MeaStrategy",
    "OPS5Engine",
    "OPS5Result",
    "Strategy",
    "create_strategy",
]
