"""The sequential OPS5 engine.

Classic recognize-act: match, pick **one** instantiation via the strategy,
fire it immediately (its effects are visible to the very next match), and
repeat. Refraction prevents the same instantiation from firing twice.

Shares everything except the cycle discipline with
:class:`~repro.core.engine.ParulelEngine`: same parser/analysis, same match
engines, same action evaluator. Meta-rules in the program are ignored — the
strategy *is* OPS5's conflict resolution. Table 2 compares the two engines'
cycles-to-completion on identical programs and initial memories.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Set

from repro.errors import CycleLimitExceeded
from repro.core.actions import ActionEvaluator, HostFunction
from repro.lang.analysis import analyze_program
from repro.lang.ast import Program, Value
from repro.match.instantiation import InstKey, Instantiation
from repro.match.interface import Matcher, create_matcher
from repro.wm.memory import WorkingMemory
from repro.wm.template import TemplateRegistry
from repro.wm.wme import WME

__all__ = ["OPS5Engine", "OPS5Result"]


@dataclass
class OPS5Result:
    """Summary of one sequential run."""

    cycles: int
    firings: int  # == cycles except possibly the final halt cycle
    reason: str  # 'quiescence' | 'halt' | 'cycle-limit'
    output: List[str]
    fired_rules: List[str]  # rule name per cycle, in firing order
    wall_time: float

    @property
    def halted(self) -> bool:
        return self.reason == "halt"


class OPS5Engine:
    """Sequential one-instantiation-per-cycle production-system engine."""

    def __init__(
        self,
        program: Program,
        strategy: str = "lex",
        matcher: str = "rete",
        host_functions: Optional[Mapping[str, HostFunction]] = None,
        wm: Optional[WorkingMemory] = None,
        max_cycles: int = 1_000_000,
        indexed: bool = True,
    ) -> None:
        analyze_program(program)
        from repro.baseline.strategy import create_strategy  # local: no cycle

        self.program = program
        self.strategy = create_strategy(strategy)
        self.wm = wm if wm is not None else WorkingMemory(
            TemplateRegistry.from_program(program)
        )
        self.evaluator = ActionEvaluator(host_functions)
        self.matcher: Matcher = create_matcher(
            matcher, program.rules, self.wm, indexed=indexed
        )
        self.max_cycles = max_cycles
        self.fired: Set[InstKey] = set()
        self.fired_rules: List[str] = []
        self.output: List[str] = []
        self.halted = False
        self._cycle = 0

    # -- working-memory convenience ------------------------------------------

    def make(self, class_name: str, attrs: Optional[Mapping[str, Value]] = None, **kw: Value) -> WME:
        return self.wm.make(class_name, attrs, **kw)

    def remove(self, wme: WME) -> None:
        self.wm.remove(wme)

    def register_function(self, name: str, fn: HostFunction) -> None:
        self.evaluator.register(name, fn)

    # -- the cycle ----------------------------------------------------------------

    def step(self) -> Optional[Instantiation]:
        """Fire the strategy's pick; return it, or ``None`` at quiescence."""
        if self.halted:
            return None
        candidates = [
            i for i in self.matcher.instantiations() if i.key not in self.fired
        ]
        winner = self.strategy.select(candidates)
        if winner is None:
            return None
        self._cycle += 1
        self.fired.add(winner.key)
        self.fired_rules.append(winner.rule.name)
        delta = self.evaluator.evaluate(winner)
        # Sequential semantics: apply immediately, effects visible next match.
        for wme, updates in delta.modifies:
            self.wm.remove(wme)
            self.wm.make(wme.class_name, {**wme.attributes, **updates})
        for wme in delta.removes:
            self.wm.discard(wme)  # a modify above may have displaced it
        for class_name, attrs in delta.makes:
            self.wm.make(class_name, attrs)
        self.output.extend(delta.writes)
        self.evaluator.run_calls(delta)
        if delta.halt:
            self.halted = True
        return winner

    def run(self, max_cycles: Optional[int] = None) -> OPS5Result:
        """Run to quiescence or halt."""
        limit = max_cycles if max_cycles is not None else self.max_cycles
        start = self._cycle
        wall0 = time.perf_counter()
        reason = "quiescence"
        while True:
            if self._cycle - start >= limit:
                raise CycleLimitExceeded(
                    f"exceeded {limit} cycles; the rule program likely does "
                    f"not terminate under sequential firing"
                )
            winner = self.step()
            if winner is None:
                reason = "halt" if self.halted else "quiescence"
                break
        wall = time.perf_counter() - wall0
        cycles = self._cycle - start
        return OPS5Result(
            cycles=cycles,
            firings=cycles,
            reason=reason,
            output=list(self.output),
            fired_rules=list(self.fired_rules),
            wall_time=wall,
        )

    @property
    def cycle(self) -> int:
        return self._cycle
