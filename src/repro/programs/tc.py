"""Transitive closure — the cleanest set-oriented-firing workload.

Two rules derive ``path`` facts from ``edge`` facts::

    (p tc-init   (edge a b), no path a b          -> make path a b)
    (p tc-extend (path a b), (edge b c), no path a c -> make path a c)

Under OPS5 each derived path costs one sequential cycle; under PARULEL the
whole frontier fires per cycle, so cycles ≈ graph diameter while firings
stay equal — the Table 2 headline. The ``tc-extend`` join is also the
canonical copy-and-constrain target (Figure 2): partition on ``^src``.

Graph shapes: ``chain`` (n edges, diameter n), ``cycle``, ``tree`` (binary),
``random`` (Erdős–Rényi via a seeded RNG). Ground truth comes from
:mod:`networkx` transitive closure.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.lang.builder import ProgramBuilder, v
from repro.programs.base import BenchmarkWorkload
from repro.wm.memory import WorkingMemory

__all__ = ["build_tc", "build_tc_scale", "tc_program", "generate_graph"]


def tc_program():
    """The two-rule transitive-closure program."""
    pb = ProgramBuilder()
    pb.literalize("edge", "src", "dst")
    pb.literalize("path", "src", "dst")
    (
        pb.rule("tc-init")
        .ce("edge", src=v("a"), dst=v("b"))
        .neg("path", src=v("a"), dst=v("b"))
        .make("path", src=v("a"), dst=v("b"))
    )
    (
        pb.rule("tc-extend")
        .ce("path", src=v("a"), dst=v("b"))
        .ce("edge", src=v("b"), dst=v("c"))
        .neg("path", src=v("a"), dst=v("c"))
        .make("path", src=v("a"), dst=v("c"))
    )
    return pb.build()


def generate_graph(n_nodes: int, shape: str, seed: int = 7, density: float = 0.12) -> List[Tuple[int, int]]:
    """Deterministic edge list for the requested shape."""
    if shape == "chain":
        return [(i, i + 1) for i in range(n_nodes - 1)]
    if shape == "cycle":
        return [(i, (i + 1) % n_nodes) for i in range(n_nodes)]
    if shape == "tree":
        return [(i, 2 * i + 1) for i in range(n_nodes) if 2 * i + 1 < n_nodes] + [
            (i, 2 * i + 2) for i in range(n_nodes) if 2 * i + 2 < n_nodes
        ]
    if shape == "random":
        rng = random.Random(seed)
        edges = []
        for a in range(n_nodes):
            for b in range(n_nodes):
                if a != b and rng.random() < density:
                    edges.append((a, b))
        return edges
    raise ValueError(f"unknown graph shape {shape!r}")


def build_tc(
    n_nodes: int = 24, shape: str = "chain", seed: int = 7, density: float = 0.12
) -> BenchmarkWorkload:
    """Transitive-closure workload over a generated graph."""
    edges = generate_graph(n_nodes, shape, seed, density)
    node_names = [f"n{i}" for i in range(n_nodes)]

    graph = nx.DiGraph()
    graph.add_nodes_from(range(n_nodes))
    graph.add_edges_from(edges)
    # Non-reflexive transitive closure: (a, b) iff a path of length >= 1
    # exists — including (a, a) when a lies on a cycle, exactly what the
    # rules derive (nx.descendants would wrongly drop those self-paths).
    closed = nx.transitive_closure(graph, reflexive=False)
    closure: Set[Tuple[str, str]] = {
        (f"n{a}", f"n{b}") for a, b in closed.edges
    }

    def setup(engine) -> None:
        for a, b in edges:
            engine.make("edge", src=f"n{a}", dst=f"n{b}")

    def verify(wm: WorkingMemory) -> Dict[str, bool]:
        derived = {
            (wme.get("src"), wme.get("dst")) for wme in wm.by_class("path")
        }
        return {
            "paths-match-networkx-closure": derived == closure,
            "no-duplicate-paths": len(derived) == wm.count_class("path"),
        }

    return BenchmarkWorkload(
        name="tc",
        description=f"transitive closure, {shape} graph, {n_nodes} nodes, "
        f"{len(edges)} edges",
        program=tc_program(),
        setup=setup,
        verify=verify,
        params={"n_nodes": n_nodes, "shape": shape, "seed": seed, "density": density},
        domains={("path", "src"): node_names, ("edge", "src"): node_names},
        cc_hint=("tc-extend", 1, "src"),
    )


def build_tc_scale(n_chains: int = 200, chain_length: int = 20) -> BenchmarkWorkload:
    """Scaled transitive closure: a *forest* of ``n_chains`` disjoint
    chains, ``chain_length`` edges each.

    The shape is chosen so correctness stays checkable at any size without
    materializing a ground-truth closure: a chain of ``L`` edges closes to
    exactly ``L·(L+1)/2`` paths, so the forest's closure size is analytic,
    and cycles-to-quiescence stays ``⌈log2 L⌉``-ish (frontier doubling)
    rather than growing with ``n_chains`` — set-oriented firing does all
    chains at once. Derived path counts in the million-WME benchmarks are
    verified against the formula plus a full spot-check of chain 0.

    Deliberately *not* registered in ``REGISTRY`` — table-1 style tooling
    iterates the registry, and this workload is sized for the scale
    benchmarks only.
    """
    edges: List[Tuple[int, int]] = []
    stride = chain_length + 1
    for c in range(n_chains):
        base = c * stride
        edges.extend((base + i, base + i + 1) for i in range(chain_length))
    expected_paths = n_chains * chain_length * (chain_length + 1) // 2
    chain0 = {
        (f"n{a}", f"n{b}")
        for a in range(stride)
        for b in range(a + 1, stride)
    }

    def setup(engine) -> None:
        for a, b in edges:
            engine.make("edge", src=f"n{a}", dst=f"n{b}")

    def verify(wm: WorkingMemory) -> Dict[str, bool]:
        derived = {
            (wme.get("src"), wme.get("dst")) for wme in wm.by_class("path")
        }
        derived_chain0 = {
            (a, b) for a, b in derived if int(a[1:]) < stride
        }
        return {
            "path-count-matches-formula": len(derived) == expected_paths,
            "no-duplicate-paths": len(derived) == wm.count_class("path"),
            "chain0-closure-exact": derived_chain0 == chain0,
        }

    return BenchmarkWorkload(
        name="tc-scale",
        description=f"transitive closure, forest of {n_chains} chains × "
        f"{chain_length} edges ({len(edges)} edges, "
        f"{expected_paths} closure paths)",
        program=tc_program(),
        setup=setup,
        verify=verify,
        params={"n_chains": n_chains, "chain_length": chain_length},
        cc_hint=("tc-extend", 1, "src"),
    )
