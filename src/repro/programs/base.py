"""The common shape of a benchmark workload."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence

from repro.lang.ast import Program, Value
from repro.wm.memory import WorkingMemory

__all__ = ["BenchmarkWorkload", "WMELoader"]


class _Maker(Protocol):
    """Anything with a ``make`` — ParulelEngine, OPS5Engine, SimMachine,
    or a bare WorkingMemory."""

    def make(self, class_name: str, attrs=None, **kw): ...


#: Loads the initial working memory into any engine-like object.
WMELoader = Callable[[_Maker], None]


@dataclass
class BenchmarkWorkload:
    """A program plus its workload and ground truth.

    ``verify(wm)`` returns a dict of check-name → bool; all True means the
    run produced the correct answer (integration tests assert this for
    every engine × matcher combination).

    ``domains`` maps ``(class, attr)`` to the runtime value domain of that
    attribute — what :func:`repro.parallel.partition.copy_and_constrain`
    needs to build covering partitions.

    ``cc_hint`` optionally names the canonical copy-and-constrain target as
    ``(rule_name, ce_index, attr)`` for this workload's hot rule.
    """

    name: str
    description: str
    program: Program
    setup: WMELoader
    verify: Callable[[WorkingMemory], Dict[str, bool]]
    params: Dict[str, Any] = field(default_factory=dict)
    domains: Dict[tuple, Sequence[Value]] = field(default_factory=dict)
    cc_hint: Optional[tuple] = None

    @property
    def n_rules(self) -> int:
        return len(self.program.rules)

    @property
    def n_meta_rules(self) -> int:
        return len(self.program.meta_rules)

    def verify_ok(self, wm: WorkingMemory) -> bool:
        """All verification checks pass."""
        return all(self.verify(wm).values())

    def failed_checks(self, wm: WorkingMemory) -> List[str]:
        return [name for name, ok in self.verify(wm).items() if not ok]
