"""Odd-even transposition sort — parallel firing with disjoint updates.

Items occupy positions 0..n-1; a swap rule exchanges the *values* of an
adjacent out-of-order pair. Two variants:

**Phase-based** (:func:`build_sort`) — the textbook parallel algorithm: a
``phase`` WME alternates between ``even`` and ``odd``; only pairs of the
current parity may swap, so every firing in a cycle touches disjoint items
and the set-oriented semantics is interference-free by construction. The
``advance`` rule ticks the phase each cycle (firing alongside the swaps —
they only *read* the phase) and halts after n rounds, by which point
odd-even transposition sort is guaranteed complete. PARULEL sorts in
Θ(n) cycles with Θ(n) parallel swaps per cycle; OPS5 needs one cycle per
swap — Θ(n²) (Table 2's strongest contrast).

**Meta-rule variant** (:func:`build_sort_meta`) — no phases: *every*
out-of-order adjacent pair is proposed, and overlapping proposals (sharing
an item) would interfere; the ``independent-swaps`` meta-rule redacts any
swap whose left index is one more than another proposed swap's left index,
i.e. keeps a maximal set of non-overlapping swaps greedily from the left.
This is the paper's motivating use of redaction: turning a conflicting
candidate set into a safe parallel firing set declaratively.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.lang.builder import ProgramBuilder, compute, conj, lt, ne, v
from repro.programs.base import BenchmarkWorkload
from repro.wm.memory import WorkingMemory

__all__ = ["build_sort", "build_sort_meta", "sort_program"]


def sort_program(n_items: int):
    pb = ProgramBuilder()
    pb.literalize("item", "pos", "val")
    pb.literalize("pair", "left", "right", "parity")
    pb.literalize("phase", "parity", "round")

    (
        pb.rule("swap")
        .ce("phase", parity=v("par"))
        .ce("pair", left=v("i"), right=v("j"), parity=v("par"))
        .ce("item", pos=v("i"), val=v("x"))
        .ce("item", pos=v("j"), val=conj(v("y"), lt(v("x"))))
        .modify(3, val=v("y"))
        .modify(4, val=v("x"))
    )
    (
        pb.rule("advance", salience=-1)
        .ce("phase", parity="even", round=conj(v("r"), lt(n_items)))
        .modify(1, parity="odd", round=compute(v("r"), "+", 1))
    )
    (
        pb.rule("advance-odd", salience=-1)
        .ce("phase", parity="odd", round=conj(v("r"), lt(n_items)))
        .modify(1, parity="even", round=compute(v("r"), "+", 1))
    )
    (
        pb.rule("finish")
        .ce("phase", round=n_items)
        .remove(1)
    )
    return pb.build()


def build_sort(n_items: int = 24, seed: int = 3) -> BenchmarkWorkload:
    """Phase-based odd-even transposition sort of a shuffled permutation."""
    rng = random.Random(seed)
    values = list(range(n_items))
    rng.shuffle(values)

    def setup(engine) -> None:
        engine.make("phase", parity="even", round=0)
        for i in range(n_items - 1):
            engine.make(
                "pair", left=i, right=i + 1, parity="even" if i % 2 == 0 else "odd"
            )
        for i, val in enumerate(values):
            engine.make("item", pos=i, val=val)

    def verify(wm: WorkingMemory) -> Dict[str, bool]:
        items = sorted(wm.by_class("item"), key=lambda w: w.get("pos"))
        vals = [w.get("val") for w in items]
        return {
            "sorted": vals == sorted(values),
            "is-permutation": sorted(vals) == sorted(values),
            "phase-retired": wm.count_class("phase") == 0,
        }

    return BenchmarkWorkload(
        name="sort",
        description=f"odd-even transposition sort, {n_items} items (phased)",
        program=sort_program(n_items),
        setup=setup,
        verify=verify,
        params={"n_items": n_items, "seed": seed},
        domains={("item", "pos"): list(range(n_items))},
        cc_hint=("swap", 3, "pos"),
    )


def build_sort_meta(n_items: int = 12, seed: int = 5) -> BenchmarkWorkload:
    """Meta-rule-arbitrated sort: redaction resolves overlapping swaps."""
    pb = ProgramBuilder()
    pb.literalize("item", "pos", "val")
    pb.literalize("pair", "left", "right")
    (
        pb.rule("swap")
        .ce("pair", left=v("i"), right=v("j"))
        .ce("item", pos=v("i"), val=v("x"))
        .ce("item", pos=v("j"), val=conj(v("y"), lt(v("x"))))
        .modify(2, val=v("y"))
        .modify(3, val=v("x"))
    )
    # Two proposed swaps conflict iff they share an item, i.e. their left
    # indices differ by exactly 1. Redact the RIGHT one of any adjacent
    # conflicting pair; the meta fixpoint then re-admits nothing (redaction
    # is conservative: left-most swaps of each conflict chain survive).
    (
        pb.meta_rule("drop-right-neighbour")
        .ce("instantiation", rule="swap", id=v("a"), i=v("p"), j=v("q"))
        .ce("instantiation", rule="swap", id=v("b"), i=v("q"))
        .redact(v("b"))
    )
    program = pb.build()

    rng = random.Random(seed)
    values = list(range(n_items))
    rng.shuffle(values)

    def setup(engine) -> None:
        for i in range(n_items - 1):
            engine.make("pair", left=i, right=i + 1)
        for i, val in enumerate(values):
            engine.make("item", pos=i, val=val)

    def verify(wm: WorkingMemory) -> Dict[str, bool]:
        items = sorted(wm.by_class("item"), key=lambda w: w.get("pos"))
        vals = [w.get("val") for w in items]
        return {
            "sorted": vals == sorted(values),
            "is-permutation": sorted(vals) == sorted(values),
        }

    return BenchmarkWorkload(
        name="sort-meta",
        description=f"meta-rule-arbitrated transposition sort, {n_items} items",
        program=program,
        setup=setup,
        verify=verify,
        params={"n_items": n_items, "seed": seed},
        domains={("item", "pos"): list(range(n_items))},
        cc_hint=("swap", 2, "pos"),
    )
