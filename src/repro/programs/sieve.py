"""Prime sieve — rule-level parallelism across independent markers.

For every discovered prime ``p`` a *marker* WME walks the multiples
``p², p²+p, …`` of ``p``, asserting ``composite`` facts; a ``promote`` rule
declares a number prime when its turn comes and no composite fact covers
it. Markers for different primes are independent, so PARULEL advances all
of them in one cycle — a different parallelism shape from tc/waltz (many
long-lived concurrent activities rather than one wide frontier).

Working-memory classes::

    (number  ^n i)                 the candidates 2..limit
    (cursor  ^n i)                 the scan position for prime promotion
    (prime   ^p i)
    (composite ^n i)
    (marker  ^p i ^next m)         the sieve marker for prime i

Rule inventory: ``promote`` (cursor hits a non-composite ⇒ prime + marker),
``skip`` (cursor hits a composite ⇒ advance), ``mark`` (marker stamps its
current multiple and advances), ``retire-marker`` (marker past the limit),
``done`` (cursor past the limit ⇒ halt).
"""

from __future__ import annotations

from typing import Dict, List

from repro.lang.builder import ProgramBuilder, compute, conj, gt, le, v
from repro.programs.base import BenchmarkWorkload
from repro.wm.memory import WorkingMemory

__all__ = ["build_sieve", "sieve_program", "primes_below"]


def primes_below(limit: int) -> List[int]:
    """Ground truth: primes ≤ limit by a plain Python sieve."""
    flags = [True] * (limit + 1)
    flags[0:2] = [False, False]
    for p in range(2, int(limit**0.5) + 1):
        if flags[p]:
            for m in range(p * p, limit + 1, p):
                flags[m] = False
    return [i for i, f in enumerate(flags) if f]


def sieve_program(limit: int):
    pb = ProgramBuilder()
    pb.literalize("cursor", "n")
    pb.literalize("prime", "p")
    pb.literalize("composite", "n")
    pb.literalize("marker", "p", "next")

    (
        pb.rule("promote")
        .ce("cursor", n=conj(v("i"), le(limit)))
        .neg("composite", n=v("i"))
        .make("prime", p=v("i"))
        .make("marker", p=v("i"), next=compute(v("i"), "*", v("i")))
        .modify(1, n=compute(v("i"), "+", 1))
    )
    (
        pb.rule("skip")
        .ce("cursor", n=conj(v("i"), le(limit)))
        .ce("composite", n=v("i"))
        .modify(1, n=compute(v("i"), "+", 1))
    )
    (
        pb.rule("mark")
        .ce("marker", p=v("p"), next=conj(v("m"), le(limit)))
        .neg("composite", n=v("m"))
        .make("composite", n=v("m"))
        .modify(1, next=compute(v("m"), "+", v("p")))
    )
    (
        pb.rule("mark-known")
        .ce("marker", p=v("p"), next=conj(v("m"), le(limit)))
        .ce("composite", n=v("m"))
        .modify(1, next=compute(v("m"), "+", v("p")))
    )
    (
        pb.rule("retire-marker")
        .ce("marker", next=gt(limit))
        .remove(1)
    )
    (
        pb.rule("done")
        .ce("cursor", n=gt(limit))
        .remove(1)
    )
    return pb.build()


def build_sieve(limit: int = 60) -> BenchmarkWorkload:
    """Sieve of Eratosthenes up to ``limit``."""
    expected = set(primes_below(limit))

    def setup(engine) -> None:
        engine.make("cursor", n=2)

    def verify(wm: WorkingMemory) -> Dict[str, bool]:
        primes = {w.get("p") for w in wm.by_class("prime")}
        composites = {w.get("n") for w in wm.by_class("composite")}
        return {
            "primes-exact": primes == expected,
            "no-prime-marked-composite": not (primes & composites),
            "all-retired": wm.count_class("marker") == 0
            and wm.count_class("cursor") == 0,
        }

    return BenchmarkWorkload(
        name="sieve",
        description=f"prime sieve to {limit} via per-prime markers",
        program=sieve_program(limit),
        setup=setup,
        verify=verify,
        params={"limit": limit},
        domains={("marker", "p"): primes_below(limit)},
        cc_hint=("mark", 1, "p"),
    )
