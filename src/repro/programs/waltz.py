"""Waltz-style constraint-label propagation over replicated drawings.

The classic Waltz line-labeling benchmark (as used throughout the parallel
production-system literature) replicates a base line drawing n times and
propagates edge labels from seeded boundary lines through junction
constraints — a *wave* of inference per drawing. This module reproduces
that shape with a simplified junction dictionary:

- each drawing is a chain of two-line junctions (L-junctions);
- the dictionary ``ldict(type, v1 → v2)`` gives, for each junction type and
  incoming label, the unique outgoing label (the functional subset of
  Waltz's L-junction table: ``+ → -``, ``- → +``, ``left → right``,
  ``right → left`` for type ``L``; identity for type ``T``);
- the seed labels the first line of every chain, and the single
  ``propagate`` rule pushes labels junction by junction.

Under OPS5 one line is labeled per cycle (n_drawings × chain_length
firings ⇒ as many cycles); under PARULEL every drawing's frontier advances
each cycle, so cycles ≈ chain_length regardless of n_drawings — data
parallelism across drawings, the Figure 1 shape.

The simplification relative to full Waltz (multi-label sets with pruning)
is documented in DESIGN.md: full Waltz needs "no supporting combination
exists" tests — conjunctive negation — which OPS5-class languages (and the
original benchmark program) also avoided by constructive propagation, which
is exactly what we implement.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lang.builder import ProgramBuilder, v
from repro.programs.base import BenchmarkWorkload
from repro.wm.memory import WorkingMemory

__all__ = ["build_waltz", "waltz_program", "LDICT"]

#: Junction dictionary: (junction type, incoming label) -> outgoing label.
LDICT: Dict[tuple, str] = {
    ("L", "plus"): "minus",
    ("L", "minus"): "plus",
    ("L", "left"): "right",
    ("L", "right"): "left",
    ("T", "plus"): "plus",
    ("T", "minus"): "minus",
    ("T", "left"): "left",
    ("T", "right"): "right",
}

#: The label each chain's first line is seeded with.
SEED_LABEL = "plus"


def waltz_program():
    """Single propagation rule over junctions + the dictionary in WM."""
    pb = ProgramBuilder()
    pb.literalize("junction", "id", "type", "line-in", "line-out")
    pb.literalize("labeled", "line", "value")
    pb.literalize("ldict", "type", "v-in", "v-out")
    (
        pb.rule("propagate")
        .ce("junction", type=v("t"), line_in=v("lin"), line_out=v("lout"))
        .ce("labeled", line=v("lin"), value=v("vin"))
        .ce("ldict", type=v("t"), v_in=v("vin"), v_out=v("vout"))
        .neg("labeled", line=v("lout"))
        .make("labeled", line=v("lout"), value=v("vout"))
    )
    return pb.build()


def _expected_labels(n_drawings: int, chain_length: int) -> Dict[str, str]:
    """Ground truth by direct simulation of the dictionary."""
    expected: Dict[str, str] = {}
    for d in range(n_drawings):
        label = SEED_LABEL
        expected[f"d{d}-l0"] = label
        for j in range(chain_length):
            jtype = "L" if j % 2 == 0 else "T"
            label = LDICT[(jtype, label)]
            expected[f"d{d}-l{j + 1}"] = label
    return expected


def build_waltz(n_drawings: int = 8, chain_length: int = 12) -> BenchmarkWorkload:
    """``n_drawings`` replicated chains of ``chain_length`` junctions."""
    expected = _expected_labels(n_drawings, chain_length)
    line_names = sorted(expected)

    def setup(engine) -> None:
        for jtype, vin in sorted(LDICT):
            engine.make(
                "ldict", {"type": jtype, "v-in": vin, "v-out": LDICT[(jtype, vin)]}
            )
        for d in range(n_drawings):
            for j in range(chain_length):
                engine.make(
                    "junction",
                    {
                        "id": f"d{d}-j{j}",
                        "type": "L" if j % 2 == 0 else "T",
                        "line-in": f"d{d}-l{j}",
                        "line-out": f"d{d}-l{j + 1}",
                    },
                )
            engine.make("labeled", line=f"d{d}-l0", value=SEED_LABEL)

    def verify(wm: WorkingMemory) -> Dict[str, bool]:
        got = {w.get("line"): w.get("value") for w in wm.by_class("labeled")}
        return {
            "all-lines-labeled": set(got) == set(expected),
            "labels-match-dictionary": got == expected,
            "one-label-per-line": len(got) == wm.count_class("labeled"),
        }

    return BenchmarkWorkload(
        name="waltz",
        description=f"waltz-style label propagation, {n_drawings} drawings × "
        f"{chain_length} junctions",
        program=waltz_program(),
        setup=setup,
        verify=verify,
        params={"n_drawings": n_drawings, "chain_length": chain_length},
        domains={("labeled", "line"): line_names},
        cc_hint=("propagate", 2, "line"),
    )
