"""Benchmark rule programs (the workloads of the experiment suite).

Each module builds a :class:`~repro.programs.base.BenchmarkWorkload` — a
PARULEL program, an initial-working-memory loader, a result verifier, and
domain hints for copy-and-constrain:

- :mod:`repro.programs.tc` — transitive closure over generated graphs; the
  cleanest demonstration of set-oriented firing (whole frontier per cycle);
- :mod:`repro.programs.waltz` — Waltz-style constraint-label propagation
  over replicated line drawings (the classic "wave" benchmark shape);
- :mod:`repro.programs.manners` — Miss-Manners-style seating, where
  **meta-rules** pick one candidate per cycle (the redaction showcase);
- :mod:`repro.programs.sort` — odd-even transposition sort, phase-based and
  a meta-rule variant whose redactions resolve overlapping swaps;
- :mod:`repro.programs.sieve` — prime sieve by per-prime marker rules
  (rule-level parallelism across primes);
- :mod:`repro.programs.routing` — Bellman-Ford shortest paths, whose
  minimum selection is expressed as redaction meta-rules;
- :mod:`repro.programs.circuit` — combinational-logic simulation (wide
  wave propagation with 4-way joins, the best copy-and-constrain subject);
- :mod:`repro.programs.monkey` — monkey-and-bananas planning (the MEA
  baseline's natural habitat);
- :mod:`repro.programs.synthetic` — parameterized join/churn workloads for
  the match-engine comparisons (Figure 3, Ablation A2).

``REGISTRY`` maps workload names to their default builders — Table 1
iterates it.
"""

from repro.programs.base import BenchmarkWorkload
from repro.programs.circuit import build_circuit
from repro.programs.manners import build_manners
from repro.programs.monkey import build_monkey
from repro.programs.routing import build_routing
from repro.programs.sieve import build_sieve
from repro.programs.sort import build_sort, build_sort_meta
from repro.programs.synthetic import build_churn_workload, build_join_workload
from repro.programs.tc import build_tc
from repro.programs.waltz import build_waltz

#: name -> zero-argument builder with paper-scale default parameters.
REGISTRY = {
    "tc": lambda: build_tc(n_nodes=24, shape="chain"),
    "waltz": lambda: build_waltz(n_drawings=8, chain_length=12),
    "manners": lambda: build_manners(n_guests=16),
    "sort": lambda: build_sort(n_items=24),
    "sort-meta": lambda: build_sort_meta(n_items=12),
    "sieve": lambda: build_sieve(limit=60),
    "circuit": lambda: build_circuit(n_inputs=6, n_levels=8, gates_per_level=6),
    "routing": lambda: build_routing(n_nodes=14, extra_edges=14),
    "monkey": lambda: build_monkey(),
}

__all__ = [
    "BenchmarkWorkload",
    "REGISTRY",
    "build_churn_workload",
    "build_circuit",
    "build_join_workload",
    "build_manners",
    "build_monkey",
    "build_routing",
    "build_sieve",
    "build_sort",
    "build_sort_meta",
    "build_tc",
    "build_waltz",
]
