"""Miss-Manners-style seating — the meta-rule (redaction) showcase.

Guests are seated along a row of seats such that neighbours alternate sex
and share a hobby. The object level proposes *every* eligible
(guest, open seat) pair; the meta level arbitrates, exactly in PARULEL's
style:

- ``one-guest-per-seat`` — of two candidates for the same seat with
  different guests, redact the lexicographically larger guest;
- ``same-guest-same-seat-tie`` — the same (guest, seat) can be proposed
  through several shared hobbies; keep the lowest instantiation id;
- ``one-seat-per-guest`` — a guest proposed for two seats keeps the
  lower-numbered seat;
- ``first-guest-tie-break`` — seat 0 gets the lexicographically smallest
  guest.

Each cycle therefore seats exactly one guest per open frontier seat. Under
the OPS5 baseline the built-in LEX strategy performs the same arbitration
implicitly (one firing per cycle); Table 3 measures what the declarative
version costs in redaction work.

Rule inventory:

``seat-first``
    put a guest on seat 0 and switch the context to ``fill``;
``expose-hobby``
    derive ``seat-hobby(pos, h)`` facts for every hobby of a seat's
    occupant (what the adjacency check joins against);
``seat-next``
    seat an unseated guest of opposite sex sharing a hobby with the
    occupant of the seat to the left.

The generator guarantees solvability: sexes alternate in generation order
and every guest carries the common hobby ``h0``, so any opposite-sex pair
is hobby-compatible.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.lang.builder import ProgramBuilder, conj, gt, ne, v
from repro.programs.base import BenchmarkWorkload
from repro.wm.memory import WorkingMemory

__all__ = ["build_manners", "manners_program"]


def manners_program():
    pb = ProgramBuilder()
    pb.literalize("guest", "name", "sex", "seated")
    pb.literalize("hobby", "name", "hobby")
    pb.literalize("seat", "pos", "occupant", "sex")
    pb.literalize("adjacent", "left", "right")
    pb.literalize("seat-hobby", "pos", "hobby")
    pb.literalize("context", "phase")

    (
        pb.rule("seat-first")
        .ce("context", phase="start")
        .ce("seat", pos=0, occupant="nil")
        .ce("guest", name=v("g"), sex=v("s"), seated="no")
        .modify(2, occupant=v("g"), sex=v("s"))
        .modify(3, seated="yes")
        .modify(1, phase="fill")
    )

    # Publish the hobbies available at an occupied seat.
    (
        pb.rule("expose-hobby")
        .ce("seat", pos=v("p"), occupant=conj(v("g"), ne("nil")))
        .ce("hobby", name=v("g"), hobby=v("h"))
        .neg("seat-hobby", pos=v("p"), hobby=v("h"))
        .make("seat-hobby", pos=v("p"), hobby=v("h"))
    )

    (
        pb.rule("seat-next")
        .ce("context", phase="fill")
        .ce("seat", pos=v("p"), occupant=ne("nil"), sex=v("sx1"))
        .ce("adjacent", left=v("p"), right=v("q"))
        .ce("seat", pos=v("q"), occupant="nil")
        .ce("guest", name=v("g"), sex=conj(v("sx2"), ne(v("sx1"))), seated="no")
        .ce("hobby", name=v("g"), hobby=v("h"))
        .ce("seat-hobby", pos=v("p"), hobby=v("h"))
        .modify(4, occupant=v("g"), sex=v("sx2"))
        .modify(5, seated="yes")
    )

    # --- meta level -------------------------------------------------------
    (
        pb.meta_rule("one-guest-per-seat")
        .ce("instantiation", rule="seat-next", id=v("i"), q=v("seat"), g=v("g1"))
        .ce(
            "instantiation",
            rule="seat-next",
            id=conj(v("j"), ne(v("i"))),
            q=v("seat"),
            g=gt(v("g1")),
        )
        .redact(v("j"))
    )
    (
        pb.meta_rule("same-guest-same-seat-tie")
        .ce("instantiation", rule="seat-next", id=v("i"), q=v("seat"), g=v("g1"))
        .ce(
            "instantiation",
            rule="seat-next",
            id=conj(v("j"), gt(v("i"))),
            q=v("seat"),
            g=v("g1"),
        )
        .redact(v("j"))
    )
    (
        pb.meta_rule("one-seat-per-guest")
        .ce("instantiation", rule="seat-next", id=v("i"), g=v("g1"), q=v("seat-a"))
        .ce(
            "instantiation",
            rule="seat-next",
            id=conj(v("j"), ne(v("i"))),
            g=v("g1"),
            q=gt(v("seat-a")),
        )
        .redact(v("j"))
    )
    (
        pb.meta_rule("first-guest-tie-break")
        .ce("instantiation", rule="seat-first", id=v("i"), g=v("g1"))
        .ce(
            "instantiation",
            rule="seat-first",
            id=conj(v("j"), ne(v("i"))),
            g=gt(v("g1")),
        )
        .redact(v("j"))
    )
    return pb.build()


def build_manners(n_guests: int = 16, extra_hobbies: int = 2, seed: int = 11) -> BenchmarkWorkload:
    """Seating workload with ``n_guests`` (must be even for alternation)."""
    if n_guests % 2:
        raise ValueError("n_guests must be even")
    rng = random.Random(seed)
    guests = []
    for i in range(n_guests):
        name = f"g{i:03d}"
        sex = "m" if i % 2 == 0 else "f"
        hobbies = ["h0"] + [f"h{rng.randint(1, 5)}" for _ in range(extra_hobbies)]
        guests.append((name, sex, sorted(set(hobbies))))

    def setup(engine) -> None:
        engine.make("context", phase="start")
        for pos in range(n_guests):
            engine.make("seat", pos=pos, occupant="nil", sex="nil")
            if pos + 1 < n_guests:
                engine.make("adjacent", left=pos, right=pos + 1)
        for name, sex, hobbies in guests:
            engine.make("guest", name=name, sex=sex, seated="no")
            for h in hobbies:
                engine.make("hobby", name=name, hobby=h)

    def verify(wm: WorkingMemory) -> Dict[str, bool]:
        seats = sorted(wm.by_class("seat"), key=lambda w: w.get("pos"))
        occupants = [w.get("occupant") for w in seats]
        all_seated = all(o != "nil" for o in occupants)
        unique = len(set(occupants)) == len(occupants)
        sexes = {name: sex for name, sex, _h in guests}
        hobby_map = {name: set(h) for name, _s, h in guests}
        alternating = all_seated and all(
            sexes.get(occupants[i]) != sexes.get(occupants[i + 1])
            for i in range(len(occupants) - 1)
        )
        share = all_seated and all(
            hobby_map.get(occupants[i], set()) & hobby_map.get(occupants[i + 1], set())
            for i in range(len(occupants) - 1)
        )
        return {
            "all-seats-filled": all_seated,
            "no-double-seating": unique,
            "sexes-alternate": alternating,
            "neighbours-share-hobby": share,
        }

    return BenchmarkWorkload(
        name="manners",
        description=f"manners seating, {n_guests} guests",
        program=manners_program(),
        setup=setup,
        verify=verify,
        params={"n_guests": n_guests, "extra_hobbies": extra_hobbies, "seed": seed},
        domains={("guest", "name"): [g for g, _s, _h in guests]},
        cc_hint=("seat-next", 5, "name"),
    )
