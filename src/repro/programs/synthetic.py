"""Synthetic match workloads for the engine-comparison experiments.

Two generators, both *pure match* (their conflict sets are inspected, the
rules never need to fire):

:func:`build_join_workload` (Figure 3)
    ``n_rules`` two-way equijoin rules over class pairs, loaded with
    ``n_wmes`` per class at a controllable selectivity. Used to measure
    per-cycle match cost of RETE / TREAT / naive as WM size grows.

:func:`build_churn_workload` (Ablation A2)
    a long join chain with high working-memory turnover: each churn step
    retracts and re-asserts a block of WMEs. RETE pays beta-memory
    maintenance on every change; TREAT recomputes seeded joins but carries
    no beta state — the classic trade Miranker measured.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from repro.lang.ast import Program
from repro.lang.builder import ProgramBuilder, v
from repro.wm.memory import WorkingMemory
from repro.wm.template import TemplateRegistry

__all__ = ["build_join_workload", "build_churn_workload", "JoinWorkload", "ChurnWorkload"]


class JoinWorkload:
    """A match-only program plus loaders for Figure 3."""

    def __init__(self, program: Program, load: Callable[[WorkingMemory, int], None]):
        self.program = program
        self.load = load

    def fresh_wm(self) -> WorkingMemory:
        return WorkingMemory(TemplateRegistry.from_program(self.program))


def build_join_workload(
    n_rules: int = 4, n_keys: int = 50, seed: int = 13
) -> JoinWorkload:
    """``n_rules`` independent equijoins ``left_i ⋈ right_i`` on ``key``.

    ``load(wm, n_wmes)`` asserts ``n_wmes`` WMEs per class with keys drawn
    uniformly from ``n_keys`` values — expected join output per rule is
    ``n_wmes²/n_keys``.
    """
    pb = ProgramBuilder()
    for r in range(n_rules):
        pb.literalize(f"left{r}", "key", "payload")
        pb.literalize(f"right{r}", "key", "payload")
        pb.literalize(f"out{r}", "key")
        (
            pb.rule(f"join{r}")
            .ce(f"left{r}", key=v("k"), payload=v("p"))
            .ce(f"right{r}", key=v("k"), payload=v("q"))
            .make(f"out{r}", key=v("k"))
        )
    program = pb.build()

    def load(wm: WorkingMemory, n_wmes: int) -> None:
        rng = random.Random(seed)
        for r in range(n_rules):
            for i in range(n_wmes):
                wm.make(f"left{r}", key=rng.randrange(n_keys), payload=i)
            for i in range(n_wmes):
                wm.make(f"right{r}", key=rng.randrange(n_keys), payload=i)

    return JoinWorkload(program, load)


class ChurnWorkload:
    """A chain-join program plus a churn driver for Ablation A2."""

    def __init__(
        self,
        program: Program,
        load: Callable[[WorkingMemory], List],
        churn: Callable[[WorkingMemory, List, int], List],
    ):
        self.program = program
        self.load = load
        self.churn = churn

    def fresh_wm(self) -> WorkingMemory:
        return WorkingMemory(TemplateRegistry.from_program(self.program))


def build_churn_workload(
    chain_length: int = 4, n_entities: int = 30, seed: int = 17
) -> ChurnWorkload:
    """A ``chain_length``-way join ``stage0 ⋈ stage1 ⋈ …`` over entity ids.

    ``load(wm)`` asserts one WME per (stage, entity) and returns the
    stage-0 WMEs; ``churn(wm, block, step)`` retracts the given stage-0
    block and re-asserts it with fresh timestamps, returning the new block
    — the delete/re-add turnover TREAT is built for.
    """
    pb = ProgramBuilder()
    for s in range(chain_length):
        pb.literalize(f"stage{s}", "ent", "tag")
    pb.literalize("hit", "ent")
    rb = pb.rule("chain")
    for s in range(chain_length):
        rb.ce(f"stage{s}", ent=v("e"), tag=v(f"t{s}"))
    rb.make("hit", ent=v("e"))
    program = pb.build()

    def load(wm: WorkingMemory) -> List:
        rng = random.Random(seed)
        block = []
        for s in range(chain_length):
            for e in range(n_entities):
                wme = wm.make(f"stage{s}", ent=e, tag=rng.randrange(5))
                if s == 0:
                    block.append(wme)
        return block

    def churn(wm: WorkingMemory, block: List, step: int) -> List:
        new_block = []
        for wme in block:
            wm.remove(wme)
        for wme in block:
            new_block.append(
                wm.make("stage0", ent=wme.get("ent"), tag=(step + wme.get("tag")) % 5)
            )
        return new_block

    return ChurnWorkload(program, load, churn)
