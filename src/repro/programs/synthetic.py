"""Synthetic match workloads for the engine-comparison experiments.

Two generators, both *pure match* (their conflict sets are inspected, the
rules never need to fire):

:func:`build_join_workload` (Figure 3)
    ``n_rules`` two-way equijoin rules over class pairs, loaded with
    ``n_wmes`` per class at a controllable selectivity. Used to measure
    per-cycle match cost of RETE / TREAT / naive as WM size grows.

:func:`build_churn_workload` (Ablation A2)
    a long join chain with high working-memory turnover: each churn step
    retracts and re-asserts a block of WMEs. RETE pays beta-memory
    maintenance on every change; TREAT recomputes seeded joins but carries
    no beta state — the classic trade Miranker measured.

:func:`build_scale_workload` (million-WME tier)
    a huge mostly-inert working memory with a small churned frontier — the
    regime where shipping per-cycle deltas to process workers is dominated
    by replica (re)build cost and the shared columnar store pays off.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from repro.lang.ast import Program
from repro.lang.builder import ProgramBuilder, v
from repro.wm.memory import WorkingMemory
from repro.wm.template import TemplateRegistry

__all__ = [
    "build_join_workload",
    "build_churn_workload",
    "build_scale_workload",
    "JoinWorkload",
    "ChurnWorkload",
    "ScaleWorkload",
]


class JoinWorkload:
    """A match-only program plus loaders for Figure 3."""

    def __init__(self, program: Program, load: Callable[[WorkingMemory, int], None]):
        self.program = program
        self.load = load

    def fresh_wm(self) -> WorkingMemory:
        return WorkingMemory(TemplateRegistry.from_program(self.program))


def build_join_workload(
    n_rules: int = 4, n_keys: int = 50, seed: int = 13
) -> JoinWorkload:
    """``n_rules`` independent equijoins ``left_i ⋈ right_i`` on ``key``.

    ``load(wm, n_wmes)`` asserts ``n_wmes`` WMEs per class with keys drawn
    uniformly from ``n_keys`` values — expected join output per rule is
    ``n_wmes²/n_keys``.
    """
    pb = ProgramBuilder()
    for r in range(n_rules):
        pb.literalize(f"left{r}", "key", "payload")
        pb.literalize(f"right{r}", "key", "payload")
        pb.literalize(f"out{r}", "key")
        (
            pb.rule(f"join{r}")
            .ce(f"left{r}", key=v("k"), payload=v("p"))
            .ce(f"right{r}", key=v("k"), payload=v("q"))
            .make(f"out{r}", key=v("k"))
        )
    program = pb.build()

    def load(wm: WorkingMemory, n_wmes: int) -> None:
        rng = random.Random(seed)
        for r in range(n_rules):
            for i in range(n_wmes):
                wm.make(f"left{r}", key=rng.randrange(n_keys), payload=i)
            for i in range(n_wmes):
                wm.make(f"right{r}", key=rng.randrange(n_keys), payload=i)

    return JoinWorkload(program, load)


class ChurnWorkload:
    """A chain-join program plus a churn driver for Ablation A2."""

    def __init__(
        self,
        program: Program,
        load: Callable[[WorkingMemory], List],
        churn: Callable[[WorkingMemory, List, int], List],
    ):
        self.program = program
        self.load = load
        self.churn = churn

    def fresh_wm(self) -> WorkingMemory:
        return WorkingMemory(TemplateRegistry.from_program(self.program))


def build_churn_workload(
    chain_length: int = 4, n_entities: int = 30, seed: int = 17
) -> ChurnWorkload:
    """A ``chain_length``-way join ``stage0 ⋈ stage1 ⋈ …`` over entity ids.

    ``load(wm)`` asserts one WME per (stage, entity) and returns the
    stage-0 WMEs; ``churn(wm, block, step)`` retracts the given stage-0
    block and re-asserts it with fresh timestamps, returning the new block
    — the delete/re-add turnover TREAT is built for.
    """
    pb = ProgramBuilder()
    for s in range(chain_length):
        pb.literalize(f"stage{s}", "ent", "tag")
    pb.literalize("hit", "ent")
    rb = pb.rule("chain")
    for s in range(chain_length):
        rb.ce(f"stage{s}", ent=v("e"), tag=v(f"t{s}"))
    rb.make("hit", ent=v("e"))
    program = pb.build()

    def load(wm: WorkingMemory) -> List:
        rng = random.Random(seed)
        block = []
        for s in range(chain_length):
            for e in range(n_entities):
                wme = wm.make(f"stage{s}", ent=e, tag=rng.randrange(5))
                if s == 0:
                    block.append(wme)
        return block

    def churn(wm: WorkingMemory, block: List, step: int) -> List:
        new_block = []
        for wme in block:
            wm.remove(wme)
        for wme in block:
            new_block.append(
                wm.make("stage0", ent=wme.get("ent"), tag=(step + wme.get("tag")) % 5)
            )
        return new_block

    return ChurnWorkload(program, load, churn)


class ScaleWorkload:
    """A bulk-load-then-churn workload for the million-WME experiments."""

    def __init__(
        self,
        program: Program,
        load: Callable[[WorkingMemory], List],
        churn: Callable[[WorkingMemory, List, int], List],
        n_facts: int,
    ):
        self.program = program
        self.load = load
        self.churn = churn
        self.n_facts = n_facts

    def fresh_wm(self) -> WorkingMemory:
        return WorkingMemory(TemplateRegistry.from_program(self.program))


def build_scale_workload(
    n_facts: int = 1_000_000,
    n_keys: int = 1000,
    churn_block: int = 200,
    seed: int = 23,
) -> ScaleWorkload:
    """The million-WME tier: a huge, mostly-inert working memory with a
    tiny matched frontier — the regime the columnar store targets.

    ``load(wm)`` asserts ``n_facts`` ``item`` WMEs (the bulk; no rule ever
    joins on them alone) plus one ``probe`` per key. The single rule joins
    ``probe ⋈ item`` on ``key``, but probes cover only ``n_keys`` of the
    ``16 * n_keys`` item key values, so the conflict set stays ~``n_facts/16``
    regardless of bulk size. ``churn(wm, block, step)`` retracts and
    re-asserts a ``churn_block``-sized slice of items with rotated keys —
    the per-cycle delta a worker replica must absorb, deterministic in
    ``(seed, step)``.
    """
    pb = ProgramBuilder()
    pb.literalize("item", "key", "payload")
    pb.literalize("probe", "key")
    pb.literalize("hit", "key", "payload")
    (
        pb.rule("probe-hit")
        .ce("probe", key=v("k"))
        .ce("item", key=v("k"), payload=v("p"))
        .make("hit", key=v("k"), payload=v("p"))
    )
    program = pb.build()
    key_space = 16 * n_keys

    def load(wm: WorkingMemory) -> List:
        rng = random.Random(seed)
        block = []
        for i in range(n_facts):
            wme = wm.make("item", key=rng.randrange(key_space), payload=i)
            if len(block) < churn_block:
                block.append(wme)
        for k in range(n_keys):
            wm.make("probe", key=k)
        return block

    def churn(wm: WorkingMemory, block: List, step: int) -> List:
        new_block = []
        for wme in block:
            wm.remove(wme)
        for wme in block:
            new_block.append(
                wm.make(
                    "item",
                    key=(wme.get("key") + step) % key_space,
                    payload=wme.get("payload"),
                )
            )
        return new_block

    return ScaleWorkload(program, load, churn, n_facts)
