"""Monkey and bananas — the classic OPS5 planning demo.

A deliberately *sequential* workload: each cycle exactly one rule is
applicable (walk to the ladder → push it under the bananas → climb →
grab), so PARULEL gains nothing over OPS5 here — it anchors the bottom of
Table 2 (speedup ≈ 1) and exercises the MEA strategy's natural habitat
(the goal element leads every rule).

Fixed initial state: monkey at ``c1`` on the floor holding nothing, ladder
at ``c5``, bananas hanging at ``c7``.
"""

from __future__ import annotations

from typing import Dict

from repro.lang.builder import ProgramBuilder, conj, ne, v
from repro.programs.base import BenchmarkWorkload
from repro.wm.memory import WorkingMemory

__all__ = ["build_monkey", "monkey_program"]


def monkey_program():
    pb = ProgramBuilder()
    pb.literalize("goal", "action", "object", "status")
    pb.literalize("monkey", "at", "on", "holds")
    pb.literalize("thing", "name", "at")

    (
        pb.rule("walk-to-ladder")
        .ce("goal", action="grab", object="bananas", status="active")
        .ce("monkey", at=v("m"), on="floor", holds="nil")
        .ce("thing", name="ladder", at=conj(v("l"), ne(v("m"))))
        .modify(2, at=v("l"))
        .write("monkey walks to", v("l"))
    )
    (
        pb.rule("push-ladder")
        .ce("goal", action="grab", object="bananas", status="active")
        .ce("thing", name="ladder", at=v("l"))
        .ce("monkey", at=v("l"), on="floor", holds="nil")
        .ce("thing", name="bananas", at=conj(v("b"), ne(v("l"))))
        .modify(2, at=v("b"))
        .modify(3, at=v("b"))
        .write("monkey pushes ladder to", v("b"))
    )
    (
        pb.rule("climb")
        .ce("goal", action="grab", object="bananas", status="active")
        .ce("thing", name="bananas", at=v("b"))
        .ce("thing", name="ladder", at=v("b"))
        .ce("monkey", at=v("b"), on="floor")
        .modify(4, on="ladder")
        .write("monkey climbs the ladder")
    )
    (
        pb.rule("grab")
        .ce("goal", action="grab", object="bananas", status="active")
        .ce("thing", name="bananas", at=v("b"))
        .ce("monkey", at=v("b"), on="ladder", holds="nil")
        .modify(3, holds="bananas")
        .modify(1, status="satisfied")
        .write("monkey grabs the bananas")
        .halt()
    )
    return pb.build()


def build_monkey() -> BenchmarkWorkload:
    """The fixed four-step monkey-and-bananas scenario."""

    def setup(engine) -> None:
        engine.make("goal", action="grab", object="bananas", status="active")
        engine.make("monkey", at="c1", on="floor", holds="nil")
        engine.make("thing", name="ladder", at="c5")
        engine.make("thing", name="bananas", at="c7")

    def verify(wm: WorkingMemory) -> Dict[str, bool]:
        monkeys = wm.by_class("monkey")
        goals = wm.by_class("goal")
        return {
            "monkey-holds-bananas": bool(monkeys)
            and monkeys[0].get("holds") == "bananas",
            "goal-satisfied": bool(goals) and goals[0].get("status") == "satisfied",
            "monkey-on-ladder-under-bananas": bool(monkeys)
            and monkeys[0].get("at") == "c7",
        }

    return BenchmarkWorkload(
        name="monkey",
        description="monkey and bananas (sequential planning chain)",
        program=monkey_program(),
        setup=setup,
        verify=verify,
        params={},
        domains={},
        cc_hint=None,
    )
