"""Combinational-logic simulation — wide wave propagation with 4-way joins.

A random layered circuit of 2-input gates (AND/OR/XOR/NAND) and NOT gates
is evaluated by rules: a gate whose input wires are known produces its
output wire. Truth tables live in working memory as facts, so one rule
covers all 2-input gate types — the match is a genuine 4-way join
(gate ⋈ wire ⋈ wire ⋈ truth-table-row), heavier per instantiation than
tc/waltz and therefore the best copy-and-constrain subject of the bundled
programs.

Under PARULEL each circuit *level* evaluates in one cycle (every gate of
the level fires simultaneously); OPS5 does one gate per cycle. Ground
truth: direct Python evaluation of the same netlist.

Working-memory classes::

    (gate ^id ^type ^in1 ^in2 ^out)   2-input gates (^in2 nil for NOT)
    (wire ^id ^value)                 known wire values, 0/1
    (tt  ^type ^a ^b ^out)            truth-table rows for 2-input types
    (ttn ^a ^out)                     NOT's table
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.lang.builder import ProgramBuilder, v
from repro.programs.base import BenchmarkWorkload
from repro.wm.memory import WorkingMemory

__all__ = ["build_circuit", "circuit_program", "generate_circuit", "GATE_FUNCS"]

GATE_FUNCS = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nand": lambda a, b: 1 - (a & b),
}


def circuit_program():
    pb = ProgramBuilder()
    pb.literalize("gate", "id", "type", "in1", "in2", "out")
    pb.literalize("wire", "id", "value")
    pb.literalize("tt", "type", "a", "b", "out")
    pb.literalize("ttn", "a", "out")

    (
        pb.rule("eval-gate")
        .ce("gate", type=v("t"), in1=v("i1"), in2=v("i2"), out=v("o"))
        .ce("wire", id=v("i1"), value=v("va"))
        .ce("wire", id=v("i2"), value=v("vb"))
        .ce("tt", type=v("t"), a=v("va"), b=v("vb"), out=v("vo"))
        .neg("wire", id=v("o"))
        .make("wire", id=v("o"), value=v("vo"))
    )
    (
        pb.rule("eval-not")
        .ce("gate", type="not", in1=v("i1"), out=v("o"))
        .ce("wire", id=v("i1"), value=v("va"))
        .ce("ttn", a=v("va"), out=v("vo"))
        .neg("wire", id=v("o"))
        .make("wire", id=v("o"), value=v("vo"))
    )
    return pb.build()


#: One generated gate: (gate id, type, in1 wire, in2 wire or None, out wire).
Gate = Tuple[str, str, str, str, str]


def generate_circuit(
    n_inputs: int, n_levels: int, gates_per_level: int, seed: int
) -> Tuple[List[str], List[Gate]]:
    """A layered random circuit.

    Level k's gates draw inputs from any earlier wire, so the dependency
    depth is exactly ``n_levels`` — the PARULEL cycle count to settle.
    Returns (input wire names, gates).
    """
    rng = random.Random(seed)
    inputs = [f"w-in{i}" for i in range(n_inputs)]
    available = list(inputs)
    gates: List[Gate] = []
    for level in range(n_levels):
        new_wires = []
        for g in range(gates_per_level):
            gid = f"g{level}-{g}"
            out = f"w{level}-{g}"
            if rng.random() < 0.2:
                gtype = "not"
                gates.append((gid, gtype, rng.choice(available), "nil", out))
            else:
                gtype = rng.choice(sorted(GATE_FUNCS))
                gates.append(
                    (gid, gtype, rng.choice(available), rng.choice(available), out)
                )
            new_wires.append(out)
        available.extend(new_wires)
    return inputs, gates


def _evaluate_reference(
    inputs: Dict[str, int], gates: List[Gate]
) -> Dict[str, int]:
    """Ground truth: evaluate the netlist directly (gates are in
    dependency order by construction)."""
    values = dict(inputs)
    for _gid, gtype, in1, in2, out in gates:
        if gtype == "not":
            values[out] = 1 - values[in1]
        else:
            values[out] = GATE_FUNCS[gtype](values[in1], values[in2])
    return values


def build_circuit(
    n_inputs: int = 6, n_levels: int = 8, gates_per_level: int = 6, seed: int = 19
) -> BenchmarkWorkload:
    """Random layered circuit workload."""
    input_names, gates = generate_circuit(n_inputs, n_levels, gates_per_level, seed)
    rng = random.Random(seed + 1)
    input_values = {name: rng.randint(0, 1) for name in input_names}
    expected = _evaluate_reference(input_values, gates)

    def setup(engine) -> None:
        for gtype, fn in sorted(GATE_FUNCS.items()):
            for a in (0, 1):
                for b in (0, 1):
                    engine.make("tt", type=gtype, a=a, b=b, out=fn(a, b))
        for a in (0, 1):
            engine.make("ttn", a=a, out=1 - a)
        for gid, gtype, in1, in2, out in gates:
            engine.make("gate", id=gid, type=gtype, in1=in1, in2=in2, out=out)
        for name, value in input_values.items():
            engine.make("wire", id=name, value=value)

    def verify(wm: WorkingMemory) -> Dict[str, bool]:
        got = {w.get("id"): w.get("value") for w in wm.by_class("wire")}
        return {
            "all-wires-settled": set(got) == set(expected),
            "values-match-reference": got == expected,
            "one-value-per-wire": len(got) == wm.count_class("wire"),
        }

    all_wires = sorted(expected)
    return BenchmarkWorkload(
        name="circuit",
        description=f"logic simulation, {len(gates)} gates in {n_levels} levels",
        program=circuit_program(),
        setup=setup,
        verify=verify,
        params={
            "n_inputs": n_inputs,
            "n_levels": n_levels,
            "gates_per_level": gates_per_level,
            "seed": seed,
        },
        domains={("wire", "id"): all_wires, ("gate", "id"): [g[0] for g in gates]},
        cc_hint=("eval-gate", 1, "id"),
    )
