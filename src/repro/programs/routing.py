"""Single-source shortest paths (Bellman–Ford) — aggregation by redaction.

Shortest path needs a *minimum* — an aggregate classic production systems
struggle with. The PARULEL idiom: relax every edge in parallel into
candidate facts, and let **meta-rules pick the minimum declaratively** by
redacting dominated candidates before they fire. Working-memory classes::

    (edge ^src ^dst ^w)      the weighted graph
    (dist ^node ^cost)       current best-known distance (one per node)
    (cand ^node ^cost)       a relaxation proposal

Object rules:

``relax``
    ``dist(n, c)`` + ``edge(n, m, w)`` ⇒ ``cand(m, c + w)`` — fires for the
    whole frontier at once (refraction keeps each (dist, edge) pair from
    re-proposing);
``seed-dist``
    a candidate for a node with no distance yet becomes its first ``dist``;
``improve``
    a candidate cheaper than the node's current ``dist`` overwrites it;
``discard``
    a candidate no cheaper than the current ``dist`` is dropped.

Meta-rules (the aggregation):

``seed-min-cost`` / ``seed-tie-break``
    of several first-candidates for one node, only the cheapest (lowest id
    on ties) may seed — otherwise two ``dist`` WMEs for one node would be
    made in the same cycle;
``improve-min-cost``
    of several improvements to one node, only the cheapest fires —
    otherwise two modifies of one WME would interfere (the engine's
    ``error`` policy would abort; run with the meta-rules removed to see
    exactly that, which is what ``tests/programs/test_routing.py`` does).

Under PARULEL the run takes O(graph depth) relaxation waves; under OPS5
every relax/seed/improve/discard is its own cycle. Ground truth:
``networkx.single_source_dijkstra_path_length``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import networkx as nx

from repro.lang.builder import ProgramBuilder, compute, conj, gt, le, lt, ne, v
from repro.programs.base import BenchmarkWorkload
from repro.wm.memory import WorkingMemory

__all__ = ["build_routing", "routing_program", "generate_weighted_graph"]


def routing_program(with_meta_rules: bool = True):
    pb = ProgramBuilder()
    pb.literalize("edge", "src", "dst", "w")
    pb.literalize("dist", "node", "cost")
    pb.literalize("cand", "node", "cost")

    (
        pb.rule("relax")
        .ce("dist", node=v("n"), cost=v("c"))
        .ce("edge", src=v("n"), dst=v("m"), w=v("w"))
        .make("cand", node=v("m"), cost=compute(v("c"), "+", v("w")))
    )
    (
        pb.rule("seed-dist")
        .ce("cand", node=v("m"), cost=v("cc"))
        .neg("dist", node=v("m"))
        .make("dist", node=v("m"), cost=v("cc"))
        .remove(1)
    )
    (
        pb.rule("improve")
        .ce("cand", node=v("m"), cost=v("cc"))
        .ce("dist", node=v("m"), cost=gt(v("cc")))
        .modify(2, cost=v("cc"))
        .remove(1)
    )
    (
        pb.rule("discard")
        .ce("cand", node=v("m"), cost=v("cc"))
        .ce("dist", node=v("m"), cost=le(v("cc")))
        .remove(1)
    )

    if with_meta_rules:
        (
            pb.meta_rule("seed-min-cost")
            .ce("instantiation", rule="seed-dist", id=v("i"), m=v("node"), cc=v("c1"))
            .ce(
                "instantiation",
                rule="seed-dist",
                id=conj(v("j"), ne(v("i"))),
                m=v("node"),
                cc=gt(v("c1")),
            )
            .redact(v("j"))
        )
        (
            pb.meta_rule("seed-tie-break")
            .ce("instantiation", rule="seed-dist", id=v("i"), m=v("node"), cc=v("c1"))
            .ce(
                "instantiation",
                rule="seed-dist",
                id=conj(v("j"), gt(v("i"))),
                m=v("node"),
                cc=v("c1"),
            )
            .redact(v("j"))
        )
        (
            pb.meta_rule("improve-min-cost")
            .ce("instantiation", rule="improve", id=v("i"), m=v("node"), cc=v("c1"))
            .ce(
                "instantiation",
                rule="improve",
                id=conj(v("j"), ne(v("i"))),
                m=v("node"),
                cc=gt(v("c1")),
            )
            .redact(v("j"))
        )
    return pb.build()


def generate_weighted_graph(
    n_nodes: int, extra_edges: int, seed: int
) -> List[Tuple[int, int, int]]:
    """A connected weighted digraph: a random chain plus random shortcuts.

    Deterministic for a given seed. Weights in 1..9.
    """
    rng = random.Random(seed)
    order = list(range(1, n_nodes))
    rng.shuffle(order)
    edges: List[Tuple[int, int, int]] = []
    reached = [0]
    for node in order:  # spanning structure: every node reachable from 0
        parent = rng.choice(reached)
        edges.append((parent, node, rng.randint(1, 9)))
        reached.append(node)
    seen = {(a, b) for a, b, _ in edges}
    attempts = 0
    while len(edges) < n_nodes - 1 + extra_edges and attempts < extra_edges * 20:
        attempts += 1
        a, b = rng.randrange(n_nodes), rng.randrange(n_nodes)
        if a == b or (a, b) in seen:
            continue
        seen.add((a, b))
        edges.append((a, b, rng.randint(1, 9)))
    return edges


def build_routing(
    n_nodes: int = 14, extra_edges: int = 14, seed: int = 23
) -> BenchmarkWorkload:
    """Shortest paths from node ``n0`` over a generated weighted digraph."""
    edges = generate_weighted_graph(n_nodes, extra_edges, seed)

    graph = nx.DiGraph()
    graph.add_nodes_from(range(n_nodes))
    graph.add_weighted_edges_from(edges)
    expected = {
        f"n{node}": int(cost)
        for node, cost in nx.single_source_dijkstra_path_length(graph, 0).items()
    }

    def setup(engine) -> None:
        engine.make("dist", node="n0", cost=0)
        for a, b, w in edges:
            engine.make("edge", src=f"n{a}", dst=f"n{b}", w=w)

    def verify(wm: WorkingMemory) -> Dict[str, bool]:
        got = {w.get("node"): w.get("cost") for w in wm.by_class("dist")}
        return {
            "distances-match-dijkstra": got == expected,
            "one-dist-per-node": len(got) == wm.count_class("dist"),
            "no-leftover-candidates": wm.count_class("cand") == 0,
        }

    return BenchmarkWorkload(
        name="routing",
        description=f"Bellman-Ford shortest paths, {n_nodes} nodes, "
        f"{len(edges)} weighted edges",
        program=routing_program(),
        setup=setup,
        verify=verify,
        params={"n_nodes": n_nodes, "extra_edges": extra_edges, "seed": seed},
        domains={("cand", "node"): [f"n{i}" for i in range(n_nodes)]},
        cc_hint=("relax", 2, "src"),
    )
