"""Command-line front end: run, check, format and demo PARULEL programs.

Installed as ``parulel`` (see pyproject). Subcommands:

``parulel run PROGRAM [--facts FILE] [--engine parulel|ops5] ...``
    execute a program to quiescence/halt and report cycles, firings and
    the ``(write ...)`` output;
``parulel check PROGRAM``
    parse + semantic analysis, then a one-line-per-rule inventory;
``parulel fmt PROGRAM``
    canonical pretty-printed form (round-trips through the parser);
``parulel demo NAME``
    build and run a bundled benchmark workload under both engines;
``parulel dot PROGRAM [--facts FILE]``
    Graphviz DOT of the compiled RETE network (sizes reflect the facts);
``parulel explain PROGRAM --facts FILE --wme "(class ^attr value)"``
    run with provenance tracking and print the derivation tree of the
    final WME matching the given pattern;
``parulel lint PROGRAM``
    static interference analysis for set-oriented firing, with meta-rule
    skeleton suggestions (the OPS5→PARULEL porting aid);
``parulel analyze [PROGRAM ...] [--facts FILE] [--json]``
    whole-program static analysis: rule dependency graph, stratification,
    redaction coverage, dead rules, unsatisfiable CEs — ``PAxxx``
    diagnostics as text or SARIF-shaped JSON (no arguments: analyze every
    bundled workload);
``parulel repl PROGRAM [--facts FILE]``
    interactive session: assert facts, step cycles, inspect the conflict
    set, explain derivations.
``parulel profile TARGET [--facts FILE] [--matcher ...] [--top N]``
    run a program (or a bundled workload name like ``tc``) with the
    observability layer on and print the per-phase breakdown plus the
    hot-rule table (time, candidates, firings, redactions per rule);
``parulel janitor [--dry-run] [--min-age S]``
    reclaim orphaned ``/dev/shm`` segments left behind by killed
    ``--wm-backend columnar`` runs and killed flight-recorder rings
    (safe: only segments whose owner process is gone are removed);
``parulel blackbox dump|report|diff FILE ...``
    post-mortem tooling for ``*.blackbox`` crash dumps: ``dump`` prints
    the merged causal timeline across the engine and every worker ring,
    ``report`` prints per-site busy/skew and per-rule time-share
    analytics with cycle-phase percentiles, ``diff`` pinpoints the first
    diverging event between two recordings (exit 1 on divergence).

The flight recorder is **on by default** for ``parulel run``: every run
journals cycle/firing/fault events into fixed-size shared-memory rings
and writes a self-contained ``PROGRAM.blackbox`` dump on abnormal exit
(``--blackbox PATH`` overrides the path, ``--no-flight-recorder`` turns
the recorder off). ``--metrics-port N`` serves one-shot Prometheus text
exposition after the run (port 0 picks a free port; the server exits
after the first scrape or ``--metrics-linger`` seconds).

Checkpointing: ``--checkpoint-every N`` writes a resumable checkpoint
every N cycles (atomic, digest-framed — a crash mid-write never corrupts
the previous one). Adding ``--checkpoint-keep K`` turns the checkpoint
path into a rotating *store directory* holding the last K full snapshots
with cheap delta checkpoints in between (``--checkpoint-full-every``);
``--resume`` accepts either form and, given a store, falls back to the
newest checkpoint that verifies, warning about any it had to skip.

``parulel run``/``parulel profile`` accept ``--trace-out PATH`` (Chrome
trace-event JSON, or JSONL when PATH ends in ``.jsonl`` — load the former
in Perfetto) and ``--metrics-out PATH`` (metrics snapshot as JSON, or
Prometheus text when PATH ends in ``.prom``/``.txt``).

A *facts file* contains bare WME forms, one per s-expression::

    (edge ^src n0 ^dst n1)
    (count ^value 0)
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Tuple

from repro.baseline import OPS5Engine
from repro.core import EngineConfig, ParulelEngine
from repro.errors import CycleLimitExceeded, ReproError
from repro.lang import analyze_program, format_program, parse_program
from repro.lang.ast import Value
from repro.wm.io import dumps as dump_wm_text
from repro.wm.io import parse_facts_text

__all__ = ["main", "parse_facts"]


def parse_facts(source: str) -> List[Tuple[str, Dict[str, Value]]]:
    """Parse a facts file into ``(class, attrs)`` pairs (see repro.wm.io)."""
    return parse_facts_text(source)


def _make_obs(args: argparse.Namespace):
    """(tracer, metrics) for the run — real recorders when the matching
    ``--*-out`` flag was given, else ``None`` (the engine's no-op default)."""
    tracer = metrics = None
    if getattr(args, "trace_out", None):
        from repro.obs import Tracer

        tracer = Tracer()
    if getattr(args, "metrics_out", None):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    return tracer, metrics


def _write_obs(args: argparse.Namespace, tracer, metrics) -> None:
    """Write whichever observability artifacts were requested. The format
    follows the suffix: ``--trace-out`` is Chrome trace JSON unless the
    path ends in ``.jsonl``; ``--metrics-out`` is a JSON snapshot unless
    the path ends in ``.prom``/``.txt`` (Prometheus text exposition)."""
    if tracer is not None and getattr(args, "trace_out", None):
        if args.trace_out.endswith(".jsonl"):
            tracer.write_jsonl(args.trace_out)
        else:
            tracer.write_chrome(args.trace_out)
        print(f"[obs] trace written to {args.trace_out}", file=sys.stderr)
    if metrics is not None and getattr(args, "metrics_out", None):
        if args.metrics_out.endswith((".prom", ".txt")):
            metrics.write_prometheus(args.metrics_out)
        else:
            metrics.write_json(args.metrics_out)
        print(f"[obs] metrics written to {args.metrics_out}", file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    source = open(args.program).read()
    program = parse_program(source)
    analyze_program(program)
    facts = parse_facts(open(args.facts).read()) if args.facts else []

    matcher = args.matcher
    if matcher == "process" and args.workers is not None:
        if args.workers < 1:
            print("error: --workers must be >= 1", file=sys.stderr)
            return 2
        matcher = f"process:{args.workers}"

    if args.matcher_timeout is not None and args.matcher_timeout <= 0:
        print("error: --matcher-timeout must be > 0 seconds", file=sys.stderr)
        return 2
    if args.respawn_limit is not None and args.respawn_limit < 0:
        print("error: --respawn-limit must be >= 0", file=sys.stderr)
        return 2
    if (
        args.matcher_timeout is not None or args.respawn_limit is not None
    ) and args.matcher != "process":
        print(
            "error: --matcher-timeout/--respawn-limit require --matcher process",
            file=sys.stderr,
        )
        return 2
    if args.assignment is not None and args.matcher != "process":
        print("error: --assignment requires --matcher process", file=sys.stderr)
        return 2
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        print("error: --checkpoint-every must be >= 1", file=sys.stderr)
        return 2
    if args.checkpoint_keep is not None:
        if args.checkpoint_keep < 1:
            print("error: --checkpoint-keep must be >= 1", file=sys.stderr)
            return 2
        if args.checkpoint_every is None:
            print(
                "error: --checkpoint-keep requires --checkpoint-every",
                file=sys.stderr,
            )
            return 2
    if args.checkpoint_full_every < 1:
        print("error: --checkpoint-full-every must be >= 1", file=sys.stderr)
        return 2
    if args.engine == "ops5" and (
        args.matcher_timeout is not None
        or args.respawn_limit is not None
        or args.checkpoint_every is not None
        or args.resume is not None
        or args.assignment is not None
        or args.wm_backend != "dict"
    ):
        print(
            "error: process-backend, checkpoint and --wm-backend options "
            "apply to --engine parulel only",
            file=sys.stderr,
        )
        return 2
    if args.engine == "ops5" and (args.trace_out or args.metrics_out):
        print(
            "error: --trace-out/--metrics-out apply to --engine parulel only",
            file=sys.stderr,
        )
        return 2
    if args.engine == "ops5" and (
        args.no_flight_recorder
        or args.blackbox is not None
        or args.metrics_port is not None
    ):
        print(
            "error: --no-flight-recorder/--blackbox/--metrics-port apply "
            "to --engine parulel only",
            file=sys.stderr,
        )
        return 2
    if args.metrics_port is not None and args.metrics_port < 0:
        print("error: --metrics-port must be >= 0 (0 = pick a free port)",
              file=sys.stderr)
        return 2
    if args.metrics_linger <= 0:
        print("error: --metrics-linger must be > 0 seconds", file=sys.stderr)
        return 2
    if args.engine == "ops5" and (args.certified_commute or args.sanitize_races):
        print(
            "error: --certified-commute/--sanitize-races apply to "
            "--engine parulel only",
            file=sys.stderr,
        )
        return 2

    if args.engine == "ops5":
        ops5 = OPS5Engine(
            program,
            strategy=args.strategy,
            matcher=matcher,
            indexed=not args.no_index,
        )
        for cls, attrs in facts:
            ops5.make(cls, attrs)
        result = ops5.run(max_cycles=args.max_cycles)
        for line in result.output:
            print(line)
        print(
            f"[ops5/{args.strategy}] {result.cycles} cycles, "
            f"{result.firings} firings, stopped by {result.reason}",
            file=sys.stderr,
        )
        if args.stats:
            for rule in result.fired_rules:
                print(f"  fired {rule}", file=sys.stderr)
        if args.dump_wm:
            with open(args.dump_wm, "w") as fh:
                fh.write(dump_wm_text(ops5.wm))
        return 0

    user_trace = None
    if args.trace:

        def user_trace(report):  # noqa: ANN001 - CycleReport
            print(
                f"[cycle {report.cycle}] conflict-set={report.conflict_set_size} "
                f"redacted={report.redaction.redacted} fired={report.fired} "
                f"Δ=-{report.delta_removes}/+{report.delta_makes}",
                file=sys.stderr,
            )

    ckpt_path = args.checkpoint or (args.program + ".ckpt")
    trace = user_trace
    if args.checkpoint_every is not None:

        def trace(report):  # noqa: ANN001 - CycleReport
            if user_trace is not None:
                user_trace(report)
            if report.cycle % args.checkpoint_every == 0:
                ckpt_save()

    config = EngineConfig(
        matcher=matcher,
        indexed_match=not args.no_index,
        vector_probe=not args.no_vector_probe,
        interference=args.interference,
        matcher_timeout=args.matcher_timeout,
        respawn_limit=args.respawn_limit,
        assignment=args.assignment,
        wm_backend=args.wm_backend,
        certified_commute=args.certified_commute,
        sanitize_races=args.sanitize_races,
        flight_recorder=not args.no_flight_recorder,
        blackbox_path=args.blackbox or (args.program + ".blackbox"),
    )
    obs_tracer, obs_metrics = _make_obs(args)
    if args.metrics_port is not None and obs_metrics is None:
        from repro.obs import MetricsRegistry

        obs_metrics = MetricsRegistry()
    if args.resume:
        import os

        if args.facts:
            print(
                "warning: --resume restores the checkpointed working memory; "
                "--facts is ignored",
                file=sys.stderr,
            )
        resume_state = args.resume
        if os.path.isdir(args.resume):
            # A checkpoint store: load here (not inside restore) so the
            # last-good fallback can surface which files were skipped.
            from repro.resilience import CheckpointStore

            load = CheckpointStore(args.resume).load()
            for path, reason in load.skipped:
                print(
                    f"warning: skipped corrupt checkpoint {path}: {reason}",
                    file=sys.stderr,
                )
            resume_state = load.state
        engine = ParulelEngine.restore(
            program, resume_state, config, trace=trace,
            tracer=obs_tracer, metrics=obs_metrics,
        )
    else:
        engine = ParulelEngine(
            program, config, trace=trace, tracer=obs_tracer, metrics=obs_metrics
        )
        for cls, attrs in facts:
            engine.make(cls, attrs)
    if args.checkpoint_keep is not None:
        from repro.resilience import CheckpointStore, EngineCheckpointer

        _ckpt = EngineCheckpointer(
            engine,
            CheckpointStore(ckpt_path, keep=args.checkpoint_keep),
            full_every=args.checkpoint_full_every,
        )
        ckpt_save = _ckpt.save
    else:

        def ckpt_save() -> None:
            engine.checkpoint(ckpt_path)

    try:
        result = engine.run(max_cycles=args.max_cycles)
    except CycleLimitExceeded as exc:
        partial = exc.partial
        if partial is not None:
            for line in partial.output:
                print(line)
        if args.checkpoint_every is not None:
            ckpt_save()  # salvage the partial run
        # A truncated run is exactly when you want to see where the time
        # went — the artifacts cover the cycles that did complete.
        _write_obs(args, obs_tracer, obs_metrics)
        if not args.no_flight_recorder:
            import os

            bb_path = args.blackbox or (args.program + ".blackbox")
            if os.path.exists(bb_path):
                print(
                    f"[obs] black-box dump written to {bb_path} "
                    f"(inspect with: parulel blackbox dump {bb_path})",
                    file=sys.stderr,
                )
        print(
            f"[parulel] cycle limit hit after {exc.cycles_completed} cycles "
            f"and {exc.firings} firings: {exc}",
            file=sys.stderr,
        )
        engine.close()
        return 1
    for line in result.output:
        print(line)
    print(
        f"[parulel] {result.cycles} cycles, {result.firings} firings "
        f"(mean firing set {result.mean_firing_set:.1f}), stopped by "
        f"{result.reason}",
        file=sys.stderr,
    )
    if engine.fault_events:
        from repro.faults import summarize_faults

        counts = summarize_faults(engine.fault_events)
        summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"  faults: {summary}", file=sys.stderr)
    if args.stats:
        stats = engine.matcher.stats
        print(f"  match: {stats}", file=sys.stderr)
        for name, secs in sorted(engine.phase_times.items()):
            print(f"  phase {name}: {secs * 1000:.1f} ms", file=sys.stderr)
    if args.dump_wm:
        with open(args.dump_wm, "w") as fh:
            fh.write(dump_wm_text(engine.wm))
    _write_obs(args, obs_tracer, obs_metrics)
    if args.metrics_port is not None:
        from repro.obs import MetricsHTTPServer

        server = MetricsHTTPServer(obs_metrics, port=args.metrics_port)
        print(
            f"[obs] serving metrics at {server.url} — one scrape, or "
            f"{args.metrics_linger:.0f}s, whichever comes first",
            file=sys.stderr,
        )
        scraped = server.wait_for_scrape(timeout=args.metrics_linger)
        server.shutdown()
        print(
            "[obs] metrics scraped" if scraped
            else "[obs] no scrape before the linger deadline",
            file=sys.stderr,
        )
    engine.close()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import os

    from repro.obs import MetricsRegistry, Tracer, hot_rule_table

    matcher = args.matcher
    if matcher == "process" and args.workers is not None:
        if args.workers < 1:
            print("error: --workers must be >= 1", file=sys.stderr)
            return 2
        matcher = f"process:{args.workers}"

    metrics = MetricsRegistry()
    tracer = Tracer() if args.trace_out else None

    workload = None
    if not os.path.exists(args.target):
        from repro.programs import REGISTRY

        builder = REGISTRY.get(args.target)
        if builder is None:
            print(
                f"error: {args.target!r} is neither a file nor a bundled "
                f"workload ({', '.join(sorted(REGISTRY))})",
                file=sys.stderr,
            )
            return 2
        if args.facts:
            print(
                "error: --facts applies to program files, not bundled workloads",
                file=sys.stderr,
            )
            return 2
        workload = builder()
        program = workload.program
    else:
        program = parse_program(open(args.target).read())
        analyze_program(program)

    engine = ParulelEngine(
        program,
        EngineConfig(
            matcher=matcher,
            indexed_match=not args.no_index,
            vector_probe=not args.no_vector_probe,
            wm_backend=args.wm_backend,
        ),
        tracer=tracer,
        metrics=metrics,
    )
    if workload is not None:
        workload.setup(engine)
    elif args.facts:
        for cls, attrs in parse_facts(open(args.facts).read()):
            engine.make(cls, attrs)
    try:
        result = engine.run(max_cycles=args.max_cycles)
    finally:
        engine.close()

    print(
        f"[parulel] {result.cycles} cycles, {result.firings} firings "
        f"(mean firing set {result.mean_firing_set:.1f}), stopped by "
        f"{result.reason}"
    )
    total = sum(engine.phase_times.values()) or 1.0
    print("phases:")
    for name, secs in sorted(
        engine.phase_times.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {name:<10} {secs * 1000:8.1f} ms  {secs / total:6.1%}")
    print()
    print(hot_rule_table(metrics, top=args.top))
    _write_obs(args, tracer, metrics if args.metrics_out else None)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    source = open(args.program).read()
    program = parse_program(source)
    info = analyze_program(program)
    print(
        f"{len(program.literalizes)} classes, {len(program.rules)} rules, "
        f"{len(program.meta_rules)} meta-rules"
    )
    for ri in info.rule_infos:
        kind = "mp" if ri.is_meta else "p "
        reads = ",".join(sorted(ri.classes_read))
        writes = ",".join(sorted(ri.classes_written)) or "-"
        print(f"  {kind} {ri.name}: reads {reads}; writes {writes}")
    return 0


def _cmd_fmt(args: argparse.Namespace) -> int:
    source = open(args.program).read()
    print(format_program(parse_program(source)), end="")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.match.rete import ReteMatcher
    from repro.tools import rete_to_dot
    from repro.wm.memory import WorkingMemory
    from repro.wm.template import TemplateRegistry

    program = parse_program(open(args.program).read())
    analyze_program(program)
    wm = WorkingMemory(TemplateRegistry.from_program(program))
    matcher = ReteMatcher(program.rules, wm)
    if args.facts:
        for cls, attrs in parse_facts(open(args.facts).read()):
            wm.make(cls, attrs)
    print(rete_to_dot(matcher))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.core import EngineConfig

    program = parse_program(open(args.program).read())
    analyze_program(program)
    wanted = parse_facts(args.wme)
    if len(wanted) != 1:
        print("error: --wme needs exactly one (class ^attr value) form", file=sys.stderr)
        return 2
    cls, attrs = wanted[0]

    engine = ParulelEngine(program, EngineConfig(track_provenance=True))
    try:
        if args.facts:
            for fcls, fattrs in parse_facts(open(args.facts).read()):
                engine.make(fcls, fattrs)
        engine.run(max_cycles=args.max_cycles)

        matches = engine.wm.find(cls, attrs)
        counts = engine.provenance.rule_counts()
        if not matches:
            # A clear diagnostic, not a traceback: name the pattern and
            # show what the final memory does hold for that class.
            live = len(engine.wm.find(cls))
            hint = (
                f"{live} live WME(s) of class {cls!r} have other attributes"
                if live
                else f"no live WMEs of class {cls!r} at all"
            )
            print(
                f"error: no live WME matches {args.wme.strip()} in the "
                f"final working memory ({hint})",
                file=sys.stderr,
            )
            return 1
        if args.json:
            import json

            doc = {
                "pattern": args.wme.strip(),
                "matches": [engine.provenance.tree(w) for w in matches],
                "ruleCounts": counts,
            }
            print(json.dumps(doc, indent=2))
            return 0
        for wme in matches:
            print(engine.explain(wme))
            print()
        if counts:
            print("derivations by rule:")
            for rule, n in counts.items():
                print(f"  {rule}: {n}")
        return 0
    finally:
        engine.close()


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.tools.lint import lint_paths

    code = lint_paths([args.program])
    if code == 0:
        print("clean: no parallel-firing interference candidates")
    return code


def _registry_seed_classes(workload) -> List[str]:
    """The WME classes a workload's initial facts load, found by running
    its setup against a bare working memory."""
    from repro.wm.memory import WorkingMemory
    from repro.wm.template import TemplateRegistry

    class _Collector:
        def __init__(self, program):
            self.wm = WorkingMemory(TemplateRegistry.from_program(program))

        def make(self, cls, attrs=None, **kw):
            self.wm.make(cls, attrs, **kw)

    collector = _Collector(workload.program)
    workload.setup(collector)
    return sorted({wme.class_name for wme in collector.wm})


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis import analyze, render_sarif
    from repro.errors import ReproError

    # Collect (name, program, seed_classes) units to analyze.
    units = []
    if args.programs:
        for path in args.programs:
            try:
                program = parse_program(Path(path).read_text(encoding="utf-8"))
                analyze_program(program)
            except (OSError, ReproError) as exc:
                print(f"error: {path}: {exc}", file=sys.stderr)
                return 2
            seeds = None
            if args.facts:
                facts = parse_facts(
                    Path(args.facts).read_text(encoding="utf-8")
                )
                seeds = sorted({cls for cls, _attrs in facts})
            units.append((path, program, seeds))
    else:
        if args.facts:
            print("error: --facts requires a PROGRAM argument", file=sys.stderr)
            return 2
        from repro.programs import REGISTRY

        for name in sorted(REGISTRY):
            workload = REGISTRY[name]()
            units.append(
                (name, workload.program, _registry_seed_classes(workload))
            )

    if args.json and args.sarif:
        print("error: --json and --sarif are mutually exclusive", file=sys.stderr)
        return 2

    reports = [
        analyze(program, seed_classes=seeds, name=name)
        for name, program, seeds in units
    ]
    if args.sarif:
        doc = render_sarif(
            [(r.name, r.diagnostics, r.properties()) for r in reports]
        )
        print(json.dumps(doc, indent=2))
    elif args.json:
        doc = {
            "programs": [
                {
                    "name": r.name,
                    "worst": r.worst.value if r.worst is not None else None,
                    "hasErrors": r.has_errors,
                    "properties": r.properties(),
                    "diagnostics": [
                        {
                            "code": d.code,
                            "severity": d.severity.value,
                            "rule": d.rule,
                            "ce": d.ce,
                            "message": d.message,
                            "hint": d.hint,
                        }
                        for d in r.diagnostics
                    ],
                }
                for r in reports
            ]
        }
        print(json.dumps(doc, indent=2))
    else:
        print("\n\n".join(r.render_text(show_hints=not args.no_hints) for r in reports))
    return 1 if any(r.has_errors for r in reports) else 0


def _cmd_repl(args: argparse.Namespace) -> int:
    from repro.repl import run_repl

    program = parse_program(open(args.program).read())
    initial = [open(args.facts).read()] if args.facts else []

    def feed():
        # Facts first, then hand over to the interactive prompt.
        yield from initial
        while True:
            try:
                yield input("parulel> ")
            except EOFError:
                return

    return run_repl(program, input_lines=feed() if initial else None)


def _cmd_janitor(args: argparse.Namespace) -> int:
    from repro.resilience import sweep_orphans

    report = sweep_orphans(
        shm_dir=args.shm_dir, min_age=args.min_age, dry_run=args.dry_run
    )
    verb = "would remove" if args.dry_run else "removed"
    for name in report.removed:
        print(f"{verb} {name}")
    if args.verbose:
        for name, reason in report.kept:
            print(f"kept {name}: {reason}", file=sys.stderr)
    print(str(report), file=sys.stderr)
    return 0


def _cmd_blackbox(args: argparse.Namespace) -> int:
    from repro.obs.blackbox import diff_blackbox, load_blackbox, skew_report

    if args.bb_command == "diff":
        result = diff_blackbox(
            load_blackbox(args.left), load_blackbox(args.right)
        )
        if result is None:
            print(
                "no divergence: both recordings agree on every "
                "deterministic engine event"
            )
            return 0
        print(f"first divergence at engine-ring event {result.index}:")
        print(f"  left : {result.left_text}")
        print(f"  right: {result.right_text}")
        return 1

    bb = load_blackbox(args.file)
    if args.bb_command == "dump":
        hdr = bb.header
        info = hdr.get("info") or {}
        print(f"# blackbox {args.file}")
        print(
            f"# reason: {bb.reason}   pid: {hdr.get('pid')}   "
            f"dumped at cycle: {info.get('cycle', '?')}"
        )
        git = hdr.get("git") or {}
        if git.get("sha"):
            print(f"# git: {git.get('sha')} ({git.get('head', '?')})")
        seed = info.get("seed")
        if seed is not None:
            print(f"# fault-plan seed: {seed}")
        timeline = bb.timeline()
        if args.limit is not None and len(timeline) > args.limit:
            print(
                f"# ... {len(timeline) - args.limit} earlier event(s) "
                f"omitted (--limit {args.limit})"
            )
            timeline = timeline[-args.limit:]
        origin = hdr.get("origin_ns", 0)
        for ts, site, rec in timeline:
            who = "engine" if site < 0 else f"site {site}"
            print(
                f"{(ts - origin) / 1e6:12.3f}ms  c{rec['cycle']:<4d} "
                f"{who:<8s} {bb.describe(rec)}"
            )
        return 0

    # report
    registry = None
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    rep = skew_report(bb, registry=registry)
    print(f"blackbox report: {args.file} (reason: {rep['reason']})")
    for ring in rep["rings"]:
        who = "engine" if ring["site"] < 0 else f"site {ring['site']}"
        extras = ""
        if ring["dropped"]:
            extras += f", {ring['dropped']} dropped (ring wrapped)"
        if ring["torn"]:
            extras += f", {ring['torn']} torn"
        print(f"  ring {who}: {ring['records']} record(s){extras}")
    if rep["phases"]:
        print("cycle phases (seconds):")
        print(
            f"  {'phase':<8} {'n':>5} {'p50':>11} {'p95':>11} "
            f"{'mean':>11} {'max':>11}"
        )
        for name, st in rep["phases"].items():
            print(
                f"  {name:<8} {st['n']:>5d} {st['p50']:>11.6f} "
                f"{st['p95']:>11.6f} {st['mean']:>11.6f} {st['max']:>11.6f}"
            )
    if rep["sites"]:
        print("site skew (match-request -> reply busy windows):")
        for site, st in rep["sites"].items():
            print(
                f"  site {site}: cycles={st['cycles']} "
                f"busy={st['busy_s']:.6f}s mean={st['mean_busy_s']:.6f}s "
                f"skew-ratio={st['skew_ratio']:.3f}"
            )
    if rep["rules"]:
        print("rule time share (evaluation + worker match):")
        for name, st in rep["rules"].items():
            print(
                f"  {name}: {st['total_ns'] / 1e6:.3f}ms "
                f"({st['share']:.1%})"
            )
    if registry is not None:
        if args.metrics_out.endswith((".prom", ".txt")):
            registry.write_prometheus(args.metrics_out)
        else:
            registry.write_json(args.metrics_out)
        print(f"[obs] metrics written to {args.metrics_out}", file=sys.stderr)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.programs import REGISTRY

    builder = REGISTRY.get(args.name)
    if builder is None:
        print(
            f"unknown demo {args.name!r}; available: {', '.join(sorted(REGISTRY))}",
            file=sys.stderr,
        )
        return 2
    workload = builder()
    print(f"== {workload.name}: {workload.description}")

    engine = ParulelEngine(workload.program)
    workload.setup(engine)
    res = engine.run()
    print(
        f"parulel: {res.cycles} cycles, {res.firings} firings "
        f"(mean firing set {res.mean_firing_set:.1f}) -> "
        f"{'OK' if workload.verify_ok(engine.wm) else 'WRONG RESULT'}"
    )

    ops5 = OPS5Engine(workload.program)
    workload.setup(ops5)
    ro = ops5.run()
    print(
        f"ops5/lex: {ro.cycles} cycles -> "
        f"{'OK' if workload.verify_ok(ops5.wm) else 'WRONG RESULT'}"
    )
    if res.cycles:
        print(f"cycle reduction: {ro.cycles / res.cycles:.1f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="parulel",
        description="PARULEL parallel rule language (ICPP 1991) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a program")
    p_run.add_argument("program", help="path to a .pl rule program")
    p_run.add_argument("--facts", help="path to an initial-WME facts file")
    p_run.add_argument(
        "--engine", choices=("parulel", "ops5"), default="parulel"
    )
    p_run.add_argument(
        "--matcher",
        choices=("rete", "rete-shared", "treat", "naive", "process"),
        default="rete",
        help="match backend; 'process' fans matching out to worker processes",
    )
    p_run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --matcher process (default: usable cores, max 4)",
    )
    p_run.add_argument(
        "--assignment",
        choices=("round-robin", "analysis"),
        default=None,
        help="rule-to-worker partition policy for --matcher process; "
        "'analysis' uses the static analyzer's connectivity-minimizing "
        "partition",
    )
    p_run.add_argument(
        "--matcher-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-worker reply deadline for --matcher process",
    )
    p_run.add_argument(
        "--respawn-limit",
        type=int,
        default=None,
        metavar="N",
        help="per-site worker respawn budget for --matcher process; once "
        "exhausted the site's rules are matched serially in-parent",
    )
    p_run.add_argument(
        "--wm-backend",
        choices=("dict", "columnar"),
        default="dict",
        help="working-memory store; 'columnar' keeps WMEs in shared-memory "
        "columns that --matcher process workers attach instead of "
        "receiving pickled deltas",
    )
    p_run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="write a resumable checkpoint every N cycles",
    )
    p_run.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="checkpoint file path (default: PROGRAM.ckpt); with "
        "--checkpoint-keep this is a store *directory*",
    )
    p_run.add_argument(
        "--checkpoint-keep",
        type=int,
        default=None,
        metavar="K",
        help="rotate checkpoints in a store directory, keeping the last K "
        "full snapshots (requires --checkpoint-every); between fulls the "
        "store writes cheap incremental deltas",
    )
    p_run.add_argument(
        "--checkpoint-full-every",
        type=int,
        default=5,
        metavar="M",
        help="with --checkpoint-keep: write a full snapshot every M-th "
        "checkpoint, deltas in between (default: 5)",
    )
    p_run.add_argument(
        "--resume",
        metavar="PATH",
        help="resume from a checkpoint file or store directory written by "
        "--checkpoint-every (--facts is ignored); a store falls back to "
        "the newest checkpoint that verifies",
    )
    p_run.add_argument(
        "--no-index",
        action="store_true",
        help="disable the hash-indexed join kernel (nested-loop matching; "
        "identical results, ablation escape hatch)",
    )
    p_run.add_argument(
        "--no-vector-probe",
        action="store_true",
        help="disable the vectorized column-scan probe kernel in columnar "
        "process workers (object-replica matching; identical results)",
    )
    p_run.add_argument("--strategy", choices=("lex", "mea"), default="lex")
    p_run.add_argument(
        "--interference", choices=("error", "first", "merge"), default="error"
    )
    p_run.add_argument(
        "--certified-commute",
        action="store_true",
        help="skip reifying conflict-set candidates the commutativity "
        "detector proves invisible to the meta level and pairwise "
        "commuting (byte-identical results, fewer redaction checks)",
    )
    p_run.add_argument(
        "--sanitize-races",
        action="store_true",
        help="dynamic race sanitizer: replay each pair of firings in both "
        "orders on a shadow WM and hard-fail if a pair certified as "
        "commuting diverges",
    )
    p_run.add_argument("--max-cycles", type=int, default=100_000)
    p_run.add_argument("--trace", action="store_true", help="per-cycle trace to stderr")
    p_run.add_argument("--stats", action="store_true", help="match/phase statistics")
    p_run.add_argument(
        "--dump-wm", metavar="PATH", help="write the final working memory as facts"
    )
    p_run.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a span trace: Chrome trace-event JSON (Perfetto / "
        "chrome://tracing), or JSONL when PATH ends in .jsonl",
    )
    p_run.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the metrics registry: JSON snapshot, or Prometheus "
        "text when PATH ends in .prom/.txt",
    )
    p_run.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="after the run, serve one-shot Prometheus text exposition on "
        "127.0.0.1:PORT (0 = pick a free port); exits after the first "
        "scrape or --metrics-linger seconds",
    )
    p_run.add_argument(
        "--metrics-linger",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long --metrics-port waits for a scrape (default: 30)",
    )
    p_run.add_argument(
        "--no-flight-recorder",
        action="store_true",
        help="disable the always-on flight recorder (fixed-cost binary "
        "ring journal + crash dumps)",
    )
    p_run.add_argument(
        "--blackbox",
        metavar="PATH",
        help="where the flight recorder writes its crash dump on abnormal "
        "exit (default: PROGRAM.blackbox)",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_check = sub.add_parser("check", help="parse and analyze a program")
    p_check.add_argument("program")
    p_check.set_defaults(fn=_cmd_check)

    p_fmt = sub.add_parser("fmt", help="canonical pretty-print")
    p_fmt.add_argument("program")
    p_fmt.set_defaults(fn=_cmd_fmt)

    p_demo = sub.add_parser("demo", help="run a bundled benchmark workload")
    p_demo.add_argument("name")
    p_demo.set_defaults(fn=_cmd_demo)

    p_dot = sub.add_parser("dot", help="Graphviz DOT of the RETE network")
    p_dot.add_argument("program")
    p_dot.add_argument("--facts", help="facts to load before rendering sizes")
    p_dot.set_defaults(fn=_cmd_dot)

    p_explain = sub.add_parser(
        "explain", help="derivation tree of a final working-memory element"
    )
    p_explain.add_argument("program")
    p_explain.add_argument("--facts", help="initial-WME facts file")
    p_explain.add_argument(
        "--wme", required=True, help='pattern like "(path ^src a ^dst d)"'
    )
    p_explain.add_argument("--max-cycles", type=int, default=100_000)
    p_explain.add_argument(
        "--json",
        action="store_true",
        help="emit the derivation tree(s) and per-rule derivation counts "
        "as a JSON document instead of indented text",
    )
    p_explain.set_defaults(fn=_cmd_explain)

    p_lint = sub.add_parser(
        "lint", help="static interference analysis + meta-rule suggestions"
    )
    p_lint.add_argument("program")
    p_lint.set_defaults(fn=_cmd_lint)

    p_analyze = sub.add_parser(
        "analyze",
        help="whole-program static analysis: dependency graph, "
        "stratification, redaction coverage, dead rules",
    )
    p_analyze.add_argument(
        "programs",
        nargs="*",
        help=".pl files (default: every bundled workload, with seed "
        "classes derived from its initial facts)",
    )
    p_analyze.add_argument(
        "--facts",
        help="initial-WME facts file; enables the dead-rule check "
        "(single PROGRAM only)",
    )
    p_analyze.add_argument(
        "--json",
        action="store_true",
        help="emit a flat machine-readable JSON document (one entry per "
        "program: worst severity, properties, diagnostics) instead of text",
    )
    p_analyze.add_argument(
        "--sarif",
        action="store_true",
        help="emit a SARIF-shaped JSON document instead of text",
    )
    p_analyze.add_argument(
        "--no-hints",
        action="store_true",
        help="omit fix hints (meta-rule skeletons) from the text report",
    )
    p_analyze.set_defaults(fn=_cmd_analyze)

    p_repl = sub.add_parser("repl", help="interactive session")
    p_repl.add_argument("program")
    p_repl.add_argument("--facts", help="facts file asserted before the prompt")
    p_repl.set_defaults(fn=_cmd_repl)

    p_prof = sub.add_parser(
        "profile",
        help="run with the observability layer on and print the phase "
        "breakdown and hot-rule table",
    )
    p_prof.add_argument(
        "target", help=".pl program path, or a bundled workload name (e.g. tc)"
    )
    p_prof.add_argument("--facts", help="initial-WME facts file (program files only)")
    p_prof.add_argument(
        "--matcher",
        choices=("rete", "rete-shared", "treat", "naive", "process"),
        default="rete",
    )
    p_prof.add_argument("--workers", type=int, default=None, metavar="N")
    p_prof.add_argument(
        "--wm-backend",
        choices=("dict", "columnar"),
        default="dict",
        help="working-memory store (see `run --wm-backend`)",
    )
    p_prof.add_argument("--max-cycles", type=int, default=100_000)
    p_prof.add_argument(
        "--no-index",
        action="store_true",
        help="disable the hash-indexed join kernel (nested-loop matching)",
    )
    p_prof.add_argument(
        "--no-vector-probe",
        action="store_true",
        help="disable the vectorized column-scan probe kernel (columnar "
        "process workers only)",
    )
    p_prof.add_argument(
        "--top", type=int, default=10, help="rows in the hot-rule table"
    )
    p_prof.add_argument("--trace-out", metavar="PATH")
    p_prof.add_argument("--metrics-out", metavar="PATH")
    p_prof.set_defaults(fn=_cmd_profile)

    p_bb = sub.add_parser(
        "blackbox",
        help="inspect *.blackbox crash dumps: merged timeline, skew "
        "analytics, first-divergence diff",
    )
    bb_sub = p_bb.add_subparsers(dest="bb_command", required=True)
    p_bb_dump = bb_sub.add_parser(
        "dump", help="merged causal timeline across engine and worker rings"
    )
    p_bb_dump.add_argument("file", help="a *.blackbox dump")
    p_bb_dump.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="print only the newest N events",
    )
    p_bb_dump.set_defaults(fn=_cmd_blackbox)
    p_bb_report = bb_sub.add_parser(
        "report",
        help="per-site busy/skew and per-rule time-share analytics with "
        "cycle-phase percentiles",
    )
    p_bb_report.add_argument("file", help="a *.blackbox dump")
    p_bb_report.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="also export parulel_site_skew_ratio / parulel_rule_time_share "
        "gauges: JSON snapshot, or Prometheus text for .prom/.txt",
    )
    p_bb_report.set_defaults(fn=_cmd_blackbox)
    p_bb_diff = bb_sub.add_parser(
        "diff",
        help="first diverging deterministic event between two recordings "
        "(exit 1 on divergence)",
    )
    p_bb_diff.add_argument("left", help="baseline *.blackbox dump")
    p_bb_diff.add_argument("right", help="comparison *.blackbox dump")
    p_bb_diff.set_defaults(fn=_cmd_blackbox)

    p_jan = sub.add_parser(
        "janitor",
        help="reclaim orphaned /dev/shm segments left by killed "
        "--wm-backend columnar runs and flight-recorder rings",
    )
    p_jan.add_argument(
        "--shm-dir",
        default="/dev/shm",
        metavar="DIR",
        help="shared-memory mount to sweep (default: /dev/shm)",
    )
    p_jan.add_argument(
        "--min-age",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="never sweep legacy (pid-less) segments younger than this",
    )
    p_jan.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without unlinking anything",
    )
    p_jan.add_argument(
        "--verbose",
        action="store_true",
        help="also report kept segments and why, to stderr",
    )
    p_jan.set_defaults(fn=_cmd_janitor)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
