"""Plain-text tables and CSV output for the benchmark harness.

Every experiment bench renders its results through :class:`Table`, so
``pytest benchmarks/ --benchmark-only`` prints the same rows the paper's
tables would hold, and EXPERIMENTS.md quotes them verbatim.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["Table", "fault_table", "format_table", "write_csv"]

Cell = Union[str, int, float, None]


def _render(cell: Cell, precision: int) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    precision: int = 2,
) -> str:
    """Render a fixed-width table with a rule under the header.

    Numeric columns are right-aligned; floats use ``precision`` decimals.
    """
    rendered: List[List[str]] = [[_render(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def align(cells: Sequence[str], is_header: bool) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if is_header:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(align(list(headers), True))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(align(row, False))
    return "\n".join(lines)


@dataclass
class Table:
    """Accumulates rows, prints itself, and can persist to CSV."""

    title: str
    headers: Sequence[str]
    rows: List[List[Cell]] = field(default_factory=list)
    precision: int = 2

    def add(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def __str__(self) -> str:
        return format_table(self.headers, self.rows, self.title, self.precision)

    def show(self) -> None:
        """Print with surrounding blank lines (pytest -s friendly)."""
        print()
        print(str(self))
        print()

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buf.getvalue()

    def save_csv(self, path: str) -> None:
        with open(path, "w", newline="") as fh:
            fh.write(self.to_csv())


def write_csv(path: str, headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> None:
    """One-shot CSV dump."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


def fault_table(events: Iterable, title: str = "fault/recovery events") -> Table:
    """A :class:`Table` over :class:`~repro.faults.FaultEvent` records —
    one row per event, chronological. Used by the fault benchmark and
    handy from the REPL/tests."""
    table = Table(title, ("cycle", "kind", "site", "detail"))
    for ev in events:
        table.add(ev.cycle, ev.kind, ev.site if ev.site is not None else "-", ev.detail)
    return table
