"""Phase timing and cycle-report summarization."""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence

from repro.core.engine import CycleReport

__all__ = ["PhaseTimer", "summarize_cycles"]


class PhaseTimer:
    """Accumulates wall-clock per named phase via a context manager::

        timer = PhaseTimer()
        with timer.phase("match"):
            ...
        timer.seconds["match"]
    """

    def __init__(self) -> None:
        self.seconds: Counter = Counter()
        self.entries: Counter = Counter()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[name] += time.perf_counter() - start
            self.entries[name] += 1

    def fraction(self, name: str) -> float:
        """Share of total recorded time spent in ``name`` (0 when empty)."""
        total = sum(self.seconds.values())
        return self.seconds[name] / total if total else 0.0

    def reset(self) -> None:
        self.seconds.clear()
        self.entries.clear()


def summarize_cycles(reports: Sequence[CycleReport]) -> Dict[str, float]:
    """Aggregate a run's cycle reports into the quantities the experiment
    tables print: firing-set statistics, redaction load, delta volume."""
    if not reports:
        return {
            "cycles": 0,
            "firings": 0,
            "mean_firing_set": 0.0,
            "max_firing_set": 0,
            "total_redacted": 0,
            "redacted_per_cycle": 0.0,
            "meta_cycles": 0,
            "wm_changes": 0,
        }
    fired = [r.fired for r in reports]
    redacted = [r.redaction.redacted for r in reports]
    firing = [f for f in fired if f]
    return {
        "cycles": len(reports),
        "firings": sum(fired),
        "mean_firing_set": (sum(firing) / len(firing)) if firing else 0.0,
        "max_firing_set": max(fired),
        "total_redacted": sum(redacted),
        "redacted_per_cycle": sum(redacted) / len(reports),
        "meta_cycles": sum(r.redaction.meta_cycles for r in reports),
        "wm_changes": sum(r.delta_removes + r.delta_makes for r in reports),
    }
