"""Phase timing and cycle-report summarization.

:class:`PhaseTimer` is the low-level accumulator the observability span
layer (:mod:`repro.obs.trace`) is built on: every closed span feeds its
duration into a timer via :meth:`PhaseTimer.add`, and the engine's public
``phase_times`` counter is a live view of one. Because spans close from
worker threads (:class:`~repro.parallel.threaded.ThreadedMatchPool` lanes)
the timer is thread-safe: both counters update under one lock, so
concurrent ``phase()``/``add()`` calls never lose increments.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, List, Sequence, Union

if TYPE_CHECKING:  # avoid a runtime cycle: repro.obs imports this module
    from repro.core.engine import CycleReport

__all__ = ["PhaseTimer", "percentile", "summarize_cycles"]


class PhaseTimer:
    """Accumulates wall-clock per named phase via a context manager::

        timer = PhaseTimer()
        with timer.phase("match"):
            ...
        timer.seconds["match"]

    Thread-safe: ``seconds`` and ``entries`` are updated atomically under
    an internal lock, so phases may run (and close) concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.seconds: Counter = Counter()
        self.entries: Counter = Counter()

    def add(self, name: str, seconds: float, entries: int = 1) -> None:
        """Record ``seconds`` of already-measured time against ``name``.

        This is the primitive the span layer calls when a span closes;
        :meth:`phase` is the same thing with the measuring built in.
        """
        with self._lock:
            self.seconds[name] += seconds
            self.entries[name] += entries

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def fraction(self, name: str) -> float:
        """Share of total recorded time spent in ``name`` (0 when empty)."""
        with self._lock:
            total = sum(self.seconds.values())
            return self.seconds[name] / total if total else 0.0

    def reset(self) -> None:
        with self._lock:
            self.seconds.clear()
            self.entries.clear()


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]; 0 when
    empty). Deterministic and dependency-free — shared by the cycle
    summaries and the metrics histograms."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, int(-(-q * len(ordered) // 100)))  # ceil without math
    return float(ordered[min(rank, len(ordered)) - 1])


def summarize_cycles(reports: "Sequence[CycleReport]") -> Dict[str, Union[int, float]]:
    """Aggregate a run's cycle reports into the quantities the experiment
    tables and the profiler print: firing-set statistics (including
    p50/p95 percentiles), redaction load, delta volume, write and fault
    counts. Counts are ints, ratios/percentiles floats — the return type
    says so honestly instead of claiming all-float."""
    if not reports:
        return {
            "cycles": 0,
            "firings": 0,
            "mean_firing_set": 0.0,
            "max_firing_set": 0,
            "p50_firing_set": 0.0,
            "p95_firing_set": 0.0,
            "total_redacted": 0,
            "redacted_per_cycle": 0.0,
            "meta_cycles": 0,
            "wm_changes": 0,
            "writes": 0,
            "fault_events": 0,
        }
    fired = [r.fired for r in reports]
    redacted = [r.redaction.redacted for r in reports]
    firing = [f for f in fired if f]
    return {
        "cycles": len(reports),
        "firings": sum(fired),
        "mean_firing_set": (sum(firing) / len(firing)) if firing else 0.0,
        "max_firing_set": max(fired),
        "p50_firing_set": percentile(firing, 50),
        "p95_firing_set": percentile(firing, 95),
        "total_redacted": sum(redacted),
        "redacted_per_cycle": sum(redacted) / len(reports),
        "meta_cycles": sum(r.redaction.meta_cycles for r in reports),
        "wm_changes": sum(r.delta_removes + r.delta_makes for r in reports),
        "writes": sum(len(r.writes) for r in reports),
        "fault_events": sum(len(r.fault_events) for r in reports),
    }
