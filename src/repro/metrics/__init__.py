"""Instrumentation and reporting helpers for the experiment suite.

- :mod:`repro.metrics.timers` — phase timers and cycle statistics,
- :mod:`repro.metrics.report` — fixed-width text tables (the benches print
  paper-style tables with these) and CSV emission.
"""

from repro.metrics.report import Table, fault_table, format_table, write_csv
from repro.metrics.timers import PhaseTimer, summarize_cycles

__all__ = [
    "PhaseTimer",
    "Table",
    "fault_table",
    "format_table",
    "summarize_cycles",
    "write_csv",
]
