"""The one diagnostics currency of the static analyzer.

Every check in :mod:`repro.analysis` — and the porting lint in
:mod:`repro.tools.lint`, which predates this package — reports findings as
:class:`Diagnostic` values carrying a stable code (``PA001`` ...), a
severity, the rule/CE the finding anchors to, and an optional fix hint
(e.g. a meta-rule skeleton the programmer can paste in). Two renderers
consume them:

- :func:`render_text` — the human report ``parulel analyze`` / ``parulel
  lint`` print;
- :func:`render_sarif` — a SARIF-shaped JSON document (``--json``) that CI
  gates can parse to show the exact regressing code.

The code table is :data:`CODES`; ``docs/ANALYSIS.md`` documents each code
with examples. Severities: ``error`` findings are definite program bugs
(the check.sh gate fails on them), ``warning`` findings are conservative
may-happen reports, ``info`` findings are structural observations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Severity",
    "Diagnostic",
    "CODES",
    "diag",
    "render_text",
    "render_sarif",
    "worst_severity",
]


class Severity(enum.Enum):
    """Finding severity, ordered: info < warning < error."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return ("info", "warning", "error").index(self.value)

    @property
    def sarif_level(self) -> str:
        """SARIF ``level`` value for this severity."""
        return {"info": "note", "warning": "warning", "error": "error"}[self.value]


#: code -> (default severity, short description). The single source of truth
#: for the analyzer's vocabulary; renderers and docs derive from it.
CODES: Dict[str, Tuple[Severity, str]] = {
    "PA001": (
        Severity.WARNING,
        "parallel-firing interference candidate (two rules may write one WME)",
    ),
    "PA002": (
        Severity.WARNING,
        "interference candidate not covered by any redaction meta-rule",
    ),
    "PA003": (
        Severity.WARNING,
        "dead rule: a positive condition's class is never produced or loaded",
    ),
    "PA004": (
        Severity.ERROR,
        "unsatisfiable condition element: contradictory attribute tests",
    ),
    "PA005": (
        Severity.INFO,
        "non-stratified dependency: an inhibits edge closes a rule cycle",
    ),
    "PA006": (
        Severity.ERROR,
        "inapplicable meta-rule: its instantiation pattern can never match",
    ),
    "PA007": (
        Severity.WARNING,
        "commutativity race: the pair's working-memory updates collide "
        "(witness working memory attached)",
    ),
    "PA008": (
        Severity.WARNING,
        "enablement race: one rule's firing invalidates or disables the "
        "other's match (witness working memory attached)",
    ),
    "PA009": (
        Severity.INFO,
        "commutation unknown: the critical-pair analysis could neither "
        "certify nor refute this rule pair",
    ),
    "PA010": (
        Severity.ERROR,
        "unsound copy-and-constrain split: partition copies overlap or "
        "contradict existing tests",
    ),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    code: str
    severity: Severity
    message: str
    #: Rule (or meta-rule) name the finding anchors to, when there is one.
    rule: Optional[str] = None
    #: 1-based condition-element index within ``rule``, when there is one.
    ce: Optional[int] = None
    #: Actionable fix suggestion (may be multi-line, e.g. an ``mp`` skeleton).
    hint: Optional[str] = None

    @property
    def span(self) -> str:
        """Human-readable anchor, e.g. ``improve/CE 2`` or ``<program>``."""
        if self.rule is None:
            return "<program>"
        return f"{self.rule}/CE {self.ce}" if self.ce is not None else self.rule


def diag(
    code: str,
    message: str,
    rule: Optional[str] = None,
    ce: Optional[int] = None,
    hint: Optional[str] = None,
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting severity from :data:`CODES`."""
    if code not in CODES:
        raise ValueError(f"unknown diagnostic code {code!r}")
    return Diagnostic(
        code=code,
        severity=severity or CODES[code][0],
        message=message,
        rule=rule,
        ce=ce,
        hint=hint,
    )


def worst_severity(diagnostics: Sequence[Diagnostic]) -> Optional[Severity]:
    """The most severe severity present, or ``None`` when empty."""
    if not diagnostics:
        return None
    return max((d.severity for d in diagnostics), key=lambda s: s.rank)


def render_text(diagnostics: Sequence[Diagnostic], show_hints: bool = True) -> str:
    """The canonical one-line-per-finding report (hints indented below).

    Ordered most-severe-first, stable within a severity (findings keep the
    order the checks emitted them in).
    """
    ordered = sorted(
        enumerate(diagnostics), key=lambda p: (-p[1].severity.rank, p[0])
    )
    lines: List[str] = []
    for _i, d in ordered:
        lines.append(f"{d.code} {d.severity.value} [{d.span}] {d.message}")
        if show_hints and d.hint:
            lines.extend(f"    {h}" for h in d.hint.splitlines())
    return "\n".join(lines)


def render_sarif(
    runs: Sequence[Tuple[str, Sequence[Diagnostic], Optional[dict]]],
) -> dict:
    """SARIF-shaped document for one or more analysis runs.

    ``runs`` is a sequence of ``(artifact_name, diagnostics, properties)``
    — one entry per analyzed program (``properties`` carries the run's
    summary statistics: graph sizes, strata, coverage counts). The shape
    follows SARIF 2.1.0 closely enough for code/level/message extraction,
    which is all the CI gate needs.
    """
    rule_descriptors = [
        {
            "id": code,
            "shortDescription": {"text": desc},
            "defaultConfiguration": {"level": sev.sarif_level},
        }
        for code, (sev, desc) in sorted(CODES.items())
    ]
    sarif_runs = []
    for artifact, diagnostics, properties in runs:
        results = []
        for d in diagnostics:
            entry: dict = {
                "ruleId": d.code,
                "level": d.severity.sarif_level,
                "message": {"text": d.message},
                "locations": [
                    {
                        "logicalLocations": [
                            {
                                "name": d.rule or "<program>",
                                "kind": "rule",
                            }
                        ]
                    }
                ],
            }
            props: dict = {}
            if d.ce is not None:
                props["conditionElement"] = d.ce
            if d.hint:
                props["hint"] = d.hint
            if props:
                entry["properties"] = props
            results.append(entry)
        run: dict = {
            "tool": {
                "driver": {
                    "name": "parulel-analyze",
                    "informationUri": "docs/ANALYSIS.md",
                    "rules": rule_descriptors,
                }
            },
            "artifacts": [{"location": {"uri": artifact}}],
            "results": results,
        }
        if properties:
            run["properties"] = properties
        sarif_runs.append(run)
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": sarif_runs,
    }
