"""Per-rule read/write footprints and a conservative overlap test.

The dependency graph, the dead-code checks and the partition advisor all
need the same two questions answered statically:

1. *What does a rule read and write?* — per condition element and per
   action, as a ``(class, per-attribute constraint set)`` **footprint**;
2. *Could this write produce/destroy a WME that matches that read?* —
   :func:`may_overlap`, a satisfiability check over the two constraint
   sets that errs on the side of "yes".

Constraints come from two places. Reads carry the compiled alpha
conditions of their CE (:mod:`repro.match.compile` already classifies
constant/equality/membership tests). Writes carry the *post-image* of the
action:

- a ``make`` knows each constant assignment exactly, and — crucially —
  knows that every **unassigned** attribute is ``nil``
  (:data:`repro.wm.wme.NIL`), which is what lets phase-machine programs
  prove their makes cannot feed unrelated condition elements;
- a ``modify`` starts from the target CE's alpha constraints and
  overwrites the assigned attributes (constants become known, computed
  expressions become unknown);
- a ``remove`` destroys a WME matching the target CE's constraints.

Unknown values are always satisfiable: :func:`may_overlap` only answers
``False`` on a *proof* of disjointness, so every edge the dependency
graph might need is present (the analyses built on top stay sound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.lang.ast import (
    ConstantExpr,
    MakeAction,
    ModifyAction,
    RemoveAction,
    Rule,
    Value,
    VariableExpr,
)
from repro.match.compile import CompiledCE, CompiledRule, compile_rule, value_predicate
from repro.wm.wme import NIL

__all__ = [
    "Constraint",
    "WriteImage",
    "RuleFootprint",
    "ce_constraints",
    "rule_footprint",
    "constraints_satisfiable",
    "may_overlap",
    "footprint_classes",
]

#: One atomic per-attribute fact: ``('eq', v)``, ``('pred', op, v)`` for a
#: non-equality comparison against a constant, ``('in', alternatives)``,
#: ``('absent',)`` (attribute never assigned — reads back as ``nil``),
#: ``('var', name)`` (value copied from the named LHS variable — known
#: symbolically but not concretely; the commute analysis unifies these,
#: everything else treats them like ``unknown``) or ``('unknown',)``
#: (value not statically known).
Constraint = Tuple

#: attr -> constraints that must all hold for that attribute.
ConstraintMap = Dict[str, Tuple[Constraint, ...]]


@dataclass(frozen=True)
class WriteImage:
    """The statically-known shape of one write's effect.

    ``kind`` is ``'make'``, ``'modify'`` or ``'remove'``; for removes the
    constraints describe the WME being *destroyed*, for makes/modifies the
    WME being *created*. ``closed`` marks images whose unlisted attributes
    are provably ``nil`` (makes only).
    """

    rule: str
    kind: str
    class_name: str
    constraints: Tuple[Tuple[str, Tuple[Constraint, ...]], ...]
    #: 1-based CE index of the modify/remove target (0 for makes).
    ce_index: int = 0
    closed: bool = False

    @property
    def constraint_map(self) -> ConstraintMap:
        return dict(self.constraints)


@dataclass(frozen=True)
class RuleFootprint:
    """Everything one rule touches, in analyzable form."""

    rule: Rule
    compiled: CompiledRule
    #: Post-images of every make/modify, and pre-images of every remove.
    writes: Tuple[WriteImage, ...]

    @property
    def name(self) -> str:
        return self.rule.name

    @property
    def classes_read(self) -> FrozenSet[str]:
        return frozenset(ce.class_name for ce in self.compiled.ces)

    @property
    def classes_written(self) -> FrozenSet[str]:
        return frozenset(w.class_name for w in self.writes)


def ce_constraints(ce: CompiledCE) -> ConstraintMap:
    """Per-attribute constraints a WME must satisfy to pass the CE's alpha
    tests (variable bindings and join tests constrain nothing statically)."""
    out: Dict[str, List[Constraint]] = {}
    for cond in ce.alpha_conds:
        if cond[0] == "const":
            _k, attr, op, value = cond
            if op == "=":
                out.setdefault(attr, []).append(("eq", value))
            else:
                out.setdefault(attr, []).append(("pred", op, value))
        elif cond[0] == "in":
            _k, attr, alternatives = cond
            out.setdefault(attr, []).append(("in", tuple(alternatives)))
        # 'intra' (attr-vs-attr) conditions constrain nothing per-attribute.
    return {attr: tuple(conds) for attr, conds in out.items()}


def _assignment_constraints(assignments) -> Dict[str, Tuple[Constraint, ...]]:
    out: Dict[str, Tuple[Constraint, ...]] = {}
    for attr, expr in assignments:
        if isinstance(expr, ConstantExpr):
            out[attr] = (("eq", expr.value),)
        elif isinstance(expr, VariableExpr):
            out[attr] = (("var", expr.name),)
        else:
            out[attr] = (("unknown",),)
    return out


def rule_footprint(rule: Rule, compiled: Optional[CompiledRule] = None) -> RuleFootprint:
    """Compute the footprint of one rule (compiling its LHS if needed)."""
    compiled = compiled or compile_rule(rule)
    writes: List[WriteImage] = []
    for action in rule.actions:
        if isinstance(action, MakeAction):
            constraints = _assignment_constraints(action.assignments)
            writes.append(
                WriteImage(
                    rule=rule.name,
                    kind="make",
                    class_name=action.class_name,
                    constraints=tuple(sorted(constraints.items())),
                    closed=True,
                )
            )
        elif isinstance(action, ModifyAction):
            target = compiled.ces[action.ce_index - 1]
            merged: Dict[str, Tuple[Constraint, ...]] = dict(ce_constraints(target))
            merged.update(_assignment_constraints(action.assignments))
            writes.append(
                WriteImage(
                    rule=rule.name,
                    kind="modify",
                    class_name=target.class_name,
                    constraints=tuple(sorted(merged.items())),
                    ce_index=action.ce_index,
                )
            )
        elif isinstance(action, RemoveAction):
            for idx in action.ce_indices:
                target = compiled.ces[idx - 1]
                writes.append(
                    WriteImage(
                        rule=rule.name,
                        kind="remove",
                        class_name=target.class_name,
                        constraints=tuple(sorted(ce_constraints(target).items())),
                        ce_index=idx,
                    )
                )
    return RuleFootprint(rule=rule, compiled=compiled, writes=tuple(writes))


# ---------------------------------------------------------------------------
# Satisfiability
# ---------------------------------------------------------------------------


def _value_satisfies(value: Value, constraint: Constraint) -> bool:
    """Does a *known* value satisfy one constraint?"""
    kind = constraint[0]
    if kind == "eq":
        return value == constraint[1]
    if kind == "pred":
        return value_predicate(constraint[1], value, constraint[2])
    if kind == "in":
        return value in constraint[1]
    if kind == "absent":
        return value == NIL
    return True  # unknown / var (symbolic — any value possible)


def _pair_satisfiable(a: Constraint, b: Constraint) -> bool:
    """Could one value satisfy both atomic constraints? Conservative."""
    if a[0] in ("unknown", "var") or b[0] in ("unknown", "var"):
        return True
    # Resolve "absent" to the value it reads back as.
    if a[0] == "absent":
        a = ("eq", NIL)
    if b[0] == "absent":
        b = ("eq", NIL)
    if a[0] == "eq":
        return _value_satisfies(a[1], b)
    if b[0] == "eq":
        return _value_satisfies(b[1], a)
    if a[0] == "in" and b[0] == "in":
        return bool(set(a[1]) & set(b[1]))
    if a[0] == "in":
        return any(_value_satisfies(v, b) for v in a[1])
    if b[0] == "in":
        return any(_value_satisfies(v, a) for v in b[1])
    # pred vs pred: check for contradictory numeric ranges.
    return _ranges_satisfiable(a, b)


def _ranges_satisfiable(a: Constraint, b: Constraint) -> bool:
    """Two non-equality predicates against constants: numeric range check.

    Only provably-empty numeric intersections return False (``> 5`` with
    ``< 3``); everything involving symbols or ``<>``/``<=>`` stays True.
    """
    ops = {a[1], b[1]}
    if "<>" in ops or "<=>" in ops:
        return True
    va, vb = a[2], b[2]
    if not isinstance(va, (int, float)) or not isinstance(vb, (int, float)):
        return True
    lo, hi = float("-inf"), float("inf")
    lo_strict = hi_strict = False
    for op, v in ((a[1], va), (b[1], vb)):
        if op in (">", ">="):
            if v > lo or (v == lo and op == ">"):
                lo, lo_strict = v, op == ">"
        elif op in ("<", "<="):
            if v < hi or (v == hi and op == "<"):
                hi, hi_strict = v, op == "<"
    if lo > hi:
        return False
    if lo == hi and (lo_strict or hi_strict):
        return False
    return True


def constraints_satisfiable(conds: Sequence[Constraint]) -> bool:
    """Can any single value satisfy every constraint in the list?"""
    for i, a in enumerate(conds):
        for b in conds[i + 1 :]:
            if not _pair_satisfiable(a, b):
                return False
    return True


def may_overlap(image: WriteImage, reader: ConstraintMap, reader_class: str) -> bool:
    """Could the written/destroyed WME satisfy the reader's constraints?

    ``False`` only on proof: class mismatch, a contradictory attribute
    pair, or (for closed make images) a reader constraint an absent
    attribute's ``nil`` cannot satisfy.
    """
    if image.class_name != reader_class:
        return False
    writer = image.constraint_map
    for attr, reader_conds in reader.items():
        writer_conds = writer.get(attr)
        if writer_conds is None:
            writer_conds = (("absent",),) if image.closed else (("unknown",),)
        if not constraints_satisfiable(list(writer_conds) + list(reader_conds)):
            return False
    return True


def footprint_classes(rules: Sequence[Rule]) -> Dict[str, FrozenSet[str]]:
    """rule name -> all classes it reads or writes (advisor's affinity input)."""
    out: Dict[str, FrozenSet[str]] = {}
    for rule in rules:
        fp = rule_footprint(rule)
        out[rule.name] = fp.classes_read | fp.classes_written
    return out
