"""Redaction-coverage: do the meta-rules arbitrate what the lint flags?

The porting lint (:mod:`repro.tools.lint`) finds *interference
candidates* — rule pairs whose firings may issue conflicting writes to
one WME. PARULEL's contract is that the programmer's meta-rules redact
such pairs before they fire. This checker closes the loop statically: it
reifies each candidate's two conflicting instantiations the same way
:func:`repro.core.redaction.reify_instantiation` would at runtime —
``rule`` / ``salience`` / ``specificity`` are known constants, ``id`` /
``recency`` / the rule's variables are unknown values, every other
attribute reads back as ``nil`` — and asks whether any meta-rule could
*redact a member of the pair*.

A meta-rule can redact candidate member *m* when the condition element
that binds its redacted ``^id`` variable may match *m*'s reified image
(:func:`~repro.analysis.footprint.may_overlap`, so unknowns are
satisfiable and only constant contradictions disprove). A candidate none
of the meta-rules can touch is **uncovered** — PA002, with the lint's
meta-rule skeleton attached as the fix hint.

Deliberately conservative in both directions the analysis can afford:

- ``remove/remove`` candidates are skipped — the delta merge treats a
  double remove as idempotent, so there is nothing to arbitrate;
- programs with *no* meta-rules are skipped — the lint's PA001 already
  says "candidates exist and no meta level is present"; coverage answers
  the sharper question "does the meta level you wrote actually reach
  every candidate";
- a redact whose target cannot be traced to one condition element (a
  computed id, a rebound variable) counts as able to reach anything.

The same image machinery powers PA006: a meta-rule whose ``instantiation``
CE names an unknown rule, or constrains attributes the named rule's
reifications can never carry, can never fire at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang.analysis import INSTANTIATION_CLASS
from repro.lang.ast import MetaRule, Program, RedactAction, Rule, VariableExpr
from repro.match.compile import CompiledCE, compile_rule
from repro.analysis.diagnostics import Diagnostic, diag
from repro.analysis.footprint import WriteImage, ce_constraints, may_overlap

__all__ = ["CoverageSummary", "check_redaction_coverage", "check_meta_rules", "victim_image"]


@dataclass(frozen=True)
class CoverageSummary:
    """Counts the text report and SARIF properties quote."""

    candidates: int
    checked: int
    covered: int
    uncovered: int
    skipped_remove_remove: int
    meta_rules: int

    @property
    def applicable(self) -> bool:
        """False when the program has no meta level to check."""
        return self.meta_rules > 0

    def as_properties(self) -> Dict[str, object]:
        return {
            "candidates": self.candidates,
            "checked": self.checked,
            "covered": self.covered,
            "uncovered": self.uncovered,
            "skippedRemoveRemove": self.skipped_remove_remove,
            "metaRules": self.meta_rules,
        }


def victim_image(rule: Rule) -> WriteImage:
    """The statically-known shape of any reified instantiation of ``rule``.

    A closed image: attributes beyond the builtins and the rule's bound
    variables are provably absent (``nil``) on every reification.
    """
    constraints: Dict[str, tuple] = {
        "rule": (("eq", rule.name),),
        "salience": (("eq", rule.salience),),
        "specificity": (("eq", rule.specificity),),
        "id": (("unknown",),),
        "recency": (("unknown",),),
    }
    for var in compile_rule(rule).variables:
        constraints[var] = (("unknown",),)
    return WriteImage(
        rule=rule.name,
        kind="make",
        class_name=INSTANTIATION_CLASS,
        constraints=tuple(sorted(constraints.items())),
        closed=True,
    )


def _victim_ces(meta: MetaRule) -> Optional[List[CompiledCE]]:
    """The CEs whose matched instantiation this meta-rule can redact.

    ``None`` means "cannot be traced — assume it reaches everything"
    (a computed redact id, or an id rebound on the RHS).
    """
    redact_vars: List[str] = []
    for action in meta.actions:
        if isinstance(action, RedactAction):
            if not isinstance(action.expr, VariableExpr):
                return None
            redact_vars.append(action.expr.name)
    if not redact_vars:
        return []
    compiled = compile_rule(meta)
    out: List[CompiledCE] = []
    for var in redact_vars:
        found = None
        for ce in compiled.ces:
            if ce.negated or ce.class_name != INSTANTIATION_CLASS:
                continue
            if ("id", var) in ce.bindings:
                found = ce
                break
        if found is None:
            return None  # id comes from somewhere we cannot see statically
        out.append(found)
    return out


def check_redaction_coverage(
    program: Program,
) -> Tuple[List[Diagnostic], CoverageSummary]:
    """PA002 diagnostics + the coverage summary for ``program``."""
    from repro.tools.lint import find_interference_candidates, meta_rule_skeleton

    candidates = find_interference_candidates(program)
    n_meta = len(program.meta_rules)
    skipped = sum(1 for c in candidates if c.kind == "remove/remove")
    if not candidates or n_meta == 0:
        return [], CoverageSummary(
            candidates=len(candidates),
            checked=0,
            covered=0,
            uncovered=0,
            skipped_remove_remove=skipped,
            meta_rules=n_meta,
        )

    # Victim CEs of every meta-rule, computed once. A None entry is a
    # wildcard: that meta-rule counts as covering every candidate.
    wildcard = False
    victim_ces: List[CompiledCE] = []
    for meta in program.meta_rules:
        ces = _victim_ces(meta)
        if ces is None:
            wildcard = True
            break
        victim_ces.extend(ces)

    images = {r.name: victim_image(r) for r in program.rules}
    diagnostics: List[Diagnostic] = []
    checked = covered = 0
    for cand in candidates:
        if cand.kind == "remove/remove":
            continue
        checked += 1
        if wildcard or any(
            may_overlap(images[member], ce_constraints(ce), INSTANTIATION_CLASS)
            for member in (cand.rule_a, cand.rule_b)
            for ce in victim_ces
        ):
            covered += 1
            continue
        diagnostics.append(
            diag(
                "PA002",
                f"no meta-rule can redact either side of: {cand.describe()}",
                rule=cand.rule_a,
                ce=cand.ce_a,
                hint=meta_rule_skeleton(program, cand),
            )
        )
    return diagnostics, CoverageSummary(
        candidates=len(candidates),
        checked=checked,
        covered=covered,
        uncovered=checked - covered,
        skipped_remove_remove=skipped,
        meta_rules=n_meta,
    )


def check_meta_rules(program: Program) -> List[Diagnostic]:
    """PA006: meta-rules whose ``instantiation`` patterns can never match.

    Two proofs of inapplicability, per positive ``instantiation`` CE that
    pins ``^rule`` to a constant:

    - the constant names no object rule in the program;
    - the CE's constant tests contradict every reification the named rule
      can produce (an attribute the rule never binds tested against a
      non-``nil`` constant, a wrong ``^salience`` / ``^specificity``, ...).
    """
    diagnostics: List[Diagnostic] = []
    rule_names = {r.name for r in program.rules}
    images = {r.name: victim_image(r) for r in program.rules}
    for meta in program.meta_rules:
        compiled = compile_rule(meta)
        for ce in compiled.ces:
            if ce.negated or ce.class_name != INSTANTIATION_CLASS:
                continue
            conds = ce_constraints(ce)
            rule_conds = conds.get("rule", ())
            pinned = [c[1] for c in rule_conds if c[0] == "eq"]
            if not pinned:
                continue
            target = pinned[0]
            if target not in rule_names:
                diagnostics.append(
                    diag(
                        "PA006",
                        f"meta-rule {meta.name!r} matches instantiations of "
                        f"{target!r}, but no such rule exists",
                        rule=meta.name,
                        ce=ce.index + 1,
                    )
                )
                continue
            if not may_overlap(images[target], conds, INSTANTIATION_CLASS):
                tested = ", ".join(sorted(conds))
                diagnostics.append(
                    diag(
                        "PA006",
                        f"meta-rule {meta.name!r} can never match an "
                        f"instantiation of {target!r}: its tests on "
                        f"{tested} contradict every reification that rule "
                        f"produces",
                        rule=meta.name,
                        ce=ce.index + 1,
                    )
                )
    return diagnostics
