"""Critical-pair commutativity analysis over rule pairs.

PR 3's footprints answer "may these rules touch the same WMEs?" — a
question almost every pair answers *yes* to, because it ignores the
test-level semantics that make most overlaps impossible or harmless.
This module asks the sharper CHR-confluence-style question: **do the two
firings commute?** For each unordered rule pair (including self-pairs —
two distinct instantiations of one rule) it produces one of three
verdicts:

``COMMUTES``
    proven for *all* working memories: either no interference channel
    between the pair is satisfiable (constant/membership/range tests
    make every overlap contradictory under unification), or every
    feasible channel falls to a symbolic discharge (below).
``RACES``
    refuted by a **concrete witness**: a constructed working memory on
    which both instantiations exist (verified by running the real naive
    matcher) and whose two firing orders produce different net WM
    effects under the sequential replay of
    :mod:`repro.core.sanitize`. Rendered as PA007/PA008 diagnostics.
``UNKNOWN``
    neither — the analysis is honest about its limits (PA009).

Interference channels
---------------------

Under sequential-replay semantics every interaction between two firings
reduces to two ordered channel kinds:

- **retract → positive CE**: one firing retracts (``remove`` target or
  ``modify`` target) a WME that may alias a positive CE of the other,
  invalidating its match. This subsumes all write/write conflicts:
  modify/modify, modify/remove and remove/remove on one WME all begin
  with a retraction of it.
- **assert → negated CE**: one firing's ``make`` image (or ``modify``
  post-image) may alias a negated CE of the other, disabling it.

Asserts cannot invalidate a positive match and retracts cannot newly
match a negation, so there is no third kind. Feasibility of a channel
is decided by unification: every attribute constraint of both rules'
condition elements (constants, membership domains, numeric ranges,
bound-variable equalities across CEs) is loaded into a union-find
solver, the channel's aliasing is asserted, and an unsatisfiable store
proves the channel impossible.

Symbolic discharges
-------------------

Three pair shapes commute for *all* valuations even with feasible
channels; each constrains the rules' entire WM effect, so they never
mix on one pair:

- **identical-make (D1)** — both rules are single-``make``-only, each
  make is *self-guarded* (it provably matches the rule's own negated
  CE, so the rule never re-derives an existing fact), and each feasible
  assert channel's unification forces the two makes content-identical.
  Then either order nets exactly one new WME with one skip — with or
  without make-dedup. This is the transitive-closure pattern.
- **pure-remove (D2)** — both rules are single-``remove``-only and
  every feasible retract channel lands on the *other rule's removal
  target*: both orders net the removal of the same WME set.
- **identical-modify (D3)** — both rules are single-``modify``-only
  with equal all-constant update maps, and every feasible retract
  channel links the two modify *targets*: both orders rewrite the
  shared WME to the same content.

Rules whose RHS uses ``(genatom)`` or ``(call ...)`` are never
classified COMMUTES or RACES — fresh symbols and host effects are
outside the WM-only verdict. Verdicts feed three consumers: PA007–PA009
diagnostics in ``parulel analyze``, ``races`` edges in the dependency
graph, and the engine's certified redaction fast path / runtime race
sanitizer via :class:`CommuteIndex`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.coverage import victim_image
from repro.analysis.diagnostics import Diagnostic, diag
from repro.analysis.footprint import ce_constraints, constraints_satisfiable, may_overlap
from repro.core.sanitize import PairReplayer, evaluate_delta_pure
from repro.lang.analysis import INSTANTIATION_CLASS
from repro.lang.ast import (
    BindAction,
    CallAction,
    ConstantExpr,
    GenatomExpr,
    MakeAction,
    MetaRule,
    ModifyAction,
    Program,
    RedactAction,
    RemoveAction,
    Rule,
    Value,
    VariableExpr,
    _format_value,
)
from repro.match.compile import CompiledCE, CompiledRule, compile_rule, value_predicate
from repro.match.interface import create_matcher
from repro.match.instantiation import Instantiation
from repro.wm.memory import WorkingMemory
from repro.wm.wme import NIL, WME

__all__ = [
    "Verdict",
    "PairVerdict",
    "CommuteSummary",
    "classify_rule_pair",
    "commute_matrix",
    "CommuteIndex",
]


class Verdict(enum.Enum):
    COMMUTES = "commutes"
    RACES = "races"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class PairVerdict:
    """The classification of one unordered rule pair."""

    rule_a: str
    rule_b: str
    verdict: Verdict
    #: Human explanation: the discharge that proved it, the channel the
    #: witness exercised, or why the analysis gave up.
    reason: str
    #: Diagnostic code for the renderers (PA007/PA008 races, PA009 unknown).
    code: Optional[str] = None
    #: Witness working memory, one ``(class ^attr value ...)`` line per WME
    #: (RACES only).
    witness: Tuple[str, ...] = ()

    @property
    def key(self) -> str:
        return f"{self.rule_a}|{self.rule_b}"


# ---------------------------------------------------------------------------
# Union-find constraint solver
# ---------------------------------------------------------------------------

#: Symbolic value terms: ``('const', v)``, ``('var', ns, name)`` (an LHS
#: variable of the a- or b-instantiation), ``('wmeattr', ns, ce, attr)``
#: (an attribute of the WME matched at a CE) or ``('any', ns, n)`` (a
#: statically-opaque RHS value, e.g. a compute result).
Term = Tuple


def _term_key(term: Term):
    """Solver node key for a non-constant term."""
    if term[0] == "var":
        return ("var", term[1], term[2])
    if term[0] == "wmeattr":
        return ("wme", term[1], term[2], term[3])
    return ("any", term[1], term[2])


class _Solver:
    """Union-find over value nodes with per-class constant/membership/range
    constraints; every mutation reports satisfiability so callers can stop
    at the first contradiction."""

    def __init__(self) -> None:
        self.parent: Dict[object, object] = {}
        self.const: Dict[object, Value] = {}
        self.domain: Dict[object, FrozenSet[Value]] = {}
        self.preds: Dict[object, List[Tuple[str, Value]]] = {}
        #: Best-effort disequalities: (key, other-key-or-('const', v)).
        self.neqs: List[Tuple[object, object]] = []

    def find(self, key):
        self.parent.setdefault(key, key)
        root = key
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[key] != root:
            self.parent[key], key = root, self.parent[key]
        return root

    def _ok(self, root) -> bool:
        conds: List[Tuple] = []
        if root in self.const:
            conds.append(("eq", self.const[root]))
        if root in self.domain:
            if not self.domain[root]:
                return False
            conds.append(("in", tuple(self.domain[root])))
        conds.extend(("pred", op, v) for op, v in self.preds.get(root, ()))
        return constraints_satisfiable(conds)

    def set_const(self, key, value: Value) -> bool:
        root = self.find(key)
        if root in self.const:
            return self.const[root] == value
        self.const[root] = value
        return self._ok(root)

    def restrict(self, key, alternatives: Sequence[Value]) -> bool:
        root = self.find(key)
        alts = frozenset(alternatives)
        self.domain[root] = (
            self.domain[root] & alts if root in self.domain else alts
        )
        return self._ok(root)

    def add_pred(self, key, op: str, value: Value) -> bool:
        root = self.find(key)
        self.preds.setdefault(root, []).append((op, value))
        return self._ok(root)

    def union(self, k1, k2) -> bool:
        r1, r2 = self.find(k1), self.find(k2)
        if r1 == r2:
            return True
        self.parent[r2] = r1
        if r2 in self.const:
            c2 = self.const.pop(r2)
            if r1 in self.const:
                if self.const[r1] != c2:
                    return False
            else:
                self.const[r1] = c2
        if r2 in self.domain:
            d2 = self.domain.pop(r2)
            self.domain[r1] = (
                self.domain[r1] & d2 if r1 in self.domain else d2
            )
        if r2 in self.preds:
            self.preds.setdefault(r1, []).extend(self.preds.pop(r2))
        return self._ok(r1)

    def unify_term(self, key, term: Term) -> bool:
        """Equate a node with a term (constant or another node)."""
        if term[0] == "const":
            return self.set_const(key, term[1])
        return self.union(key, _term_key(term))

    def canonical(self, term: Term):
        """Identity of a term under the store: a forced constant, or its
        union-find root. Equal canonicals == provably equal values."""
        if term[0] == "const":
            return ("const", term[1])
        root = self.find(_term_key(term))
        if root in self.const:
            return ("const", self.const[root])
        return ("root", root)


# ---------------------------------------------------------------------------
# Symbolic rule effects
# ---------------------------------------------------------------------------


@dataclass
class _SymbolicRule:
    """One rule's LHS/RHS lifted to terms, role-tagged with namespace
    ``'a'`` or ``'b'`` so a self-pair's two instantiations stay distinct."""

    rule: Rule
    compiled: CompiledRule
    ns: str
    #: (class, attr -> term) per make, in action order.
    makes: List[Tuple[str, Dict[str, Term]]] = field(default_factory=list)
    #: (0-based target CE, attr -> term updates) per modify.
    modifies: List[Tuple[int, Dict[str, Term]]] = field(default_factory=list)
    #: 0-based CE indices removed.
    removes: List[int] = field(default_factory=list)
    blocked: Optional[str] = None

    @property
    def retract_ces(self) -> List[Tuple[int, str]]:
        """(0-based CE, 'remove'|'modify') per retraction the RHS issues."""
        out = [(idx, "remove") for idx in self.removes]
        out.extend((idx, "modify") for idx, _u in self.modifies)
        return out

    @property
    def make_only(self) -> bool:
        return len(self.makes) == 1 and not self.modifies and not self.removes

    @property
    def remove_only(self) -> bool:
        return len(self.removes) == 1 and not self.makes and not self.modifies

    @property
    def modify_only(self) -> bool:
        return len(self.modifies) == 1 and not self.makes and not self.removes


def _lift_rule(rule: Rule, ns: str) -> _SymbolicRule:
    compiled = compile_rule(rule, plan=False)
    sym = _SymbolicRule(rule=rule, compiled=compiled, ns=ns)
    if isinstance(rule, MetaRule):
        sym.blocked = "meta-rules fire at the meta level, not in parallel"
        return sym
    local_env: Dict[str, Term] = {}
    any_n = 0

    def expr_term(expr) -> Optional[Term]:
        nonlocal any_n
        if isinstance(expr, ConstantExpr):
            return ("const", expr.value)
        if isinstance(expr, VariableExpr):
            if expr.name in local_env:
                return local_env[expr.name]
            return ("var", ns, expr.name)
        if isinstance(expr, GenatomExpr):
            return None
        any_n += 1
        return ("any", ns, any_n)

    for action in rule.actions:
        if isinstance(action, CallAction):
            sym.blocked = "RHS calls a host function (order-observable effects)"
            return sym
        if isinstance(action, RedactAction):
            sym.blocked = "RHS redacts (meta-level action)"
            return sym
        if isinstance(action, BindAction):
            term = expr_term(action.expr)
            if term is None:
                sym.blocked = "RHS uses (genatom) — fresh symbols defeat analysis"
                return sym
            local_env[action.name] = term
        elif isinstance(action, MakeAction):
            attrs: Dict[str, Term] = {}
            for attr, expr in action.assignments:
                term = expr_term(expr)
                if term is None:
                    sym.blocked = "RHS uses (genatom) — fresh symbols defeat analysis"
                    return sym
                attrs[attr] = term
            sym.makes.append((action.class_name, attrs))
        elif isinstance(action, ModifyAction):
            updates: Dict[str, Term] = {}
            for attr, expr in action.assignments:
                term = expr_term(expr)
                if term is None:
                    sym.blocked = "RHS uses (genatom) — fresh symbols defeat analysis"
                    return sym
                updates[attr] = term
            sym.modifies.append((action.ce_index - 1, updates))
        elif isinstance(action, RemoveAction):
            sym.removes.extend(idx - 1 for idx in action.ce_indices)
        # write/halt: WM-only verdicts ignore them; bind handled above.
    return sym


def _tested_attrs(ce: CompiledCE) -> Set[str]:
    """Attributes a CE constrains or binds (what a shared WME must carry)."""
    out: Set[str] = set()
    for cond in ce.alpha_conds:
        if cond[0] == "intra":
            out.add(cond[1])
            out.add(cond[3])
        else:
            out.add(cond[1])
    out.update(attr for attr, _v in ce.bindings)
    out.update(attr for attr, _op, _v in ce.join_tests)
    return out


def _assert_images(sym: _SymbolicRule) -> List[Tuple[str, Dict[str, Term], bool, str]]:
    """(class, attr->term, closed, kind) per assertion the RHS issues.

    Make images are closed (unassigned attributes are provably ``nil``);
    modify post-images carry the update terms plus, for every attribute
    the target CE constrains, the matched WME's attribute node — open
    elsewhere.
    """
    out: List[Tuple[str, Dict[str, Term], bool, str]] = []
    for class_name, attrs in sym.makes:
        out.append((class_name, dict(attrs), True, "make"))
    for target, updates in sym.modifies:
        ce = sym.compiled.ces[target]
        image: Dict[str, Term] = {
            attr: ("wmeattr", sym.ns, target, attr)
            for attr in _tested_attrs(ce)
        }
        image.update(updates)
        out.append((ce.class_name, image, False, "modify"))
    return out


# ---------------------------------------------------------------------------
# Channels
# ---------------------------------------------------------------------------


@dataclass
class _Channel:
    """One feasible ordered interference channel, with its solver."""

    kind: str  # 'retract' | 'assert'
    writer: _SymbolicRule
    reader: _SymbolicRule
    reader_ce: int  # 0-based
    solver: _Solver
    writer_ce: int = -1  # retract channels: the retracted CE (0-based)
    writer_kind: str = ""  # 'remove' | 'modify' | 'make'
    image: Optional[Tuple[str, Dict[str, Term], bool]] = None  # assert channels

    def describe(self) -> str:
        if self.kind == "retract":
            return (
                f"{self.writer_kind} of CE {self.writer_ce + 1} of "
                f"{self.writer.rule.name!r} may invalidate CE "
                f"{self.reader_ce + 1} of {self.reader.rule.name!r}"
            )
        return (
            f"{self.writer_kind}-asserted {self.image[0]!r} WME of "
            f"{self.writer.rule.name!r} may disable negated CE "
            f"{self.reader_ce + 1} of {self.reader.rule.name!r}"
        )


def _load_positive_ces(solver: _Solver, sym: _SymbolicRule) -> bool:
    """Assert every positive CE's attribute constraints into the store."""
    for ce in sym.compiled.ces:
        if ce.negated:
            continue
        for cond in ce.alpha_conds:
            if cond[0] == "const":
                _k, attr, op, value = cond
                node = ("wme", sym.ns, ce.index, attr)
                if op == "=":
                    if not solver.set_const(node, value):
                        return False
                elif op == "<>":
                    solver.neqs.append((node, ("const", value)))
                else:
                    if not solver.add_pred(node, op, value):
                        return False
            elif cond[0] == "in":
                _k, attr, alts = cond
                if not solver.restrict(("wme", sym.ns, ce.index, attr), alts):
                    return False
            else:  # intra
                _k, attr, op, other = cond
                if op == "=":
                    if not solver.union(
                        ("wme", sym.ns, ce.index, attr),
                        ("wme", sym.ns, ce.index, other),
                    ):
                        return False
                elif op == "<>":
                    solver.neqs.append(
                        (
                            ("wme", sym.ns, ce.index, attr),
                            ("wme", sym.ns, ce.index, other),
                        )
                    )
        for attr, var in ce.bindings:
            if not solver.union(("wme", sym.ns, ce.index, attr), ("var", sym.ns, var)):
                return False
        for attr, op, var in ce.join_tests:
            node = ("wme", sym.ns, ce.index, attr)
            if op == "=":
                if not solver.union(node, ("var", sym.ns, var)):
                    return False
            elif op == "<>":
                solver.neqs.append((node, ("var", sym.ns, var)))
            # other predicates: left unconstrained (the matcher verification
            # of the witness rejects any valuation that violates them).
    return True


def _base_solver(a: _SymbolicRule, b: _SymbolicRule) -> Optional[_Solver]:
    solver = _Solver()
    if not _load_positive_ces(solver, a):
        return None
    if not _load_positive_ces(solver, b):
        return None
    return solver


def _apply_retract_channel(
    solver: _Solver, writer: _SymbolicRule, w_ce: int, reader: _SymbolicRule, r_ce: int
) -> bool:
    """Alias the writer's retracted WME with the reader's positive CE."""
    attrs = _tested_attrs(writer.compiled.ces[w_ce]) | _tested_attrs(
        reader.compiled.ces[r_ce]
    )
    for attr in sorted(attrs):
        if not solver.union(
            ("wme", writer.ns, w_ce, attr), ("wme", reader.ns, r_ce, attr)
        ):
            return False
    return True


def _apply_assert_channel(
    solver: _Solver,
    writer: _SymbolicRule,
    image: Tuple[str, Dict[str, Term], bool],
    reader: _SymbolicRule,
    r_ce: int,
    img_id: int,
) -> bool:
    """Constrain the asserted image to match the reader's negated CE."""
    _class, attrs, closed = image
    ce = reader.compiled.ces[r_ce]

    def img_node(attr: str):
        node = ("img", writer.ns, img_id, attr)
        term = attrs.get(attr)
        if term is None:
            if closed:
                return node if solver.set_const(node, NIL) else None
            return node  # open image: unconstrained attribute
        return node if solver.unify_term(node, term) else None

    for cond in ce.alpha_conds:
        if cond[0] == "const":
            _k, attr, op, value = cond
            node = img_node(attr)
            if node is None:
                return False
            if op == "=":
                if not solver.set_const(node, value):
                    return False
            elif op == "<>":
                solver.neqs.append((node, ("const", value)))
            else:
                if not solver.add_pred(node, op, value):
                    return False
        elif cond[0] == "in":
            _k, attr, alts = cond
            node = img_node(attr)
            if node is None or not solver.restrict(node, alts):
                return False
        else:  # intra
            _k, attr, op, other = cond
            n1, n2 = img_node(attr), img_node(other)
            if n1 is None or n2 is None:
                return False
            if op == "=" and not solver.union(n1, n2):
                return False
    for attr, op, var in ce.join_tests:
        node = img_node(attr)
        if node is None:
            return False
        if op == "=":
            if not solver.union(node, ("var", reader.ns, var)):
                return False
        elif op == "<>":
            solver.neqs.append((node, ("var", reader.ns, var)))
    return True


def _enumerate_channels(a: _SymbolicRule, b: _SymbolicRule) -> List[_Channel]:
    """All feasible ordered channels between the pair, each with a fresh
    solver holding both instantiations' constraints plus the aliasing."""
    channels: List[_Channel] = []
    for writer, reader in ((a, b), (b, a)):
        for w_ce, w_kind in writer.retract_ces:
            w_class = writer.compiled.ces[w_ce].class_name
            for ce in reader.compiled.ces:
                if ce.negated or ce.class_name != w_class:
                    continue
                solver = _base_solver(a, b)
                if solver is None:
                    return []  # a CE is self-contradictory; PA004's business
                if _apply_retract_channel(solver, writer, w_ce, reader, ce.index):
                    channels.append(
                        _Channel(
                            kind="retract",
                            writer=writer,
                            reader=reader,
                            reader_ce=ce.index,
                            solver=solver,
                            writer_ce=w_ce,
                            writer_kind=w_kind,
                        )
                    )
        for img_id, (i_class, i_attrs, i_closed, i_kind) in enumerate(
            _assert_images(writer)
        ):
            for ce in reader.compiled.ces:
                if not ce.negated or ce.class_name != i_class:
                    continue
                solver = _base_solver(a, b)
                if solver is None:
                    return []
                if _apply_assert_channel(
                    solver, writer, (i_class, i_attrs, i_closed), reader, ce.index, img_id
                ):
                    channels.append(
                        _Channel(
                            kind="assert",
                            writer=writer,
                            reader=reader,
                            reader_ce=ce.index,
                            solver=solver,
                            writer_kind=i_kind,
                            image=(i_class, i_attrs, i_closed),
                        )
                    )
    return channels


# ---------------------------------------------------------------------------
# Symbolic discharges
# ---------------------------------------------------------------------------


def _self_guarded(sym: _SymbolicRule) -> bool:
    """Does the rule's (single) make provably match one of its own negated
    CEs in every firing? The guard pattern of closure rules: the rule
    never re-derives a fact that already exists."""
    class_name, attrs = sym.makes[0]
    for ce in sym.compiled.ces:
        if not ce.negated or ce.class_name != class_name:
            continue
        ok = True
        for cond in ce.alpha_conds:
            if cond[0] != "const" or cond[2] != "=":
                ok = False
                break
            _k, attr, _op, value = cond
            term = attrs.get(attr, ("const", NIL))
            if term != ("const", value):
                ok = False
                break
        if not ok:
            continue
        for attr, op, var in ce.join_tests:
            if op != "=" or attrs.get(attr, ("const", NIL)) != ("var", sym.ns, var):
                ok = False
                break
        if ok:
            return True
    return False


def _discharge(a: _SymbolicRule, b: _SymbolicRule, channels: List[_Channel]) -> Optional[str]:
    """Try to prove every feasible channel harmless for all valuations.
    Returns the discharge name, or ``None`` when any channel resists."""
    if a.make_only and b.make_only:
        # D1: identical-make. All channels are assert→negCE (make-only rules
        # retract nothing); each must force the two makes content-identical,
        # and both makes must be self-guarded so the second order skips too.
        if not (_self_guarded(a) and _self_guarded(b)):
            return None
        ca, aa = a.makes[0]
        cb, ab = b.makes[0]
        if ca != cb or sorted(aa) != sorted(ab):
            return None
        for ch in channels:
            solver = ch.solver
            if any(
                solver.canonical(aa[attr]) != solver.canonical(ab[attr])
                for attr in aa
            ):
                return None
        return "identical-make discharge (self-guarded single makes unify)"
    if a.remove_only and b.remove_only:
        # D2: pure-remove. Every feasible retract channel must land on the
        # other rule's own removal target, so both orders net the same
        # removal set whether or not the targets alias.
        if all(
            ch.kind == "retract" and ch.reader_ce == ch.reader.removes[0]
            for ch in channels
        ):
            return "pure-remove discharge (removals target the aliased WME)"
        return None
    if a.modify_only and b.modify_only:
        # D3: identical-modify. Equal all-constant updates on the aliased
        # target: both orders rewrite it to the same content.
        ta, ua = a.modifies[0]
        tb, ub = b.modifies[0]
        if ua != ub or any(t[0] != "const" for t in ua.values()):
            return None
        if all(
            ch.kind == "retract"
            and ch.reader_ce == ch.reader.modifies[0][0]
            and ch.writer_ce == ch.writer.modifies[0][0]
            for ch in channels
        ):
            return "identical-modify discharge (equal constant updates)"
        return None
    return None


# ---------------------------------------------------------------------------
# Witness construction
# ---------------------------------------------------------------------------


class _WitnessFailure(Exception):
    """Internal: this channel admits no constructible witness."""


class _Valuation:
    """Assign concrete values to solver roots, preferring globally-distinct
    ones so unconstrained nodes do not alias by accident."""

    def __init__(self, solver: _Solver) -> None:
        self.solver = solver
        self.values: Dict[object, Value] = {}
        self.used: Set[Value] = set()
        self._fresh = 0

    def _avoid(self, root) -> Set[Value]:
        out: Set[Value] = set()
        for k1, k2 in self.solver.neqs:
            for mine, other in ((k1, k2), (k2, k1)):
                if mine[0] == "const":
                    continue
                if self.solver.find(mine) != root:
                    continue
                if other[0] == "const":
                    out.add(other[1])
                else:
                    o_root = self.solver.find(other)
                    if o_root in self.values:
                        out.add(self.values[o_root])
                    elif o_root in self.solver.const:
                        out.add(self.solver.const[o_root])
        return out

    def value_of(self, key) -> Value:
        root = self.solver.find(key)
        if root in self.values:
            return self.values[root]
        value = self._choose(root)
        self.values[root] = value
        self.used.add(value)
        return value

    def _choose(self, root) -> Value:
        solver = self.solver
        if root in solver.const:
            return solver.const[root]
        preds = solver.preds.get(root, [])
        avoid = self._avoid(root)
        if root in solver.domain:
            members = sorted(solver.domain[root], key=repr)
            ok = [
                v
                for v in members
                if all(value_predicate(op, v, c) for op, c in preds)
                and v not in avoid
            ]
            for v in ok:
                if v not in self.used:
                    return v
            if ok:
                return ok[0]
            raise _WitnessFailure(f"empty value domain at {root!r}")
        if preds:
            anchors = [c for _op, c in preds if isinstance(c, (int, float))]
            if len(anchors) != len(preds):
                raise _WitnessFailure(f"non-numeric range at {root!r}")
            candidates = sorted(
                {x for c in anchors for x in (c - 1, c, c + 1)} | {0}
            )
            for v in candidates:
                if v in avoid:
                    continue
                if all(value_predicate(op, v, c) for op, c in preds):
                    if v not in self.used:
                        return v
            for v in candidates:
                if v not in avoid and all(
                    value_predicate(op, v, c) for op, c in preds
                ):
                    return v
            raise _WitnessFailure(f"unsatisfiable numeric range at {root!r}")
        while True:
            self._fresh += 1
            v = f"w{self._fresh}"
            if v not in self.used and v not in avoid:
                return v


def _witness_wm(
    a: _SymbolicRule, b: _SymbolicRule, channel: _Channel
) -> Tuple[WorkingMemory, Dict[Tuple[str, int], WME]]:
    """Build a concrete WM realizing this channel's aliasing: one WME per
    positive CE of each instantiation, the aliased pair sharing one."""
    shared: Dict[Tuple[str, int], Tuple[str, int]] = {}
    if channel.kind == "retract":
        shared[(channel.reader.ns, channel.reader_ce)] = (
            channel.writer.ns,
            channel.writer_ce,
        )
    valuation = _Valuation(channel.solver)
    wm = WorkingMemory()
    by_slot: Dict[Tuple[str, int], WME] = {}
    for sym in (a, b):
        for ce in sym.compiled.ces:
            if ce.negated:
                continue
            slot = (sym.ns, ce.index)
            target = shared.get(slot)
            if target is not None and target in by_slot:
                by_slot[slot] = by_slot[target]
                continue
            attr_keys: Dict[str, object] = {
                attr: ("wme", sym.ns, ce.index, attr)
                for attr in _tested_attrs(ce)
            }
            if target is not None:
                # The shared WME must satisfy both CEs' constraints; the
                # solver already unified common attributes.
                other = channel.writer if sym.ns == channel.reader.ns else channel.reader
                for attr in _tested_attrs(other.compiled.ces[target[1]]):
                    attr_keys.setdefault(attr, ("wme", target[0], target[1], attr))
            attrs = {
                attr: valuation.value_of(key)
                for attr, key in sorted(attr_keys.items())
            }
            wme = wm.make(ce.class_name, attrs)
            by_slot[slot] = wme
            if target is not None:
                by_slot[target] = wme
    return wm, by_slot


def _expected_wmes(
    sym: _SymbolicRule, by_slot: Dict[Tuple[str, int], WME]
) -> Tuple[Optional[WME], ...]:
    return tuple(
        None if ce.negated else by_slot[(sym.ns, ce.index)]
        for ce in sym.compiled.ces
    )


def _find_instantiation(
    insts: Sequence[Instantiation], rule_name: str, wmes: Tuple[Optional[WME], ...]
) -> Optional[Instantiation]:
    for inst in insts:
        if inst.rule.name == rule_name and inst.wmes == wmes:
            return inst
    return None


def _render_wm(wm: WorkingMemory) -> Tuple[str, ...]:
    lines = []
    for wme in sorted(wm, key=lambda w: w.timestamp):
        attrs = " ".join(
            f"^{attr} {_format_value(value)}"
            for attr, value in sorted(wme.attributes.items())
        )
        lines.append(f"({wme.class_name} {attrs})" if attrs else f"({wme.class_name})")
    return tuple(lines)


def _try_witness(
    a: _SymbolicRule, b: _SymbolicRule, channel: _Channel
) -> Tuple[Optional[PairVerdict], str]:
    """Attempt to refute commutation on this channel. Returns (verdict,
    reason): a RACES verdict, or ``None`` with why this channel failed to
    produce one."""
    try:
        wm, by_slot = _witness_wm(a, b, channel)
    except _WitnessFailure as exc:
        return None, f"could not construct a witness ({exc})"
    rules = [a.rule] if a.rule is b.rule else [a.rule, b.rule]
    matcher = create_matcher("naive", rules, wm)
    try:
        insts = matcher.instantiations()
    finally:
        matcher.detach()
    exp_a = _expected_wmes(a, by_slot)
    exp_b = _expected_wmes(b, by_slot)
    if a.rule is b.rule and exp_a == exp_b:
        return None, "witness collapses the self-pair to one instantiation"
    inst_a = _find_instantiation(insts, a.rule.name, exp_a)
    inst_b = _find_instantiation(insts, b.rule.name, exp_b)
    if inst_a is None or inst_b is None:
        return None, "could not construct a witness (valuation fails the matcher)"
    da = evaluate_delta_pure(inst_a)
    db = evaluate_delta_pure(inst_b)
    if da is None or db is None:
        return None, "witness RHS not evaluable without engine state"
    replayer = PairReplayer(dedupe_makes=True)
    if replayer.replay((da, db)) == replayer.replay((db, da)):
        return None, "witness commutes; no proof for all valuations"
    writes_back = channel.kind == "retract" and any(
        ce_idx == channel.reader_ce for ce_idx, _kind in channel.reader.retract_ces
    )
    code = "PA007" if writes_back else "PA008"
    return (
        PairVerdict(
            rule_a=a.rule.name,
            rule_b=b.rule.name,
            verdict=Verdict.RACES,
            reason=f"firing orders diverge: {channel.describe()}",
            code=code,
            witness=_render_wm(wm),
        ),
        "",
    )


# ---------------------------------------------------------------------------
# Pair classification
# ---------------------------------------------------------------------------


def classify_rule_pair(rule_a: Rule, rule_b: Rule) -> PairVerdict:
    """Classify one unordered rule pair (pass the same rule twice for the
    self-pair: two distinct simultaneous instantiations of it)."""
    a = _lift_rule(rule_a, "a")
    b = _lift_rule(rule_b, "b")
    for sym in (a, b):
        if sym.blocked:
            return PairVerdict(
                rule_a=rule_a.name,
                rule_b=rule_b.name,
                verdict=Verdict.UNKNOWN,
                reason=f"{sym.rule.name!r}: {sym.blocked}",
                code="PA009",
            )
    channels = _enumerate_channels(a, b)
    if not channels:
        return PairVerdict(
            rule_a=rule_a.name,
            rule_b=rule_b.name,
            verdict=Verdict.COMMUTES,
            reason="no feasible interference channel",
        )
    discharged = _discharge(a, b, channels)
    if discharged is not None:
        return PairVerdict(
            rule_a=rule_a.name,
            rule_b=rule_b.name,
            verdict=Verdict.COMMUTES,
            reason=discharged,
        )
    failure = "undischarged channel"
    for channel in channels:
        verdict, why = _try_witness(a, b, channel)
        if verdict is not None:
            return verdict
        failure = why
    return PairVerdict(
        rule_a=rule_a.name,
        rule_b=rule_b.name,
        verdict=Verdict.UNKNOWN,
        reason=f"{channels[0].describe()}; {failure}",
        code="PA009",
    )


# ---------------------------------------------------------------------------
# Whole-program matrix
# ---------------------------------------------------------------------------


@dataclass
class CommuteSummary:
    """Verdicts for every unordered object-rule pair of one program."""

    name: str
    pairs: List[PairVerdict]

    @property
    def counts(self) -> Dict[str, int]:
        out = {v.value: 0 for v in Verdict}
        for pair in self.pairs:
            out[pair.verdict.value] += 1
        return out

    def of_verdict(self, verdict: Verdict) -> List[PairVerdict]:
        return [p for p in self.pairs if p.verdict == verdict]

    def commuting_names(self) -> Set[FrozenSet[str]]:
        """Unordered name pairs proven COMMUTES (the fast path's input)."""
        return {
            frozenset((p.rule_a, p.rule_b))
            for p in self.pairs
            if p.verdict == Verdict.COMMUTES
        }

    def verdict_map(self) -> Dict[str, str]:
        """``"a|b" -> "commutes"/"races"/"unknown"`` — the golden-file shape."""
        return {p.key: p.verdict.value for p in self.pairs}

    def diagnostics(self) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for pair in self.pairs:
            if pair.verdict == Verdict.RACES:
                hint = None
                if pair.witness:
                    hint = "witness working memory:\n" + "\n".join(
                        f"  {line}" for line in pair.witness
                    )
                out.append(
                    diag(
                        pair.code or "PA007",
                        f"rules {pair.rule_a!r} and {pair.rule_b!r} do not "
                        f"commute: {pair.reason}",
                        rule=pair.rule_a,
                        hint=hint,
                    )
                )
            elif pair.verdict == Verdict.UNKNOWN:
                out.append(
                    diag(
                        "PA009",
                        f"cannot classify rules {pair.rule_a!r} and "
                        f"{pair.rule_b!r}: {pair.reason}",
                        rule=pair.rule_a,
                    )
                )
        return out

    def as_properties(self) -> Dict[str, object]:
        return {
            "pairs": len(self.pairs),
            **{k: v for k, v in sorted(self.counts.items())},
        }


def commute_matrix(program: Program, name: str = "<program>") -> CommuteSummary:
    """Classify every unordered pair of the program's object rules
    (self-pairs included)."""
    rules = program.rules
    pairs: List[PairVerdict] = []
    for i, rule_a in enumerate(rules):
        for rule_b in rules[i:]:
            pairs.append(classify_rule_pair(rule_a, rule_b))
    return CommuteSummary(name=name, pairs=pairs)


# ---------------------------------------------------------------------------
# Runtime facade
# ---------------------------------------------------------------------------


class CommuteIndex:
    """What the engine needs at runtime, precomputed once per program:
    which rule pairs are statically COMMUTES, and which rules are
    *invisible* to the meta level (no instantiation-class CE of any
    meta-rule can match their reifications — trivially all of them when
    the program has no meta-rules). Skipping the reification of an
    invisible rule's candidate cannot change any meta-level match."""

    def __init__(self, program: Program) -> None:
        self.summary = commute_matrix(program)
        self._commutes = self.summary.commuting_names()
        self._invisible: Dict[str, bool] = {}
        meta_ces: List[CompiledCE] = []
        for meta in program.meta_rules:
            meta_ces.extend(
                ce
                for ce in compile_rule(meta, plan=False).ces
                if ce.class_name == INSTANTIATION_CLASS
            )
        for rule in program.rules:
            image = victim_image(rule)
            self._invisible[rule.name] = not any(
                may_overlap(image, ce_constraints(ce), INSTANTIATION_CLASS)
                for ce in meta_ces
            )

    def statically_commutes(self, name_a: str, name_b: str) -> bool:
        return frozenset((name_a, name_b)) in self._commutes

    def invisible(self, rule_name: str) -> bool:
        return self._invisible.get(rule_name, False)


# ---------------------------------------------------------------------------
# Golden-verdict gate (python -m repro.analysis.commute)
# ---------------------------------------------------------------------------


def _golden_path():
    import pathlib

    return (
        pathlib.Path(__file__).resolve().parents[3]
        / "benchmarks"
        / "results"
        / "COMMUTE_verdicts.json"
    )


def _registry_document() -> Dict[str, Dict[str, object]]:
    from repro.programs import REGISTRY

    doc: Dict[str, Dict[str, object]] = {}
    for workload_name in sorted(REGISTRY):
        workload = REGISTRY[workload_name]()
        summary = commute_matrix(workload.program, name=workload_name)
        doc[workload_name] = {
            "counts": summary.counts,
            "pairs": summary.verdict_map(),
        }
    return doc


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.commute",
        description="race-detector verdicts for every bundled workload, "
        "gated against the checked-in golden file",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check",
        action="store_true",
        help="recompute verdicts and fail on any drift from the golden file",
    )
    mode.add_argument(
        "--write",
        action="store_true",
        help="rewrite the golden file from the current analysis",
    )
    args = parser.parse_args(argv)

    path = _golden_path()
    doc = _registry_document()
    if args.write:
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
        return 0

    if not path.exists():
        print(f"golden verdict file missing: {path}")
        print("generate it with: python -m repro.analysis.commute --write")
        return 1
    golden = json.loads(path.read_text())
    failed = False
    for workload_name in sorted(set(doc) | set(golden)):
        want = golden.get(workload_name, {}).get("pairs", {})
        got = doc.get(workload_name, {}).get("pairs", {})
        drift = {
            key: (want.get(key, "<absent>"), got.get(key, "<absent>"))
            for key in set(want) | set(got)
            if want.get(key) != got.get(key)
        }
        if drift:
            failed = True
            print(f"commute {workload_name}: {len(drift)} verdict(s) drifted:")
            for key in sorted(drift):
                old, new = drift[key]
                print(f"  {key}: {old} -> {new}")
        else:
            counts = doc[workload_name]["counts"]
            print(
                f"commute {workload_name}: {counts['commutes']} commute, "
                f"{counts['races']} race, {counts['unknown']} unknown — OK"
            )
    if failed:
        print(
            "verdicts drifted; if intentional, refresh with: "
            "python -m repro.analysis.commute --write"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
