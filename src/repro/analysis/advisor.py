"""Analysis-driven rule partitioning: cut the dependency structure, not
the rule list.

Round-robin assignment scatters related rules across sites, so on a
distributed machine almost every site ends up *interested* in almost
every class — each cycle's delta must be shipped nearly everywhere. The
advisor instead treats each WME class as a hyperedge over the rules that
read or write it and minimizes **connectivity**::

    cost(partition) = Σ_class  w(class) · (blocks touching class − 1)

— exactly the number of extra block-copies of each class's delta traffic
a multicast scatter pays. ``w(class)`` defaults to ``1 + #writers``:
classes more rules write produce proportionally more delta entries.

The algorithm is a deterministic two-phase heuristic (balanced min-cut is
NP-hard; this is the classic greedy-growth + local-refinement shape):

1. **Greedy growth** — place rules one by one (heaviest first) on the
   site sharing the most class weight with them, under a balance cap of
   ``total/k · (1 + slack)``;
2. **Refinement** — repeated single-rule moves, steepest connectivity
   descent first, accepting only moves that keep the cap. Terminates
   because the integer cost strictly decreases.

Refinement is run from both the greedy seed and a round-robin seed and
the cheaper result wins, so the advisor is never worse than round-robin
under its own objective.

Per-rule weights default to 1.0 (balance by rule count); pass the output
of :func:`repro.parallel.partition.profile_rule_weights` to balance by
measured match work instead. The result plugs into the same
:class:`~repro.parallel.partition.Assignment` slot the round-robin and
LPT policies fill — ``assignment="analysis"`` on
:class:`~repro.parallel.distributed.DistributedMachine` and
:class:`~repro.parallel.process.ProcessMatchPool` resolves to this.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set

from repro.lang.ast import Rule
from repro.parallel.partition import Assignment
from repro.analysis.footprint import rule_footprint

__all__ = ["analysis_assignment", "connectivity_cost", "class_weights"]


def class_weights(rules: Sequence[Rule]) -> Dict[str, float]:
    """class -> delta-traffic proxy weight (1 + number of writing rules)."""
    writers: Dict[str, int] = {}
    for rule in rules:
        for cls in rule_footprint(rule).classes_written:
            writers[cls] = writers.get(cls, 0) + 1
    classes: Set[str] = set(writers)
    for rule in rules:
        classes |= rule_footprint(rule).classes_read
    return {cls: 1.0 + writers.get(cls, 0) for cls in sorted(classes)}


def _touch_counts(
    site_of: Mapping[str, int],
    classes_of: Mapping[str, FrozenSet[str]],
    n_sites: int,
) -> Dict[str, List[int]]:
    """class -> per-site count of rules touching it."""
    counts: Dict[str, List[int]] = {}
    for name, site in site_of.items():
        for cls in classes_of[name]:
            counts.setdefault(cls, [0] * n_sites)[site] += 1
    return counts


def connectivity_cost(
    assignment: Assignment,
    rules: Sequence[Rule],
    weights: Optional[Mapping[str, float]] = None,
) -> float:
    """The advisor's objective for any assignment (lower is better)."""
    classes_of = {r.name: _touched(r) for r in rules}
    w = weights or class_weights(rules)
    counts = _touch_counts(assignment.site_of, classes_of, assignment.n_sites)
    return sum(
        w.get(cls, 1.0) * (sum(1 for c in per_site if c) - 1)
        for cls, per_site in counts.items()
    )


def _touched(rule: Rule) -> FrozenSet[str]:
    fp = rule_footprint(rule)
    return fp.classes_read | fp.classes_written


def analysis_assignment(
    rules: Sequence[Rule],
    n_sites: int,
    weights: Optional[Mapping[str, float]] = None,
    balance_slack: float = 0.25,
    max_passes: int = 20,
) -> Assignment:
    """Partition ``rules`` into ``n_sites`` blocks minimizing connectivity.

    ``weights`` are per-*rule* load weights (default 1.0 each); the
    balance cap is ``total_weight / n_sites * (1 + balance_slack)``,
    relaxed when a rule would not fit anywhere.
    """
    if n_sites < 1:
        raise ValueError("need at least one site")
    rules = list(rules)
    if not rules:
        return Assignment(n_sites=n_sites, site_of={})
    rule_w = {r.name: max(float((weights or {}).get(r.name, 1.0)), 0.0) for r in rules}
    classes_of = {r.name: _touched(r) for r in rules}
    cls_w = class_weights(rules)
    total = sum(rule_w.values())
    cap = max(total / n_sites * (1.0 + balance_slack), max(rule_w.values()))

    # -- phase 1: greedy growth (heaviest, most-connected rules first) ------
    order = sorted(
        (r.name for r in rules),
        key=lambda n: (
            -rule_w[n],
            -sum(cls_w[c] for c in classes_of[n]),
            n,
        ),
    )
    greedy: Dict[str, int] = {}
    load = [0.0] * n_sites
    site_classes: List[Set[str]] = [set() for _ in range(n_sites)]
    for name in order:
        best, best_key = 0, None
        for s in range(n_sites):
            if load[s] + rule_w[name] > cap and any(
                load[t] + rule_w[name] <= cap for t in range(n_sites)
            ):
                continue
            gain = sum(cls_w[c] for c in classes_of[name] & site_classes[s])
            key = (gain, -load[s], -s)
            if best_key is None or key > best_key:
                best, best_key = s, key
        greedy[name] = best
        load[best] += rule_w[name]
        site_classes[best] |= classes_of[name]

    def cost(site_of: Dict[str, int]) -> float:
        counts = _touch_counts(site_of, classes_of, n_sites)
        return sum(
            cls_w[cls] * (sum(1 for c in per_site if c) - 1)
            for cls, per_site in counts.items()
        )

    # -- phase 2: steepest-descent refinement -------------------------------
    def refine(start: Dict[str, int]) -> Dict[str, int]:
        site_of = dict(start)
        load = [0.0] * n_sites
        for name, site in site_of.items():
            load[site] += rule_w[name]
        # A seed may already exceed the cap (e.g. round-robin with skewed
        # rule weights); never demand better balance than the seed has.
        local_cap = max(cap, max(load))
        counts = _touch_counts(site_of, classes_of, n_sites)

        def move_delta(name: str, dst: int) -> float:
            """Connectivity change if ``name`` moves to ``dst`` (negative
            is an improvement)."""
            src = site_of[name]
            delta = 0.0
            for cls in classes_of[name]:
                per_site = counts[cls]
                if per_site[src] == 1:
                    delta -= cls_w[cls]  # src stops touching cls
                if per_site[dst] == 0:
                    delta += cls_w[cls]  # dst starts touching cls
            return delta

        for _ in range(max_passes):
            best_move = None  # (delta, name, dst) — most negative wins
            for rule in rules:
                name = rule.name
                src = site_of[name]
                for dst in range(n_sites):
                    if dst == src or load[dst] + rule_w[name] > local_cap:
                        continue
                    delta = move_delta(name, dst)
                    key = (delta, name, dst)
                    if delta < 0 and (best_move is None or key < best_move):
                        best_move = key
            if best_move is None:
                break
            _delta, name, dst = best_move
            src = site_of[name]
            site_of[name] = dst
            load[src] -= rule_w[name]
            load[dst] += rule_w[name]
            for cls in classes_of[name]:
                counts[cls][src] -= 1
                counts[cls][dst] += 1
        return site_of

    round_robin = {r.name: i % n_sites for i, r in enumerate(rules)}
    # Refine both seeds; ties go to the greedy seed for stability.
    best = min((refine(greedy), refine(round_robin)), key=cost)
    return Assignment(n_sites=n_sites, site_of=best)
