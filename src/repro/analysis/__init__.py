"""Whole-program static analysis for PARULEL rule programs.

Where :mod:`repro.lang.analysis` answers "is this program well-formed?",
this package answers "is this program *correct and schedulable* under
set-oriented parallel firing?" — the questions the paper's porting
workflow and the distributed backends need decided before a run:

- :mod:`repro.analysis.depgraph` — the rule dependency graph
  (enables / inhibits / conflicts edges over read/write footprints),
  SCCs, and stratification;
- :mod:`repro.analysis.coverage` — do the redaction meta-rules reach
  every interference candidate the lint reports?
- :mod:`repro.analysis.deadcode` — rules that can never fire,
  condition elements that can never match;
- :mod:`repro.analysis.advisor` — an analysis-driven rule partition
  that the distributed/process backends accept as
  ``assignment="analysis"``;
- :mod:`repro.analysis.diagnostics` — the shared ``PAxxx`` diagnostic
  vocabulary with text and SARIF-shaped JSON renderers.

:func:`analyze` runs every check and returns an :class:`AnalysisReport`;
``parulel analyze`` is its CLI face and ``scripts/check.sh`` gates on
its error-severity findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.lang.ast import Program

from repro.analysis.advisor import analysis_assignment, connectivity_cost
from repro.analysis.coverage import (
    CoverageSummary,
    check_meta_rules,
    check_redaction_coverage,
)
from repro.analysis.deadcode import check_dead_rules, check_unsatisfiable_ces
from repro.analysis.depgraph import DepEdge, DependencyGraph, build_dependency_graph
from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    diag,
    render_sarif,
    render_text,
    worst_severity,
)

__all__ = [
    "AnalysisReport",
    "analyze",
    "analysis_assignment",
    "connectivity_cost",
    "build_dependency_graph",
    "DependencyGraph",
    "DepEdge",
    "CoverageSummary",
    "Diagnostic",
    "Severity",
    "CODES",
    "diag",
    "render_text",
    "render_sarif",
    "worst_severity",
]


@dataclass
class AnalysisReport:
    """Everything one :func:`analyze` run found."""

    name: str
    graph: DependencyGraph
    coverage: CoverageSummary
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Whether the dead-rule check ran (it needs seed classes).
    dead_rules_checked: bool = False

    @property
    def worst(self) -> Optional[Severity]:
        return worst_severity(self.diagnostics)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def properties(self) -> Dict[str, object]:
        """The summary bag the SARIF run carries."""
        props: Dict[str, object] = {"program": self.name}
        props["graph"] = self.graph.stats()
        props["coverage"] = self.coverage.as_properties()
        props["deadRulesChecked"] = self.dead_rules_checked
        props["diagnostics"] = len(self.diagnostics)
        return props

    def render_text(self, show_hints: bool = True) -> str:
        """The human report ``parulel analyze`` prints for one program."""
        g = self.graph.stats()
        lines = [
            f"== {self.name}",
            f"dependency graph: {g['rules']} rule(s), {g['edges']} edge(s) "
            f"({g['enables']} enables, {g['inhibits']} inhibits, "
            f"{g['conflicts']} conflicts)",
            f"cycles: {g['cyclicSccs']} cyclic SCC(s) "
            f"(largest {g['largestScc']} rule(s))",
        ]
        strata = self.graph.strata()
        rendered = "; ".join(
            f"{i}: {', '.join(layer)}" for i, layer in enumerate(strata)
        )
        lines.append(
            f"stratification: {len(strata)} stratum/strata"
            + (f" [{rendered}]" if rendered else "")
            + ("" if g["stratified"] else " — NOT stratified")
        )
        cov = self.coverage
        if cov.applicable:
            lines.append(
                f"redaction coverage: {cov.covered}/{cov.checked} candidate(s) "
                f"covered by {cov.meta_rules} meta-rule(s)"
                + (
                    f", {cov.skipped_remove_remove} benign remove/remove "
                    f"pair(s) skipped"
                    if cov.skipped_remove_remove
                    else ""
                )
            )
        elif cov.candidates:
            lines.append(
                f"redaction coverage: n/a — {cov.candidates} candidate(s) "
                f"but no meta level (see PA001)"
            )
        else:
            lines.append("redaction coverage: n/a — no interference candidates")
        lines.append(
            "dead rules: "
            + ("checked against seed classes" if self.dead_rules_checked else "not checked (no facts given)")
        )
        if self.diagnostics:
            lines.append(f"{len(self.diagnostics)} finding(s):")
            lines.append(render_text(self.diagnostics, show_hints=show_hints))
        else:
            lines.append("no findings")
        return "\n".join(lines)


def analyze(
    program: Program,
    seed_classes: Optional[Iterable[str]] = None,
    name: str = "<program>",
    include_lint: bool = True,
) -> AnalysisReport:
    """Run every static check over ``program``.

    ``seed_classes`` — classes the initial facts load; enables the
    dead-rule check. ``include_lint=False`` drops the PA001 interference
    candidates from the findings (``parulel lint`` already reports them;
    the registry gate keeps them on).
    """
    from repro.tools.lint import lint_diagnostics

    graph = build_dependency_graph(program)
    diagnostics: List[Diagnostic] = []
    if include_lint:
        diagnostics.extend(lint_diagnostics(program))
    cov_diags, coverage = check_redaction_coverage(program)
    diagnostics.extend(cov_diags)
    diagnostics.extend(check_unsatisfiable_ces(program))
    diagnostics.extend(check_dead_rules(program, seed_classes))
    diagnostics.extend(check_meta_rules(program))
    for edge in graph.unstratified_inhibits():
        diagnostics.append(
            diag(
                "PA005",
                f"writes of {edge.src!r} can invalidate matches of "
                f"{edge.dst!r} on class {edge.class_name!r} inside a rule "
                f"cycle — firing order across cycles is significant",
                rule=edge.src,
            )
        )
    return AnalysisReport(
        name=name,
        graph=graph,
        coverage=coverage,
        diagnostics=diagnostics,
        dead_rules_checked=seed_classes is not None,
    )
