"""Whole-program static analysis for PARULEL rule programs.

Where :mod:`repro.lang.analysis` answers "is this program well-formed?",
this package answers "is this program *correct and schedulable* under
set-oriented parallel firing?" — the questions the paper's porting
workflow and the distributed backends need decided before a run:

- :mod:`repro.analysis.depgraph` — the rule dependency graph
  (enables / inhibits / conflicts edges over read/write footprints),
  SCCs, and stratification;
- :mod:`repro.analysis.coverage` — do the redaction meta-rules reach
  every interference candidate the lint reports?
- :mod:`repro.analysis.deadcode` — rules that can never fire,
  condition elements that can never match;
- :mod:`repro.analysis.advisor` — an analysis-driven rule partition
  that the distributed/process backends accept as
  ``assignment="analysis"``;
- :mod:`repro.analysis.commute` — the critical-pair race detector:
  COMMUTES / RACES (with concrete witness WMs) / UNKNOWN verdicts per
  rule pair, feeding PA007–PA009 diagnostics, ``races`` edges in the
  dependency graph, and the engine's certified redaction fast path;
- :mod:`repro.analysis.diagnostics` — the shared ``PAxxx`` diagnostic
  vocabulary with text and SARIF-shaped JSON renderers.

:func:`analyze` runs every check and returns an :class:`AnalysisReport`;
``parulel analyze`` is its CLI face and ``scripts/check.sh`` gates on
its error-severity findings.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.lang.ast import Program

from repro.analysis.advisor import analysis_assignment, connectivity_cost
from repro.analysis.commute import (
    CommuteIndex,
    CommuteSummary,
    PairVerdict,
    Verdict,
    classify_rule_pair,
    commute_matrix,
)
from repro.analysis.coverage import (
    CoverageSummary,
    check_meta_rules,
    check_redaction_coverage,
)
from repro.analysis.deadcode import check_dead_rules, check_unsatisfiable_ces
from repro.analysis.depgraph import DepEdge, DependencyGraph, build_dependency_graph
from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    diag,
    render_sarif,
    render_text,
    worst_severity,
)

__all__ = [
    "AnalysisReport",
    "analyze",
    "analysis_assignment",
    "connectivity_cost",
    "CommuteIndex",
    "CommuteSummary",
    "PairVerdict",
    "Verdict",
    "classify_rule_pair",
    "commute_matrix",
    "build_dependency_graph",
    "DependencyGraph",
    "DepEdge",
    "CoverageSummary",
    "Diagnostic",
    "Severity",
    "CODES",
    "diag",
    "render_text",
    "render_sarif",
    "worst_severity",
]


@dataclass
class AnalysisReport:
    """Everything one :func:`analyze` run found."""

    name: str
    graph: DependencyGraph
    coverage: CoverageSummary
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Whether the dead-rule check ran (it needs seed classes).
    dead_rules_checked: bool = False
    #: Critical-pair verdicts for every unordered object-rule pair
    #: (``None`` when the commute analysis was skipped).
    commute: Optional[CommuteSummary] = None

    @property
    def worst(self) -> Optional[Severity]:
        return worst_severity(self.diagnostics)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def properties(self) -> Dict[str, object]:
        """The summary bag the SARIF run carries."""
        props: Dict[str, object] = {"program": self.name}
        props["graph"] = self.graph.stats()
        props["coverage"] = self.coverage.as_properties()
        props["deadRulesChecked"] = self.dead_rules_checked
        props["diagnostics"] = len(self.diagnostics)
        if self.commute is not None:
            props["commute"] = self.commute.as_properties()
        return props

    def render_text(self, show_hints: bool = True) -> str:
        """The human report ``parulel analyze`` prints for one program."""
        g = self.graph.stats()
        lines = [
            f"== {self.name}",
            f"dependency graph: {g['rules']} rule(s), {g['edges']} edge(s) "
            f"({g['enables']} enables, {g['inhibits']} inhibits, "
            f"{g['conflicts']} conflicts)",
            f"cycles: {g['cyclicSccs']} cyclic SCC(s) "
            f"(largest {g['largestScc']} rule(s))",
        ]
        strata = self.graph.strata()
        rendered = "; ".join(
            f"{i}: {', '.join(layer)}" for i, layer in enumerate(strata)
        )
        lines.append(
            f"stratification: {len(strata)} stratum/strata"
            + (f" [{rendered}]" if rendered else "")
            + ("" if g["stratified"] else " — NOT stratified")
        )
        cov = self.coverage
        if cov.applicable:
            lines.append(
                f"redaction coverage: {cov.covered}/{cov.checked} candidate(s) "
                f"covered by {cov.meta_rules} meta-rule(s)"
                + (
                    f", {cov.skipped_remove_remove} benign remove/remove "
                    f"pair(s) skipped"
                    if cov.skipped_remove_remove
                    else ""
                )
            )
        elif cov.candidates:
            lines.append(
                f"redaction coverage: n/a — {cov.candidates} candidate(s) "
                f"but no meta level (see PA001)"
            )
        else:
            lines.append("redaction coverage: n/a — no interference candidates")
        lines.append(
            "dead rules: "
            + ("checked against seed classes" if self.dead_rules_checked else "not checked (no facts given)")
        )
        if self.commute is not None:
            c = self.commute.counts
            lines.append(
                f"commutativity: {len(self.commute.pairs)} rule pair(s) — "
                f"{c['commutes']} commute, {c['races']} race, "
                f"{c['unknown']} unknown"
            )
        if self.diagnostics:
            lines.append(f"{len(self.diagnostics)} finding(s):")
            lines.append(render_text(self.diagnostics, show_hints=show_hints))
        else:
            lines.append("no findings")
        return "\n".join(lines)


def analyze(
    program: Program,
    seed_classes: Optional[Iterable[str]] = None,
    name: str = "<program>",
    include_lint: bool = True,
    include_commute: bool = True,
) -> AnalysisReport:
    """Run every static check over ``program``.

    ``seed_classes`` — classes the initial facts load; enables the
    dead-rule check. ``include_lint=False`` drops the PA001 interference
    candidates from the findings (``parulel lint`` already reports them;
    the registry gate keeps them on). ``include_commute=False`` skips the
    critical-pair race detector (PA007–PA009 and ``races`` edges).
    """
    from repro.tools.lint import lint_diagnostics

    graph = build_dependency_graph(program)
    diagnostics: List[Diagnostic] = []
    if include_lint:
        diagnostics.extend(lint_diagnostics(program))
    cov_diags, coverage = check_redaction_coverage(program)
    diagnostics.extend(cov_diags)
    diagnostics.extend(check_unsatisfiable_ces(program))
    diagnostics.extend(check_dead_rules(program, seed_classes))
    diagnostics.extend(check_meta_rules(program))
    for edge in graph.unstratified_inhibits():
        diagnostics.append(
            diag(
                "PA005",
                f"writes of {edge.src!r} can invalidate matches of "
                f"{edge.dst!r} on class {edge.class_name!r} inside a rule "
                f"cycle — firing order across cycles is significant",
                rule=edge.src,
            )
        )
    diagnostics.extend(_check_cc_splits(program))
    commute: Optional[CommuteSummary] = None
    if include_commute:
        commute = commute_matrix(program, name=name)
        diagnostics.extend(commute.diagnostics())
        race_edges = tuple(
            DepEdge(
                src=min(p.rule_a, p.rule_b),
                dst=max(p.rule_a, p.rule_b),
                kind="races",
                class_name="*",
            )
            for p in commute.of_verdict(Verdict.RACES)
        )
        if race_edges:
            graph = dataclasses.replace(graph, edges=graph.edges + race_edges)
    return AnalysisReport(
        name=name,
        graph=graph,
        coverage=coverage,
        diagnostics=diagnostics,
        dead_rules_checked=seed_classes is not None,
        commute=commute,
    )


def _check_cc_splits(program: Program) -> List[Diagnostic]:
    """PA010: sibling copy-and-constrain copies whose membership partitions
    overlap — such a split double-fires the shared instantiations, so the
    transformation no longer preserves the original rule's semantics."""
    from collections import defaultdict

    from repro.analysis.footprint import ce_constraints
    from repro.match.compile import compile_rule

    groups: Dict[str, List] = defaultdict(list)
    for rule in program.rules:
        base, sep, _rest = rule.name.partition("@cc")
        if sep:
            groups[base].append(rule)

    out: List[Diagnostic] = []
    for base in sorted(groups):
        copies = groups[base]
        if len(copies) < 2:
            continue
        # Membership ('in') alternatives per (CE index, attribute) per copy.
        memberships: List[Dict] = []
        for rule in copies:
            sets: Dict = {}
            for ce in compile_rule(rule, plan=False).ces:
                for attr, conds in ce_constraints(ce).items():
                    for cond in conds:
                        if cond[0] == "in":
                            sets.setdefault((ce.index, attr), set()).update(
                                cond[1]
                            )
            memberships.append(sets)
        # The partition point is wherever the copies' sets differ; disjoint
        # sets there are what makes the split sound. Identical sets at a key
        # are inherited tests from the original rule, not the partition.
        keys = {k for sets in memberships for k in sets}
        for key in sorted(keys):
            per_copy = [sets.get(key) for sets in memberships]
            present = [(i, s) for i, s in enumerate(per_copy) if s is not None]
            if len({frozenset(s) for _i, s in present}) < 2:
                continue
            for idx_a in range(len(present)):
                for idx_b in range(idx_a + 1, len(present)):
                    i, sa = present[idx_a]
                    j, sb = present[idx_b]
                    shared = sa & sb
                    if shared:
                        ce_index, attr = key
                        out.append(
                            diag(
                                "PA010",
                                f"copies {copies[i].name!r} and "
                                f"{copies[j].name!r} overlap on ^{attr} "
                                f"(CE {ce_index + 1}): both accept "
                                f"{sorted(map(repr, shared))[0]} — the "
                                f"partition double-fires shared "
                                f"instantiations",
                                rule=copies[i].name,
                                ce=ce_index + 1,
                            )
                        )
    return out
