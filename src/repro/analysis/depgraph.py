"""The rule dependency graph: enables / inhibits / conflicts edges.

Nodes are the program's object-level rules. Edges are derived from the
footprints of :mod:`repro.analysis.footprint` by the conservative
:func:`~repro.analysis.footprint.may_overlap` test:

``enables`` (directed, W → R)
    a write of W can *create* a match of R: a make/modify post-image
    aliases a positive CE of R, or a remove destroys a WME a negated CE
    of R was blocked by;
``inhibits`` (directed, W → R)
    a write of W can *destroy or block* a match of R: a make/modify
    post-image aliases a negated CE of R, or a remove destroys a WME a
    positive CE of R matched;
``conflicts`` (undirected, stored with ``src <= dst`` lexicographically)
    the porting lint's write/write aliasing — two rules whose firings may
    issue conflicting updates to one WME in the same cycle.

On top of the edge set the module computes:

- **SCCs** (Tarjan) over the directed enables∪inhibits edges — the
  recursion structure of the program;
- **strata**: topological layers of the SCC condensation (stratum 0 fires
  first). Rules in distinct strata can only feed forward, so a schedule
  that exhausts stratum *i* before enabling stratum *i+1* never revisits
  a stratum — the parallel-instantiation literature's levelization;
- **stratification check**: an ``inhibits`` edge *inside* an SCC means a
  rule's writes can invalidate matches of a rule that (transitively)
  feeds it back — order-sensitive negation that set-oriented firing must
  arbitrate (PA005). Likewise a ``conflicts`` edge between different
  strata is reported in the stats (the pair can still co-fire only if
  the schedule overlaps strata, which the engine does not prevent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lang.ast import Program, Rule
from repro.analysis.footprint import (
    RuleFootprint,
    ce_constraints,
    may_overlap,
    rule_footprint,
)

__all__ = ["DepEdge", "DependencyGraph", "build_dependency_graph"]


@dataclass(frozen=True)
class DepEdge:
    """One dependency between two rules, via one class."""

    src: str
    dst: str
    #: 'enables', 'inhibits', 'conflicts', or 'races' — the last added by
    #: :func:`repro.analysis.analyze` from the commute detector's RACES
    #: verdicts (undirected, stored with ``src <= dst`` like conflicts).
    kind: str
    class_name: str


@dataclass
class DependencyGraph:
    """Rules, typed edges, and the derived SCC/strata structure."""

    rules: Tuple[str, ...]
    edges: Tuple[DepEdge, ...]
    footprints: Dict[str, RuleFootprint] = field(default_factory=dict)
    #: rule -> SCC id (0-based, in Tarjan completion order).
    scc_of: Dict[str, int] = field(default_factory=dict)
    #: SCC id -> member rules, deterministic order.
    sccs: Tuple[Tuple[str, ...], ...] = ()
    #: rule -> stratum index (0 fires first).
    stratum_of: Dict[str, int] = field(default_factory=dict)

    # -- derived views ------------------------------------------------------

    def edges_of_kind(self, kind: str) -> List[DepEdge]:
        return [e for e in self.edges if e.kind == kind]

    @property
    def n_strata(self) -> int:
        return max(self.stratum_of.values(), default=-1) + 1

    def strata(self) -> List[List[str]]:
        """Rules grouped by stratum, program order within a stratum."""
        out: List[List[str]] = [[] for _ in range(self.n_strata)]
        for name in self.rules:
            out[self.stratum_of[name]].append(name)
        return out

    def cyclic_sccs(self) -> List[Tuple[str, ...]]:
        """SCCs that actually contain a cycle (size > 1, or a self-loop)."""
        self_loops = {
            e.src
            for e in self.edges
            if e.src == e.dst and e.kind in ("enables", "inhibits")
        }
        return [
            scc
            for scc in self.sccs
            if len(scc) > 1 or scc[0] in self_loops
        ]

    def unstratified_inhibits(self) -> List[DepEdge]:
        """Inhibits edges closing a cycle (both endpoints in one SCC)."""
        return [
            e
            for e in self.edges_of_kind("inhibits")
            if self.scc_of[e.src] == self.scc_of[e.dst]
        ]

    def cross_stratum_conflicts(self) -> List[DepEdge]:
        """Conflicts edges whose endpoints sit in different strata."""
        return [
            e
            for e in self.edges_of_kind("conflicts")
            if self.stratum_of[e.src] != self.stratum_of[e.dst]
        ]

    @property
    def is_stratified(self) -> bool:
        """No inhibits edge inside a cycle and no cross-stratum conflict."""
        return not self.unstratified_inhibits() and not self.cross_stratum_conflicts()

    def stats(self) -> Dict[str, object]:
        """Summary numbers for reports and the SARIF ``properties`` bag."""
        return {
            "rules": len(self.rules),
            "edges": len(self.edges),
            "enables": len(self.edges_of_kind("enables")),
            "inhibits": len(self.edges_of_kind("inhibits")),
            "conflicts": len(self.edges_of_kind("conflicts")),
            "races": len(self.edges_of_kind("races")),
            "sccs": len(self.sccs),
            "largestScc": max((len(s) for s in self.sccs), default=0),
            "cyclicSccs": len(self.cyclic_sccs()),
            "strata": self.n_strata,
            "stratified": self.is_stratified,
        }


def _tarjan(nodes: Sequence[str], succ: Dict[str, Set[str]]) -> List[List[str]]:
    """Iterative Tarjan SCC; components in completion (reverse-topological)
    order, members in discovery order."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = sorted(succ.get(node, ()))
            for i in range(pi, len(successors)):
                nxt = successors[i]
                if nxt not in index:
                    work[-1] = (node, i + 1)
                    work.append((nxt, 0))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component, key=lambda n: index[n]))
    return sccs


def build_dependency_graph(program: Program) -> DependencyGraph:
    """Build the graph over ``program.rules`` (meta-rules are not nodes —
    they read the reified conflict set, not ordinary classes)."""
    rules: Tuple[Rule, ...] = program.rules
    names = tuple(r.name for r in rules)
    footprints = {r.name: rule_footprint(r) for r in rules}

    edge_set: Set[DepEdge] = set()
    edges: List[DepEdge] = []

    def add(src: str, dst: str, kind: str, class_name: str) -> None:
        if kind == "conflicts" and dst < src:
            src, dst = dst, src
        e = DepEdge(src=src, dst=dst, kind=kind, class_name=class_name)
        if e not in edge_set:
            edge_set.add(e)
            edges.append(e)

    # enables / inhibits: every write image vs every CE of every rule.
    reader_cache = {
        name: [
            (ce, ce_constraints(ce)) for ce in footprints[name].compiled.ces
        ]
        for name in names
    }
    for w_name in names:
        for image in footprints[w_name].writes:
            for r_name in names:
                for ce, conds in reader_cache[r_name]:
                    if not may_overlap(image, conds, ce.class_name):
                        continue
                    if image.kind == "remove":
                        kind = "enables" if ce.negated else "inhibits"
                    else:
                        kind = "inhibits" if ce.negated else "enables"
                    add(w_name, r_name, kind, ce.class_name)

    # conflicts: the porting lint's write/write aliasing, verbatim.
    from repro.tools.lint import find_interference_candidates  # no cycle: lint
    # imports only repro.lang/repro.match.

    for cand in find_interference_candidates(program):
        add(cand.rule_a, cand.rule_b, "conflicts", cand.class_name)

    # SCCs over the directed edges.
    succ: Dict[str, Set[str]] = {n: set() for n in names}
    for e in edges:
        if e.kind in ("enables", "inhibits"):
            succ[e.src].add(e.dst)
    scc_list = _tarjan(names, succ)
    scc_of = {name: i for i, scc in enumerate(scc_list) for name in scc}

    # Strata: longest-path layering of the SCC condensation. Tarjan emits
    # components in reverse topological order, so a single reversed walk
    # sees every predecessor before its successors.
    cond_succ: Dict[int, Set[int]] = {i: set() for i in range(len(scc_list))}
    for e in edges:
        if e.kind in ("enables", "inhibits"):
            a, b = scc_of[e.src], scc_of[e.dst]
            if a != b:
                cond_succ[a].add(b)
    level: Dict[int, int] = {i: 0 for i in range(len(scc_list))}
    for i in reversed(range(len(scc_list))):
        for j in cond_succ[i]:
            level[j] = max(level[j], level[i] + 1)
    stratum_of = {name: level[scc_of[name]] for name in names}

    return DependencyGraph(
        rules=names,
        edges=tuple(edges),
        footprints=footprints,
        scc_of=scc_of,
        sccs=tuple(tuple(s) for s in scc_list),
        stratum_of=stratum_of,
    )
