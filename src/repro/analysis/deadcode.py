"""Dead rules (PA003) and unsatisfiable condition elements (PA004).

**Unsatisfiable CEs** are decided per attribute from the compiled alpha
conditions: two constant equalities forcing different values, an equality
outside a ``<< ... >>`` membership set, disjoint memberships, provably
empty numeric ranges (``> 5`` with ``< 3``), and self-contradictory
intra-CE comparisons (``^a { <x> <> <x> }``). A rule carrying such a CE
can never fire — this is an *error*, the program text is wrong.

**Dead rules** need to know where WMEs come from, so the check runs only
when the caller supplies ``seed_classes`` (the classes the workload's
initial facts load — ``parulel analyze --facts`` derives them from the
facts file, registry mode derives them from each workload's setup). From
the seeds, a least fixpoint mirrors reachability: a rule is *live* when
every positive CE's class is available; live rules make their ``make``
classes available (``modify``/``remove`` never bootstrap a class — the
WME must exist for the rule to fire at all). Rules outside the fixpoint
can never acquire a full match — a *warning*, because the program may be
a library fragment run with richer facts elsewhere.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.lang.analysis import INSTANTIATION_CLASS
from repro.lang.ast import MakeAction, Program, Rule
from repro.match.compile import compile_rule
from repro.analysis.diagnostics import Diagnostic, diag
from repro.analysis.footprint import ce_constraints, constraints_satisfiable

__all__ = ["check_unsatisfiable_ces", "check_dead_rules"]


def _unsat_attr(ce) -> Optional[str]:
    """The first attribute whose constraints contradict, else None."""
    for attr, conds in ce_constraints(ce).items():
        if not constraints_satisfiable(list(conds)):
            return attr
    for cond in ce.alpha_conds:
        # A variable compared against its own binding attribute with an
        # irreflexive predicate can never hold.
        if cond[0] == "intra" and cond[1] == cond[3] and cond[2] in ("<>", "<", ">"):
            return cond[1]
    return None


def check_unsatisfiable_ces(program: Program) -> List[Diagnostic]:
    """PA004 for every contradictory CE in rules and meta-rules."""
    diagnostics: List[Diagnostic] = []
    for rule in (*program.rules, *program.meta_rules):
        compiled = compile_rule(rule)
        for ce in compiled.ces:
            attr = _unsat_attr(ce)
            if attr is not None:
                diagnostics.append(
                    diag(
                        "PA004",
                        f"condition element {ce.index + 1} of {rule.name!r} "
                        f"can never match: its tests on ^{attr} are "
                        f"contradictory",
                        rule=rule.name,
                        ce=ce.index + 1,
                    )
                )
    return diagnostics


def check_dead_rules(
    program: Program, seed_classes: Optional[Iterable[str]] = None
) -> List[Diagnostic]:
    """PA003 for rules that can never fire given the seed classes.

    With ``seed_classes=None`` the check is skipped (an analyzed program
    file says nothing about its initial facts).
    """
    if seed_classes is None:
        return []
    available: Set[str] = set(seed_classes) | {INSTANTIATION_CLASS}
    rules = list(program.rules)
    needs: Dict[str, Set[str]] = {}
    makes: Dict[str, Set[str]] = {}
    for rule in rules:
        needs[rule.name] = {
            ce.class_name for ce in rule.conditions if not ce.negated
        }
        makes[rule.name] = {
            a.class_name for a in rule.actions if isinstance(a, MakeAction)
        }

    live: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for rule in rules:
            if rule.name in live:
                continue
            if needs[rule.name] <= available:
                live.add(rule.name)
                new = makes[rule.name] - available
                if new:
                    available |= new
                changed = True

    diagnostics: List[Diagnostic] = []
    for rule in rules:
        if rule.name in live:
            continue
        missing = sorted(needs[rule.name] - available)
        diagnostics.append(
            diag(
                "PA003",
                f"rule {rule.name!r} can never fire: class(es) "
                f"{', '.join(repr(m) for m in missing)} are never loaded as "
                f"facts and never made by a reachable rule",
                rule=rule.name,
            )
        )
    return diagnostics
