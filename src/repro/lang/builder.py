"""Programmatic construction of PARULEL programs.

:mod:`repro.programs` builds its benchmark rulesets with this DSL rather
than by string templating — that keeps the generators readable and gives the
type checker something to hold on to. Example::

    pb = ProgramBuilder()
    pb.literalize("edge", "src", "dst")
    pb.literalize("path", "src", "dst")

    (pb.rule("extend")
        .ce("path", src=v("a"), dst=v("b"))
        .ce("edge", src=v("b"), dst=v("c"))
        .neg("path", src=v("a"), dst=v("c"))
        .make("path", src=v("a"), dst=v("c")))

    program = pb.build()

Test shorthands accepted as keyword values:

- a plain int/float/str → :class:`~repro.lang.ast.ConstantTest`,
- ``v("x")`` → :class:`~repro.lang.ast.VariableTest`,
- ``ne(x)``, ``lt(x)``, ``le(x)``, ``gt(x)``, ``ge(x)``, ``same_type(x)`` →
  :class:`~repro.lang.ast.PredicateTest`,
- ``one_of(a, b, ...)`` → :class:`~repro.lang.ast.DisjunctionTest`,
- ``conj(t1, t2, ...)`` → :class:`~repro.lang.ast.ConjunctiveTest`,
- on the RHS, ``compute(a, "+", b, ...)`` → arithmetic.

Attribute names given as Python keywords may use ``_`` where the surface
syntax uses ``-`` (``on_top_of=...`` ⇒ attribute ``on-top-of``); pass the
attribute through :func:`raw` (or use the ``set``/``where`` dict forms) to
suppress that translation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SemanticError
from repro.lang.analysis import analyze_program
from repro.lang.ast import (
    Action,
    BindAction,
    CallAction,
    ComputeExpr,
    ConditionElement,
    ConjunctiveTest,
    ConstantExpr,
    ConstantTest,
    DisjunctionTest,
    Expr,
    GenatomExpr,
    HaltAction,
    Literalize,
    MakeAction,
    MetaRule,
    ModifyAction,
    PredicateTest,
    Program,
    RedactAction,
    RemoveAction,
    Rule,
    Test,
    Value,
    VariableExpr,
    VariableTest,
    WriteAction,
)

__all__ = [
    "ProgramBuilder",
    "RuleBuilder",
    "v",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "same_type",
    "one_of",
    "conj",
    "compute",
    "genatom",
    "raw",
]


# ---------------------------------------------------------------------------
# Test / expression shorthands
# ---------------------------------------------------------------------------


def v(name: str) -> VariableTest:
    """A match variable ``<name>``."""
    return VariableTest(name=name)


def _operand(x: Union[Value, VariableTest]) -> Union[ConstantTest, VariableTest]:
    if isinstance(x, VariableTest):
        return x
    return ConstantTest(value=x)


def eq(x: Union[Value, VariableTest]) -> PredicateTest:
    """Explicit equality predicate ``= x`` (plain constants do this implicitly)."""
    return PredicateTest(predicate="=", operand=_operand(x))


def ne(x: Union[Value, VariableTest]) -> PredicateTest:
    """``<> x`` — not equal."""
    return PredicateTest(predicate="<>", operand=_operand(x))


def lt(x: Union[Value, VariableTest]) -> PredicateTest:
    """``< x``."""
    return PredicateTest(predicate="<", operand=_operand(x))


def le(x: Union[Value, VariableTest]) -> PredicateTest:
    """``<= x``."""
    return PredicateTest(predicate="<=", operand=_operand(x))


def gt(x: Union[Value, VariableTest]) -> PredicateTest:
    """``> x``."""
    return PredicateTest(predicate=">", operand=_operand(x))


def ge(x: Union[Value, VariableTest]) -> PredicateTest:
    """``>= x``."""
    return PredicateTest(predicate=">=", operand=_operand(x))


def same_type(x: Union[Value, VariableTest]) -> PredicateTest:
    """``<=> x`` — OPS5's same-type predicate."""
    return PredicateTest(predicate="<=>", operand=_operand(x))


def one_of(*alternatives: Value) -> DisjunctionTest:
    """``<< a b ... >>`` — constant disjunction."""
    return DisjunctionTest(alternatives=tuple(alternatives))


TestLike = Union[Value, Test]


def _as_test(x: TestLike) -> Test:
    if isinstance(
        x, (ConstantTest, VariableTest, PredicateTest, DisjunctionTest, ConjunctiveTest)
    ):
        return x
    if isinstance(x, (str, int, float)):
        return ConstantTest(value=x)
    raise TypeError(f"cannot interpret {x!r} as an attribute test")


def conj(*tests: TestLike) -> ConjunctiveTest:
    """``{ t1 t2 ... }`` — conjunction of tests on one attribute."""
    atoms = []
    for t in tests:
        t = _as_test(t)
        if isinstance(t, ConjunctiveTest):
            raise TypeError("conjunctive tests do not nest")
        atoms.append(t)
    return ConjunctiveTest(tests=tuple(atoms))


ExprLike = Union[Value, Expr, VariableTest]


def _as_expr(x: ExprLike) -> Expr:
    if isinstance(x, (ConstantExpr, VariableExpr, ComputeExpr, GenatomExpr)):
        return x
    if isinstance(x, VariableTest):  # allow v("x") on the RHS too
        return VariableExpr(name=x.name)
    if isinstance(x, (str, int, float)):
        return ConstantExpr(value=x)
    raise TypeError(f"cannot interpret {x!r} as an RHS expression")


def genatom(prefix: str = "g") -> GenatomExpr:
    """``(genatom prefix)`` — a fresh unique symbol per firing evaluation."""
    return GenatomExpr(prefix=prefix)


def compute(*items: Union[ExprLike, str]) -> ComputeExpr:
    """``(compute a op b op c ...)`` — left-to-right arithmetic.

    Operator positions (odd indices) must be one of ``+ - * / // mod``.
    """
    out: List[Union[Expr, str]] = []
    for i, item in enumerate(items):
        if i % 2 == 1:
            if item not in ("+", "-", "*", "/", "//", "mod"):
                raise TypeError(f"expected arithmetic operator at position {i}, got {item!r}")
            out.append(item)  # type: ignore[arg-type]
        else:
            out.append(_as_expr(item))  # type: ignore[arg-type]
    if not out or len(out) % 2 == 0:
        raise TypeError("compute needs operand (op operand)*")
    return ComputeExpr(items=tuple(out))


class raw(str):
    """Wrap an attribute name to suppress the ``_`` → ``-`` translation."""


def _attr_name(kw: str) -> str:
    if isinstance(kw, raw):
        return str(kw)
    return kw.replace("_", "-")


# ---------------------------------------------------------------------------
# Rule builder
# ---------------------------------------------------------------------------


class RuleBuilder:
    """Fluent builder for one rule; every method returns ``self``.

    Obtained from :meth:`ProgramBuilder.rule` / :meth:`ProgramBuilder.meta_rule`
    (which register the finished rule automatically on
    :meth:`ProgramBuilder.build`) or constructed standalone and finished with
    :meth:`to_rule`.
    """

    def __init__(self, name: str, meta: bool = False, salience: int = 0) -> None:
        self.name = name
        self.meta = meta
        self.salience = salience
        self._conditions: List[ConditionElement] = []
        self._actions: List[Action] = []

    # -- LHS ------------------------------------------------------------

    def ce(
        self,
        class_name: str,
        where: Optional[Dict[str, TestLike]] = None,
        **tests: TestLike,
    ) -> "RuleBuilder":
        """Add a positive condition element.

        Attribute tests come from ``**tests`` (with ``_``→``-`` translation)
        and/or the ``where`` dict (attribute names taken verbatim).
        """
        return self._add_ce(class_name, where, tests, negated=False)

    def neg(
        self,
        class_name: str,
        where: Optional[Dict[str, TestLike]] = None,
        **tests: TestLike,
    ) -> "RuleBuilder":
        """Add a negated condition element ``-( ... )``."""
        return self._add_ce(class_name, where, tests, negated=True)

    def _add_ce(
        self,
        class_name: str,
        where: Optional[Dict[str, TestLike]],
        tests: Dict[str, TestLike],
        negated: bool,
    ) -> "RuleBuilder":
        pairs: List[Tuple[str, Test]] = []
        for attr, test in (where or {}).items():
            pairs.append((attr, _as_test(test)))
        for attr, test in tests.items():
            pairs.append((_attr_name(attr), _as_test(test)))
        self._conditions.append(
            ConditionElement(class_name=class_name, tests=tuple(pairs), negated=negated)
        )
        return self

    # -- RHS ------------------------------------------------------------

    def make(
        self,
        class_name: str,
        set: Optional[Dict[str, ExprLike]] = None,
        **assignments: ExprLike,
    ) -> "RuleBuilder":
        """Add a ``(make ...)`` action."""
        pairs: List[Tuple[str, Expr]] = []
        for attr, e in (set or {}).items():
            pairs.append((attr, _as_expr(e)))
        for attr, e in assignments.items():
            pairs.append((_attr_name(attr), _as_expr(e)))
        self._actions.append(MakeAction(class_name=class_name, assignments=tuple(pairs)))
        return self

    def modify(
        self,
        ce_index: int,
        set: Optional[Dict[str, ExprLike]] = None,
        **assignments: ExprLike,
    ) -> "RuleBuilder":
        """Add a ``(modify k ...)`` action (1-based CE index)."""
        pairs: List[Tuple[str, Expr]] = []
        for attr, e in (set or {}).items():
            pairs.append((attr, _as_expr(e)))
        for attr, e in assignments.items():
            pairs.append((_attr_name(attr), _as_expr(e)))
        self._actions.append(ModifyAction(ce_index=ce_index, assignments=tuple(pairs)))
        return self

    def remove(self, *ce_indices: int) -> "RuleBuilder":
        """Add a ``(remove k ...)`` action."""
        self._actions.append(RemoveAction(ce_indices=tuple(ce_indices)))
        return self

    def write(self, *arguments: ExprLike) -> "RuleBuilder":
        """Add a ``(write ...)`` action."""
        self._actions.append(WriteAction(arguments=tuple(_as_expr(a) for a in arguments)))
        return self

    def bind(self, name: str, expr: ExprLike) -> "RuleBuilder":
        """Add a ``(bind <name> expr)`` action."""
        self._actions.append(BindAction(name=name, expr=_as_expr(expr)))
        return self

    def halt(self) -> "RuleBuilder":
        """Add a ``(halt)`` action."""
        self._actions.append(HaltAction())
        return self

    def call(self, function: str, *arguments: ExprLike) -> "RuleBuilder":
        """Add a ``(call fn ...)`` action."""
        self._actions.append(
            CallAction(function=function, arguments=tuple(_as_expr(a) for a in arguments))
        )
        return self

    def redact(self, expr: ExprLike) -> "RuleBuilder":
        """Add a ``(redact expr)`` action (meta-rules only)."""
        self._actions.append(RedactAction(expr=_as_expr(expr)))
        return self

    # -- finish -----------------------------------------------------------

    def to_rule(self) -> Rule:
        """Freeze into a :class:`~repro.lang.ast.Rule` / ``MetaRule``."""
        cls = MetaRule if self.meta else Rule
        return cls(
            name=self.name,
            conditions=tuple(self._conditions),
            actions=tuple(self._actions),
            salience=self.salience,
        )


# ---------------------------------------------------------------------------
# Program builder
# ---------------------------------------------------------------------------


class ProgramBuilder:
    """Accumulates literalize declarations and rule builders into a Program."""

    def __init__(self) -> None:
        self._literalizes: List[Literalize] = []
        self._builders: List[RuleBuilder] = []
        self._extra_rules: List[Rule] = []

    def literalize(self, class_name: str, *attributes: str) -> "ProgramBuilder":
        """Declare a WME class and its attributes."""
        self._literalizes.append(
            Literalize(class_name=class_name, attributes=tuple(attributes))
        )
        return self

    def rule(self, name: str, salience: int = 0) -> RuleBuilder:
        """Start an object-level rule; it is registered automatically."""
        rb = RuleBuilder(name, meta=False, salience=salience)
        self._builders.append(rb)
        return rb

    def meta_rule(self, name: str, salience: int = 0) -> RuleBuilder:
        """Start a meta-rule; it is registered automatically."""
        rb = RuleBuilder(name, meta=True, salience=salience)
        self._builders.append(rb)
        return rb

    def add_rule(self, rule: Rule) -> "ProgramBuilder":
        """Register an already-built AST rule (object- or meta-level)."""
        self._extra_rules.append(rule)
        return self

    def build(self, analyze: bool = True) -> Program:
        """Produce the immutable :class:`~repro.lang.ast.Program`.

        With ``analyze=True`` (default) the program is passed through
        :func:`repro.lang.analysis.analyze_program`, so builder users get
        semantic errors at construction time.
        """
        rules: List[Rule] = []
        metas: List[MetaRule] = []
        for rb in self._builders:
            r = rb.to_rule()
            (metas if isinstance(r, MetaRule) else rules).append(r)
        for r in self._extra_rules:
            (metas if isinstance(r, MetaRule) else rules).append(r)
        program = Program(
            literalizes=tuple(self._literalizes),
            rules=tuple(rules),
            meta_rules=tuple(metas),
        )
        if analyze:
            analyze_program(program)
        return program
