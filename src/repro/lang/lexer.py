"""Tokenizer for the PARULEL surface syntax.

The surface syntax is OPS5-flavoured s-expressions::

    (literalize block name on-top-of size)

    (p stack-blocks
        (block ^name <x> ^on-top-of nil)
        (block ^name {<y> <> <x>} ^size > 4)
        -->
        (modify 1 ^on-top-of <y>))

Token classes:

``LPAREN``/``RPAREN``
    parentheses,
``CARET``
    the ``^`` attribute marker,
``VARIABLE``
    ``<name>`` match variables,
``NUMBER``
    integers and floats (including negative literals),
``SYMBOL``
    bare atoms (rule names, class names, constants like ``nil``),
``STRING``
    ``|bar-quoted strings|`` which may contain whitespace,
``LBRACE``/``RBRACE``
    conjunctive-test braces ``{`` ``}``,
``LDISJ``/``RDISJ``
    disjunction brackets ``<<`` ``>>``,
``ARROW``
    the LHS/RHS separator ``-->``,
``MINUS``
    a standalone ``-`` introducing a negated condition element.

Comments run from ``;`` to end of line. The lexer is a single forward pass
with no backtracking; positions are tracked for error messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Union

from repro.errors import LexError

__all__ = ["Token", "TokenKind", "tokenize"]


class TokenKind(enum.Enum):
    """Lexical category of a :class:`Token`."""

    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LDISJ = "<<"
    RDISJ = ">>"
    CARET = "^"
    ARROW = "-->"
    MINUS = "-"
    VARIABLE = "variable"
    NUMBER = "number"
    SYMBOL = "symbol"
    STRING = "string"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based line/column)."""

    kind: TokenKind
    value: Union[str, int, float]
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Token({self.kind.name}, {self.value!r}, {self.line}:{self.column})"


# Characters that terminate a bare symbol / number / variable.
_DELIMITERS = set("(){}^;| \t\r\n")

# Predicate symbols are ordinary SYMBOL tokens; the parser gives them meaning.
PREDICATE_SYMBOLS = frozenset({"=", "<>", "<", "<=", ">", ">=", "<=>"})


def _classify_atom(text: str, line: int, column: int) -> Token:
    """Turn a bare atom into a NUMBER or SYMBOL token."""
    try:
        return Token(TokenKind.NUMBER, int(text), line, column)
    except ValueError:
        pass
    try:
        return Token(TokenKind.NUMBER, float(text), line, column)
    except ValueError:
        pass
    return Token(TokenKind.SYMBOL, text, line, column)


def _iter_tokens(source: str) -> Iterator[Token]:
    i = 0
    n = len(source)
    line = 1
    col = 1

    def advance(k: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance()
            continue
        if ch == ";":  # comment to end of line
            while i < n and source[i] != "\n":
                advance()
            continue
        start_line, start_col = line, col
        if ch == "(":
            advance()
            yield Token(TokenKind.LPAREN, "(", start_line, start_col)
            continue
        if ch == ")":
            advance()
            yield Token(TokenKind.RPAREN, ")", start_line, start_col)
            continue
        if ch == "{":
            advance()
            yield Token(TokenKind.LBRACE, "{", start_line, start_col)
            continue
        if ch == "}":
            advance()
            yield Token(TokenKind.RBRACE, "}", start_line, start_col)
            continue
        if ch == "^":
            advance()
            yield Token(TokenKind.CARET, "^", start_line, start_col)
            continue
        if ch == "|":
            advance()
            chars: List[str] = []
            while i < n and source[i] != "|":
                chars.append(source[i])
                advance()
            if i >= n:
                raise LexError("unterminated |string|", start_line, start_col)
            advance()  # closing bar
            yield Token(TokenKind.STRING, "".join(chars), start_line, start_col)
            continue
        if ch == "<":
            # Could be: "<<", "<var>", or predicate symbols "<", "<=", "<>", "<=>".
            if source.startswith("<<", i):
                advance(2)
                yield Token(TokenKind.LDISJ, "<<", start_line, start_col)
                continue
            if source.startswith("<=>", i):
                advance(3)
                yield Token(TokenKind.SYMBOL, "<=>", start_line, start_col)
                continue
            # <var>: "<" then an identifier then ">".
            j = i + 1
            while j < n and source[j] not in _DELIMITERS and source[j] not in "<>":
                j += 1
            if j < n and source[j] == ">" and j > i + 1:
                name = source[i + 1 : j]
                advance(j - i + 1)
                yield Token(TokenKind.VARIABLE, name, start_line, start_col)
                continue
            if source.startswith("<=", i):
                advance(2)
                yield Token(TokenKind.SYMBOL, "<=", start_line, start_col)
                continue
            if source.startswith("<>", i):
                advance(2)
                yield Token(TokenKind.SYMBOL, "<>", start_line, start_col)
                continue
            advance()
            yield Token(TokenKind.SYMBOL, "<", start_line, start_col)
            continue
        if ch == ">":
            if source.startswith(">>", i):
                advance(2)
                yield Token(TokenKind.RDISJ, ">>", start_line, start_col)
                continue
            if source.startswith(">=", i):
                advance(2)
                yield Token(TokenKind.SYMBOL, ">=", start_line, start_col)
                continue
            advance()
            yield Token(TokenKind.SYMBOL, ">", start_line, start_col)
            continue
        if ch == "-":
            # "-->" arrow, "-5"/" -5.2" negative number, or bare minus
            # (negation marker / arithmetic operator).
            if source.startswith("-->", i):
                advance(3)
                yield Token(TokenKind.ARROW, "-->", start_line, start_col)
                continue
            if i + 1 < n and (source[i + 1].isdigit() or source[i + 1] == "."):
                j = i + 1
                while j < n and source[j] not in _DELIMITERS:
                    j += 1
                text = source[i:j]
                tok = _classify_atom(text, start_line, start_col)
                if tok.kind is TokenKind.NUMBER:
                    advance(j - i)
                    yield tok
                    continue
            advance()
            yield Token(TokenKind.MINUS, "-", start_line, start_col)
            continue
        # Bare atom: symbol or number.
        j = i
        while j < n and source[j] not in _DELIMITERS and not source.startswith("<<", j) and not source.startswith(">>", j) and source[j] != "<" and source[j] != ">":
            j += 1
        if j == i:
            raise LexError(f"unexpected character {ch!r}", start_line, start_col)
        text = source[i:j]
        advance(j - i)
        yield _classify_atom(text, start_line, start_col)

    yield Token(TokenKind.EOF, "", line, col)


def tokenize(source: str) -> List[Token]:
    """Tokenize PARULEL source text into a list ending with an EOF token.

    Raises :class:`repro.errors.LexError` on malformed input.
    """
    return list(_iter_tokens(source))
