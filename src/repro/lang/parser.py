"""Recursive-descent parser for the PARULEL surface syntax.

Grammar (informal)::

    program     := { declaration }
    declaration := literalize | rule | metarule
    literalize  := "(" "literalize" SYMBOL { SYMBOL } ")"
    rule        := "(" "p"  SYMBOL [salience] lhs "-->" rhs ")"
    metarule    := "(" "mp" SYMBOL [salience] lhs "-->" rhs ")"
    salience    := "(" "salience" NUMBER ")"
    lhs         := ce { ce }
    ce          := [ "-" ] "(" SYMBOL { "^" SYMBOL test } ")"
    test        := constant | VARIABLE | predtest | disjunction | conjunction
    predtest    := PRED ( constant | VARIABLE )
    disjunction := "<<" { constant } ">>"
    conjunction := "{" { constant | VARIABLE | predtest | disjunction } "}"
    rhs         := { action }
    action      := make | modify | remove | write | bind | halt | call | redact

Predicates ``= <> < <= > >= <=>`` arrive from the lexer as SYMBOL tokens and
are recognized positionally. The parser performs no semantic checking beyond
shape; see :mod:`repro.lang.analysis`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import ParseError
from repro.lang.ast import (
    Action,
    BindAction,
    CallAction,
    ComputeExpr,
    ConditionElement,
    ConjunctiveTest,
    ConstantExpr,
    ConstantTest,
    DisjunctionTest,
    Expr,
    GenatomExpr,
    HaltAction,
    Literalize,
    MakeAction,
    MetaRule,
    ModifyAction,
    PredicateTest,
    Program,
    RedactAction,
    RemoveAction,
    Rule,
    Test,
    TestAtom,
    Value,
    VariableExpr,
    VariableTest,
    WriteAction,
)
from repro.lang.lexer import PREDICATE_SYMBOLS, Token, TokenKind, tokenize

__all__ = ["parse_program", "Parser"]

#: Arithmetic operator symbols accepted inside ``(compute ...)``.
ARITH_OPS = frozenset({"+", "-", "*", "/", "//", "mod", "\\\\"})


class Parser:
    """Single-pass recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        tok = self._current
        if tok.kind is not kind:
            wanted = what or kind.value
            raise ParseError(
                f"expected {wanted}, found {tok.kind.value!r} ({tok.value!r})",
                tok.line,
                tok.column,
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        tok = self._current
        return ParseError(message, tok.line, tok.column)

    # -- entry point --------------------------------------------------------

    def parse_program(self) -> Program:
        literalizes: List[Literalize] = []
        rules: List[Rule] = []
        meta_rules: List[MetaRule] = []
        while self._current.kind is not TokenKind.EOF:
            self._expect(TokenKind.LPAREN)
            head = self._expect(TokenKind.SYMBOL, "declaration head")
            if head.value == "literalize":
                literalizes.append(self._parse_literalize_body())
            elif head.value == "p":
                rules.append(self._parse_rule_body(meta=False))
            elif head.value == "mp":
                meta_rules.append(self._parse_rule_body(meta=True))
            else:
                raise ParseError(
                    f"unknown declaration {head.value!r} (expected literalize, p or mp)",
                    head.line,
                    head.column,
                )
        return Program(
            literalizes=tuple(literalizes),
            rules=tuple(rules),
            meta_rules=tuple(meta_rules),
        )

    # -- declarations --------------------------------------------------------

    def _parse_literalize_body(self) -> Literalize:
        name = self._expect(TokenKind.SYMBOL, "class name")
        attrs: List[str] = []
        while self._current.kind is TokenKind.SYMBOL:
            attrs.append(str(self._advance().value))
        self._expect(TokenKind.RPAREN)
        return Literalize(class_name=str(name.value), attributes=tuple(attrs))

    def _parse_rule_body(self, meta: bool) -> Rule:
        name = self._expect(TokenKind.SYMBOL, "rule name")
        salience = 0
        # Optional (salience N) immediately after the name.
        if (
            self._current.kind is TokenKind.LPAREN
            and self._peek(1).kind is TokenKind.SYMBOL
            and self._peek(1).value == "salience"
        ):
            self._advance()  # (
            self._advance()  # salience
            num = self._expect(TokenKind.NUMBER, "salience value")
            if not isinstance(num.value, int):
                raise ParseError("salience must be an integer", num.line, num.column)
            salience = num.value
            self._expect(TokenKind.RPAREN)
        conditions: List[ConditionElement] = []
        while self._current.kind is not TokenKind.ARROW:
            conditions.append(self._parse_condition_element())
        self._expect(TokenKind.ARROW)
        actions: List[Action] = []
        while self._current.kind is not TokenKind.RPAREN:
            actions.append(self._parse_action(meta=meta))
        self._expect(TokenKind.RPAREN)
        if not conditions:
            raise self._error(f"rule {name.value!r} has no condition elements")
        cls = MetaRule if meta else Rule
        return cls(
            name=str(name.value),
            conditions=tuple(conditions),
            actions=tuple(actions),
            salience=salience,
        )

    # -- LHS -----------------------------------------------------------------

    def _parse_condition_element(self) -> ConditionElement:
        negated = False
        if self._current.kind is TokenKind.MINUS:
            self._advance()
            negated = True
        self._expect(TokenKind.LPAREN)
        cls = self._expect(TokenKind.SYMBOL, "class name")
        tests: List[Tuple[str, Test]] = []
        while self._current.kind is TokenKind.CARET:
            self._advance()
            attr = self._expect(TokenKind.SYMBOL, "attribute name")
            tests.append((str(attr.value), self._parse_test()))
        self._expect(TokenKind.RPAREN)
        return ConditionElement(
            class_name=str(cls.value), tests=tuple(tests), negated=negated
        )

    def _parse_test(self) -> Test:
        tok = self._current
        if tok.kind is TokenKind.LBRACE:
            self._advance()
            atoms: List[TestAtom] = []
            while self._current.kind is not TokenKind.RBRACE:
                atoms.append(self._parse_test_atom())
            self._expect(TokenKind.RBRACE)
            if not atoms:
                raise self._error("empty conjunctive test { }")
            return ConjunctiveTest(tests=tuple(atoms))
        return self._parse_test_atom()

    def _parse_test_atom(self) -> TestAtom:
        tok = self._current
        if tok.kind is TokenKind.LDISJ:
            self._advance()
            alts: List[Value] = []
            while self._current.kind is not TokenKind.RDISJ:
                alts.append(self._parse_constant("disjunction alternative"))
            self._expect(TokenKind.RDISJ)
            if not alts:
                raise self._error("empty disjunction << >>")
            return DisjunctionTest(alternatives=tuple(alts))
        if tok.kind is TokenKind.SYMBOL and tok.value in PREDICATE_SYMBOLS:
            self._advance()
            operand = self._parse_pred_operand()
            return PredicateTest(predicate=str(tok.value), operand=operand)
        if tok.kind is TokenKind.VARIABLE:
            self._advance()
            return VariableTest(name=str(tok.value))
        if tok.kind in (TokenKind.NUMBER, TokenKind.STRING, TokenKind.SYMBOL):
            self._advance()
            return ConstantTest(value=tok.value)
        raise self._error(
            f"expected a test (constant, variable, predicate, << >> or {{ }}), "
            f"found {tok.kind.value!r}"
        )

    def _parse_pred_operand(self) -> Union[ConstantTest, VariableTest]:
        tok = self._current
        if tok.kind is TokenKind.VARIABLE:
            self._advance()
            return VariableTest(name=str(tok.value))
        if tok.kind in (TokenKind.NUMBER, TokenKind.STRING, TokenKind.SYMBOL):
            self._advance()
            return ConstantTest(value=tok.value)
        raise self._error("predicate needs a constant or variable operand")

    def _parse_constant(self, what: str) -> Value:
        tok = self._current
        if tok.kind in (TokenKind.NUMBER, TokenKind.STRING, TokenKind.SYMBOL):
            self._advance()
            return tok.value
        raise self._error(f"expected {what} (constant), found {tok.kind.value!r}")

    # -- RHS -----------------------------------------------------------------

    def _parse_action(self, meta: bool) -> Action:
        self._expect(TokenKind.LPAREN)
        head = self._expect(TokenKind.SYMBOL, "action name")
        name = str(head.value)
        if name == "make":
            cls = self._expect(TokenKind.SYMBOL, "class name")
            assignments = self._parse_assignments()
            self._expect(TokenKind.RPAREN)
            return MakeAction(class_name=str(cls.value), assignments=assignments)
        if name == "modify":
            idx = self._expect(TokenKind.NUMBER, "condition-element index")
            if not isinstance(idx.value, int) or idx.value < 1:
                raise ParseError(
                    "modify needs a positive integer CE index", idx.line, idx.column
                )
            assignments = self._parse_assignments()
            self._expect(TokenKind.RPAREN)
            return ModifyAction(ce_index=idx.value, assignments=assignments)
        if name == "remove":
            indices: List[int] = []
            while self._current.kind is TokenKind.NUMBER:
                tok = self._advance()
                if not isinstance(tok.value, int) or tok.value < 1:
                    raise ParseError(
                        "remove needs positive integer CE indices", tok.line, tok.column
                    )
                indices.append(tok.value)
            self._expect(TokenKind.RPAREN)
            if not indices:
                raise self._error("remove needs at least one CE index")
            return RemoveAction(ce_indices=tuple(indices))
        if name == "write":
            args: List[Expr] = []
            while self._current.kind is not TokenKind.RPAREN:
                args.append(self._parse_expr())
            self._expect(TokenKind.RPAREN)
            return WriteAction(arguments=tuple(args))
        if name == "bind":
            var = self._expect(TokenKind.VARIABLE, "variable")
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return BindAction(name=str(var.value), expr=expr)
        if name == "halt":
            self._expect(TokenKind.RPAREN)
            return HaltAction()
        if name == "call":
            fn = self._expect(TokenKind.SYMBOL, "function name")
            args = []
            while self._current.kind is not TokenKind.RPAREN:
                args.append(self._parse_expr())
            self._expect(TokenKind.RPAREN)
            return CallAction(function=str(fn.value), arguments=tuple(args))
        if name == "redact":
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return RedactAction(expr=expr)
        raise ParseError(f"unknown action {name!r}", head.line, head.column)

    def _parse_assignments(self) -> Tuple[Tuple[str, Expr], ...]:
        out: List[Tuple[str, Expr]] = []
        while self._current.kind is TokenKind.CARET:
            self._advance()
            attr = self._expect(TokenKind.SYMBOL, "attribute name")
            out.append((str(attr.value), self._parse_expr()))
        return tuple(out)

    def _parse_expr(self) -> Expr:
        tok = self._current
        if tok.kind is TokenKind.VARIABLE:
            self._advance()
            return VariableExpr(name=str(tok.value))
        if tok.kind in (TokenKind.NUMBER, TokenKind.STRING, TokenKind.SYMBOL):
            self._advance()
            return ConstantExpr(value=tok.value)
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            head = self._expect(TokenKind.SYMBOL, "expression head")
            if head.value == "compute":
                return self._parse_compute_body()
            if head.value == "genatom":
                prefix = "g"
                if self._current.kind is TokenKind.SYMBOL:
                    prefix = str(self._advance().value)
                self._expect(TokenKind.RPAREN)
                return GenatomExpr(prefix=prefix)
            raise ParseError(
                f"only (compute ...) and (genatom ...) expressions are "
                f"allowed, found ({head.value} ...)",
                head.line,
                head.column,
            )
        raise self._error(f"expected an expression, found {tok.kind.value!r}")

    def _parse_compute_body(self) -> ComputeExpr:
        items: List[Union[Expr, str]] = []
        expect_operand = True
        while self._current.kind is not TokenKind.RPAREN:
            tok = self._current
            if expect_operand:
                items.append(self._parse_expr())
                expect_operand = False
            else:
                if tok.kind is TokenKind.MINUS:
                    self._advance()
                    items.append("-")
                elif tok.kind is TokenKind.SYMBOL and str(tok.value) in ARITH_OPS:
                    self._advance()
                    items.append(str(tok.value))
                else:
                    raise self._error(
                        f"expected arithmetic operator in compute, found {tok.value!r}"
                    )
                expect_operand = True
        self._expect(TokenKind.RPAREN)
        if not items or expect_operand:
            raise self._error("malformed (compute ...): must alternate operand/operator")
        return ComputeExpr(items=tuple(items))


def parse_program(source: str) -> Program:
    """Parse PARULEL source text into a :class:`~repro.lang.ast.Program`.

    Raises :class:`~repro.errors.LexError` or
    :class:`~repro.errors.ParseError` on malformed input. The result is not
    yet semantically checked; pass it to
    :func:`repro.lang.analysis.analyze_program` for that.
    """
    return Parser(tokenize(source)).parse_program()
