"""Semantic analysis for PARULEL programs.

:func:`analyze_program` validates a parsed :class:`~repro.lang.ast.Program`
and returns a :class:`ProgramInfo` summary. Checks performed:

**Structural**
  - duplicate rule / meta-rule / class names,
  - duplicate attributes within a ``literalize``,
  - first condition element of a rule must be positive (OPS5 rule; a rule
    whose first CE is negated cannot anchor a match).

**Class / attribute discipline** (only when ``literalize`` declarations are
present — programs may also run untyped):
  - every CE references a declared class and only declared attributes,
  - every ``make`` / ``modify`` assigns only declared attributes.
  - the ``instantiation`` class used by meta-rules is implicitly declared.

**Variable discipline**
  - every variable used in a predicate operand, a negated CE, or an RHS
    expression must be *bound*: i.e. appear as a plain
    :class:`~repro.lang.ast.VariableTest` (or the first atom of a
    conjunctive test) in some positive CE, or be introduced by a preceding
    ``bind`` on the RHS,
  - ``modify``/``remove`` CE indices must be in range and must not refer to
    negated CEs.

**Meta-rule discipline**
  - meta-rules may only use ``redact``, ``write``, ``bind``, ``halt`` and
    ``call`` actions (they must not change object working memory — redaction
    is their sole means of influence, per PARULEL's design),
  - object-level rules must not use ``redact``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import SemanticError
from repro.lang.ast import (
    Action,
    BindAction,
    CallAction,
    ComputeExpr,
    ConditionElement,
    ConjunctiveTest,
    ConstantExpr,
    ConstantTest,
    DisjunctionTest,
    Expr,
    HaltAction,
    MakeAction,
    MetaRule,
    ModifyAction,
    PredicateTest,
    Program,
    RedactAction,
    RemoveAction,
    Rule,
    VariableExpr,
    VariableTest,
    WriteAction,
)

__all__ = ["analyze_program", "ProgramInfo", "RuleInfo", "INSTANTIATION_CLASS"]

#: Reserved WME class name used to reify conflict-set instantiations for the
#: meta level (see :mod:`repro.core.redaction`).
INSTANTIATION_CLASS = "instantiation"

#: Attributes every reified instantiation carries, besides one per rule
#: variable. Meta-rules may match on these without declaration.
INSTANTIATION_BUILTIN_ATTRS = (
    "rule",
    "id",
    "salience",
    "specificity",
    "recency",
)


@dataclass(frozen=True)
class RuleInfo:
    """Per-rule analysis results."""

    name: str
    bound_variables: Tuple[str, ...]
    classes_read: FrozenSet[str]
    classes_written: FrozenSet[str]
    is_meta: bool


@dataclass(frozen=True)
class ProgramInfo:
    """Whole-program analysis results returned by :func:`analyze_program`."""

    rule_infos: Tuple[RuleInfo, ...]
    declared_classes: FrozenSet[str]

    def info(self, rule_name: str) -> RuleInfo:
        for ri in self.rule_infos:
            if ri.name == rule_name:
                return ri
        raise KeyError(rule_name)


def _bound_variables(rule: Rule) -> List[str]:
    """Variables bound by plain VariableTests in positive CEs, in order.

    A variable inside a conjunctive test counts as binding only if it occurs
    as a plain :class:`VariableTest` atom (OPS5 semantics: ``{<x> > 3}``
    binds ``<x>`` and also constrains it).
    """
    bound: List[str] = []

    def visit(test, binding_position: bool) -> None:
        if isinstance(test, VariableTest):
            if binding_position and test.name not in bound:
                bound.append(test.name)
        elif isinstance(test, ConjunctiveTest):
            for atom in test.tests:
                visit(atom, binding_position)
        # PredicateTest operands are *uses*, not bindings.

    for ce in rule.conditions:
        if ce.negated:
            continue
        for _attr, test in ce.tests:
            visit(test, True)
    return bound


def _used_variables_in_test(test) -> List[str]:
    out: List[str] = []
    if isinstance(test, PredicateTest):
        if isinstance(test.operand, VariableTest):
            out.append(test.operand.name)
    elif isinstance(test, ConjunctiveTest):
        for atom in test.tests:
            out.extend(_used_variables_in_test(atom))
    return out


def _expr_variables(expr: Expr) -> List[str]:
    if isinstance(expr, VariableExpr):
        return [expr.name]
    if isinstance(expr, ComputeExpr):
        out: List[str] = []
        for item in expr.items:
            if not isinstance(item, str):
                out.extend(_expr_variables(item))
        return out
    return []


def _check_ce_against_templates(
    rule: Rule, ce: ConditionElement, templates: Dict[str, FrozenSet[str]]
) -> None:
    if ce.class_name == INSTANTIATION_CLASS:
        return  # checked separately (attrs depend on the object rule)
    if ce.class_name not in templates:
        raise SemanticError(
            f"rule {rule.name!r}: condition element references undeclared class "
            f"{ce.class_name!r}"
        )
    allowed = templates[ce.class_name]
    for attr, _test in ce.tests:
        if attr not in allowed:
            raise SemanticError(
                f"rule {rule.name!r}: class {ce.class_name!r} has no attribute "
                f"{attr!r} (declared: {sorted(allowed)})"
            )


def _check_rule(
    rule: Rule,
    templates: Dict[str, FrozenSet[str]],
    enforce_templates: bool,
) -> RuleInfo:
    is_meta = isinstance(rule, MetaRule)
    kind = "meta-rule" if is_meta else "rule"

    if not rule.conditions:
        raise SemanticError(f"{kind} {rule.name!r} has no condition elements")
    if rule.conditions[0].negated:
        raise SemanticError(
            f"{kind} {rule.name!r}: the first condition element must be positive"
        )

    classes_read: Set[str] = set()
    classes_written: Set[str] = set()

    bound = _bound_variables(rule)
    bound_set = set(bound)

    # LHS checks.
    for ce in rule.conditions:
        classes_read.add(ce.class_name)
        if enforce_templates:
            _check_ce_against_templates(rule, ce, templates)
        for _attr, test in ce.tests:
            for var in _used_variables_in_test(test):
                if var not in bound_set:
                    raise SemanticError(
                        f"{kind} {rule.name!r}: variable <{var}> is used in a "
                        f"predicate but never bound by a positive condition"
                    )
        if ce.negated:
            for var in ce.variables:
                if var not in bound_set:
                    raise SemanticError(
                        f"{kind} {rule.name!r}: variable <{var}> appears only "
                        f"inside a negated condition element"
                    )

    # RHS checks. `bind` extends the environment as we walk.
    env = set(bound_set)
    positive_indices = {
        i + 1 for i, ce in enumerate(rule.conditions) if not ce.negated
    }
    n_ces = len(rule.conditions)
    for action in rule.actions:
        if is_meta and not isinstance(
            action, (RedactAction, WriteAction, BindAction, HaltAction, CallAction)
        ):
            raise SemanticError(
                f"meta-rule {rule.name!r}: action {action} is not allowed at the "
                f"meta level (only redact/write/bind/halt/call)"
            )
        if not is_meta and isinstance(action, RedactAction):
            raise SemanticError(
                f"rule {rule.name!r}: (redact ...) is only legal in meta-rules"
            )
        exprs: List[Expr] = []
        if isinstance(action, (MakeAction, ModifyAction)):
            exprs.extend(e for _a, e in action.assignments)
            if isinstance(action, MakeAction):
                classes_written.add(action.class_name)
                if enforce_templates and action.class_name != INSTANTIATION_CLASS:
                    if action.class_name not in templates:
                        raise SemanticError(
                            f"{kind} {rule.name!r}: make of undeclared class "
                            f"{action.class_name!r}"
                        )
                    allowed = templates[action.class_name]
                    for attr, _e in action.assignments:
                        if attr not in allowed:
                            raise SemanticError(
                                f"{kind} {rule.name!r}: make {action.class_name!r} "
                                f"assigns undeclared attribute {attr!r}"
                            )
            else:
                if action.ce_index > n_ces:
                    raise SemanticError(
                        f"{kind} {rule.name!r}: modify index {action.ce_index} out "
                        f"of range (rule has {n_ces} condition elements)"
                    )
                if action.ce_index not in positive_indices:
                    raise SemanticError(
                        f"{kind} {rule.name!r}: modify {action.ce_index} refers to "
                        f"a negated condition element"
                    )
                ce = rule.conditions[action.ce_index - 1]
                classes_written.add(ce.class_name)
                if enforce_templates and ce.class_name in templates:
                    allowed = templates[ce.class_name]
                    for attr, _e in action.assignments:
                        if attr not in allowed:
                            raise SemanticError(
                                f"{kind} {rule.name!r}: modify of {ce.class_name!r} "
                                f"assigns undeclared attribute {attr!r}"
                            )
        elif isinstance(action, RemoveAction):
            for idx in action.ce_indices:
                if idx > n_ces:
                    raise SemanticError(
                        f"{kind} {rule.name!r}: remove index {idx} out of range"
                    )
                if idx not in positive_indices:
                    raise SemanticError(
                        f"{kind} {rule.name!r}: remove {idx} refers to a negated "
                        f"condition element"
                    )
                classes_written.add(rule.conditions[idx - 1].class_name)
        elif isinstance(action, WriteAction):
            exprs.extend(action.arguments)
        elif isinstance(action, CallAction):
            exprs.extend(action.arguments)
        elif isinstance(action, BindAction):
            exprs.append(action.expr)
        elif isinstance(action, RedactAction):
            exprs.append(action.expr)
        elif isinstance(action, HaltAction):
            pass
        for expr in exprs:
            for var in _expr_variables(expr):
                if var not in env:
                    raise SemanticError(
                        f"{kind} {rule.name!r}: RHS uses unbound variable <{var}>"
                    )
        if isinstance(action, BindAction):
            env.add(action.name)

    return RuleInfo(
        name=rule.name,
        bound_variables=tuple(bound),
        classes_read=frozenset(classes_read),
        classes_written=frozenset(classes_written),
        is_meta=is_meta,
    )


def analyze_program(program: Program, enforce_templates: bool = True) -> ProgramInfo:
    """Validate ``program`` and return a :class:`ProgramInfo`.

    ``enforce_templates=True`` (the default) requires that every class used
    is declared with ``literalize`` and every attribute is declared — unless
    the program declares *no* classes at all, in which case it is treated as
    untyped and class/attribute checks are skipped (this mirrors how small
    OPS5 programs were often written).

    Raises :class:`~repro.errors.SemanticError` on the first violation.
    """
    templates: Dict[str, FrozenSet[str]] = {}
    for lit in program.literalizes:
        if lit.class_name in templates:
            raise SemanticError(f"duplicate literalize for class {lit.class_name!r}")
        if lit.class_name == INSTANTIATION_CLASS:
            raise SemanticError(
                f"class name {INSTANTIATION_CLASS!r} is reserved for the meta level"
            )
        if len(set(lit.attributes)) != len(lit.attributes):
            raise SemanticError(
                f"literalize {lit.class_name!r} declares duplicate attributes"
            )
        templates[lit.class_name] = frozenset(lit.attributes)

    names: Set[str] = set()
    for rule in (*program.rules, *program.meta_rules):
        if rule.name in names:
            raise SemanticError(f"duplicate rule name {rule.name!r}")
        names.add(rule.name)

    enforce = enforce_templates and bool(templates)
    infos = tuple(
        _check_rule(rule, templates, enforce)
        for rule in (*program.rules, *program.meta_rules)
    )
    return ProgramInfo(rule_infos=infos, declared_classes=frozenset(templates))
