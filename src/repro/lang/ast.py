"""Abstract syntax tree for PARULEL programs.

The AST is built by :mod:`repro.lang.parser` (or programmatically via
:mod:`repro.lang.builder`), checked by :mod:`repro.lang.analysis`, compiled
into match networks by :mod:`repro.match`, and executed by
:mod:`repro.core` / :mod:`repro.baseline`.

Node taxonomy
=============

A :class:`Program` holds :class:`Literalize` declarations, object-level
:class:`Rule` definitions (``p``) and meta-level :class:`MetaRule`
definitions (``mp``).

A rule's LHS is a sequence of :class:`ConditionElement`; each condition
element constrains one working-memory element of a given class via per
attribute :class:`Test` s:

- :class:`ConstantTest` — attribute equals a literal,
- :class:`VariableTest` — bind or check a match variable,
- :class:`PredicateTest` — compare with ``= <> < <= > >= <=>`` against a
  constant or a variable,
- :class:`DisjunctionTest` — ``<< a b c >>`` membership in a constant set,
- :class:`ConjunctiveTest` — ``{ ... }`` conjunction of the above.

The RHS is a sequence of :class:`Action` s: ``make``, ``modify``, ``remove``,
``write``, ``bind``, ``halt``, ``call`` and (meta-rules only) ``redact``.
Action argument expressions are constants, variables or ``(compute ...)``
arithmetic, represented by :class:`ConstantExpr` / :class:`VariableExpr` /
:class:`ComputeExpr`.

All nodes are frozen dataclasses: the AST is immutable after construction,
which lets match-network compilation and the engines share it freely across
(simulated or real) parallel sites without copying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

__all__ = [
    "Value",
    "Program",
    "Literalize",
    "Rule",
    "MetaRule",
    "ConditionElement",
    "TestAtom",
    "Test",
    "ConstantTest",
    "VariableTest",
    "PredicateTest",
    "DisjunctionTest",
    "ConjunctiveTest",
    "Expr",
    "ConstantExpr",
    "VariableExpr",
    "ComputeExpr",
    "GenatomExpr",
    "Action",
    "MakeAction",
    "ModifyAction",
    "RemoveAction",
    "WriteAction",
    "BindAction",
    "HaltAction",
    "CallAction",
    "RedactAction",
    "PREDICATES",
]

#: Runtime values flowing through working memory: symbols (str), ints, floats.
Value = Union[str, int, float]

#: The comparison predicates of the language. ``<=>`` is OPS5's "same type"
#: predicate (both numbers, or both symbols).
PREDICATES = ("=", "<>", "<", "<=", ">", ">=", "<=>")


# ---------------------------------------------------------------------------
# LHS tests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConstantTest:
    """``^attr value`` — the attribute must equal ``value`` exactly."""

    value: Value

    def __str__(self) -> str:
        return _format_value(self.value)


@dataclass(frozen=True)
class VariableTest:
    """``^attr <x>`` — bind ``<x>`` on first occurrence, test equality after."""

    name: str

    def __str__(self) -> str:
        return f"<{self.name}>"


@dataclass(frozen=True)
class PredicateTest:
    """``^attr > 4`` or ``^attr <> <x>`` — compare via a predicate.

    ``operand`` is a :class:`ConstantTest` or :class:`VariableTest` naming
    what to compare the attribute value against.
    """

    predicate: str
    operand: Union[ConstantTest, VariableTest]

    def __post_init__(self) -> None:
        if self.predicate not in PREDICATES:
            raise ValueError(f"unknown predicate {self.predicate!r}")

    def __str__(self) -> str:
        return f"{self.predicate} {self.operand}"


@dataclass(frozen=True)
class DisjunctionTest:
    """``^attr << red green blue >>`` — membership in a constant set."""

    alternatives: Tuple[Value, ...]

    def __str__(self) -> str:
        inner = " ".join(_format_value(v) for v in self.alternatives)
        return f"<< {inner} >>"


@dataclass(frozen=True)
class ConjunctiveTest:
    """``^attr { <x> > 4 <> <y> }`` — all component tests must hold."""

    tests: Tuple["TestAtom", ...]

    def __str__(self) -> str:
        inner = " ".join(str(t) for t in self.tests)
        return f"{{ {inner} }}"


#: A test that may appear inside a conjunctive ``{ ... }`` group.
TestAtom = Union[ConstantTest, VariableTest, PredicateTest, DisjunctionTest]

#: Any attribute test.
Test = Union[ConstantTest, VariableTest, PredicateTest, DisjunctionTest, ConjunctiveTest]


@dataclass(frozen=True)
class ConditionElement:
    """One LHS pattern: ``(class ^attr test ...)``, optionally negated.

    ``tests`` maps attribute name to its test, in source order (Python dicts
    preserve insertion order, but we store a tuple of pairs to stay hashable
    and explicit about ordering).
    """

    class_name: str
    tests: Tuple[Tuple[str, Test], ...]
    negated: bool = False

    @property
    def variables(self) -> Tuple[str, ...]:
        """All variable names mentioned by this CE, in first-occurrence order."""
        seen = []
        for _attr, test in self.tests:
            for name in _test_variables(test):
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def __str__(self) -> str:
        parts = [self.class_name]
        for attr, test in self.tests:
            parts.append(f"^{attr} {test}")
        body = f"({' '.join(parts)})"
        return f"-{body}" if self.negated else body


def _test_variables(test: Test) -> Tuple[str, ...]:
    if isinstance(test, VariableTest):
        return (test.name,)
    if isinstance(test, PredicateTest):
        return _test_variables(test.operand)
    if isinstance(test, ConjunctiveTest):
        out = []
        for t in test.tests:
            out.extend(_test_variables(t))
        return tuple(out)
    return ()


# ---------------------------------------------------------------------------
# RHS expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConstantExpr:
    """A literal value in an action argument position."""

    value: Value

    def __str__(self) -> str:
        return _format_value(self.value)


@dataclass(frozen=True)
class VariableExpr:
    """A variable reference in an action argument position."""

    name: str

    def __str__(self) -> str:
        return f"<{self.name}>"


@dataclass(frozen=True)
class ComputeExpr:
    """``(compute <x> + 1 ...)`` — left-to-right arithmetic, OPS5 style.

    ``items`` alternates operands and operator symbols, e.g.
    ``(operand, '+', operand, '*', operand)``. Evaluation is strictly left to
    right with no precedence, matching OPS5's ``compute``.
    """

    items: Tuple[Union["Expr", str], ...]

    def __str__(self) -> str:
        inner = " ".join(str(i) for i in self.items)
        return f"(compute {inner})"


@dataclass(frozen=True)
class GenatomExpr:
    """``(genatom)`` / ``(genatom prefix)`` — a fresh unique symbol.

    OPS5's ``genatom``: each evaluation yields a symbol no other evaluation
    has produced in this engine (``prefix1``, ``prefix2``, ...). The counter
    lives on the :class:`~repro.core.actions.ActionEvaluator`, so runs stay
    deterministic.
    """

    prefix: str = "g"

    def __str__(self) -> str:
        if self.prefix == "g":
            return "(genatom)"
        return f"(genatom {self.prefix})"


Expr = Union[ConstantExpr, VariableExpr, ComputeExpr, GenatomExpr]


# ---------------------------------------------------------------------------
# RHS actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MakeAction:
    """``(make class ^attr expr ...)`` — assert a new WME."""

    class_name: str
    assignments: Tuple[Tuple[str, Expr], ...]

    def __str__(self) -> str:
        parts = [f"make {self.class_name}"]
        for attr, expr in self.assignments:
            parts.append(f"^{attr} {expr}")
        return f"({' '.join(parts)})"


@dataclass(frozen=True)
class ModifyAction:
    """``(modify k ^attr expr ...)`` — re-assert CE number ``k`` (1-based)
    with the given attributes changed."""

    ce_index: int
    assignments: Tuple[Tuple[str, Expr], ...]

    def __str__(self) -> str:
        parts = [f"modify {self.ce_index}"]
        for attr, expr in self.assignments:
            parts.append(f"^{attr} {expr}")
        return f"({' '.join(parts)})"


@dataclass(frozen=True)
class RemoveAction:
    """``(remove k ...)`` — retract the WMEs matched by the listed CEs."""

    ce_indices: Tuple[int, ...]

    def __str__(self) -> str:
        inner = " ".join(str(i) for i in self.ce_indices)
        return f"(remove {inner})"


@dataclass(frozen=True)
class WriteAction:
    """``(write expr ...)`` — append a line to the engine's output stream."""

    arguments: Tuple[Expr, ...]

    def __str__(self) -> str:
        inner = " ".join(str(a) for a in self.arguments)
        return f"(write {inner})"


@dataclass(frozen=True)
class BindAction:
    """``(bind <x> expr)`` — introduce an RHS-local binding."""

    name: str
    expr: Expr

    def __str__(self) -> str:
        return f"(bind <{self.name}> {self.expr})"


@dataclass(frozen=True)
class HaltAction:
    """``(halt)`` — stop the recognize-act cycle after this firing phase."""

    def __str__(self) -> str:
        return "(halt)"


@dataclass(frozen=True)
class CallAction:
    """``(call fn expr ...)`` — invoke a host callback registered with the
    engine. The escape hatch the paper's external-routine interface needs."""

    function: str
    arguments: Tuple[Expr, ...]

    def __str__(self) -> str:
        inner = " ".join(str(a) for a in self.arguments)
        sep = " " if inner else ""
        return f"(call {self.function}{sep}{inner})"


@dataclass(frozen=True)
class RedactAction:
    """``(redact <i>)`` — meta-rules only: delete the instantiation whose
    ``id`` is the value of the expression from the conflict set."""

    expr: Expr

    def __str__(self) -> str:
        return f"(redact {self.expr})"


Action = Union[
    MakeAction,
    ModifyAction,
    RemoveAction,
    WriteAction,
    BindAction,
    HaltAction,
    CallAction,
    RedactAction,
]


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literalize:
    """``(literalize class attr ...)`` — declare a WME class and attributes."""

    class_name: str
    attributes: Tuple[str, ...]

    def __str__(self) -> str:
        return f"(literalize {self.class_name} {' '.join(self.attributes)})"


@dataclass(frozen=True)
class Rule:
    """An object-level production ``(p name LHS --> RHS)``.

    ``salience`` is an extension over OPS5 (default 0): it is exposed to the
    meta level as an attribute of reified instantiations so that meta-rules
    can implement priority schemes, and is used as a tie-breaker by the
    baseline engine's strategies.
    """

    name: str
    conditions: Tuple[ConditionElement, ...]
    actions: Tuple[Action, ...]
    salience: int = 0

    @property
    def specificity(self) -> int:
        """OPS5-style specificity: total number of attribute tests."""
        count = 0
        for ce in self.conditions:
            for _attr, test in ce.tests:
                count += len(test.tests) if isinstance(test, ConjunctiveTest) else 1
        return count

    @property
    def positive_conditions(self) -> Tuple[ConditionElement, ...]:
        return tuple(ce for ce in self.conditions if not ce.negated)

    @property
    def variables(self) -> Tuple[str, ...]:
        """Variables bound by positive CEs, in first-occurrence order."""
        seen = []
        for ce in self.conditions:
            if ce.negated:
                continue
            for name in ce.variables:
                if name not in seen:
                    seen.append(name)
        return tuple(seen)


@dataclass(frozen=True)
class MetaRule(Rule):
    """A meta-level production ``(mp name LHS --> RHS)``.

    Meta-rules match over the reified conflict set (WME class
    ``instantiation``) and any ordinary working-memory classes, and their
    actions are restricted by analysis to ``redact``/``write``/``bind``/
    ``halt``/``call``.
    """


@dataclass(frozen=True)
class Program:
    """A complete PARULEL program: declarations, rules and meta-rules."""

    literalizes: Tuple[Literalize, ...] = ()
    rules: Tuple[Rule, ...] = ()
    meta_rules: Tuple[MetaRule, ...] = field(default=())

    def rule(self, name: str) -> Rule:
        """Look up a rule or meta-rule by name (raises ``KeyError``)."""
        for r in self.rules:
            if r.name == name:
                return r
        for r in self.meta_rules:
            if r.name == name:
                return r
        raise KeyError(name)

    @property
    def class_names(self) -> Tuple[str, ...]:
        return tuple(l.class_name for l in self.literalizes)

    def template(self, class_name: str) -> Literalize:
        for l in self.literalizes:
            if l.class_name == class_name:
                return l
        raise KeyError(class_name)


def _format_value(value: Value) -> str:
    """Render a runtime value in surface syntax (bar-quote when needed).

    Strings are bar-quoted when they contain delimiter characters, when they
    would lex as something other than a plain symbol (numbers, predicates,
    ``-``-leading atoms), or when empty — this is what makes the
    pretty-printer → parser round trip exact.
    """
    if isinstance(value, str):
        if value == "" or any(c in value for c in " \t\r\n(){}^;|<>"):
            return f"|{value}|"
        try:
            float(value)
            return f"|{value}|"  # would re-lex as a number
        except ValueError:
            pass
        if value in ("=", "-", "-->") or value.startswith("-"):
            return f"|{value}|"
        return value
    if isinstance(value, float) and value != value:  # NaN: no surface form
        return "|nan|"
    return repr(value)
