"""Pretty-printer for PARULEL ASTs.

The printer produces canonical surface syntax that **round-trips**: for any
program ``p``, ``parse_program(format_program(p)) == p``. This property is
exercised by hypothesis tests in ``tests/lang/test_roundtrip.py`` and makes
the printer safe to use for program transformations (e.g.
:func:`repro.parallel.partition.copy_and_constrain` prints transformed rules
into traces).
"""

from __future__ import annotations

from repro.lang.ast import (
    Action,
    BindAction,
    CallAction,
    ComputeExpr,
    ConditionElement,
    ConstantExpr,
    Expr,
    GenatomExpr,
    HaltAction,
    Literalize,
    MakeAction,
    MetaRule,
    ModifyAction,
    Program,
    RedactAction,
    RemoveAction,
    Rule,
    VariableExpr,
    WriteAction,
    _format_value,
)

__all__ = ["format_program", "format_rule", "format_action", "format_expr"]


def format_expr(expr: Expr) -> str:
    """Render an RHS expression."""
    if isinstance(expr, ConstantExpr):
        return _format_value(expr.value)
    if isinstance(expr, VariableExpr):
        return f"<{expr.name}>"
    if isinstance(expr, ComputeExpr):
        parts = [
            item if isinstance(item, str) else format_expr(item)
            for item in expr.items
        ]
        return f"(compute {' '.join(parts)})"
    if isinstance(expr, GenatomExpr):
        return str(expr)
    raise TypeError(f"not an expression: {expr!r}")


def format_action(action: Action) -> str:
    """Render one RHS action."""
    if isinstance(action, MakeAction):
        parts = [f"make {action.class_name}"]
        parts += [f"^{a} {format_expr(e)}" for a, e in action.assignments]
        return f"({' '.join(parts)})"
    if isinstance(action, ModifyAction):
        parts = [f"modify {action.ce_index}"]
        parts += [f"^{a} {format_expr(e)}" for a, e in action.assignments]
        return f"({' '.join(parts)})"
    if isinstance(action, RemoveAction):
        return f"(remove {' '.join(str(i) for i in action.ce_indices)})"
    if isinstance(action, WriteAction):
        inner = " ".join(format_expr(e) for e in action.arguments)
        return f"(write {inner})" if inner else "(write)"
    if isinstance(action, BindAction):
        return f"(bind <{action.name}> {format_expr(action.expr)})"
    if isinstance(action, HaltAction):
        return "(halt)"
    if isinstance(action, CallAction):
        inner = " ".join(format_expr(e) for e in action.arguments)
        sep = " " if inner else ""
        return f"(call {action.function}{sep}{inner})"
    if isinstance(action, RedactAction):
        return f"(redact {format_expr(action.expr)})"
    raise TypeError(f"not an action: {action!r}")


def format_condition(ce: ConditionElement) -> str:
    """Render one condition element (with its negation marker)."""
    return str(ce)


def format_rule(rule: Rule) -> str:
    """Render a rule or meta-rule as an indented ``(p ...)`` / ``(mp ...)``."""
    head = "mp" if isinstance(rule, MetaRule) else "p"
    lines = [f"({head} {rule.name}"]
    if rule.salience:
        lines.append(f"    (salience {rule.salience})")
    for ce in rule.conditions:
        lines.append(f"    {format_condition(ce)}")
    lines.append("    -->")
    for action in rule.actions:
        lines.append(f"    {format_action(action)}")
    return "\n".join(lines) + ")"


def format_literalize(lit: Literalize) -> str:
    parts = ["literalize", lit.class_name, *lit.attributes]
    return f"({' '.join(parts)})"


def format_program(program: Program) -> str:
    """Render a whole program; output re-parses to an equal AST."""
    chunks = []
    for lit in program.literalizes:
        chunks.append(format_literalize(lit))
    for rule in program.rules:
        chunks.append(format_rule(rule))
    for mrule in program.meta_rules:
        chunks.append(format_rule(mrule))
    return "\n\n".join(chunks) + ("\n" if chunks else "")
