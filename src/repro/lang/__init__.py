"""The PARULEL language front end.

This package contains everything needed to turn PARULEL source text into an
analyzed program object:

- :mod:`repro.lang.lexer` — tokenizer for the OPS5-style surface syntax,
- :mod:`repro.lang.ast` — the abstract syntax tree (programs, rules,
  meta-rules, condition elements, tests, actions),
- :mod:`repro.lang.parser` — recursive-descent parser,
- :mod:`repro.lang.analysis` — semantic checks (variable binding discipline,
  declared attributes, meta-rule restrictions),
- :mod:`repro.lang.pretty` — pretty-printer that round-trips through the
  parser,
- :mod:`repro.lang.builder` — a programmatic DSL for constructing programs
  from Python without writing surface syntax (used heavily by
  :mod:`repro.programs`).

The quickest entry point is :func:`repro.lang.parse_program`.
"""

from repro.lang.ast import (
    Action,
    BindAction,
    CallAction,
    ConditionElement,
    ConjunctiveTest,
    ConstantTest,
    DisjunctionTest,
    HaltAction,
    Literalize,
    MakeAction,
    MetaRule,
    ModifyAction,
    PredicateTest,
    Program,
    RedactAction,
    RemoveAction,
    Rule,
    TestAtom,
    VariableTest,
    WriteAction,
)
from repro.lang.analysis import analyze_program
from repro.lang.builder import ProgramBuilder, RuleBuilder
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.parser import parse_program
from repro.lang.pretty import format_program, format_rule

__all__ = [
    "Action",
    "BindAction",
    "CallAction",
    "ConditionElement",
    "ConjunctiveTest",
    "ConstantTest",
    "DisjunctionTest",
    "HaltAction",
    "Literalize",
    "MakeAction",
    "MetaRule",
    "ModifyAction",
    "PredicateTest",
    "Program",
    "ProgramBuilder",
    "RedactAction",
    "RemoveAction",
    "Rule",
    "RuleBuilder",
    "TestAtom",
    "Token",
    "TokenKind",
    "VariableTest",
    "WriteAction",
    "analyze_program",
    "format_program",
    "format_rule",
    "parse_program",
    "tokenize",
]
